#include "core/elimlin.h"

#include <algorithm>
#include <unordered_set>

#include "core/linearize.h"

namespace bosphorus::core {

using anf::Polynomial;
using anf::Var;

std::vector<Polynomial> run_elimlin(const std::vector<Polynomial>& system,
                                    const ElimLinConfig& cfg, Rng& rng,
                                    ElimLinStats* stats,
                                    const runtime::CancellationToken& cancel) {
    if (system.empty() || cancel.cancelled()) return {};

    const size_t sample_budget = size_t{1} << std::min(cfg.m_budget, 48u);
    const std::vector<size_t> chosen = subsample(system, sample_budget, rng);
    std::vector<Polynomial> work;
    work.reserve(chosen.size());
    for (size_t idx : chosen) work.push_back(system[idx]);

    std::vector<Polynomial> facts;
    // Dedup on the interned representation: PolynomialHash folds the
    // per-term hashes cached in the MonomialStore, so an insert costs one
    // multiply-xor per 4-byte id instead of re-hashing variable vectors.
    std::unordered_set<Polynomial, anf::PolynomialHash> fact_set;
    size_t iterations = 0;
    size_t eliminated = 0;

    auto add_fact = [&](const Polynomial& p) {
        if (p.is_zero()) return;
        if (fact_set.insert(p).second) facts.push_back(p);
    };

    for (; iterations < cfg.max_iterations; ++iterations) {
        // Cancellation boundary: one eliminate-substitute round.
        if (cancel.cancelled()) break;
        // Step (1): GJE on the linearisation (M4R by default).
        Linearization lin = linearize(work);
        reduce(lin, cfg.use_m4r);

        // Step (2): gather linear equations from the reduced rows.
        std::vector<Polynomial> linear;
        std::vector<Polynomial> nonlinear;
        bool contradiction = false;
        for (size_t r = 0; r < lin.rows(); ++r) {
            if (lin.matrix.row_is_zero(r)) continue;
            Polynomial p = row_to_polynomial(lin, r);
            if (p.is_one()) {
                contradiction = true;
                break;
            }
            if (p.degree() <= 1) {
                linear.push_back(std::move(p));
            } else {
                nonlinear.push_back(std::move(p));
            }
        }
        if (contradiction) {
            facts.clear();
            facts.push_back(Polynomial::constant(true));
            break;
        }
        if (linear.empty()) break;
        for (const auto& l : linear) add_fact(l);

        // Step (3): eliminate one variable per linear equation by
        // substitution into the linear-free remainder.
        work = std::move(nonlinear);
        std::vector<Polynomial> pending(linear.begin(), linear.end());
        for (size_t li = 0; li < pending.size(); ++li) {
            if (cancel.cancelled()) break;  // substitution sub-boundary
            Polynomial l = pending[li];
            if (l.is_zero()) continue;
            if (l.is_one()) {
                facts.clear();
                facts.push_back(Polynomial::constant(true));
                return facts;
            }
            if (l.degree() < 1) continue;
            // Count occurrences of each candidate variable in the remaining
            // system; pick the rarest (paper's heuristic).
            std::vector<Var> cand = l.variables();
            Var best = cand[0];
            size_t best_count = SIZE_MAX;
            for (Var v : cand) {
                size_t count = 0;
                for (const auto& q : work) count += q.contains_var(v);
                for (size_t lj = li + 1; lj < pending.size(); ++lj)
                    count += pending[lj].contains_var(v);
                if (count < best_count) {
                    best = v;
                    best_count = count;
                }
            }
            // l = best + rest  =>  best := rest.
            Polynomial rest = l + Polynomial::variable(best);
            for (auto& q : work) {
                if (q.contains_var(best)) q = q.substitute(best, rest);
            }
            for (size_t lj = li + 1; lj < pending.size(); ++lj) {
                if (pending[lj].contains_var(best))
                    pending[lj] = pending[lj].substitute(best, rest);
            }
            ++eliminated;
        }
        // Drop zero polynomials created by substitution.
        work.erase(std::remove_if(work.begin(), work.end(),
                                  [](const Polynomial& p) {
                                      return p.is_zero();
                                  }),
                   work.end());
        if (work.empty()) break;
    }

    if (stats) {
        stats->sampled_equations = chosen.size();
        stats->iterations = iterations;
        stats->eliminated_vars = eliminated;
        stats->facts = facts.size();
    }
    return facts;
}

}  // namespace bosphorus::core
