// eXtended Linearization (XL) -- paper section II-B.
//
// The system is uniformly subsampled to linearised size ~2^M, expanded by
// multiplying equations (in ascending degree order) with monomials of degree
// up to D, capped at total size ~2^(M + deltaM), then Gauss-Jordan
// eliminated. Rows of the reduced system that are linear equations or
// monomial facts (x_{i1}...x_{ip} + 1) are retained as learnt facts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anf/polynomial.h"
#include "runtime/cancellation.h"
#include "util/rng.h"

namespace bosphorus::core {

struct XlConfig {
    unsigned degree = 1;   ///< D: maximal multiplier monomial degree
    unsigned m_budget = 30;   ///< M: subsample until m'*n' >= 2^M
    unsigned delta_m = 4;  ///< deltaM: expansion cap 2^(M + deltaM)
    /// Eliminate with the Method of Four Russians (rref_m4r) instead of
    /// plain Gauss-Jordan. Identical results, asymptotically faster on
    /// the dense linearisations XL produces; off forces plain elimination
    /// (see core::reduce).
    bool use_m4r = true;
};

struct XlStats {
    size_t sampled_equations = 0;
    size_t expanded_rows = 0;
    size_t columns = 0;
    size_t rank = 0;
    size_t facts = 0;
};

/// Run one XL pass. Returns the learnt facts (possibly including the
/// constant-1 polynomial, meaning the system is UNSAT). `cancel` is polled
/// at expansion-batch boundaries and around the elimination; a cancelled
/// run returns the (possibly empty) facts gathered so far.
std::vector<anf::Polynomial> run_xl(
    const std::vector<anf::Polynomial>& system, const XlConfig& cfg, Rng& rng,
    XlStats* stats = nullptr,
    const runtime::CancellationToken& cancel = {});

}  // namespace bosphorus::core
