// Degree-bounded Groebner-basis reduction as a pluggable learning step.
//
// The paper's discussion (section V) points out that new solving techniques
// "can be plugged as components into the workflow", naming Buchberger's
// algorithm explicitly: Groebner-basis preprocessing for SAT had been
// proposed before (Condrat & Kalla, TACAS 2007), and Bosphorus lets it run
// *iteratively* next to XL/ElimLin/SAT. This module implements that
// component in the F4 style (Faugere): instead of reducing one S-polynomial
// at a time, each round forms all S-polynomials up to a degree bound and
// reduces the whole batch simultaneously with Gauss-Jordan elimination on
// the linearised system -- reusing the same gf2 substrate as XL.
//
// Over the Boolean ring GF(2)[x]/(x_i^2 + x_i), multiplication by the
// S-polynomial cofactors is idempotent-aware (the Monomial type unions
// variable sets), so the field equations are built in. Facts retained are
// the same two kinds Bosphorus keeps everywhere: linear equations and
// monomial facts.
#pragma once

#include <cstddef>
#include <vector>

#include "anf/polynomial.h"
#include "runtime/cancellation.h"
#include "util/rng.h"

namespace bosphorus::core {

struct GroebnerConfig {
    unsigned max_pair_degree = 4;  ///< skip S-pairs whose lcm degree exceeds
    unsigned rounds = 3;           ///< F4 rounds per invocation
    size_t max_basis = 4096;       ///< cap on tracked basis polynomials
    size_t max_pairs = 20'000;     ///< cap on S-pairs per round
    unsigned m_budget = 20;        ///< subsample budget 2^M (like XL/ElimLin)
    /// Eliminate with the Method of Four Russians (see XlConfig::use_m4r).
    bool use_m4r = true;
};

struct GroebnerStats {
    size_t rounds_run = 0;
    size_t spairs_formed = 0;
    size_t basis_size = 0;
    size_t facts = 0;
};

/// One invocation of the degree-bounded F4 loop. Returns learnt facts
/// (linear equations and monomial facts; the constant-1 polynomial means
/// the ideal is trivial, i.e. the system is UNSAT). `cancel` is polled at
/// every F4 round boundary; a cancelled run returns the facts found so far.
std::vector<anf::Polynomial> run_groebner(
    const std::vector<anf::Polynomial>& system, const GroebnerConfig& cfg,
    Rng& rng, GroebnerStats* stats = nullptr,
    const runtime::CancellationToken& cancel = {});

}  // namespace bosphorus::core
