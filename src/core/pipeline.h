// Legacy end-to-end solving pipeline used by the Table II bench harness.
//
// Mirrors the paper's experimental setup: an instance (ANF or CNF) is either
// (a) converted to CNF and handed directly to a back-end SAT solver
//     ("w/o Bosphorus"), or
// (b) first run through the Bosphorus fact-learning loop, whose processed
//     CNF (including learnt facts) is then handed to the back-end solver;
//     the reported time includes Bosphorus's own runtime ("w Bosphorus").
//
// Both entry points are now thin adapters over the facade's
// `bosphorus::solve` (include/bosphorus/solve.h); new code should call that
// directly with a `Problem`.
#pragma once

#include <cstddef>
#include <vector>

#include "bosphorus/solve.h"
#include "core/bosphorus.h"
#include "sat/solve_cnf.h"

namespace bosphorus::core {

struct PipelineConfig {
    Options bosphorus;             ///< loop parameters (section IV defaults)
    /// Back-end solver spec (any bosphorus/sat_backend.h registry name);
    /// matches the CLI's documented default (`cms`). The legacy
    /// sat::SolverKind enum still assigns here.
    sat::SolverSpec solver;
    bool use_bosphorus = false;    ///< the w/o vs w axis of Table II
    double timeout_s = 5000.0;     ///< total per-instance budget
    double bosphorus_budget_s = 1000.0;  ///< Bosphorus's share of the budget
};

struct PipelineOutcome {
    sat::Result result = sat::Result::kUnknown;
    double seconds = 0.0;            ///< total wall-clock (incl. Bosphorus)
    double bosphorus_seconds = 0.0;  ///< time spent in the learning loop
    bool solved_in_loop = false;     ///< decided by Bosphorus itself
    bool model_verified = false;     ///< SAT models checked against input
    sat::Solver::Stats solver_stats;
};

/// PipelineConfig -> the facade's SolveConfig (and outcome back).
::bosphorus::SolveConfig to_solve_config(const PipelineConfig& cfg);
PipelineOutcome to_pipeline_outcome(const ::bosphorus::SolveOutcome& out);

/// Solve an ANF instance per the Table II protocol.
PipelineOutcome solve_anf_instance(const std::vector<anf::Polynomial>& polys,
                                   size_t num_vars, const PipelineConfig& cfg);

/// Solve a CNF instance per the Table II protocol (SAT-2017 rows).
PipelineOutcome solve_cnf_instance(const sat::Cnf& cnf,
                                   const PipelineConfig& cfg);

/// PAR-2 score of a set of outcomes: sum of runtimes for solved instances
/// plus twice the timeout for unsolved ones (lower is better).
double par2_score(const std::vector<PipelineOutcome>& outcomes,
                  double timeout_s);

}  // namespace bosphorus::core
