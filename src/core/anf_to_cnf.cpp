#include "core/anf_to_cnf.h"

#include <algorithm>
#include <cassert>

#include "minimize/quine_mccluskey.h"

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;

namespace {

class Converter {
public:
    Converter(size_t num_vars, const Anf2CnfConfig& cfg) : cfg_(cfg) {
        res_.num_anf_vars = num_vars;
        res_.cnf.num_vars = num_vars;
    }

    Anf2CnfResult take() { return std::move(res_); }

    void convert(const Polynomial& p) {
        if (p.is_zero()) return;
        if (p.is_one()) {
            res_.cnf.add_clause({});  // 1 = 0: immediately unsatisfiable
            return;
        }
        for (const Polynomial& chunk : cut(p)) {
            const size_t k = chunk.variables().size();
            if (k <= cfg_.karnaugh_k && k <= 20) {
                karnaugh(chunk);
                ++res_.karnaugh_polys;
            } else {
                tseitin(chunk);
                ++res_.tseitin_polys;
            }
        }
    }

private:
    /// Cut p into chunks of <= L monomials chained by fresh aux variables:
    /// m1+...+m_{L-1} + t1,  t1+m_L+...+m_{2L-3} + t2,  ...
    std::vector<Polynomial> cut(const Polynomial& p) {
        const size_t L = std::max<unsigned>(cfg_.xor_cut, 3);
        if (p.size() <= L) return {p};
        std::vector<Polynomial> chunks;
        const auto& monos = p.monomials();
        size_t i = 0;
        Polynomial carry;  // empty = no carry yet
        bool have_carry = false;
        while (i < monos.size()) {
            const size_t room = L - (have_carry ? 1 : 0) - 1;
            const size_t remaining = monos.size() - i;
            std::vector<Monomial> part(monos.begin() + i,
                                       monos.begin() + i +
                                           std::min(room + 1, remaining));
            if (remaining <= room + 1) {
                // Last chunk: no new aux needed.
                Polynomial chunk{std::move(part)};
                if (have_carry) chunk += carry;
                chunks.push_back(std::move(chunk));
                i = monos.size();
            } else {
                part.resize(room);
                i += room;
                const sat::Var t = new_aux(Monomial{});
                Polynomial chunk{std::move(part)};
                if (have_carry) chunk += carry;
                chunk += Polynomial::variable(t);
                chunks.push_back(std::move(chunk));
                carry = Polynomial::variable(t);
                have_carry = true;
            }
            ++res_.cut_chunks;
        }
        return chunks;
    }

    /// Karnaugh-map path: truth-table the chunk over its own variables and
    /// emit a minimal prime-implicant clause cover.
    void karnaugh(const Polynomial& p) {
        const std::vector<anf::Var> vars = p.variables();
        const unsigned k = static_cast<unsigned>(vars.size());
        if (k == 0) {
            // Constant chunk: p = 1 is an empty clause; p = 0 is a no-op.
            if (p.is_one()) res_.cnf.add_clause({});
            return;
        }
        // Local index of each variable.
        // Evaluate every monomial as a bitmask test over the minterm.
        std::vector<uint32_t> masks;
        bool constant = p.has_constant_term();
        for (const auto& m : p.monomials()) {
            if (m.is_one()) continue;
            uint32_t mask = 0;
            for (anf::Var v : m.vars()) {
                const size_t pos =
                    std::lower_bound(vars.begin(), vars.end(), v) -
                    vars.begin();
                mask |= 1u << pos;
            }
            masks.push_back(mask);
        }
        std::vector<bool> on_set(size_t{1} << k, false);
        for (uint32_t minterm = 0; minterm < on_set.size(); ++minterm) {
            bool val = constant;
            for (uint32_t mask : masks)
                val ^= ((minterm & mask) == mask);
            on_set[minterm] = val;  // equation violated when p evaluates to 1
        }
        const auto cover = minimize::minimize_sop(on_set, k);
        for (const auto& cl :
             minimize::cover_to_clauses(cover, k)) {
            std::vector<sat::Lit> lits;
            lits.reserve(cl.literals.size());
            for (const auto& [local, negated] : cl.literals)
                lits.push_back(sat::mk_lit(vars[local], negated));
            res_.cnf.add_clause(std::move(lits));
        }
    }

    /// Tseitin path: monomials become AND-aux variables; the chunk becomes
    /// an XOR over CNF literals.
    void tseitin(const Polynomial& p) {
        sat::XorConstraint x;
        x.rhs = p.has_constant_term();  // sum of terms = constant
        for (const auto& m : p.monomials()) {
            if (m.is_one()) continue;
            if (m.degree() == 1) {
                x.vars.push_back(m.vars()[0]);
            } else {
                x.vars.push_back(monomial_var(m));
            }
        }
        emit_xor(std::move(x));
    }

    /// Auxiliary variable defined as the conjunction of the monomial's
    /// variables (three or more clauses a` la Tseitin encoding). The
    /// mono->aux map is keyed by the interned Monomial (O(1) cached hash,
    /// id equality); aux numbering depends only on conversion order, never
    /// on id values, so emitted CNF is independent of store history.
    sat::Var monomial_var(const Monomial& m) {
        auto it = res_.var_of_mono.find(m);
        if (it != res_.var_of_mono.end()) return it->second;
        const sat::Var t = new_aux(m);
        res_.var_of_mono.emplace(m, t);
        // t -> v_i for each i, and (v_1 & ... & v_k) -> t.
        std::vector<sat::Lit> big;
        big.push_back(sat::mk_lit(t, false));
        for (anf::Var v : m.vars()) {
            res_.cnf.add_clause({sat::mk_lit(t, true), sat::mk_lit(v, false)});
            big.push_back(sat::mk_lit(v, true));
        }
        res_.cnf.add_clause(std::move(big));
        return t;
    }

    void emit_xor(sat::XorConstraint x) {
        if (x.vars.empty()) {
            if (x.rhs) res_.cnf.add_clause({});
            return;
        }
        if (cfg_.native_xor) {
            res_.cnf.xors.push_back(std::move(x));
            return;
        }
        // Plain-CNF XOR: forbid every assignment of the wrong parity.
        const size_t l = x.vars.size();
        assert(l <= 24 && "xor chunk too long; check xor_cut");
        for (uint32_t bits = 0; bits < (1u << l); ++bits) {
            bool parity = false;
            for (size_t i = 0; i < l; ++i) parity ^= (bits >> i) & 1;
            if (parity == x.rhs) continue;
            std::vector<sat::Lit> clause;
            clause.reserve(l);
            for (size_t i = 0; i < l; ++i)
                clause.push_back(sat::mk_lit(x.vars[i], (bits >> i) & 1));
            res_.cnf.add_clause(std::move(clause));
        }
    }

    sat::Var new_aux(const Monomial& origin) {
        const sat::Var t = res_.cnf.new_var();
        res_.mono_of_var.push_back(origin);
        return t;
    }

    Anf2CnfConfig cfg_;
    Anf2CnfResult res_;
};

}  // namespace

Anf2CnfResult anf_to_cnf(const std::vector<Polynomial>& polys, size_t num_vars,
                         const Anf2CnfConfig& cfg) {
    Converter conv(num_vars, cfg);
    for (const auto& p : polys) conv.convert(p);
    return conv.take();
}

}  // namespace bosphorus::core
