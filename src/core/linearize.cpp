#include "core/linearize.h"

#include <algorithm>
#include <unordered_set>

#include "anf/monomial_store.h"

namespace bosphorus::core {

using anf::MonoId;
using anf::Monomial;
using anf::MonomialStore;
using anf::Polynomial;

Linearization linearize(const std::vector<Polynomial>& polys) {
    Linearization lin;

    // Gather every term, sort descending deg-lex, dedup: memory stays
    // O(system terms) however large the global interned vocabulary has
    // grown (a flat vector indexed by raw MonoId would be O(max id) --
    // unbounded in a long-lived Session), and the sort compares 4-byte
    // ids, not variable vectors.
    size_t total_terms = 0;
    for (const auto& p : polys) total_terms += p.size();
    lin.col_monomial.reserve(total_terms);
    for (const auto& p : polys) {
        for (const auto& m : p.monomials()) lin.col_monomial.push_back(m);
    }

    // Descending deg-lex: highest-degree monomials in the leftmost
    // columns. When the term list is a sizeable slice of the interned
    // vocabulary, compare by the store's precomputed dense deg-lex ranks
    // (O(1) per compare); otherwise plain content compares win -- both
    // produce the identical order.
    MonomialStore& store = MonomialStore::global();
    if (lin.col_monomial.size() * 16 >= store.size()) {
        const auto ranks = store.ranks();
        std::sort(lin.col_monomial.begin(), lin.col_monomial.end(),
                  [&ranks](const Monomial& a, const Monomial& b) {
                      return (*ranks)[a.id()] > (*ranks)[b.id()];
                  });
    } else {
        std::sort(lin.col_monomial.begin(), lin.col_monomial.end(),
                  [](const Monomial& a, const Monomial& b) { return b < a; });
    }
    lin.col_monomial.erase(
        std::unique(lin.col_monomial.begin(), lin.col_monomial.end()),
        lin.col_monomial.end());

    lin.col_index.reserve(lin.col_monomial.size());
    for (size_t c = 0; c < lin.col_monomial.size(); ++c)
        lin.col_index.emplace(lin.col_monomial[c].id(),
                              static_cast<uint32_t>(c));

    lin.matrix = gf2::Matrix(polys.size(), lin.col_monomial.size());
    for (size_t r = 0; r < polys.size(); ++r) {
        for (const auto& m : polys[r].monomials())
            lin.matrix.flip(r, lin.col_index.find(m.id())->second);
    }
    return lin;
}

size_t reduce(Linearization& lin, bool use_m4r) {
    // Tiny matrices gain nothing from the 2^k table setup; keep them on
    // the plain path even when M4R is requested.
    if (!use_m4r || lin.rows() < 16 || lin.cols() < 16) {
        // Requesting pivot columns pins rref() to plain Gauss-Jordan
        // (its no-argument form auto-dispatches big matrices to M4R,
        // which would make the use_m4r=false path a silent no-op).
        std::vector<size_t> pivots;
        return lin.matrix.rref(&pivots);
    }
    return lin.matrix.rref_m4r();
}

Polynomial row_to_polynomial(const Linearization& lin, size_t row) {
    std::vector<Monomial> monos;
    for (size_t c = 0; c < lin.cols(); ++c) {
        if (lin.matrix.get(row, c)) monos.push_back(lin.col_monomial[c]);
    }
    return Polynomial(std::move(monos));
}

std::vector<Polynomial> extract_facts(const Linearization& lin) {
    std::vector<Polynomial> facts;
    for (size_t r = 0; r < lin.rows(); ++r) {
        if (lin.matrix.row_is_zero(r)) continue;
        const Polynomial p = row_to_polynomial(lin, r);
        if (p.is_one()) {
            // 1 = 0: contradiction -- dominates everything else.
            return {Polynomial::constant(true)};
        }
        const bool is_linear = p.degree() <= 1;
        const bool is_monomial_fact = p.size() == 2 &&
                                      p.has_constant_term() &&
                                      p.degree() >= 2;
        if (is_linear || is_monomial_fact) facts.push_back(p);
    }
    return facts;
}

size_t linearized_size(const std::vector<Polynomial>& polys) {
    std::unordered_set<MonoId> monos;
    for (const auto& p : polys)
        for (const auto& m : p.monomials()) monos.insert(m.id());
    return polys.size() * monos.size();
}

std::vector<size_t> subsample(const std::vector<Polynomial>& polys,
                              size_t budget, Rng& rng) {
    std::vector<size_t> order(polys.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    std::unordered_set<MonoId> monos;
    std::vector<size_t> chosen;
    for (size_t idx : order) {
        chosen.push_back(idx);
        for (const auto& m : polys[idx].monomials()) monos.insert(m.id());
        if (chosen.size() * monos.size() >= budget) break;
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

}  // namespace bosphorus::core
