#include "core/linearize.h"

#include <algorithm>
#include <unordered_set>

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;

Linearization linearize(const std::vector<Polynomial>& polys) {
    Linearization lin;

    // Collect distinct monomials.
    std::unordered_set<Monomial, anf::MonomialHash> monos;
    for (const auto& p : polys) {
        for (const auto& m : p.monomials()) monos.insert(m);
    }
    lin.col_monomial.assign(monos.begin(), monos.end());
    // Descending deg-lex: highest-degree monomials in the leftmost columns.
    std::sort(lin.col_monomial.begin(), lin.col_monomial.end(),
              [](const Monomial& a, const Monomial& b) { return b < a; });
    for (size_t c = 0; c < lin.col_monomial.size(); ++c)
        lin.col_of.emplace(lin.col_monomial[c], c);

    lin.matrix = gf2::Matrix(polys.size(), lin.col_monomial.size());
    for (size_t r = 0; r < polys.size(); ++r) {
        for (const auto& m : polys[r].monomials())
            lin.matrix.flip(r, lin.col_of.at(m));
    }
    return lin;
}

size_t reduce(Linearization& lin, bool use_m4r) {
    // Tiny matrices gain nothing from the 2^k table setup; keep them on
    // the plain path even when M4R is requested.
    if (!use_m4r || lin.rows() < 16 || lin.cols() < 16) {
        // Requesting pivot columns pins rref() to plain Gauss-Jordan
        // (its no-argument form auto-dispatches big matrices to M4R,
        // which would make the use_m4r=false path a silent no-op).
        std::vector<size_t> pivots;
        return lin.matrix.rref(&pivots);
    }
    return lin.matrix.rref_m4r();
}

Polynomial row_to_polynomial(const Linearization& lin, size_t row) {
    std::vector<Monomial> monos;
    for (size_t c = 0; c < lin.cols(); ++c) {
        if (lin.matrix.get(row, c)) monos.push_back(lin.col_monomial[c]);
    }
    return Polynomial(std::move(monos));
}

std::vector<Polynomial> extract_facts(const Linearization& lin) {
    std::vector<Polynomial> facts;
    for (size_t r = 0; r < lin.rows(); ++r) {
        if (lin.matrix.row_is_zero(r)) continue;
        const Polynomial p = row_to_polynomial(lin, r);
        if (p.is_one()) {
            // 1 = 0: contradiction -- dominates everything else.
            return {Polynomial::constant(true)};
        }
        const bool is_linear = p.degree() <= 1;
        const bool is_monomial_fact = p.size() == 2 &&
                                      p.has_constant_term() &&
                                      p.degree() >= 2;
        if (is_linear || is_monomial_fact) facts.push_back(p);
    }
    return facts;
}

size_t linearized_size(const std::vector<Polynomial>& polys) {
    std::unordered_set<Monomial, anf::MonomialHash> monos;
    for (const auto& p : polys)
        for (const auto& m : p.monomials()) monos.insert(m);
    return polys.size() * monos.size();
}

std::vector<size_t> subsample(const std::vector<Polynomial>& polys,
                              size_t budget, Rng& rng) {
    std::vector<size_t> order(polys.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);

    std::unordered_set<Monomial, anf::MonomialHash> monos;
    std::vector<size_t> chosen;
    for (size_t idx : order) {
        chosen.push_back(idx);
        for (const auto& m : polys[idx].monomials()) monos.insert(m);
        if (chosen.size() * monos.size() >= budget) break;
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

}  // namespace bosphorus::core
