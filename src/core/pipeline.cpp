#include "core/pipeline.h"

#include <algorithm>

#include "core/cnf_to_anf.h"
#include "util/timer.h"

namespace bosphorus::core {

using anf::Polynomial;

namespace {

/// Check a CNF model against the original ANF equations.
bool verify_anf_model(const std::vector<Polynomial>& polys, size_t num_vars,
                      const std::vector<sat::LBool>& model) {
    std::vector<bool> assignment(num_vars, false);
    for (size_t v = 0; v < num_vars && v < model.size(); ++v)
        assignment[v] = model[v] == sat::LBool::kTrue;
    for (const auto& p : polys) {
        if (p.evaluate(assignment)) return false;
    }
    return true;
}

}  // namespace

PipelineOutcome solve_anf_instance(const std::vector<Polynomial>& polys,
                                   size_t num_vars,
                                   const PipelineConfig& cfg) {
    Timer timer;
    PipelineOutcome out;

    std::vector<Polynomial> to_convert = polys;
    size_t cnf_anf_vars = num_vars;

    if (cfg.use_bosphorus) {
        Options opt = cfg.bosphorus;
        opt.time_budget_s =
            std::min(cfg.bosphorus_budget_s, cfg.timeout_s);
        Bosphorus tool(opt);
        BosphorusResult bres = tool.process_anf(polys, num_vars);
        out.bosphorus_seconds = bres.seconds;
        if (bres.status == sat::Result::kUnsat) {
            out.result = sat::Result::kUnsat;
            out.solved_in_loop = true;
            out.seconds = timer.seconds();
            return out;
        }
        if (bres.status == sat::Result::kSat) {
            out.result = sat::Result::kSat;
            out.solved_in_loop = true;
            out.model_verified = true;  // checked inside the loop
            out.seconds = timer.seconds();
            return out;
        }
        to_convert = std::move(bres.processed_anf);
        cnf_anf_vars = num_vars;
    }

    Anf2CnfConfig conv_cfg = cfg.use_bosphorus
                                 ? cfg.bosphorus.conv
                                 : Anf2CnfConfig{};
    conv_cfg.native_xor = false;  // back-end solvers receive plain CNF
    const Anf2CnfResult conv = anf_to_cnf(to_convert, cnf_anf_vars, conv_cfg);

    const double remaining = std::max(0.1, cfg.timeout_s - timer.seconds());
    const sat::SolveOutcome so = sat::solve_cnf(conv.cnf, cfg.solver,
                                                remaining);
    out.result = so.result;
    out.solver_stats = so.stats;
    if (so.result == sat::Result::kSat) {
        out.model_verified = verify_anf_model(polys, num_vars, so.model);
        if (!out.model_verified) out.result = sat::Result::kUnknown;
    }
    out.seconds = timer.seconds();
    return out;
}

PipelineOutcome solve_cnf_instance(const sat::Cnf& cnf,
                                   const PipelineConfig& cfg) {
    Timer timer;
    PipelineOutcome out;

    sat::Cnf work = cnf;
    if (cfg.use_bosphorus) {
        Options opt = cfg.bosphorus;
        opt.time_budget_s = std::min(cfg.bosphorus_budget_s, cfg.timeout_s);
        Bosphorus tool(opt);
        BosphorusResult bres = tool.process_cnf(cnf);
        out.bosphorus_seconds = bres.seconds;
        if (bres.status == sat::Result::kUnsat) {
            out.result = sat::Result::kUnsat;
            out.solved_in_loop = true;
            out.seconds = timer.seconds();
            return out;
        }
        if (bres.status == sat::Result::kSat) {
            out.result = sat::Result::kSat;
            out.solved_in_loop = true;
            out.model_verified = true;
            out.seconds = timer.seconds();
            return out;
        }
        // Per section III-D the tool returns the original CNF augmented
        // with the learnt facts (re-encoding CNF -> ANF -> CNF would be a
        // suboptimal description): append the learnt units/equivalences
        // over original variables.
        for (const auto& p : bres.processed_anf) {
            if (p.degree() > 1 || p.size() > 3) continue;
            const auto vars = p.variables();
            if (vars.empty()) continue;
            if (std::any_of(vars.begin(), vars.end(), [&](anf::Var v) {
                    return v >= cnf.num_vars;
                }))
                continue;
            if (vars.size() == 1 && p.size() <= 2) {
                // x (+1) = 0: a unit clause.
                const bool value = p.has_constant_term();
                work.add_clause({sat::mk_lit(vars[0], !value)});
            } else if (vars.size() == 2 && p.size() <= 3) {
                // x + y (+1) = 0: an (anti-)equivalence, two binaries.
                const bool anti = p.has_constant_term();
                work.add_clause({sat::mk_lit(vars[0], false),
                                 sat::mk_lit(vars[1], !anti)});
                work.add_clause({sat::mk_lit(vars[0], true),
                                 sat::mk_lit(vars[1], anti)});
            }
        }
    }

    const double remaining = std::max(0.1, cfg.timeout_s - timer.seconds());
    const sat::SolveOutcome so = sat::solve_cnf(work, cfg.solver, remaining);
    out.result = so.result;
    out.solver_stats = so.stats;
    if (so.result == sat::Result::kSat) {
        out.model_verified = sat::model_satisfies(cnf, so.model);
        if (!out.model_verified) out.result = sat::Result::kUnknown;
    }
    out.seconds = timer.seconds();
    return out;
}

double par2_score(const std::vector<PipelineOutcome>& outcomes,
                  double timeout_s) {
    double score = 0.0;
    for (const auto& o : outcomes) {
        if (o.result == sat::Result::kUnknown) {
            score += 2.0 * timeout_s;
        } else {
            score += o.seconds;
        }
    }
    return score;
}

}  // namespace bosphorus::core
