#include "core/pipeline.h"

#include <cstdio>

namespace bosphorus::core {

using ::bosphorus::Problem;

::bosphorus::SolveConfig to_solve_config(const PipelineConfig& cfg) {
    ::bosphorus::SolveConfig scfg;
    scfg.engine = cfg.bosphorus;
    scfg.preprocess = cfg.use_bosphorus;
    scfg.solver = cfg.solver;
    scfg.timeout_s = cfg.timeout_s;
    scfg.engine_budget_s = cfg.bosphorus_budget_s;
    return scfg;
}

PipelineOutcome to_pipeline_outcome(const ::bosphorus::SolveOutcome& out) {
    PipelineOutcome po;
    po.result = out.result;
    po.seconds = out.seconds;
    po.bosphorus_seconds = out.engine_seconds;
    po.solved_in_loop = out.solved_in_loop;
    po.model_verified = out.model_verified;
    po.solver_stats = out.solver_stats;
    return po;
}

namespace {

/// The legacy API has no error channel: a failed solve degrades to the
/// kUnknown outcome (the facade only errors on malformed input).
PipelineOutcome from_solve(::bosphorus::Result<::bosphorus::SolveOutcome> run) {
    if (!run.ok()) {
        std::fprintf(stderr, "c pipeline: solve error: %s\n",
                     run.status().to_string().c_str());
        return PipelineOutcome{};
    }
    return to_pipeline_outcome(*run);
}

}  // namespace

PipelineOutcome solve_anf_instance(const std::vector<anf::Polynomial>& polys,
                                   size_t num_vars,
                                   const PipelineConfig& cfg) {
    return from_solve(::bosphorus::solve(Problem::from_anf(polys, num_vars),
                                         to_solve_config(cfg)));
}

PipelineOutcome solve_cnf_instance(const sat::Cnf& cnf,
                                   const PipelineConfig& cfg) {
    return from_solve(
        ::bosphorus::solve(Problem::from_cnf(cnf), to_solve_config(cfg)));
}

double par2_score(const std::vector<PipelineOutcome>& outcomes,
                  double timeout_s) {
    // Delegate to the facade's scorer: only result + seconds matter.
    std::vector<::bosphorus::SolveOutcome> mapped(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        mapped[i].result = outcomes[i].result;
        mapped[i].seconds = outcomes[i].seconds;
    }
    return ::bosphorus::par2_score(mapped, timeout_s);
}

}  // namespace bosphorus::core
