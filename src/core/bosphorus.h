// Legacy entry point for the Bosphorus workflow (paper Fig. 1).
//
// `Bosphorus` is now a thin adapter over the public library facade: each
// process_* call is a one-liner building a `bosphorus::Problem` and running
// a `bosphorus::Engine` (see include/bosphorus/). New code should use the
// facade directly -- it exposes the pluggable technique registry, structured
// errors, and the interrupt/progress hooks; this header remains so existing
// callers keep compiling. `Options` is an alias of `EngineConfig`.
#pragma once

#include <cstdint>
#include <vector>

#include "bosphorus/engine.h"
#include "bosphorus/problem.h"
#include "core/anf_to_cnf.h"
#include "sat/types.h"

namespace bosphorus::core {

using Options = ::bosphorus::EngineConfig;

struct BosphorusResult {
    /// kSat: in-loop solution found; kUnsat: 1 = 0 derived; kUnknown: the
    /// loop reached a fixed point without deciding the instance.
    sat::Result status = sat::Result::kUnknown;

    /// Satisfying ANF assignment (indexed by variable) iff status == kSat.
    std::vector<bool> solution;

    /// The processed system: live equations plus variable-state equations.
    std::vector<anf::Polynomial> processed_anf;

    /// CNF of the processed system (includes all learnt facts).
    Anf2CnfResult processed_cnf;

    size_t iterations = 0;
    size_t facts_from_xl = 0;
    size_t facts_from_elimlin = 0;
    size_t facts_from_groebner = 0;
    size_t facts_from_sat = 0;
    size_t vars_fixed = 0;
    size_t vars_replaced = 0;
    double seconds = 0.0;
};

/// Map an Engine report onto the legacy result layout.
BosphorusResult to_bosphorus_result(::bosphorus::Report report);

class Bosphorus {
public:
    explicit Bosphorus(Options opt) : opt_(opt) {}
    Bosphorus() : Bosphorus(Options{}) {}

    /// Process an ANF problem (polynomial equations over num_vars vars).
    BosphorusResult process_anf(std::vector<anf::Polynomial> polys,
                                size_t num_vars);

    /// Process a CNF problem: converted to ANF first (section III-D); the
    /// returned processed CNF covers the internal ANF including learnt
    /// facts. Auxiliary clause-cutting variables live above cnf.num_vars.
    BosphorusResult process_cnf(const sat::Cnf& cnf);

    const Options& options() const { return opt_; }

private:
    Options opt_;
};

}  // namespace bosphorus::core
