// The Bosphorus workflow (paper Fig. 1 and section III-A).
//
// Takes a problem in ANF (or CNF, via cnf_to_anf) and runs the
// XL -> ElimLin -> conflict-bounded-SAT fact-learning loop until the fixed
// point where no step produces a new fact. ANF propagation runs on the
// master copy whenever learnt facts arrive. The output is a processed ANF
// and CNF augmented with everything learnt; if the in-loop SAT solver finds
// a satisfying assignment the loop exits early with the solution, and if any
// step derives 1 = 0 the instance is UNSAT.
#pragma once

#include <cstdint>
#include <vector>

#include "core/anf_system.h"
#include "core/anf_to_cnf.h"
#include "core/elimlin.h"
#include "core/groebner.h"
#include "core/xl.h"
#include "sat/types.h"
#include "util/log.h"

namespace bosphorus::core {

struct Options {
    XlConfig xl;             ///< D = 1, M = 30, deltaM = 4 (paper section IV)
    ElimLinConfig elimlin;   ///< shares M = 30
    Anf2CnfConfig conv;      ///< K = 8, L = 5

    unsigned clause_cut = 5;  ///< L' for CNF -> ANF

    /// Optional fourth technique (paper section V): degree-bounded
    /// Buchberger/F4 Groebner reduction, plugged into the same loop.
    GroebnerConfig groebner;
    bool use_groebner = false;

    // SAT-solver conflict budget schedule: C from 10,000 to 100,000 in
    // increments of 10,000 whenever the solver produced no new facts.
    int64_t sat_conflicts_start = 10'000;
    int64_t sat_conflicts_max = 100'000;
    int64_t sat_conflicts_step = 10'000;

    unsigned max_iterations = 64;   ///< safety bound on the outer loop
    double time_budget_s = 1000.0;  ///< paper: Bosphorus given <= 1000 s

    bool use_xl = true;        ///< ablation switches
    bool use_elimlin = true;
    bool use_sat = true;
    bool sat_native_xor = true;  ///< in-loop solver uses native XOR + GJE

    /// Also harvest general (non-equivalence) learnt binary clauses as
    /// quadratic ANF facts. Off by default: the paper keeps only linear
    /// facts (value and equivalence assignments).
    bool harvest_binary_clauses = false;

    uint64_t seed = 1;
    int verbosity = 0;
};

struct BosphorusResult {
    /// kSat: in-loop solution found; kUnsat: 1 = 0 derived; kUnknown: the
    /// loop reached a fixed point without deciding the instance.
    sat::Result status = sat::Result::kUnknown;

    /// Satisfying ANF assignment (indexed by variable) iff status == kSat.
    std::vector<bool> solution;

    /// The processed system: live equations plus variable-state equations.
    std::vector<anf::Polynomial> processed_anf;

    /// CNF of the processed system (includes all learnt facts).
    Anf2CnfResult processed_cnf;

    size_t iterations = 0;
    size_t facts_from_xl = 0;
    size_t facts_from_elimlin = 0;
    size_t facts_from_groebner = 0;
    size_t facts_from_sat = 0;
    size_t vars_fixed = 0;
    size_t vars_replaced = 0;
    double seconds = 0.0;
};

class Bosphorus {
public:
    explicit Bosphorus(Options opt) : opt_(opt) {}
    Bosphorus() : Bosphorus(Options{}) {}

    /// Process an ANF problem (polynomial equations over num_vars vars).
    BosphorusResult process_anf(std::vector<anf::Polynomial> polys,
                                size_t num_vars);

    /// Process a CNF problem: converted to ANF first (section III-D); the
    /// returned processed CNF covers the internal ANF including learnt
    /// facts. Auxiliary clause-cutting variables live above cnf.num_vars.
    BosphorusResult process_cnf(const sat::Cnf& cnf);

    const Options& options() const { return opt_; }

private:
    Options opt_;
};

}  // namespace bosphorus::core
