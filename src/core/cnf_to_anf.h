// CNF -> ANF conversion (paper section III-D).
//
// Each CNF variable maps to the ANF variable of the same index; each clause
// becomes the product of its negated literals (Hsiang's refutational
// encoding): clause !x1 | x2 gives (x1)(x2 + 1) = x1*x2 + x1 = 0.
//
// A clause with n positive literals expands to 2^n monomials, so clauses
// are first re-expressed with at most L' positive literals each ("clause-
// cutting length") by introducing auxiliary variables, a` la k-SAT to 3-SAT.
// Native XOR constraints convert directly to linear polynomials.
#pragma once

#include <cstddef>
#include <vector>

#include "anf/polynomial.h"
#include "sat/types.h"

namespace bosphorus::core {

struct Cnf2AnfResult {
    std::vector<anf::Polynomial> polys;
    size_t num_vars = 0;           ///< including cutting auxiliaries
    size_t num_original_vars = 0;  ///< the CNF's own variables
    size_t cut_clauses = 0;        ///< clauses that needed splitting
};

Cnf2AnfResult cnf_to_anf(const sat::Cnf& cnf, unsigned clause_cut = 5);

}  // namespace bosphorus::core
