// ElimLin -- paper section II-C.
//
// Iterates to fixed point: (1) Gauss-Jordan elimination on the linearised
// system; (2) gather the linear equations; (3) for each linear equation,
// eliminate from the system the variable that occurs in the fewest other
// equations, by substitution. All linear equations discovered along the way
// (which are consequences of the original system, as substitution preserves
// the solution set) are returned as learnt facts.
#pragma once

#include <cstddef>
#include <vector>

#include "anf/polynomial.h"
#include "runtime/cancellation.h"
#include "util/rng.h"

namespace bosphorus::core {

struct ElimLinConfig {
    unsigned m_budget = 30;  ///< M: subsample until m'*n' >= 2^M
    unsigned max_iterations = 64;
    /// Eliminate with the Method of Four Russians (see XlConfig::use_m4r).
    bool use_m4r = true;
};

struct ElimLinStats {
    size_t sampled_equations = 0;
    size_t iterations = 0;
    size_t eliminated_vars = 0;
    size_t facts = 0;
};

/// Run ElimLin to fixed point. `cancel` is polled at every outer
/// (eliminate-substitute) iteration boundary; a cancelled run returns the
/// facts learnt so far -- they are sound, substitution preserves the
/// solution set.
std::vector<anf::Polynomial> run_elimlin(
    const std::vector<anf::Polynomial>& system, const ElimLinConfig& cfg,
    Rng& rng, ElimLinStats* stats = nullptr,
    const runtime::CancellationToken& cancel = {});

}  // namespace bosphorus::core
