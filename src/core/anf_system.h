// The master ANF: a system of Boolean polynomial equations plus per-variable
// state, with ANF propagation (paper section II-A).
//
// Bosphorus keeps exactly one mutable copy of the problem. For each variable
// we track (i) its value (0/1/undetermined), (ii) its equivalence literal
// (another variable or its negation), and (iii) an occurrence list of the
// polynomials it appears in -- the occurrence-list optimisation borrowed
// from the SAT literature (paper section III-B).
//
// ANF propagation applies, to fixed point:
//   p = x            ->  x := 0
//   p = x + 1        ->  x := 1
//   p = x1...xk + 1  ->  x1 := 1, ..., xk := 1     (monomial fact)
//   p = x + y        ->  x == y                     (equivalence)
//   p = x + y + 1    ->  x == !y                    (anti-equivalence)
//   p = 1            ->  contradiction (UNSAT)
//
// Invariant: every live polynomial is *normalised* -- it mentions only
// variables that are neither fixed nor replaced by an equivalence literal.
//
// Term storage: polynomials are vectors of interned MonoIds resolved
// against the process-wide MonomialStore (anf/monomial_store.h). The store
// is append-only and shared by every AnfSystem, so the snapshot/restore
// trail below never records store state: restore() rewinds equations,
// variable states and occurrence lists exactly, while monomials interned
// inside the popped scope simply persist as cached vocabulary (ids stay
// valid, content-based ordering/hashing keeps behaviour independent of
// that leftover history).
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "anf/polynomial.h"

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

/// A variable's resolved state: either a constant, or a literal
/// (root variable + optional negation).
struct VarState {
    enum class Kind { kFree, kFixed, kReplaced } kind = Kind::kFree;
    bool value = false;  // if kFixed
    Var root = 0;        // if kReplaced: this var == root ^ flip
    bool flip = false;
};

class AnfSystem {
public:
    AnfSystem(std::vector<Polynomial> polynomials, size_t num_vars);

    size_t num_vars() const { return states_.size(); }

    /// False iff the system has derived 1 = 0.
    bool okay() const { return ok_; }

    /// Add a (learnt) polynomial equation; it is normalised against current
    /// variable states, deduplicated, and propagation is run to fixed point.
    /// Returns true if the fact was new (changed the system).
    bool add_fact(const Polynomial& p);

    /// Add a *constraint* (not a derived fact): like add_fact, but the
    /// polynomial also joins the originals checked by check_solution. This
    /// is what Session::add / Session::assume feed, so models found at a
    /// scope are verified against the scope's assumptions too.
    bool add_original(const Polynomial& p);

    // ---- snapshot / restore (the Session push/pop substrate) -------------
    /// An opaque marker of the system's state at one instant. Only valid
    /// for restore() on the AnfSystem that produced it, and only in LIFO
    /// order (restoring an older snapshot invalidates newer ones).
    struct Snapshot {
        size_t n_polys = 0;
        size_t n_originals = 0;
        size_t n_trail_states = 0;
        size_t n_trail_removed = 0;
        size_t n_trail_unstored = 0;
        bool ok = true;
    };

    /// Capture the current state. The first call enables trail recording
    /// (a small per-mutation cost); propagation must be at fixed point
    /// (it always is outside propagate()).
    Snapshot snapshot();

    /// Rewind the system to exactly the state captured by `snap`:
    /// equations, variable states, occurrence lists, dedup set, originals
    /// and okay() all return to their values at snapshot() time.
    void restore(const Snapshot& snap);

    /// Stop trail recording and drop the accumulated trails. Only valid
    /// once every outstanding snapshot has been restored or abandoned
    /// (Session calls this when its last scope pops, so depth-0 work
    /// between scopes doesn't grow the trails forever). The next
    /// snapshot() re-enables recording.
    void clear_trail();

    /// Run ANF propagation until fixed point. Returns okay().
    bool propagate();

    /// Live (normalised, non-trivial) polynomial equations.
    std::vector<Polynomial> equations() const;

    /// The full system including variable states, as polynomials:
    /// fixed vars contribute x or x+1, replaced vars contribute x+y(+1).
    /// This is the "processed ANF" the tool outputs.
    std::vector<Polynomial> to_polynomials() const;

    /// Resolve a variable through equivalence chains to its terminal state.
    VarState resolve(Var v) const;

    /// Number of fixed / replaced variables.
    size_t num_fixed() const;
    size_t num_replaced() const;

    /// True iff `assignment` (indexed by var) satisfies every original
    /// equation ever added (tracked separately from the live system).
    bool check_solution(const std::vector<bool>& assignment) const;

    /// Complete a partial assignment of the free variables into a full one
    /// (fixed/replaced variables are derived; unconstrained default false).
    std::vector<bool> extend_assignment(const std::vector<bool>& free_values) const;

private:
    /// Normalise p against variable states. Returns the normalised result.
    Polynomial normalise(const Polynomial& p) const;

    /// v := value. Returns false on contradiction.
    bool assign(Var v, bool value);

    /// a == b ^ flip. Returns false on contradiction.
    bool equate(Var a, Var b, bool flip);

    /// Append p (assumed normalised) to the store, updating occurrence
    /// lists and the dedup set; enqueues it for analysis.
    void store(Polynomial p);

    /// Re-normalise the polynomial at index i and re-queue it.
    void renormalise(size_t i);

    /// Analyse polys_[i] for propagation facts.
    bool analyse(size_t i);

    /// Queue every polynomial that mentions v for re-normalisation.
    void touch(Var v);

    std::vector<Polynomial> polys_;
    std::vector<bool> removed_;
    std::vector<std::vector<uint32_t>> occ_;  // var -> polynomial indices
    std::vector<VarState> states_;
    std::unordered_set<Polynomial, anf::PolynomialHash> dedup_;
    std::vector<uint32_t> queue_;
    std::vector<bool> queued_;
    bool ok_ = true;

    std::vector<Polynomial> originals_;  // for check_solution

    // Mutation trail for restore(), recorded once the first snapshot is
    // taken: variables whose state left kFree, polynomial slots whose
    // removed_ flag flipped, and slots erased from dedup_ (renormalised
    // away). Slots themselves are immutable once stored, so truncating
    // polys_ plus replaying these three logs is an exact rewind.
    bool trail_on_ = false;
    std::vector<Var> trail_states_;
    std::vector<uint32_t> trail_removed_;
    std::vector<uint32_t> trail_unstored_;

    void mark_removed(size_t i);
    void mark_unstored(size_t i);
};

}  // namespace bosphorus::core
