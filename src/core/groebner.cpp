#include "core/groebner.h"

#include <algorithm>
#include <unordered_set>

#include "anf/monomial_store.h"
#include "core/linearize.h"

namespace bosphorus::core {

using anf::Monomial;
using anf::MonomialStore;
using anf::Polynomial;
using anf::Var;

namespace {

/// lcm of two monomials in the Boolean ring = union of variable sets.
/// Goes through the store's memoised product, so the repeated pairings of
/// the same leading monomials across rounds are table lookups.
Monomial lcm(const Monomial& a, const Monomial& b) { return a * b; }

/// Cofactor u with u * m == target (target's vars minus m's vars),
/// computed id-to-id in the store.
Monomial cofactor(const Monomial& target, const Monomial& m) {
    return Monomial::from_id(
        MonomialStore::global().quotient(target.id(), m.id()));
}

}  // namespace

std::vector<Polynomial> run_groebner(const std::vector<Polynomial>& system,
                                     const GroebnerConfig& cfg, Rng& rng,
                                     GroebnerStats* stats,
                                     const runtime::CancellationToken& cancel) {
    if (system.empty() || cancel.cancelled()) return {};

    // Subsample like XL/ElimLin so huge systems stay affordable.
    const size_t budget = size_t{1} << std::min(cfg.m_budget, 48u);
    std::vector<Polynomial> basis;
    for (size_t idx : subsample(system, budget, rng)) {
        if (!system[idx].is_zero()) basis.push_back(system[idx]);
    }
    if (basis.empty()) return {};

    std::unordered_set<Polynomial, anf::PolynomialHash> known(basis.begin(),
                                                              basis.end());
    std::vector<Polynomial> facts;
    std::unordered_set<Polynomial, anf::PolynomialHash> fact_set;

    size_t spairs_total = 0;
    size_t round = 0;
    for (; round < cfg.rounds; ++round) {
        // Cancellation boundary: one F4 round.
        if (cancel.cancelled()) break;
        // Form S-polynomials of basis pairs under the degree bound.
        // spoly(f, g) = (lcm / lm(f)) f + (lcm / lm(g)) g cancels the
        // leading terms; a nonzero remainder after reduction is new
        // information about the ideal.
        std::vector<Polynomial> batch = basis;
        size_t pairs = 0;
        for (size_t i = 0; i < basis.size() && pairs < cfg.max_pairs; ++i) {
            const Monomial& lmi = basis[i].leading_monomial();
            for (size_t j = i + 1;
                 j < basis.size() && pairs < cfg.max_pairs; ++j) {
                const Monomial& lmj = basis[j].leading_monomial();
                const Monomial l = lcm(lmi, lmj);
                if (l.degree() > cfg.max_pair_degree) continue;
                // Buchberger's first criterion: coprime leading monomials
                // reduce to zero (in a commutative ring; in the Boolean
                // ring the field equations can still interact, but the
                // pair is overwhelmingly likely useless -- skip).
                if (l.degree() == lmi.degree() + lmj.degree()) continue;
                Polynomial s = basis[i] * cofactor(l, lmi);
                s += basis[j] * cofactor(l, lmj);
                if (s.is_zero()) continue;
                batch.push_back(std::move(s));
                ++pairs;
            }
        }
        spairs_total += pairs;
        if (pairs == 0) break;

        // F4-style simultaneous reduction: one Gauss-Jordan elimination
        // over the linearisation of basis + S-polynomials (M4R by default).
        Linearization lin = linearize(batch);
        reduce(lin, cfg.use_m4r);

        bool contradiction = false;
        std::vector<Polynomial> next_basis;
        size_t fresh = 0;
        for (size_t r = 0; r < lin.rows(); ++r) {
            if (lin.matrix.row_is_zero(r)) continue;
            Polynomial p = row_to_polynomial(lin, r);
            if (p.is_one()) {
                contradiction = true;
                break;
            }
            const bool is_linear = p.degree() <= 1;
            const bool is_mono_fact =
                p.size() == 2 && p.has_constant_term() && p.degree() >= 2;
            if ((is_linear || is_mono_fact) && fact_set.insert(p).second)
                facts.push_back(p);
            if (!known.count(p)) {
                known.insert(p);
                ++fresh;
            }
            if (next_basis.size() < cfg.max_basis)
                next_basis.push_back(std::move(p));
        }
        if (contradiction) {
            facts.clear();
            facts.push_back(Polynomial::constant(true));
            ++round;
            break;
        }
        basis = std::move(next_basis);
        if (fresh == 0) {
            ++round;
            break;  // fixed point
        }
    }

    if (stats) {
        stats->rounds_run = round;
        stats->spairs_formed = spairs_total;
        stats->basis_size = basis.size();
        stats->facts = facts.size();
    }
    return facts;
}

}  // namespace bosphorus::core
