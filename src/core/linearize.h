// Linearisation: treating each monomial as an independent GF(2) variable.
//
// Both XL and ElimLin work on the linearised system (paper sections II-B,
// II-C): each distinct monomial maps to one matrix column and each
// polynomial to one row; Gauss-Jordan elimination then runs on the gf2
// matrix substrate.
//
// Columns are ordered *descending* in degree-lexicographic order (constant
// term last), so elimination removes high-degree monomials first and the
// fully-reduced rows end with low-degree tails -- this is what makes the
// retained rows of Table I come out as linear and monomial facts.
//
// The monomial -> column map is keyed by the interned 4-byte MonoId (the
// old map hashed whole variable vectors per term), and the column sort
// runs on the store's precomputed deg-lex ranks when the column set is a
// large fraction of the interned vocabulary. All structures are sized by
// the system's own term count, never by the global store -- a long-lived
// Session can intern millions of monomials without inflating later
// linearisations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anf/polynomial.h"
#include "gf2/gf2_matrix.h"

namespace bosphorus::core {

struct Linearization {
    std::vector<anf::Monomial> col_monomial;  // column -> monomial
    /// MonoId -> column index, for the monomials that occur in the system.
    std::unordered_map<anf::MonoId, uint32_t> col_index;
    gf2::Matrix matrix;

    size_t rows() const { return matrix.rows(); }
    size_t cols() const { return matrix.cols(); }

    /// Column of a monomial; throws std::out_of_range if it does not
    /// occur in the linearised system.
    size_t col_of(const anf::Monomial& m) const {
        return col_index.at(m.id());
    }
};

/// Build the linearised matrix of a polynomial system.
Linearization linearize(const std::vector<anf::Polynomial>& polys);

/// Reduce the linearised matrix to RREF and return its rank. This is the
/// one elimination entry point the hot loops (XL, ElimLin, Groebner) go
/// through: with `use_m4r` (the default) it runs the Method of Four
/// Russians; without, plain Gauss-Jordan (genuinely plain -- the
/// auto-dispatch inside Matrix::rref is bypassed). Both produce the
/// identical reduced matrix, so the flag is a pure performance switch
/// (see XlConfig::use_m4r).
size_t reduce(Linearization& lin, bool use_m4r = true);

/// Reconstruct the polynomial encoded by a matrix row.
anf::Polynomial row_to_polynomial(const Linearization& lin, size_t row);

/// After RREF: collect the learnt facts Bosphorus retains -- rows that are
/// linear equations, and rows of the form (monomial + 1). A row equal to the
/// constant 1 (i.e. 1 = 0) is returned as the constant-one polynomial.
std::vector<anf::Polynomial> extract_facts(const Linearization& lin);

/// Linearised size m * n of a system: rows x distinct monomials. Used for
/// the paper's 2^M subsampling budget.
size_t linearized_size(const std::vector<anf::Polynomial>& polys);

/// Uniformly subsample polynomials until the linearised size m'*n' reaches
/// `budget` (~2^M), per paper sections II-B/II-C. Returns indices into
/// `polys`. If the whole system fits in the budget, all indices are
/// returned.
std::vector<size_t> subsample(const std::vector<anf::Polynomial>& polys,
                              size_t budget, Rng& rng);

}  // namespace bosphorus::core
