// ANF -> CNF conversion (paper section III-C).
//
// Every ANF variable maps to the CNF variable with the same index.
// Polynomials are first cut into chunks of at most L monomials ("XOR-cutting
// length") by introducing chaining auxiliary variables; each chunk is then
// converted either
//   (1) via the Karnaugh-map path (<= K distinct variables): enumerate the
//       chunk's truth table and emit a minimal clause cover (our
//       Quine-McCluskey minimiser substitutes for ESPRESSO), or
//   (2) via the Tseitin path: each degree >= 2 monomial gets an auxiliary
//       AND variable (kept in a bidirectional monomial <-> variable map),
//       and the resulting XOR of literals is emitted either as 2^(l-1)
//       plain clauses or as a native XOR constraint for the CMS-like solver.
//
// Auxiliary variables (both monomial and cutting) never participate in
// learnt facts; everything >= num_anf_vars is auxiliary.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "anf/polynomial.h"
#include "sat/types.h"

namespace bosphorus::core {

struct Anf2CnfConfig {
    unsigned karnaugh_k = 8;  ///< K: max vars for the Karnaugh-map path
    unsigned xor_cut = 5;     ///< L: max monomials per chunk
    bool native_xor = false;  ///< emit XOR chunks as native constraints
};

struct Anf2CnfResult {
    sat::Cnf cnf;
    size_t num_anf_vars = 0;  ///< CNF vars < this are original ANF vars

    /// Bidirectional monomial <-> auxiliary-variable map.
    std::unordered_map<anf::Monomial, sat::Var, anf::MonomialHash> var_of_mono;
    std::vector<anf::Monomial> mono_of_var;  // indexed by (var - num_anf_vars);
                                             // empty monomial = cutting aux

    /// Conversion statistics (for the Fig. 2 comparison).
    size_t karnaugh_polys = 0;
    size_t tseitin_polys = 0;
    size_t cut_chunks = 0;
};

/// Convert a polynomial system (each polynomial an equation p = 0) to CNF.
Anf2CnfResult anf_to_cnf(const std::vector<anf::Polynomial>& polys,
                         size_t num_vars, const Anf2CnfConfig& cfg = {});

}  // namespace bosphorus::core
