#include "core/anf_system.h"

#include <algorithm>
#include <cassert>

namespace bosphorus::core {

AnfSystem::AnfSystem(std::vector<Polynomial> polynomials, size_t num_vars)
    : occ_(num_vars), states_(num_vars) {
    originals_ = polynomials;
    for (auto& p : polynomials) store(std::move(p));
    propagate();
}

VarState AnfSystem::resolve(Var v) const {
    bool flip = false;
    // Follow the replacement chain; chains are short because equate()
    // always re-points to a terminal variable, but stay safe regardless.
    Var cur = v;
    for (;;) {
        const VarState& st = states_[cur];
        switch (st.kind) {
            case VarState::Kind::kFree: {
                VarState out;
                out.kind = VarState::Kind::kReplaced;
                out.root = cur;
                out.flip = flip;
                if (cur == v && !flip) out.kind = VarState::Kind::kFree;
                return out;
            }
            case VarState::Kind::kFixed: {
                VarState out;
                out.kind = VarState::Kind::kFixed;
                out.value = st.value ^ flip;
                return out;
            }
            case VarState::Kind::kReplaced:
                flip ^= st.flip;
                cur = st.root;
                break;
        }
    }
}

Polynomial AnfSystem::normalise(const Polynomial& p) const {
    Polynomial out = p;
    for (Var v : p.variables()) {
        const VarState st = resolve(v);
        if (st.kind == VarState::Kind::kFixed) {
            out = out.substitute(v, Polynomial::constant(st.value));
        } else if (st.kind == VarState::Kind::kReplaced &&
                   (st.root != v || st.flip)) {
            Polynomial repl = Polynomial::variable(st.root);
            if (st.flip) repl += Polynomial::constant(true);
            out = out.substitute(v, repl);
        }
    }
    return out;
}

void AnfSystem::store(Polynomial p) {
    p = normalise(p);
    if (p.is_zero()) return;
    if (dedup_.count(p)) return;
    dedup_.insert(p);
    const uint32_t idx = static_cast<uint32_t>(polys_.size());
    for (Var v : p.variables()) occ_[v].push_back(idx);
    polys_.push_back(std::move(p));
    removed_.push_back(false);
    queued_.push_back(true);
    queue_.push_back(idx);
}

bool AnfSystem::add_fact(const Polynomial& p) {
    if (!ok_) return false;
    const Polynomial n = normalise(p);
    if (n.is_zero()) return false;
    if (dedup_.count(n)) return false;
    store(n);
    propagate();
    return true;
}

bool AnfSystem::add_original(const Polynomial& p) {
    originals_.push_back(p);
    return add_fact(p);
}

void AnfSystem::mark_removed(size_t i) {
    removed_[i] = true;
    if (trail_on_) trail_removed_.push_back(static_cast<uint32_t>(i));
}

void AnfSystem::mark_unstored(size_t i) {
    dedup_.erase(polys_[i]);
    if (trail_on_) trail_unstored_.push_back(static_cast<uint32_t>(i));
}

void AnfSystem::clear_trail() {
    trail_on_ = false;
    trail_states_.clear();
    trail_removed_.clear();
    trail_unstored_.clear();
}

AnfSystem::Snapshot AnfSystem::snapshot() {
    trail_on_ = true;
    Snapshot s;
    s.n_polys = polys_.size();
    s.n_originals = originals_.size();
    s.n_trail_states = trail_states_.size();
    s.n_trail_removed = trail_removed_.size();
    s.n_trail_unstored = trail_unstored_.size();
    s.ok = ok_;
    return s;
}

void AnfSystem::restore(const Snapshot& snap) {
    // Undo the dedup inserts of slots created after the snapshot, then
    // replay the dedup erases that hit surviving slots. Slot contents are
    // immutable, so polys_[i] still holds exactly what was erased.
    for (size_t i = snap.n_polys; i < polys_.size(); ++i)
        dedup_.erase(polys_[i]);
    for (size_t t = snap.n_trail_unstored; t < trail_unstored_.size(); ++t) {
        const uint32_t idx = trail_unstored_[t];
        if (idx < snap.n_polys) dedup_.insert(polys_[idx]);
    }
    // Un-remove surviving slots retired after the snapshot.
    for (size_t t = snap.n_trail_removed; t < trail_removed_.size(); ++t) {
        const uint32_t idx = trail_removed_[t];
        if (idx < snap.n_polys) removed_[idx] = false;
    }
    // Free every variable fixed or replaced after the snapshot (a var's
    // state is written at most once, always leaving kFree).
    for (size_t t = snap.n_trail_states; t < trail_states_.size(); ++t)
        states_[trail_states_[t]] = VarState{};
    // Drop the truncated slots from the occurrence lists (their indices
    // were appended in increasing order, so they sit at the tails).
    for (size_t i = snap.n_polys; i < polys_.size(); ++i) {
        for (Var v : polys_[i].variables()) {
            auto& occ = occ_[v];
            while (!occ.empty() && occ.back() >= snap.n_polys) occ.pop_back();
        }
    }
    polys_.resize(snap.n_polys);
    removed_.resize(snap.n_polys);
    queued_.assign(snap.n_polys, false);
    queue_.clear();
    originals_.resize(snap.n_originals);
    trail_states_.resize(snap.n_trail_states);
    trail_removed_.resize(snap.n_trail_removed);
    trail_unstored_.resize(snap.n_trail_unstored);
    ok_ = snap.ok;
}

void AnfSystem::touch(Var v) {
    for (uint32_t idx : occ_[v]) {
        if (!removed_[idx] && !queued_[idx]) {
            queued_[idx] = true;
            queue_.push_back(idx);
        }
    }
}

bool AnfSystem::assign(Var v, bool value) {
    const VarState st = resolve(v);
    if (st.kind == VarState::Kind::kFixed) {
        if (st.value != value) ok_ = false;
        return ok_;
    }
    const Var root = (st.kind == VarState::Kind::kFree) ? v : st.root;
    const bool root_value = value ^ st.flip;
    if (trail_on_) trail_states_.push_back(root);
    states_[root].kind = VarState::Kind::kFixed;
    states_[root].value = root_value;
    touch(root);
    return true;
}

bool AnfSystem::equate(Var a, Var b, bool flip) {
    const VarState sa = resolve(a);
    const VarState sb = resolve(b);
    // Fixed cases degrade to assignments.
    if (sa.kind == VarState::Kind::kFixed && sb.kind == VarState::Kind::kFixed) {
        if ((sa.value ^ sb.value) != flip) ok_ = false;
        return ok_;
    }
    if (sa.kind == VarState::Kind::kFixed)
        return assign(b, sa.value ^ flip);
    if (sb.kind == VarState::Kind::kFixed)
        return assign(a, sb.value ^ flip);

    const Var ra = (sa.kind == VarState::Kind::kFree) ? a : sa.root;
    const Var rb = (sb.kind == VarState::Kind::kFree) ? b : sb.root;
    const bool rel = flip ^ sa.flip ^ sb.flip;  // ra == rb ^ rel
    if (ra == rb) {
        if (rel) ok_ = false;  // x == !x
        return ok_;
    }
    // Replace the variable with the shorter occurrence list.
    const Var loser = (occ_[ra].size() <= occ_[rb].size()) ? ra : rb;
    const Var keeper = (loser == ra) ? rb : ra;
    if (trail_on_) trail_states_.push_back(loser);
    states_[loser].kind = VarState::Kind::kReplaced;
    states_[loser].root = keeper;
    states_[loser].flip = rel;
    touch(loser);
    return true;
}

void AnfSystem::renormalise(size_t i) {
    const Polynomial n = normalise(polys_[i]);
    if (n == polys_[i]) return;
    mark_unstored(i);
    mark_removed(i);  // retire the old slot; store() creates a fresh one
    if (!n.is_zero()) store(n);
}

bool AnfSystem::analyse(size_t i) {
    const Polynomial& p = polys_[i];
    if (p.is_zero()) {
        mark_removed(i);
        return true;
    }
    if (p.is_one()) {
        ok_ = false;
        return false;
    }
    const size_t nm = p.size();
    const bool has_one = p.has_constant_term();

    if (nm == 1 && p.degree() == 1) {
        // p = x: x := 0.
        mark_removed(i);
        return assign(p.monomials()[0].vars()[0], false);
    }
    if (nm == 2 && has_one && p.degree() == 1) {
        // p = x + 1: x := 1.
        mark_removed(i);
        return assign(p.monomials()[1].vars()[0], true);
    }
    if (nm == 2 && has_one && p.degree() >= 2) {
        // p = x1...xk + 1: every variable := 1 (monomial fact).
        mark_removed(i);
        for (Var v : p.monomials()[1].vars()) {
            if (!assign(v, true)) return false;
        }
        return true;
    }
    if (nm == 2 && !has_one && p.degree() == 1) {
        // p = x + y: x == y.
        mark_removed(i);
        return equate(p.monomials()[0].vars()[0], p.monomials()[1].vars()[0],
                      false);
    }
    if (nm == 3 && has_one && p.degree() == 1) {
        // p = x + y + 1: x == !y.
        mark_removed(i);
        return equate(p.monomials()[1].vars()[0], p.monomials()[2].vars()[0],
                      true);
    }
    return true;
}

bool AnfSystem::propagate() {
    while (ok_ && !queue_.empty()) {
        const uint32_t i = queue_.back();
        queue_.pop_back();
        queued_[i] = false;
        if (removed_[i]) continue;
        // Normalise first (states may have changed since queueing)...
        const Polynomial n = normalise(polys_[i]);
        if (n != polys_[i]) {
            mark_unstored(i);
            mark_removed(i);
            if (!n.is_zero()) store(n);
            continue;  // the fresh copy is queued
        }
        // ...then analyse for facts.
        if (!analyse(i)) break;
    }
    return ok_;
}

std::vector<Polynomial> AnfSystem::equations() const {
    std::vector<Polynomial> out;
    for (size_t i = 0; i < polys_.size(); ++i) {
        if (!removed_[i]) out.push_back(polys_[i]);
    }
    return out;
}

std::vector<Polynomial> AnfSystem::to_polynomials() const {
    std::vector<Polynomial> out = equations();
    for (Var v = 0; v < states_.size(); ++v) {
        const VarState& st = states_[v];
        if (st.kind == VarState::Kind::kFixed) {
            // x (+1): x = st.value.
            Polynomial p = Polynomial::variable(v);
            if (st.value) p += Polynomial::constant(true);
            out.push_back(std::move(p));
        } else if (st.kind == VarState::Kind::kReplaced) {
            const VarState r = resolve(v);
            if (r.kind == VarState::Kind::kFixed) {
                Polynomial p = Polynomial::variable(v);
                if (r.value) p += Polynomial::constant(true);
                out.push_back(std::move(p));
            } else {
                Polynomial p =
                    Polynomial::variable(v) + Polynomial::variable(r.root);
                if (r.flip) p += Polynomial::constant(true);
                out.push_back(std::move(p));
            }
        }
    }
    return out;
}

size_t AnfSystem::num_fixed() const {
    size_t n = 0;
    for (Var v = 0; v < states_.size(); ++v) {
        if (resolve(v).kind == VarState::Kind::kFixed) ++n;
    }
    return n;
}

size_t AnfSystem::num_replaced() const {
    size_t n = 0;
    for (Var v = 0; v < states_.size(); ++v) {
        const VarState st = resolve(v);
        if (st.kind == VarState::Kind::kReplaced && (st.root != v || st.flip))
            ++n;
    }
    return n;
}

bool AnfSystem::check_solution(const std::vector<bool>& assignment) const {
    for (const auto& p : originals_) {
        if (p.evaluate(assignment)) return false;  // p must equal 0
    }
    return true;
}

std::vector<bool> AnfSystem::extend_assignment(
    const std::vector<bool>& free_values) const {
    std::vector<bool> full(states_.size(), false);
    for (Var v = 0; v < states_.size(); ++v) {
        const VarState st = resolve(v);
        if (st.kind == VarState::Kind::kFixed) {
            full[v] = st.value;
        } else if (st.kind == VarState::Kind::kFree) {
            full[v] = v < free_values.size() ? free_values[v] : false;
        } else {
            const bool root_val =
                st.root < free_values.size() ? free_values[st.root] : false;
            full[v] = root_val ^ st.flip;
        }
    }
    return full;
}

}  // namespace bosphorus::core
