#include "core/xl.h"

#include <algorithm>
#include <unordered_set>

#include "core/linearize.h"

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

namespace {

/// Enumerate monomials of degree 1..max_degree over `vars`, in ascending
/// deg-lex order, invoking fn(monomial). Stops early when fn returns false.
template <typename Fn>
void for_each_multiplier(const std::vector<Var>& vars, unsigned max_degree,
                         Fn&& fn) {
    // Degree 1.
    if (max_degree >= 1) {
        for (Var v : vars) {
            if (!fn(Monomial(v))) return;
        }
    }
    // Degree 2.
    if (max_degree >= 2) {
        for (size_t i = 0; i < vars.size(); ++i) {
            for (size_t j = i + 1; j < vars.size(); ++j) {
                if (!fn(Monomial(std::vector<Var>{vars[i], vars[j]}))) return;
            }
        }
    }
    // Degree 3 (XL beyond D=3 explodes; the paper uses D=1).
    if (max_degree >= 3) {
        for (size_t i = 0; i < vars.size(); ++i)
            for (size_t j = i + 1; j < vars.size(); ++j)
                for (size_t k = j + 1; k < vars.size(); ++k) {
                    if (!fn(Monomial(std::vector<Var>{vars[i], vars[j],
                                                      vars[k]})))
                        return;
                }
    }
}

}  // namespace

std::vector<Polynomial> run_xl(const std::vector<Polynomial>& system,
                               const XlConfig& cfg, Rng& rng, XlStats* stats,
                               const runtime::CancellationToken& cancel) {
    if (system.empty() || cancel.cancelled()) return {};

    const size_t sample_budget = size_t{1} << std::min(cfg.m_budget, 48u);
    const size_t expand_budget = size_t{1}
                                 << std::min(cfg.m_budget + cfg.delta_m, 52u);

    // 1. Uniform subsample to ~2^M linearised size.
    const std::vector<size_t> chosen = subsample(system, sample_budget, rng);
    std::vector<Polynomial> sampled;
    sampled.reserve(chosen.size());
    for (size_t idx : chosen) sampled.push_back(system[idx]);
    // Ascending degree order for the expansion pass.
    std::stable_sort(sampled.begin(), sampled.end(),
                     [](const Polynomial& a, const Polynomial& b) {
                         return a.degree() < b.degree();
                     });

    // Variables of the sampled subsystem are the multiplier alphabet.
    std::vector<Var> vars;
    {
        std::unordered_set<Var> seen;
        for (const auto& p : sampled)
            for (Var v : p.variables()) seen.insert(v);
        vars.assign(seen.begin(), seen.end());
        std::sort(vars.begin(), vars.end());
    }

    // 2. Incremental expansion, capped at ~2^(M + deltaM) bits.
    std::vector<Polynomial> expanded = sampled;
    std::unordered_set<Monomial, anf::MonomialHash> monos;
    for (const auto& p : expanded)
        for (const auto& m : p.monomials()) monos.insert(m);

    auto size_ok = [&]() {
        return expanded.size() * std::max<size_t>(monos.size(), 1) <
               expand_budget;
    };

    for (const auto& p : sampled) {
        if (!size_ok()) break;
        // Cancellation boundary: one source polynomial's multiplier batch.
        if (cancel.cancelled()) return {};
        bool keep_going = true;
        for_each_multiplier(vars, cfg.degree, [&](const Monomial& mul) {
            Polynomial prod = p * mul;
            if (!prod.is_zero()) {
                for (const auto& m : prod.monomials()) monos.insert(m);
                expanded.push_back(std::move(prod));
            }
            keep_going = size_ok();
            return keep_going;
        });
        if (!keep_going) break;
    }

    // 3. Gauss-Jordan elimination on the linearisation (M4R by default).
    // No cancellation check after the elimination: once the expensive
    // reduction has completed, extracting its facts is cheap and they are
    // sound -- a cancelled run keeps them ("facts gathered so far").
    if (cancel.cancelled()) return {};
    Linearization lin = linearize(expanded);
    const size_t rank = reduce(lin, cfg.use_m4r);

    std::vector<Polynomial> facts = extract_facts(lin);

    if (stats) {
        stats->sampled_equations = sampled.size();
        stats->expanded_rows = expanded.size();
        stats->columns = lin.cols();
        stats->rank = rank;
        stats->facts = facts.size();
    }
    return facts;
}

}  // namespace bosphorus::core
