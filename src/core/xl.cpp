#include "core/xl.h"

#include <algorithm>
#include <unordered_set>

#include "anf/monomial_store.h"
#include "core/linearize.h"

namespace bosphorus::core {

using anf::MonoId;
using anf::Monomial;
using anf::Polynomial;
using anf::Var;

namespace {

/// Multiplier monomials of degree 1..max_degree over `vars`, in ascending
/// deg-lex order, enumerated LAZILY: a multiplier is only constructed
/// (and thus interned into the process-global store) the first time some
/// source polynomial actually reaches it, so a budget that stops the
/// expansion after a few products never pays for -- or permanently
/// interns -- the O(|vars|^degree) tail. Multipliers already produced are
/// cached as ids and replayed for free for the later source polynomials.
class Multipliers {
public:
    Multipliers(const std::vector<Var>& vars, unsigned max_degree)
        : vars_(vars), max_degree_(std::min(max_degree, 3u)) {}

    /// Invoke fn(multiplier) in ascending deg-lex order until fn returns
    /// false or the multipliers run out.
    template <typename Fn>
    void for_each(Fn&& fn) {
        for (size_t i = 0;; ++i) {
            if (i == cache_.size() && !advance()) return;
            if (!fn(cache_[i])) return;
        }
    }

private:
    /// Generate the next multiplier into the cache. False when exhausted.
    bool advance() {
        const size_t n = vars_.size();
        while (deg_ <= max_degree_) {
            switch (deg_) {
                case 1:
                    if (i_ < n) {
                        cache_.push_back(Monomial(vars_[i_++]));
                        return true;
                    }
                    break;
                case 2:
                    if (i_ + 1 < n) {
                        cache_.push_back(Monomial(
                            std::vector<Var>{vars_[i_], vars_[j_]}));
                        if (++j_ >= n) j_ = ++i_ + 1;
                        return true;
                    }
                    break;
                case 3:  // XL beyond D=3 explodes; the paper uses D=1.
                    if (i_ + 2 < n) {
                        cache_.push_back(Monomial(std::vector<Var>{
                            vars_[i_], vars_[j_], vars_[k_]}));
                        if (++k_ >= n) {
                            if (++j_ + 1 >= n) j_ = ++i_ + 1;
                            k_ = j_ + 1;
                        }
                        return true;
                    }
                    break;
            }
            ++deg_;
            i_ = 0;
            j_ = 1;
            k_ = 2;
        }
        return false;
    }

    const std::vector<Var>& vars_;
    unsigned max_degree_;
    std::vector<Monomial> cache_;  // interned ids, in generation order
    unsigned deg_ = 1;
    size_t i_ = 0, j_ = 1, k_ = 2;
};

}  // namespace

std::vector<Polynomial> run_xl(const std::vector<Polynomial>& system,
                               const XlConfig& cfg, Rng& rng, XlStats* stats,
                               const runtime::CancellationToken& cancel) {
    if (system.empty() || cancel.cancelled()) return {};

    const size_t sample_budget = size_t{1} << std::min(cfg.m_budget, 48u);
    const size_t expand_budget = size_t{1}
                                 << std::min(cfg.m_budget + cfg.delta_m, 52u);

    // 1. Uniform subsample to ~2^M linearised size.
    const std::vector<size_t> chosen = subsample(system, sample_budget, rng);
    std::vector<Polynomial> sampled;
    sampled.reserve(chosen.size());
    for (size_t idx : chosen) sampled.push_back(system[idx]);
    // Ascending degree order for the expansion pass.
    std::stable_sort(sampled.begin(), sampled.end(),
                     [](const Polynomial& a, const Polynomial& b) {
                         return a.degree() < b.degree();
                     });

    // Variables of the sampled subsystem are the multiplier alphabet.
    std::vector<Var> vars;
    {
        std::unordered_set<Var> seen;
        for (const auto& p : sampled)
            for (Var v : p.variables()) seen.insert(v);
        vars.assign(seen.begin(), seen.end());
        std::sort(vars.begin(), vars.end());
    }

    // Multipliers are enumerated lazily (ascending deg-lex, as before)
    // and the ones actually reached are cached as interned ids, shared
    // across every source polynomial.
    Multipliers muls(vars, cfg.degree);

    // 2. Incremental expansion, capped at ~2^(M + deltaM) bits. Distinct
    // monomials are tracked as a set of 4-byte ids (the old set hashed a
    // variable vector per insert).
    std::vector<Polynomial> expanded = sampled;
    std::unordered_set<MonoId> monos;
    for (const auto& p : expanded)
        for (const auto& m : p.monomials()) monos.insert(m.id());

    auto size_ok = [&]() {
        return expanded.size() * std::max<size_t>(monos.size(), 1) <
               expand_budget;
    };

    for (const auto& p : sampled) {
        if (!size_ok()) break;
        // Cancellation boundary: one source polynomial's multiplier batch.
        if (cancel.cancelled()) return {};
        bool keep_going = true;
        muls.for_each([&](const Monomial& mul) {
            Polynomial prod = p * mul;
            if (!prod.is_zero()) {
                for (const auto& m : prod.monomials()) monos.insert(m.id());
                expanded.push_back(std::move(prod));
            }
            keep_going = size_ok();
            return keep_going;
        });
        if (!keep_going) break;
    }

    // 3. Gauss-Jordan elimination on the linearisation (M4R by default).
    // No cancellation check after the elimination: once the expensive
    // reduction has completed, extracting its facts is cheap and they are
    // sound -- a cancelled run keeps them ("facts gathered so far").
    if (cancel.cancelled()) return {};
    Linearization lin = linearize(expanded);
    const size_t rank = reduce(lin, cfg.use_m4r);

    std::vector<Polynomial> facts = extract_facts(lin);

    if (stats) {
        stats->sampled_equations = sampled.size();
        stats->expanded_rows = expanded.size();
        stats->columns = lin.cols();
        stats->rank = rank;
        stats->facts = facts.size();
    }
    return facts;
}

}  // namespace bosphorus::core
