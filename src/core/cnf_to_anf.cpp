#include "core/cnf_to_anf.h"

#include <algorithm>

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;

namespace {

/// Product of negated literals: positive literal x contributes (x + 1),
/// negative literal !x contributes x.
Polynomial clause_to_polynomial(const std::vector<sat::Lit>& clause) {
    Polynomial prod = Polynomial::constant(true);
    for (sat::Lit l : clause) {
        Polynomial factor = Polynomial::variable(l.var());
        if (!l.sign()) factor += Polynomial::constant(true);
        prod = prod * factor;
    }
    return prod;
}

size_t count_positive(const std::vector<sat::Lit>& clause) {
    size_t n = 0;
    for (sat::Lit l : clause)
        if (!l.sign()) ++n;
    return n;
}

}  // namespace

Cnf2AnfResult cnf_to_anf(const sat::Cnf& cnf, unsigned clause_cut) {
    Cnf2AnfResult res;
    res.num_original_vars = cnf.num_vars;
    res.num_vars = cnf.num_vars;
    const size_t max_pos = std::max<unsigned>(clause_cut, 1);

    std::vector<std::vector<sat::Lit>> work = cnf.clauses;
    for (size_t i = 0; i < work.size(); ++i) {
        std::vector<sat::Lit> clause = work[i];
        if (count_positive(clause) > max_pos) {
            ++res.cut_clauses;
            // Keep literals until we have used max_pos - 1 positives, then
            // bridge the remainder with a fresh auxiliary variable:
            //   (head | t)  and  (!t | tail...)
            std::vector<sat::Lit> head, tail;
            size_t pos_used = 0;
            for (sat::Lit l : clause) {
                if (!l.sign() && pos_used >= max_pos - 1) {
                    tail.push_back(l);
                } else {
                    if (!l.sign()) ++pos_used;
                    head.push_back(l);
                }
            }
            const sat::Var t = static_cast<sat::Var>(res.num_vars++);
            head.push_back(sat::mk_lit(t, false));
            tail.push_back(sat::mk_lit(t, true));
            res.polys.push_back(clause_to_polynomial(head));
            work.push_back(std::move(tail));  // may need further cutting
            continue;
        }
        res.polys.push_back(clause_to_polynomial(clause));
    }

    // Native XOR constraints: directly linear polynomials.
    for (const auto& x : cnf.xors) {
        std::vector<Monomial> monos;
        for (sat::Var v : x.vars) monos.emplace_back(v);
        if (x.rhs) monos.emplace_back();  // constant 1
        res.polys.emplace_back(std::move(monos));
    }
    return res;
}

}  // namespace bosphorus::core
