#include "core/bosphorus.h"

#include <algorithm>
#include <map>

#include "core/cnf_to_anf.h"
#include "sat/solver.h"
#include "util/timer.h"

namespace bosphorus::core {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

namespace {

/// Learnt binary clauses pair up into equivalences: (a|b) & (!a|!b) means
/// a == !b, and (a|!b) & (!a|b) means a == b. Returns linear polynomials.
std::vector<Polynomial> equivalences_from_binaries(
    const std::vector<std::array<sat::Lit, 2>>& binaries, size_t num_anf_vars) {
    // Key: unordered variable pair; value: bitmask of seen sign patterns.
    std::map<std::pair<sat::Var, sat::Var>, unsigned> seen;
    for (const auto& b : binaries) {
        sat::Lit l0 = b[0], l1 = b[1];
        if (l0.var() > l1.var()) std::swap(l0, l1);
        if (l0.var() >= num_anf_vars || l1.var() >= num_anf_vars) continue;
        if (l0.var() == l1.var()) continue;
        const unsigned pattern =
            (l0.sign() ? 1u : 0u) | (l1.sign() ? 2u : 0u);
        seen[{l0.var(), l1.var()}] |= 1u << pattern;
    }
    std::vector<Polynomial> out;
    for (const auto& [vars, mask] : seen) {
        const auto [a, b] = vars;
        // patterns: 0 = (a|b), 1 = (!a|b), 2 = (a|!b), 3 = (!a|!b)
        const bool anti = (mask & (1u << 0)) && (mask & (1u << 3));
        const bool equal = (mask & (1u << 1)) && (mask & (1u << 2));
        if (anti) {
            // a + b + 1 = 0
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b) +
                          Polynomial::constant(true));
        }
        if (equal) {
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b));
        }
    }
    return out;
}

}  // namespace

BosphorusResult Bosphorus::process_anf(std::vector<Polynomial> polys,
                                       size_t num_vars) {
    Timer timer;
    Log log{opt_.verbosity};
    Rng rng(opt_.seed);
    BosphorusResult res;

    AnfSystem sys(std::move(polys), num_vars);

    int64_t conflict_budget = opt_.sat_conflicts_start;

    auto out_of_time = [&]() { return timer.seconds() > opt_.time_budget_s; };

    for (res.iterations = 0;
         sys.okay() && res.iterations < opt_.max_iterations && !out_of_time();
         ++res.iterations) {
        bool changed = false;

        // ---- XL --------------------------------------------------------
        if (opt_.use_xl && sys.okay() && !out_of_time()) {
            XlStats xs;
            const auto facts = run_xl(sys.equations(), opt_.xl, rng, &xs);
            size_t fresh = 0;
            for (const auto& f : facts) {
                if (sys.add_fact(f)) ++fresh;
                if (!sys.okay()) break;
            }
            res.facts_from_xl += fresh;
            changed |= fresh > 0;
            log.info(2, "iter %zu XL: %zu rows, %zu cols, %zu facts (%zu new)",
                     res.iterations, xs.expanded_rows, xs.columns, facts.size(),
                     fresh);
        }

        // ---- ElimLin ----------------------------------------------------
        if (opt_.use_elimlin && sys.okay() && !out_of_time()) {
            ElimLinStats es;
            const auto facts =
                run_elimlin(sys.equations(), opt_.elimlin, rng, &es);
            size_t fresh = 0;
            for (const auto& f : facts) {
                if (sys.add_fact(f)) ++fresh;
                if (!sys.okay()) break;
            }
            res.facts_from_elimlin += fresh;
            changed |= fresh > 0;
            log.info(2, "iter %zu ElimLin: %zu iters, %zu facts (%zu new)",
                     res.iterations, es.iterations, facts.size(), fresh);
        }

        // ---- optional Groebner (Buchberger/F4) step -----------------------
        if (opt_.use_groebner && sys.okay() && !out_of_time()) {
            GroebnerStats gs;
            const auto facts =
                run_groebner(sys.equations(), opt_.groebner, rng, &gs);
            size_t fresh = 0;
            for (const auto& f : facts) {
                if (sys.add_fact(f)) ++fresh;
                if (!sys.okay()) break;
            }
            res.facts_from_groebner += fresh;
            changed |= fresh > 0;
            log.info(2, "iter %zu Groebner: %zu spairs, %zu facts (%zu new)",
                     res.iterations, gs.spairs_formed, facts.size(), fresh);
        }

        // ---- conflict-bounded SAT ---------------------------------------
        if (opt_.use_sat && sys.okay() && !out_of_time()) {
            Anf2CnfConfig conv_cfg = opt_.conv;
            conv_cfg.native_xor = opt_.sat_native_xor;
            const Anf2CnfResult conv =
                anf_to_cnf(sys.to_polynomials(), num_vars, conv_cfg);

            sat::Solver::Config scfg;
            scfg.enable_xor = opt_.sat_native_xor;
            sat::Solver solver(scfg);
            const double remaining =
                std::max(0.1, opt_.time_budget_s - timer.seconds());
            sat::Result r = sat::Result::kUnsat;
            if (solver.load(conv.cnf)) {
                r = solver.solve(conflict_budget, remaining);
            }

            if (r == sat::Result::kUnsat || !solver.okay()) {
                // The learnt fact is the contradictory equation 1 = 0.
                sys.add_fact(Polynomial::constant(true));
                ++res.facts_from_sat;
                changed = true;
            } else if (r == sat::Result::kSat) {
                // A full solution: store it and exit the loop. It is not
                // used to simplify the ANF (it may not be unique).
                std::vector<bool> assignment(num_vars, false);
                for (Var v = 0; v < num_vars; ++v)
                    assignment[v] = solver.model()[v] == sat::LBool::kTrue;
                if (sys.check_solution(assignment)) {
                    res.status = sat::Result::kSat;
                    res.solution = std::move(assignment);
                }
                break;
            } else {
                // Undecided within the conflict budget: extract linear
                // equations from the learnt unit and binary clauses.
                size_t fresh = 0;
                for (const sat::Lit u : solver.learnt_units()) {
                    if (u.var() >= conv.num_anf_vars) continue;
                    // u true: var = !sign  ->  polynomial x (+ 1).
                    Polynomial f = Polynomial::variable(u.var());
                    if (!u.sign()) f += Polynomial::constant(true);
                    if (sys.add_fact(f)) ++fresh;
                    if (!sys.okay()) break;
                }
                for (const auto& eq : equivalences_from_binaries(
                         solver.learnt_binaries(), conv.num_anf_vars)) {
                    if (sys.add_fact(eq)) ++fresh;
                    if (!sys.okay()) break;
                }
                if (opt_.harvest_binary_clauses) {
                    for (const auto& b : solver.learnt_binaries()) {
                        if (b[0].var() >= conv.num_anf_vars ||
                            b[1].var() >= conv.num_anf_vars)
                            continue;
                        // (l0 | l1) = 0 in ANF: product of negated literals.
                        Polynomial f0 = Polynomial::variable(b[0].var());
                        if (!b[0].sign()) f0 += Polynomial::constant(true);
                        Polynomial f1 = Polynomial::variable(b[1].var());
                        if (!b[1].sign()) f1 += Polynomial::constant(true);
                        if (sys.add_fact(f0 * f1)) ++fresh;
                        if (!sys.okay()) break;
                    }
                }
                res.facts_from_sat += fresh;
                if (fresh > 0) {
                    changed = true;
                } else {
                    // No new facts: raise the conflict budget (section IV).
                    conflict_budget = std::min(
                        opt_.sat_conflicts_max,
                        conflict_budget + opt_.sat_conflicts_step);
                }
                log.info(2, "iter %zu SAT: budget %lld, %zu new facts",
                         res.iterations,
                         static_cast<long long>(conflict_budget), fresh);
            }
        }

        if (!changed) break;  // fixed point
    }

    if (!sys.okay()) res.status = sat::Result::kUnsat;

    res.processed_anf = sys.to_polynomials();
    Anf2CnfConfig out_cfg = opt_.conv;
    out_cfg.native_xor = false;  // the emitted CNF is plain DIMACS-compatible
    res.processed_cnf = anf_to_cnf(res.processed_anf, num_vars, out_cfg);
    res.vars_fixed = sys.num_fixed();
    res.vars_replaced = sys.num_replaced();
    res.seconds = timer.seconds();
    log.info(1,
             "bosphorus: %zu iterations, facts xl=%zu elimlin=%zu sat=%zu, "
             "fixed=%zu replaced=%zu, %.2fs",
             res.iterations, res.facts_from_xl, res.facts_from_elimlin,
             res.facts_from_sat, res.vars_fixed, res.vars_replaced,
             res.seconds);
    return res;
}

BosphorusResult Bosphorus::process_cnf(const sat::Cnf& cnf) {
    const Cnf2AnfResult conv = cnf_to_anf(cnf, opt_.clause_cut);
    return process_anf(conv.polys, conv.num_vars);
}

}  // namespace bosphorus::core
