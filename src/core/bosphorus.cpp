#include "core/bosphorus.h"

#include <cstdio>
#include <utility>

namespace bosphorus::core {

BosphorusResult to_bosphorus_result(::bosphorus::Report report) {
    BosphorusResult res;
    res.status = report.verdict;
    res.solution = std::move(report.solution);
    res.processed_anf = std::move(report.processed_anf);
    res.processed_cnf = std::move(report.processed_cnf);
    res.iterations = report.iterations;
    res.facts_from_xl = report.facts_from("xl");
    res.facts_from_elimlin = report.facts_from("elimlin");
    res.facts_from_groebner = report.facts_from("groebner");
    res.facts_from_sat = report.facts_from("sat");
    res.vars_fixed = report.vars_fixed;
    res.vars_replaced = report.vars_replaced;
    res.seconds = report.seconds;
    return res;
}

namespace {

/// The legacy API has no error channel: a failed run degrades to the
/// kUnknown verdict (built-in techniques never fail, so this is latent).
BosphorusResult from_run(::bosphorus::Result<::bosphorus::Report> run) {
    if (!run.ok()) {
        std::fprintf(stderr, "c bosphorus: engine error: %s\n",
                     run.status().to_string().c_str());
        return BosphorusResult{};
    }
    return to_bosphorus_result(std::move(*run));
}

}  // namespace

BosphorusResult Bosphorus::process_anf(std::vector<anf::Polynomial> polys,
                                       size_t num_vars) {
    return from_run(::bosphorus::Engine(opt_).run(
        ::bosphorus::Problem::from_anf(std::move(polys), num_vars)));
}

BosphorusResult Bosphorus::process_cnf(const sat::Cnf& cnf) {
    return from_run(
        ::bosphorus::Engine(opt_).run(::bosphorus::Problem::from_cnf(cnf)));
}

}  // namespace bosphorus::core
