// Two-level logic minimisation (the "Karnaugh map" path of Bosphorus).
//
// This module substitutes for ESPRESSO. Bosphorus converts a K-variate
// polynomial to CNF by covering the polynomial's ON-set (assignments
// violating the equation p = 0) with prime implicants; each implicant cube
// becomes one CNF clause via De Morgan. ESPRESSO is a heuristic cover; here
// we compute exact prime implicants (Quine-McCluskey) and cover with
// essential primes plus a greedy completion, which at the K <= 8 sizes
// Bosphorus uses is at or very near the optimum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bosphorus::minimize {

/// A cube over k Boolean variables: variable i is cared about iff bit i of
/// `mask` is set, and then must equal bit i of `value`. Bits of `value`
/// outside `mask` are zero.
struct Implicant {
    uint32_t mask = 0;
    uint32_t value = 0;

    bool covers(uint32_t minterm) const { return (minterm & mask) == value; }
    bool operator==(const Implicant& o) const {
        return mask == o.mask && value == o.value;
    }
    bool operator<(const Implicant& o) const {
        return mask != o.mask ? mask < o.mask : value < o.value;
    }
};

/// All prime implicants of the function whose ON-set is `on_set`
/// (on_set.size() == 2^k, k <= 20 but intended for k <= 10).
std::vector<Implicant> prime_implicants(const std::vector<bool>& on_set,
                                        unsigned k);

/// Minimal (essential + greedy) cover of the ON-set by prime implicants.
std::vector<Implicant> minimize_sop(const std::vector<bool>& on_set,
                                    unsigned k);

/// Each selected implicant of the ON-set of p, negated, yields one CNF
/// clause over the k local variables. Literals returned as (var, negated)
/// where `negated` refers to the literal in the *clause*. Example: cube
/// {x0=1, x2=0} forbidden -> clause (!x0 | x2) -> {(0,true),(2,false)}.
struct LocalClause {
    std::vector<std::pair<unsigned, bool>> literals;  // (var index, negated?)
};

std::vector<LocalClause> cover_to_clauses(const std::vector<Implicant>& cover,
                                          unsigned k);

}  // namespace bosphorus::minimize
