#include "minimize/quine_mccluskey.h"

#include <algorithm>
#include <bit>
#include <set>

namespace bosphorus::minimize {

std::vector<Implicant> prime_implicants(const std::vector<bool>& on_set,
                                        unsigned k) {
    const uint32_t full_mask = (k >= 32) ? 0xFFFFFFFFu : ((1u << k) - 1);

    // Level 0: one full cube per minterm.
    std::set<Implicant> current;
    for (uint32_t m = 0; m < on_set.size(); ++m) {
        if (on_set[m]) current.insert(Implicant{full_mask, m});
    }

    std::vector<Implicant> primes;
    while (!current.empty()) {
        std::set<Implicant> next;
        std::set<Implicant> merged;
        // Two cubes combine iff they share a mask and differ in exactly one
        // cared bit; the combined cube drops that bit.
        std::vector<Implicant> cur(current.begin(), current.end());
        for (size_t i = 0; i < cur.size(); ++i) {
            for (size_t j = i + 1; j < cur.size(); ++j) {
                if (cur[i].mask != cur[j].mask) continue;
                const uint32_t diff = cur[i].value ^ cur[j].value;
                if (std::popcount(diff) != 1) continue;
                next.insert(Implicant{cur[i].mask & ~diff,
                                      cur[i].value & ~diff});
                merged.insert(cur[i]);
                merged.insert(cur[j]);
            }
        }
        for (const auto& c : cur) {
            if (!merged.count(c)) primes.push_back(c);
        }
        current = std::move(next);
    }
    std::sort(primes.begin(), primes.end());
    return primes;
}

std::vector<Implicant> minimize_sop(const std::vector<bool>& on_set,
                                    unsigned k) {
    std::vector<uint32_t> minterms;
    for (uint32_t m = 0; m < on_set.size(); ++m)
        if (on_set[m]) minterms.push_back(m);
    if (minterms.empty()) return {};

    std::vector<Implicant> primes = prime_implicants(on_set, k);

    // Coverage table: which primes cover which minterms.
    std::vector<std::vector<size_t>> covering(minterms.size());
    for (size_t p = 0; p < primes.size(); ++p) {
        for (size_t m = 0; m < minterms.size(); ++m) {
            if (primes[p].covers(minterms[m])) covering[m].push_back(p);
        }
    }

    std::vector<bool> covered(minterms.size(), false);
    std::vector<bool> chosen(primes.size(), false);
    std::vector<Implicant> cover;

    // Essential primes: sole cover of some minterm.
    for (size_t m = 0; m < minterms.size(); ++m) {
        if (covering[m].size() == 1 && !chosen[covering[m][0]]) {
            const size_t p = covering[m][0];
            chosen[p] = true;
            cover.push_back(primes[p]);
        }
    }
    for (size_t m = 0; m < minterms.size(); ++m) {
        for (size_t p : covering[m]) {
            if (chosen[p]) { covered[m] = true; break; }
        }
    }

    // Greedy completion: repeatedly take the prime covering the most
    // still-uncovered minterms (ties broken toward larger cubes, i.e.
    // smaller mask popcount => shorter clause).
    for (;;) {
        size_t best = primes.size();
        size_t best_gain = 0;
        int best_width = 33;
        for (size_t p = 0; p < primes.size(); ++p) {
            if (chosen[p]) continue;
            size_t gain = 0;
            for (size_t m = 0; m < minterms.size(); ++m) {
                if (!covered[m] && primes[p].covers(minterms[m])) ++gain;
            }
            const int width = std::popcount(primes[p].mask);
            if (gain > best_gain ||
                (gain == best_gain && gain > 0 && width < best_width)) {
                best = p;
                best_gain = gain;
                best_width = width;
            }
        }
        if (best == primes.size() || best_gain == 0) break;
        chosen[best] = true;
        cover.push_back(primes[best]);
        for (size_t m = 0; m < minterms.size(); ++m) {
            if (primes[best].covers(minterms[m])) covered[m] = true;
        }
    }
    std::sort(cover.begin(), cover.end());
    return cover;
}

std::vector<LocalClause> cover_to_clauses(const std::vector<Implicant>& cover,
                                          unsigned k) {
    std::vector<LocalClause> clauses;
    clauses.reserve(cover.size());
    for (const auto& imp : cover) {
        LocalClause cl;
        for (unsigned v = 0; v < k; ++v) {
            if (!(imp.mask & (1u << v))) continue;
            const bool var_is_one_in_cube = (imp.value >> v) & 1;
            // Forbidding the cube: if the cube requires v = 1, the clause
            // contains the negated literal !v, and vice versa.
            cl.literals.emplace_back(v, var_is_one_in_cube);
        }
        clauses.push_back(std::move(cl));
    }
    return clauses;
}

}  // namespace bosphorus::minimize
