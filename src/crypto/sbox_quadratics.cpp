#include "crypto/sbox_quadratics.h"

#include "gf2/gf2_matrix.h"

namespace bosphorus::crypto {

namespace {

/// Build the ordered monomial basis of degree <= 2 over 2e abstract bits.
std::vector<TemplateMonomial> monomial_basis(unsigned e) {
    std::vector<TemplateMonomial> basis;
    basis.push_back({});  // constant 1
    for (uint8_t s = 0; s <= 1; ++s)
        for (uint8_t b = 0; b < e; ++b) basis.push_back({TemplateBit{s, b}});
    // x_i x_j (i < j), x_i y_j (all pairs), y_i y_j (i < j).
    for (uint8_t i = 0; i < e; ++i)
        for (uint8_t j = i + 1; j < e; ++j)
            basis.push_back({TemplateBit{0, i}, TemplateBit{0, j}});
    for (uint8_t i = 0; i < e; ++i)
        for (uint8_t j = 0; j < e; ++j)
            basis.push_back({TemplateBit{0, i}, TemplateBit{1, j}});
    for (uint8_t i = 0; i < e; ++i)
        for (uint8_t j = i + 1; j < e; ++j)
            basis.push_back({TemplateBit{1, i}, TemplateBit{1, j}});
    return basis;
}

bool eval_monomial(const TemplateMonomial& m, unsigned x, unsigned y) {
    for (const TemplateBit& tb : m) {
        const unsigned word = tb.side == 0 ? x : y;
        if (!((word >> tb.bit) & 1)) return false;
    }
    return true;
}

}  // namespace

std::vector<TemplatePolynomial> sbox_quadratics(
    const std::vector<uint8_t>& table, unsigned e) {
    const auto basis = monomial_basis(e);
    const unsigned points = 1u << e;

    // Rows: evaluation points; columns: monomials. A nullspace vector picks
    // a subset of monomials XOR-summing to zero on every point.
    gf2::Matrix m(points, basis.size());
    for (unsigned x = 0; x < points; ++x) {
        const unsigned y = table[x];
        for (size_t c = 0; c < basis.size(); ++c) {
            if (eval_monomial(basis[c], x, y)) m.set(x, c, true);
        }
    }
    const auto null_basis = m.nullspace();

    std::vector<TemplatePolynomial> eqs;
    eqs.reserve(null_basis.size());
    for (const auto& v : null_basis) {
        TemplatePolynomial eq;
        for (size_t c = 0; c < basis.size(); ++c) {
            if (v[c]) eq.push_back(basis[c]);
        }
        eqs.push_back(std::move(eq));
    }
    return eqs;
}

bool verify_quadratics(const std::vector<uint8_t>& table, unsigned e,
                       const std::vector<TemplatePolynomial>& eqs) {
    const unsigned points = 1u << e;
    for (const auto& eq : eqs) {
        for (unsigned x = 0; x < points; ++x) {
            bool acc = false;
            for (const auto& mono : eq) acc ^= eval_monomial(mono, x, table[x]);
            if (acc) return false;
        }
    }
    return true;
}

}  // namespace bosphorus::crypto
