// SHA-256 (FIPS 180-4) -- reference compression function and ANF encoder
// for the paper's weakened Bitcoin nonce-finding benchmark (appendix C).
//
// Setup (paper Fig. 5): a 512-bit message block whose first 415 bits are
// randomly fixed, the next 32 bits are a free nonce, then SHA padding
// ('1' bit and the 64-bit length 448). The challenge: choose the nonce so
// the hash's first k bits are zero.
//
// The ANF encoding follows the standard algebraic treatment (as produced
// by the cgen tool the paper uses): XOR/rotate operations stay linear;
// Ch, Maj and every adder sum/carry bit get fresh variables with quadratic
// defining equations (a ripple-carry adder's carry is a majority function).
// The compression function is round-parameterised so the benchmark harness
// can run a laptop-scale weakened variant; the instance generator also
// brute-forces a witness nonce so tests can validate the encoding.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "anf/polynomial.h"
#include "util/rng.h"

namespace bosphorus::crypto {

/// Reference (reduced-round) single-block SHA-256: compress `block`
/// (16 big-endian words) into the 8-word digest, running `rounds` of the
/// 64-round compression loop.
std::array<uint32_t, 8> sha256_compress(const std::array<uint32_t, 16>& block,
                                        unsigned rounds = 64);

struct Sha256Instance {
    std::vector<anf::Polynomial> polys;
    size_t num_vars = 0;
    size_t nonce_base = 0;  ///< nonce bits are vars [nonce_base, +32)

    bool has_witness = false;
    std::vector<bool> witness;  ///< full satisfying assignment if found
    uint32_t nonce = 0;         ///< the witnessed nonce value

    unsigned k = 0;
    unsigned rounds = 0;
    std::array<uint32_t, 16> block{};  ///< witnessed message block
};

/// Build a weakened Bitcoin nonce-finding instance: first `k` output bits
/// must be zero; the compression runs `rounds` rounds (clamped to >= 14 so
/// that the nonce words W12/W13 actually enter the computation). If
/// `ensure_satisfiable` the random prefix is re-drawn until a witness nonce
/// exists (for k <= 24 this practically always succeeds on the first try).
Sha256Instance encode_bitcoin_nonce(unsigned k, unsigned rounds, Rng& rng,
                                    bool ensure_satisfiable = true);

}  // namespace bosphorus::crypto
