// Arithmetic in GF(2^e), the word field of small-scale AES (Cid et al.,
// "Small scale variants of the AES", FSE 2005).
//
// Elements are represented as e-bit integers (polynomial basis). The field
// is defined by an irreducible polynomial; defaults are the standard AES
// polynomial x^8+x^4+x^3+x+1 for e = 8 and x^4+x+1 for e = 4.
//
// Beyond plain arithmetic, the class exposes multiplication-by-constant as
// a GF(2)-linear map on bits (an e x e Boolean matrix), which is what the
// ANF encoder needs to write MixColumns as linear polynomial equations.
#pragma once

#include <cstdint>
#include <vector>

namespace bosphorus::crypto {

class GF2E {
public:
    /// e in [2, 8]; modulus is the full irreducible polynomial including
    /// the x^e term (0 picks the default for e = 4 or 8).
    explicit GF2E(unsigned e, unsigned modulus = 0);

    unsigned degree() const { return e_; }
    unsigned size() const { return 1u << e_; }
    unsigned modulus() const { return mod_; }

    uint8_t add(uint8_t a, uint8_t b) const { return a ^ b; }
    uint8_t mul(uint8_t a, uint8_t b) const;
    uint8_t pow(uint8_t a, unsigned n) const;

    /// Multiplicative inverse; inv(0) is defined as 0 (the AES convention
    /// for the S-box "patched inverse").
    uint8_t inv(uint8_t a) const;

    /// The bit matrix L such that (c * x) as bit-vector = L xbits, column-
    /// major: result_bit[i] = XOR over j with matrix[i][j] of x_bit[j].
    /// matrix[i] is a bitmask of contributing input bits.
    std::vector<uint8_t> mul_by_const_matrix(uint8_t c) const;

private:
    unsigned e_;
    unsigned mod_;
};

}  // namespace bosphorus::crypto
