#include "crypto/gf2e.h"

#include <cassert>
#include <stdexcept>

namespace bosphorus::crypto {

GF2E::GF2E(unsigned e, unsigned modulus) : e_(e), mod_(modulus) {
    if (e < 2 || e > 8) throw std::invalid_argument("GF2E: e must be in [2,8]");
    if (mod_ == 0) {
        switch (e) {
            case 2: mod_ = 0x7; break;        // x^2 + x + 1
            case 3: mod_ = 0xB; break;        // x^3 + x + 1
            case 4: mod_ = 0x13; break;       // x^4 + x + 1
            case 5: mod_ = 0x25; break;       // x^5 + x^2 + 1
            case 6: mod_ = 0x43; break;       // x^6 + x + 1
            case 7: mod_ = 0x83; break;       // x^7 + x + 1
            case 8: mod_ = 0x11B; break;      // x^8 + x^4 + x^3 + x + 1 (AES)
            default: break;
        }
    }
}

uint8_t GF2E::mul(uint8_t a, uint8_t b) const {
    // Russian-peasant multiplication with modular reduction.
    unsigned acc = 0;
    unsigned aa = a;
    unsigned bb = b;
    while (bb) {
        if (bb & 1) acc ^= aa;
        bb >>= 1;
        aa <<= 1;
        if (aa & (1u << e_)) aa ^= mod_;
    }
    assert(acc < size());
    return static_cast<uint8_t>(acc);
}

uint8_t GF2E::pow(uint8_t a, unsigned n) const {
    uint8_t result = 1;
    uint8_t base = a;
    while (n) {
        if (n & 1) result = mul(result, base);
        base = mul(base, base);
        n >>= 1;
    }
    return result;
}

uint8_t GF2E::inv(uint8_t a) const {
    if (a == 0) return 0;  // patched inverse
    // a^(2^e - 2) = a^{-1} by Fermat/Lagrange.
    return pow(a, size() - 2);
}

std::vector<uint8_t> GF2E::mul_by_const_matrix(uint8_t c) const {
    // Column j of the matrix is c * x^j; row i collects bit i across columns.
    std::vector<uint8_t> rows(e_, 0);
    for (unsigned j = 0; j < e_; ++j) {
        const uint8_t col = mul(c, static_cast<uint8_t>(1u << j));
        for (unsigned i = 0; i < e_; ++i) {
            if ((col >> i) & 1) rows[i] |= static_cast<uint8_t>(1u << j);
        }
    }
    return rows;
}

}  // namespace bosphorus::crypto
