// Small-scale AES SR(n, r, c, e) -- Cid, Murphy & Robshaw (FSE 2005) -- as
// used for the paper's SR-[1,4,4,8] benchmark class (500 instances of
// 1-round AES with a 4x4 state of 8-bit words).
//
// Two halves:
//   * a reference cipher (encrypt) used to generate plaintext/ciphertext
//     pairs, and
//   * an ANF encoder that emits the algebraic key-recovery system: S-boxes
//     as implicit quadratic equations (derived by nullspace computation
//     over our gf2 substrate, standing in for SageMath's sage.crypto.mq.sr),
//     and the linear layers (ShiftRows, MixColumns, AddRoundKey, key
//     schedule) as linear bit equations.
//
// Variable layout per instance: the master key k0, per-round key-schedule
// S-box outputs, per-round round keys, and per-round S-box inputs/outputs.
// Plaintext and ciphertext bits are folded in as constants (the paper's
// SageMath encoding instead carries them as assigned variables; the solution
// set over the key variables is identical).
#pragma once

#include <cstdint>
#include <vector>

#include "anf/polynomial.h"
#include "crypto/gf2e.h"
#include "crypto/sbox_quadratics.h"
#include "util/rng.h"

namespace bosphorus::crypto {

class SmallScaleAes {
public:
    struct Params {
        unsigned rounds = 1;  ///< n
        unsigned rows = 4;    ///< r in {1, 2, 4}
        unsigned cols = 4;    ///< c in {1, 2, 4}
        unsigned e = 8;       ///< word size in {4, 8}
    };

    explicit SmallScaleAes(Params p);

    const Params& params() const { return p_; }
    size_t num_words() const { return p_.rows * p_.cols; }
    size_t block_bits() const { return num_words() * p_.e; }

    /// The S-box (patched inverse followed by an affine map) and its table.
    uint8_t sbox(uint8_t x) const { return sbox_[x]; }
    const std::vector<uint8_t>& sbox_table() const { return sbox_; }

    /// Encrypt one block. `plaintext` and `key` are column-major word
    /// vectors of length rows*cols.
    std::vector<uint8_t> encrypt(const std::vector<uint8_t>& plaintext,
                                 const std::vector<uint8_t>& key) const;

    /// An algebraic key-recovery instance.
    struct Instance {
        std::vector<anf::Polynomial> polys;
        size_t num_vars = 0;
        /// A satisfying assignment for every variable (from simulation);
        /// useful for validating the encoding and SAT results.
        std::vector<bool> witness;
        std::vector<uint8_t> plaintext, key, ciphertext;
    };

    /// Encode the key-recovery problem for a known (P, C) pair, given the
    /// true key (only used to produce the witness).
    Instance encode(const std::vector<uint8_t>& plaintext,
                    const std::vector<uint8_t>& key) const;

    /// Random (P, K) pair, simulated to obtain C, then encoded.
    Instance random_instance(Rng& rng) const;

private:
    std::vector<uint8_t> expand_key(const std::vector<uint8_t>& key,
                                    unsigned round) const;

    Params p_;
    GF2E field_;
    std::vector<uint8_t> sbox_;
    std::vector<std::vector<uint8_t>> mix_;  // MixColumns matrix (rows x rows)
    std::vector<TemplatePolynomial> sbox_eqs_;
};

}  // namespace bosphorus::crypto
