#include "crypto/sha256.h"

#include <cassert>

namespace bosphorus::crypto {

using anf::Polynomial;
using anf::Var;

namespace {

constexpr std::array<uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<uint32_t, 8> kIV = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                         0xa54ff53a, 0x510e527f, 0x9b05688c,
                                         0x1f83d9ab, 0x5be0cd19};

uint32_t rotr(uint32_t v, unsigned s) { return (v >> s) | (v << (32 - s)); }

uint32_t big_sigma0(uint32_t a) {
    return rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
}
uint32_t big_sigma1(uint32_t e) {
    return rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
}
uint32_t small_sigma0(uint32_t w) {
    return rotr(w, 7) ^ rotr(w, 18) ^ (w >> 3);
}
uint32_t small_sigma1(uint32_t w) {
    return rotr(w, 17) ^ rotr(w, 19) ^ (w >> 10);
}

}  // namespace

std::array<uint32_t, 8> sha256_compress(const std::array<uint32_t, 16>& block,
                                        unsigned rounds) {
    std::array<uint32_t, 64> w{};
    for (unsigned t = 0; t < 16; ++t) w[t] = block[t];
    for (unsigned t = 16; t < rounds; ++t) {
        w[t] = small_sigma1(w[t - 2]) + w[t - 7] + small_sigma0(w[t - 15]) +
               w[t - 16];
    }
    uint32_t a = kIV[0], b = kIV[1], c = kIV[2], d = kIV[3];
    uint32_t e = kIV[4], f = kIV[5], g = kIV[6], h = kIV[7];
    for (unsigned t = 0; t < rounds; ++t) {
        const uint32_t ch = (e & f) ^ (~e & g);
        const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
        const uint32_t t1 = h + big_sigma1(e) + ch + kK[t] + w[t];
        const uint32_t t2 = big_sigma0(a) + maj;
        h = g;
        g = f;
        f = e;
        e = d + t1;
        d = c;
        c = b;
        b = a;
        a = t1 + t2;
    }
    return {kIV[0] + a, kIV[1] + b, kIV[2] + c, kIV[3] + d,
            kIV[4] + e, kIV[5] + f, kIV[6] + g, kIV[7] + h};
}

namespace {

/// A 32-bit word tracked both symbolically (one polynomial per bit, LSB at
/// index 0) and concretely (for the witness).
struct SymWord {
    std::array<Polynomial, 32> bits;
    uint32_t value = 0;
};

/// Symbolic circuit builder: fresh variables carry witness values; every
/// nonlinear output (AND, Ch, Maj, adder carries) and every adder sum is
/// materialised as a fresh variable with a quadratic defining equation.
class Builder {
public:
    std::vector<Polynomial> polys;
    size_t num_vars = 0;
    std::vector<bool> witness;

    Polynomial fresh(bool value) {
        const Var v = static_cast<Var>(num_vars++);
        witness.push_back(value);
        return Polynomial::variable(v);
    }

    void require_zero(Polynomial p) {
        if (!p.is_zero()) polys.push_back(std::move(p));
    }

    /// t := expr (fresh variable unless the expression is trivial, i.e. a
    /// constant, a variable, or a negated variable). Anything nonlinear is
    /// always materialised so downstream products stay quadratic.
    Polynomial define(const Polynomial& expr, bool value) {
        if (expr.degree() <= 1 && expr.size() <= 2) return expr;
        Polynomial t = fresh(value);
        require_zero(t + expr);
        return t;
    }

    SymWord const_word(uint32_t v) {
        SymWord w;
        w.value = v;
        for (unsigned b = 0; b < 32; ++b)
            w.bits[b] = Polynomial::constant((v >> b) & 1);
        return w;
    }

    SymWord var_word(uint32_t value) {
        SymWord w;
        w.value = value;
        for (unsigned b = 0; b < 32; ++b) w.bits[b] = fresh((value >> b) & 1);
        return w;
    }

    SymWord xor3(const SymWord& a, const SymWord& b, const SymWord& c) {
        SymWord out;
        out.value = a.value ^ b.value ^ c.value;
        for (unsigned i = 0; i < 32; ++i)
            out.bits[i] = a.bits[i] + b.bits[i] + c.bits[i];
        return out;
    }

    SymWord rotr_word(const SymWord& a, unsigned s) {
        SymWord out;
        out.value = rotr(a.value, s);
        for (unsigned i = 0; i < 32; ++i) out.bits[i] = a.bits[(i + s) % 32];
        return out;
    }

    SymWord shr_word(const SymWord& a, unsigned s) {
        SymWord out;
        out.value = a.value >> s;
        for (unsigned i = 0; i < 32; ++i)
            out.bits[i] = (i + s < 32) ? a.bits[i + s]
                                       : Polynomial::constant(false);
        return out;
    }

    /// Ch(e,f,g) = ef ^ (~e)g = ef + eg + g, one fresh var per bit.
    SymWord ch(const SymWord& e, const SymWord& f, const SymWord& g) {
        SymWord out;
        out.value = (e.value & f.value) ^ (~e.value & g.value);
        for (unsigned i = 0; i < 32; ++i) {
            const Polynomial expr =
                e.bits[i] * f.bits[i] + e.bits[i] * g.bits[i] + g.bits[i];
            out.bits[i] = define(expr, (out.value >> i) & 1);
        }
        return out;
    }

    /// Maj(a,b,c) = ab + ac + bc, one fresh var per bit.
    SymWord maj(const SymWord& a, const SymWord& b, const SymWord& c) {
        SymWord out;
        out.value =
            (a.value & b.value) ^ (a.value & c.value) ^ (b.value & c.value);
        for (unsigned i = 0; i < 32; ++i) {
            const Polynomial expr = a.bits[i] * b.bits[i] +
                                    a.bits[i] * c.bits[i] +
                                    b.bits[i] * c.bits[i];
            out.bits[i] = define(expr, (out.value >> i) & 1);
        }
        return out;
    }

    /// Ripple-carry addition mod 2^32; sum bits and carries become fresh
    /// variables (the carry is the majority of the addend bits and the
    /// incoming carry).
    SymWord add(const SymWord& a, const SymWord& b) {
        SymWord out;
        out.value = a.value + b.value;
        Polynomial carry = Polynomial::constant(false);
        bool carry_val = false;
        for (unsigned i = 0; i < 32; ++i) {
            const bool ai = (a.value >> i) & 1;
            const bool bi = (b.value >> i) & 1;
            const Polynomial sum_expr = a.bits[i] + b.bits[i] + carry;
            out.bits[i] = define(sum_expr, ai ^ bi ^ carry_val);
            if (i + 1 < 32) {
                const Polynomial carry_expr = a.bits[i] * b.bits[i] +
                                              a.bits[i] * carry +
                                              b.bits[i] * carry;
                const bool next_carry =
                    (ai & bi) | (ai & carry_val) | (bi & carry_val);
                carry = define(carry_expr, next_carry);
                carry_val = next_carry;
            }
        }
        return out;
    }

    SymWord big_sigma0_w(const SymWord& a) {
        return xor3(rotr_word(a, 2), rotr_word(a, 13), rotr_word(a, 22));
    }
    SymWord big_sigma1_w(const SymWord& e) {
        return xor3(rotr_word(e, 6), rotr_word(e, 11), rotr_word(e, 25));
    }
    SymWord small_sigma0_w(const SymWord& w) {
        return xor3(rotr_word(w, 7), rotr_word(w, 18), shr_word(w, 3));
    }
    SymWord small_sigma1_w(const SymWord& w) {
        return xor3(rotr_word(w, 17), rotr_word(w, 19), shr_word(w, 10));
    }
};

}  // namespace

Sha256Instance encode_bitcoin_nonce(unsigned k, unsigned rounds, Rng& rng,
                                    bool ensure_satisfiable) {
    assert(k <= 32 && rounds >= 1 && rounds <= 64);
    // The nonce occupies message words W12/W13, which enter the compression
    // at rounds t = 12 and 13; fewer than 14 rounds would leave the digest
    // independent of the nonce, so the weakening floor is 14 rounds.
    if (rounds < 14) rounds = 14;

    Sha256Instance inst;
    inst.k = k;
    inst.rounds = rounds;

    // Draw the fixed 415-bit prefix; bits 415..446 hold the nonce, bit 447
    // is the padding '1', W14:W15 encode the length 448.
    std::array<uint32_t, 16> block{};
    uint32_t found_nonce = 0;
    bool found = false;
    for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        for (unsigned i = 0; i < 13; ++i)
            block[i] = static_cast<uint32_t>(rng.next());
        // Zero the message bits from 415 on in W12/W13, then set padding.
        // Message bit j (from the MSB of the block) = word j/32, bit
        // 31 - (j % 32).
        block[12] &= ~1u;          // bit 415 = W12 bit 0
        block[13] = 0;             // bits 416..447
        block[13] |= 1u;           // padding '1' at message bit 447
        block[14] = 0;
        block[15] = 448;
        if (!ensure_satisfiable) {
            found = true;
            break;
        }
        // Brute-force a witness nonce: nonce bit 0 (first nonce bit,
        // message bit 415) = W12 bit 0; nonce bits 1..31 = W13 bits 31..1.
        for (uint64_t n = 0; n < (1ull << 32); ++n) {
            std::array<uint32_t, 16> candidate = block;
            const uint32_t nonce = static_cast<uint32_t>(n);
            candidate[12] |= (nonce & 1u);
            candidate[13] |= (nonce >> 1) << 1;
            const auto digest = sha256_compress(candidate, rounds);
            if (k == 0 || (digest[0] >> (32 - k)) == 0) {
                found_nonce = nonce;
                block = candidate;
                found = true;
                break;
            }
            // Give up on this prefix after a generous budget (~2^(k+4)).
            if (n > (1ull << std::min(31u, k + 4))) break;
        }
    }
    inst.block = block;
    inst.nonce = found_nonce;
    inst.has_witness = found && ensure_satisfiable;

    // ---- symbolic encoding ----------------------------------------------
    Builder bld;

    // Nonce variables first (vars 0..31), so nonce_base = 0.
    inst.nonce_base = 0;
    std::array<Polynomial, 32> nonce_bits;
    for (unsigned b = 0; b < 32; ++b)
        nonce_bits[b] = bld.fresh((found_nonce >> b) & 1);

    std::vector<SymWord> w(rounds > 16 ? rounds : 16);
    for (unsigned t = 0; t < 16; ++t) w[t] = bld.const_word(block[t]);
    // Splice the nonce variables into W12 bit 0 and W13 bits 31..1.
    w[12].bits[0] = nonce_bits[0];
    for (unsigned b = 1; b < 32; ++b) w[13].bits[b] = nonce_bits[b];

    for (unsigned t = 16; t < rounds; ++t) {
        const SymWord s1 = bld.small_sigma1_w(w[t - 2]);
        const SymWord s0 = bld.small_sigma0_w(w[t - 15]);
        w[t] = bld.add(bld.add(s1, w[t - 7]), bld.add(s0, w[t - 16]));
    }

    SymWord a = bld.const_word(kIV[0]), b = bld.const_word(kIV[1]);
    SymWord c = bld.const_word(kIV[2]), d = bld.const_word(kIV[3]);
    SymWord e = bld.const_word(kIV[4]), f = bld.const_word(kIV[5]);
    SymWord g = bld.const_word(kIV[6]), h = bld.const_word(kIV[7]);

    for (unsigned t = 0; t < rounds; ++t) {
        const SymWord ch = bld.ch(e, f, g);
        const SymWord mj = bld.maj(a, b, c);
        const SymWord s1 = bld.big_sigma1_w(e);
        const SymWord s0 = bld.big_sigma0_w(a);
        const SymWord t1 = bld.add(bld.add(h, s1),
                                   bld.add(ch, bld.add(bld.const_word(kK[t]),
                                                       w[t])));
        const SymWord t2 = bld.add(s0, mj);
        h = g;
        g = f;
        f = e;
        e = bld.add(d, t1);
        d = c;
        c = b;
        b = a;
        a = bld.add(t1, t2);
    }

    // H0 = IV0 + a; require its top k bits to be zero.
    const SymWord h0 = bld.add(bld.const_word(kIV[0]), a);
    for (unsigned i = 0; i < k; ++i) {
        bld.require_zero(h0.bits[31 - i]);
    }

    inst.polys = std::move(bld.polys);
    inst.num_vars = bld.num_vars;
    inst.witness = std::move(bld.witness);
    return inst;
}

}  // namespace bosphorus::crypto
