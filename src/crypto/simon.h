// Simon32/64 (Beaulieu et al., DAC 2015) -- reference cipher and ANF
// encoder for the paper's Simon-[n,r] benchmark classes (round-reduced
// Simon32/64 with n plaintext/ciphertext pairs under one secret key, in the
// Similar Plaintexts / Random Ciphertexts setting of Courtois et al.).
//
// The round function x_{i+2} = x_i ^ (S^1 x_{i+1} & S^8 x_{i+1}) ^ S^2
// x_{i+1} ^ k_i is one AND per bit, so the ANF encoding is quadratic. The
// Simon key schedule is linear over GF(2), so round keys are expressed
// directly as linear polynomials in the 64 master-key variables -- no
// auxiliary key variables are needed.
#pragma once

#include <cstdint>
#include <vector>

#include "anf/polynomial.h"
#include "util/rng.h"

namespace bosphorus::crypto {

class Simon32 {
public:
    static constexpr unsigned kWordBits = 16;
    static constexpr unsigned kKeyWords = 4;
    static constexpr unsigned kFullRounds = 32;

    explicit Simon32(unsigned rounds) : rounds_(rounds) {}

    unsigned rounds() const { return rounds_; }

    /// Encrypt a 32-bit block (x = left word, y = right word) under a
    /// 64-bit key given as 4 16-bit words, key[0] used first.
    std::pair<uint16_t, uint16_t> encrypt(uint16_t x, uint16_t y,
                                          const std::vector<uint16_t>& key) const;

    /// Round keys k_0..k_{rounds-1} from the key schedule.
    std::vector<uint16_t> round_keys(const std::vector<uint16_t>& key) const;

    struct Instance {
        std::vector<anf::Polynomial> polys;
        size_t num_vars = 0;
        std::vector<bool> witness;
        std::vector<uint16_t> key;  // the secret (first 64 vars)
    };

    /// Key-recovery instance from n plaintexts in the SP/RC setting:
    /// P_1 uniform; P_i (i >= 2) is P_1 with bit (i-2) of the right half
    /// toggled. All pairs share the same key variables.
    Instance encode(unsigned num_plaintexts, Rng& rng) const;

private:
    static uint16_t rotl(uint16_t v, unsigned k) {
        return static_cast<uint16_t>((v << k) | (v >> (kWordBits - k)));
    }

    unsigned rounds_;
};

}  // namespace bosphorus::crypto
