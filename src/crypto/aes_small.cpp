#include "crypto/aes_small.h"

#include <cassert>
#include <stdexcept>

namespace bosphorus::crypto {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

SmallScaleAes::SmallScaleAes(Params p) : p_(p), field_(p.e) {
    if (p_.rows != 1 && p_.rows != 2 && p_.rows != 4)
        throw std::invalid_argument("SmallScaleAes: rows must be 1, 2 or 4");
    if (p_.cols < 1 || p_.cols > 4)
        throw std::invalid_argument("SmallScaleAes: cols must be in [1,4]");
    if (p_.e != 4 && p_.e != 8)
        throw std::invalid_argument("SmallScaleAes: e must be 4 or 8");

    // S-box: patched inverse followed by an invertible circulant affine map.
    // e = 8 uses the genuine AES affine (rotations {0,4,5,6,7}, constant
    // 0x63); e = 4 uses rotations {0,1,2} with constant 0x6 (the circulant
    // polynomial 1+x+x^2 is coprime to x^4+1, hence invertible).
    const std::vector<unsigned> rots =
        p_.e == 8 ? std::vector<unsigned>{0, 4, 5, 6, 7}
                  : std::vector<unsigned>{0, 1, 2};
    const uint8_t affine_const = p_.e == 8 ? 0x63 : 0x6;
    const unsigned mask = (1u << p_.e) - 1;
    sbox_.resize(1u << p_.e);
    for (unsigned x = 0; x < sbox_.size(); ++x) {
        const unsigned v = field_.inv(static_cast<uint8_t>(x));
        // AES affine: b'_i = XOR over rot of b_{(i + rot) mod e}, i.e. the
        // inverse rotated *right* by rot.
        unsigned acc = 0;
        for (unsigned rot : rots)
            acc ^= ((v >> rot) | (v << (p_.e - rot))) & mask;
        sbox_[x] = static_cast<uint8_t>(acc ^ affine_const);
    }

    // MixColumns matrices (MDS over GF(2^e)); rows = 1 is the identity.
    switch (p_.rows) {
        case 1: mix_ = {{1}}; break;
        case 2: mix_ = {{3, 2}, {2, 3}}; break;
        case 4:
            mix_ = {{2, 3, 1, 1}, {1, 2, 3, 1}, {1, 1, 2, 3}, {3, 1, 1, 2}};
            break;
        default: break;
    }

    sbox_eqs_ = sbox_quadratics(sbox_, p_.e);
    assert(verify_quadratics(sbox_, p_.e, sbox_eqs_));
}

std::vector<uint8_t> SmallScaleAes::expand_key(
    const std::vector<uint8_t>& key, unsigned round) const {
    // Returns K_round; round 0 is the master key.
    const unsigned r = p_.rows, c = p_.cols;
    std::vector<uint8_t> k = key;
    for (unsigned i = 1; i <= round; ++i) {
        std::vector<uint8_t> next(k.size());
        // Rotated, S-boxed last column.
        std::vector<uint8_t> s(r);
        for (unsigned j = 0; j < r; ++j)
            s[j] = sbox_[k[(c - 1) * r + (j + 1) % r]];
        const uint8_t rc = field_.pow(2, i - 1);
        for (unsigned j = 0; j < r; ++j)
            next[j] = k[j] ^ s[j] ^ (j == 0 ? rc : 0);
        for (unsigned q = 1; q < c; ++q)
            for (unsigned j = 0; j < r; ++j)
                next[q * r + j] = k[q * r + j] ^ next[(q - 1) * r + j];
        k = std::move(next);
    }
    return k;
}

std::vector<uint8_t> SmallScaleAes::encrypt(
    const std::vector<uint8_t>& plaintext,
    const std::vector<uint8_t>& key) const {
    const unsigned r = p_.rows, c = p_.cols;
    assert(plaintext.size() == num_words() && key.size() == num_words());

    std::vector<uint8_t> state(num_words());
    for (size_t i = 0; i < state.size(); ++i) state[i] = plaintext[i] ^ key[i];

    for (unsigned round = 1; round <= p_.rounds; ++round) {
        // SubBytes.
        for (auto& w : state) w = sbox_[w];
        // ShiftRows: row j rotated left by j.
        std::vector<uint8_t> shifted(state.size());
        for (unsigned col = 0; col < c; ++col)
            for (unsigned row = 0; row < r; ++row)
                shifted[col * r + row] = state[((col + row) % c) * r + row];
        // MixColumns.
        std::vector<uint8_t> mixed(state.size());
        for (unsigned col = 0; col < c; ++col)
            for (unsigned row = 0; row < r; ++row) {
                uint8_t acc = 0;
                for (unsigned l = 0; l < r; ++l)
                    acc ^= field_.mul(static_cast<uint8_t>(mix_[row][l]),
                                      shifted[col * r + l]);
                mixed[col * r + row] = acc;
            }
        // AddRoundKey.
        const std::vector<uint8_t> rk = expand_key(key, round);
        for (size_t i = 0; i < state.size(); ++i) state[i] = mixed[i] ^ rk[i];
    }
    return state;
}

SmallScaleAes::Instance SmallScaleAes::encode(
    const std::vector<uint8_t>& plaintext,
    const std::vector<uint8_t>& key) const {
    const unsigned r = p_.rows, c = p_.cols, e = p_.e, n = p_.rounds;
    const unsigned nw = r * c;

    Instance inst;
    inst.plaintext = plaintext;
    inst.key = key;

    // ---- simulate, capturing all intermediates -------------------------
    std::vector<std::vector<uint8_t>> round_keys(n + 1);
    std::vector<std::vector<uint8_t>> ks_sbox(n + 1);  // round 1..n: r words
    round_keys[0] = key;
    for (unsigned i = 1; i <= n; ++i) {
        const auto& k = round_keys[i - 1];
        std::vector<uint8_t> s(r);
        for (unsigned j = 0; j < r; ++j)
            s[j] = sbox_[k[(c - 1) * r + (j + 1) % r]];
        ks_sbox[i] = s;
        round_keys[i] = expand_key(key, i);
    }

    std::vector<std::vector<uint8_t>> w_state(n + 1), x_state(n + 1);
    {
        std::vector<uint8_t> state(nw);
        for (unsigned i = 0; i < nw; ++i) state[i] = plaintext[i] ^ key[i];
        for (unsigned round = 1; round <= n; ++round) {
            w_state[round] = state;
            std::vector<uint8_t> x(nw);
            for (unsigned i = 0; i < nw; ++i) x[i] = sbox_[state[i]];
            x_state[round] = x;
            std::vector<uint8_t> shifted(nw);
            for (unsigned col = 0; col < c; ++col)
                for (unsigned row = 0; row < r; ++row)
                    shifted[col * r + row] = x[((col + row) % c) * r + row];
            std::vector<uint8_t> mixed(nw);
            for (unsigned col = 0; col < c; ++col)
                for (unsigned row = 0; row < r; ++row) {
                    uint8_t acc = 0;
                    for (unsigned l = 0; l < r; ++l)
                        acc ^= field_.mul(static_cast<uint8_t>(mix_[row][l]),
                                          shifted[col * r + l]);
                    mixed[col * r + row] = acc;
                }
            for (unsigned i = 0; i < nw; ++i)
                state[i] = mixed[i] ^ round_keys[round][i];
        }
        inst.ciphertext = state;
    }

    // ---- allocate variables + witness ----------------------------------
    auto alloc_words = [&](const std::vector<uint8_t>& words) {
        const size_t base = inst.num_vars;
        inst.num_vars += words.size() * e;
        for (uint8_t w : words)
            for (unsigned b = 0; b < e; ++b)
                inst.witness.push_back((w >> b) & 1);
        return base;
    };

    const size_t k0_base = alloc_words(round_keys[0]);
    std::vector<size_t> s_base(n + 1), k_base(n + 1), w_base(n + 1),
        x_base(n + 1);
    k_base[0] = k0_base;
    for (unsigned i = 1; i <= n; ++i) {
        s_base[i] = alloc_words(ks_sbox[i]);
        k_base[i] = alloc_words(round_keys[i]);
        w_base[i] = alloc_words(w_state[i]);
        x_base[i] = alloc_words(x_state[i]);
    }

    auto bit_var = [&](size_t base, unsigned word, unsigned b) {
        return static_cast<Var>(base + word * e + b);
    };
    auto bit_poly = [&](size_t base, unsigned word, unsigned b) {
        return Polynomial::variable(bit_var(base, word, b));
    };

    // Instantiate the implicit S-box quadratics over input/output words.
    auto emit_sbox = [&](size_t in_base, unsigned in_word, size_t out_base,
                         unsigned out_word) {
        for (const auto& eq : sbox_eqs_) {
            std::vector<Monomial> monos;
            for (const auto& mono : eq) {
                std::vector<Var> vars;
                for (const TemplateBit& tb : mono) {
                    vars.push_back(tb.side == 0
                                       ? bit_var(in_base, in_word, tb.bit)
                                       : bit_var(out_base, out_word, tb.bit));
                }
                monos.emplace_back(std::move(vars));
            }
            inst.polys.emplace_back(std::move(monos));
        }
    };

    // Bit expression of MC(SR(x_round)) at (row, col, bit): a linear form
    // over the x-state variables.
    // Precompute mul-by-constant bit matrices for the MixColumns entries.
    std::vector<std::vector<uint8_t>> mulmat(1u << e);
    for (const auto& row : mix_)
        for (uint8_t entry : row)
            if (mulmat[entry].empty())
                mulmat[entry] = field_.mul_by_const_matrix(entry);

    auto linear_layer_bit = [&](unsigned round, unsigned row, unsigned col,
                                unsigned b) {
        std::vector<Monomial> monos;
        for (unsigned l = 0; l < r; ++l) {
            const unsigned src_word = ((col + l) % c) * r + l;  // ShiftRows
            const uint8_t contrib = mulmat[mix_[row][l]][b];
            for (unsigned bb = 0; bb < e; ++bb) {
                if ((contrib >> bb) & 1)
                    monos.emplace_back(bit_var(x_base[round], src_word, bb));
            }
        }
        return Polynomial(std::move(monos));
    };

    // ---- equations -------------------------------------------------------
    // (1) w_1 = P + k0.
    for (unsigned word = 0; word < nw; ++word) {
        for (unsigned b = 0; b < e; ++b) {
            Polynomial p = bit_poly(w_base[1], word, b) +
                           bit_poly(k0_base, word, b);
            if ((plaintext[word] >> b) & 1) p += Polynomial::constant(true);
            inst.polys.push_back(std::move(p));
        }
    }
    for (unsigned round = 1; round <= n; ++round) {
        // (2) x_round = S(w_round), word-wise.
        for (unsigned word = 0; word < nw; ++word)
            emit_sbox(w_base[round], word, x_base[round], word);

        // (3) key schedule: s_round = S(rot(last column of k_{round-1})),
        //     then k_round linear in k_{round-1} and s_round.
        for (unsigned j = 0; j < r; ++j) {
            const unsigned src_word = (c - 1) * r + (j + 1) % r;
            emit_sbox(k_base[round - 1], src_word, s_base[round], j);
        }
        const uint8_t rc = field_.pow(2, round - 1);
        for (unsigned j = 0; j < r; ++j) {
            for (unsigned b = 0; b < e; ++b) {
                Polynomial p = bit_poly(k_base[round], j, b) +
                               bit_poly(k_base[round - 1], j, b) +
                               bit_poly(s_base[round], j, b);
                if (j == 0 && ((rc >> b) & 1))
                    p += Polynomial::constant(true);
                inst.polys.push_back(std::move(p));
            }
        }
        for (unsigned q = 1; q < c; ++q)
            for (unsigned j = 0; j < r; ++j)
                for (unsigned b = 0; b < e; ++b) {
                    inst.polys.push_back(
                        bit_poly(k_base[round], q * r + j, b) +
                        bit_poly(k_base[round - 1], q * r + j, b) +
                        bit_poly(k_base[round], (q - 1) * r + j, b));
                }

        // (4) linear layer: MC(SR(x_round)) + k_round equals the next
        //     S-box input (or the ciphertext after the last round).
        for (unsigned col = 0; col < c; ++col)
            for (unsigned row = 0; row < r; ++row)
                for (unsigned b = 0; b < e; ++b) {
                    Polynomial p = linear_layer_bit(round, row, col, b) +
                                   bit_poly(k_base[round], col * r + row, b);
                    if (round < n) {
                        p += bit_poly(w_base[round + 1], col * r + row, b);
                    } else if ((inst.ciphertext[col * r + row] >> b) & 1) {
                        p += Polynomial::constant(true);
                    }
                    inst.polys.push_back(std::move(p));
                }
    }
    return inst;
}

SmallScaleAes::Instance SmallScaleAes::random_instance(Rng& rng) const {
    std::vector<uint8_t> p(num_words()), k(num_words());
    const unsigned mask = (1u << p_.e) - 1;
    for (auto& w : p) w = static_cast<uint8_t>(rng.next() & mask);
    for (auto& w : k) w = static_cast<uint8_t>(rng.next() & mask);
    return encode(p, k);
}

}  // namespace bosphorus::crypto
