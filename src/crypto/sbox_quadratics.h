// Implicit quadratic equations of an S-box, derived by linear algebra.
//
// For a bijective S-box y = S(x) on e-bit words, consider the monomial
// basis {1, x_i, y_j, x_i x_j, x_i y_j, y_i y_j}. Evaluating every monomial
// at all 2^e points (x, S(x)) gives a 2^e-by-#monomials GF(2) matrix whose
// right nullspace is exactly the set of quadratic equations satisfied by
// the S-box (Courtois-Pieprzyk: the AES S-box admits 39 such equations).
// This uses our own gf2 substrate -- the same trick SageMath's SR module
// plays with its own linear algebra.
//
// Equations come back as *template polynomials* over abstract input bits
// (side 0) and output bits (side 1); the cipher encoder instantiates them
// with concrete ANF variables.
#pragma once

#include <cstdint>
#include <vector>

namespace bosphorus::crypto {

/// One abstract bit: side 0 = S-box input, side 1 = S-box output.
struct TemplateBit {
    uint8_t side = 0;
    uint8_t bit = 0;
    bool operator==(const TemplateBit& o) const {
        return side == o.side && bit == o.bit;
    }
};

/// A template monomial: product of 0..2 abstract bits (empty = constant 1).
using TemplateMonomial = std::vector<TemplateBit>;

/// A template polynomial equation (== 0): XOR of template monomials.
using TemplatePolynomial = std::vector<TemplateMonomial>;

/// All linearly independent quadratic (degree <= 2) implicit equations of
/// the S-box `table` over e-bit words (table.size() == 2^e).
std::vector<TemplatePolynomial> sbox_quadratics(
    const std::vector<uint8_t>& table, unsigned e);

/// Verify that every equation vanishes on all (x, S(x)) pairs.
bool verify_quadratics(const std::vector<uint8_t>& table, unsigned e,
                       const std::vector<TemplatePolynomial>& eqs);

}  // namespace bosphorus::crypto
