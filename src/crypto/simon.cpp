#include "crypto/simon.h"

#include <array>
#include <cassert>

namespace bosphorus::crypto {

using anf::Polynomial;
using anf::Var;

namespace {

// z0 constant sequence of Simon32/64 (period 62).
constexpr const char* kZ0 =
    "11111010001001010110000111001101111101000100101011000011100110";

uint16_t f16(uint16_t x) {
    auto rotl = [](uint16_t v, unsigned k) {
        return static_cast<uint16_t>((v << k) | (v >> (16 - k)));
    };
    return static_cast<uint16_t>((rotl(x, 1) & rotl(x, 8)) ^ rotl(x, 2));
}

/// A 16-bit word whose bits are polynomials (constants, variables, or
/// linear forms over the key).
using PolyWord = std::array<Polynomial, 16>;

PolyWord const_word(uint16_t v) {
    PolyWord w;
    for (unsigned b = 0; b < 16; ++b)
        w[b] = Polynomial::constant((v >> b) & 1);
    return w;
}

PolyWord var_word(Var base) {
    PolyWord w;
    for (unsigned b = 0; b < 16; ++b) w[b] = Polynomial::variable(base + b);
    return w;
}

PolyWord xor_words(const PolyWord& a, const PolyWord& b) {
    PolyWord out;
    for (unsigned i = 0; i < 16; ++i) out[i] = a[i] + b[i];
    return out;
}

PolyWord rotl_word(const PolyWord& a, unsigned k) {
    PolyWord out;
    for (unsigned i = 0; i < 16; ++i) out[i] = a[(i + 16 - k) % 16];
    return out;
}

/// f(x) = (S^1 x & S^8 x) ^ S^2 x, bitwise on polynomial words.
PolyWord f_word(const PolyWord& x) {
    const PolyWord r1 = rotl_word(x, 1);
    const PolyWord r8 = rotl_word(x, 8);
    const PolyWord r2 = rotl_word(x, 2);
    PolyWord out;
    for (unsigned i = 0; i < 16; ++i) out[i] = r1[i] * r8[i] + r2[i];
    return out;
}

}  // namespace

std::vector<uint16_t> Simon32::round_keys(
    const std::vector<uint16_t>& key) const {
    assert(key.size() == kKeyWords);
    std::vector<uint16_t> k(key.begin(), key.end());
    constexpr uint16_t c = 0xFFFC;
    auto rotr = [](uint16_t v, unsigned s) {
        return static_cast<uint16_t>((v >> s) | (v << (16 - s)));
    };
    for (unsigned i = 0; i + kKeyWords < rounds_; ++i) {
        uint16_t tmp = rotr(k[i + 3], 3) ^ k[i + 1];
        tmp ^= rotr(tmp, 1);
        const uint16_t z = (kZ0[i % 62] == '1') ? 1 : 0;
        k.push_back(static_cast<uint16_t>(c ^ z ^ k[i] ^ tmp));
    }
    k.resize(rounds_);
    return k;
}

std::pair<uint16_t, uint16_t> Simon32::encrypt(
    uint16_t x, uint16_t y, const std::vector<uint16_t>& key) const {
    const std::vector<uint16_t> rk = round_keys(key);
    for (unsigned i = 0; i < rounds_; ++i) {
        const uint16_t nx = static_cast<uint16_t>(y ^ f16(x) ^ rk[i]);
        y = x;
        x = nx;
    }
    return {x, y};
}

Simon32::Instance Simon32::encode(unsigned num_plaintexts, Rng& rng) const {
    Instance inst;
    // Key variables 0..63: word w bit b -> w*16 + b.
    inst.key.resize(kKeyWords);
    for (auto& w : inst.key) w = static_cast<uint16_t>(rng.next() & 0xFFFF);
    inst.num_vars = kKeyWords * kWordBits;
    for (uint16_t w : inst.key)
        for (unsigned b = 0; b < kWordBits; ++b)
            inst.witness.push_back((w >> b) & 1);

    // Symbolic round keys: linear polynomials over the key variables
    // (the Simon key schedule is GF(2)-linear).
    std::vector<PolyWord> rk_sym;
    {
        std::vector<PolyWord> k;
        for (unsigned w = 0; w < kKeyWords; ++w)
            k.push_back(var_word(static_cast<Var>(w * kWordBits)));
        constexpr uint16_t c = 0xFFFC;
        for (unsigned i = 0; i + kKeyWords < rounds_; ++i) {
            auto rotr_word = [](const PolyWord& a, unsigned s) {
                PolyWord out;
                for (unsigned j = 0; j < 16; ++j) out[j] = a[(j + s) % 16];
                return out;
            };
            PolyWord tmp = xor_words(rotr_word(k[i + 3], 3), k[i + 1]);
            tmp = xor_words(tmp, rotr_word(tmp, 1));
            const uint16_t zc =
                static_cast<uint16_t>(c ^ ((kZ0[i % 62] == '1') ? 1 : 0));
            PolyWord next = xor_words(xor_words(k[i], tmp), const_word(zc));
            k.push_back(std::move(next));
        }
        k.resize(std::max<unsigned>(rounds_, kKeyWords));
        rk_sym.assign(k.begin(), k.begin() + rounds_);
    }

    // Concrete round keys for the witness trace.
    const std::vector<uint16_t> rk = round_keys(inst.key);

    const uint16_t p1_left = static_cast<uint16_t>(rng.next() & 0xFFFF);
    const uint16_t p1_right = static_cast<uint16_t>(rng.next() & 0xFFFF);

    for (unsigned p = 0; p < num_plaintexts; ++p) {
        // SP/RC: similar plaintexts -- toggle bit (p-1) of the right half.
        const uint16_t left = p1_left;
        const uint16_t right =
            p == 0 ? p1_right
                   : static_cast<uint16_t>(p1_right ^ (1u << ((p - 1) % 16)));

        // Concrete state sequence x_0..x_{rounds+1}.
        std::vector<uint16_t> xs(rounds_ + 2);
        xs[0] = right;
        xs[1] = left;
        for (unsigned i = 0; i < rounds_; ++i)
            xs[i + 2] = static_cast<uint16_t>(xs[i] ^ f16(xs[i + 1]) ^ rk[i]);

        // Symbolic state: x_0, x_1 and the final two words are constants;
        // intermediates get fresh variables (witnessed by the simulation).
        std::vector<PolyWord> sym(rounds_ + 2);
        sym[0] = const_word(xs[0]);
        sym[1] = const_word(xs[1]);
        for (unsigned i = 2; i <= rounds_ + 1; ++i) {
            if (i >= rounds_) {
                sym[i] = const_word(xs[i]);  // ciphertext words
            } else {
                sym[i] = var_word(static_cast<Var>(inst.num_vars));
                inst.num_vars += kWordBits;
                for (unsigned b = 0; b < kWordBits; ++b)
                    inst.witness.push_back((xs[i] >> b) & 1);
            }
        }

        // Round equations: x_{i+2} + x_i + f(x_{i+1}) + k_i = 0.
        for (unsigned i = 0; i < rounds_; ++i) {
            const PolyWord fx = f_word(sym[i + 1]);
            for (unsigned b = 0; b < kWordBits; ++b) {
                Polynomial eq =
                    sym[i + 2][b] + sym[i][b] + fx[b] + rk_sym[i][b];
                if (!eq.is_zero()) inst.polys.push_back(std::move(eq));
            }
        }
    }
    return inst;
}

}  // namespace bosphorus::crypto
