#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace bosphorus::service {

namespace {

/// Buffered line reader over a socket fd. Returns false on EOF / error /
/// a line exceeding the cap (a sanity bound, not a protocol limit --
/// instance payloads arrive as many short lines).
class LineStream {
public:
    explicit LineStream(int fd) : fd_(fd) {}

    bool next(std::string& out) {
        out.clear();
        for (;;) {
            const size_t nl = buf_.find('\n', pos_);
            if (nl != std::string::npos) {
                out.assign(buf_, pos_, nl - pos_);
                pos_ = nl + 1;
                if (pos_ > (1u << 16)) {  // keep the buffer from creeping
                    buf_.erase(0, pos_);
                    pos_ = 0;
                }
                if (!out.empty() && out.back() == '\r') out.pop_back();
                return true;
            }
            if (buf_.size() - pos_ > kMaxLine) return false;
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n <= 0) return false;  // EOF, error, or shutdown()
            buf_.append(chunk, size_t(n));
        }
    }

private:
    static constexpr size_t kMaxLine = 1u << 20;
    int fd_;
    std::string buf_;
    size_t pos_ = 0;
};

}  // namespace

bool write_all_nosignal(int fd, const std::string& data) {
#ifdef MSG_NOSIGNAL
    constexpr int kFlags = MSG_NOSIGNAL;
#else
    constexpr int kFlags = 0;  // rely on the caller ignoring SIGPIPE
#endif
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, kFlags);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return false;  // errno preserved (EPIPE for dead peers)
        off += size_t(n);
    }
    return true;
}

SocketServer::SocketServer(SolveService& service, std::string socket_path)
    : service_(service), socket_path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return Status::io_error(std::string("socket(): ") +
                                std::strerror(errno));

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path_.size() >= sizeof(addr.sun_path)) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        return Status::invalid_argument("socket path too long: " +
                                        socket_path_);
    }
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);

    // Reclaim a stale socket left by a crashed daemon -- but only a
    // socket; refuse to unlink a regular file at that path.
    struct stat st{};
    if (::lstat(socket_path_.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode)) {
            ::close(listen_fd_);
            listen_fd_ = -1;
            return Status::io_error(socket_path_ +
                                    " exists and is not a socket");
        }
        ::unlink(socket_path_.c_str());
    }

    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd_, 64) < 0) {
        const Status bind_err = Status::io_error(
            "bind/listen on " + socket_path_ + ": " + std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return bind_err;
    }

    accept_thread_ = std::thread([this] { accept_loop(); });
    return Status();
}

void SocketServer::accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        // Poll with a timeout so a stop() request is noticed promptly
        // even when no client ever connects.
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
        if (rc <= 0) continue;  // timeout or EINTR: re-check the flag
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;

        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        conn_fds_.push_back(fd);
        const uint64_t client_id = next_client_++;
        conn_threads_.emplace_back(
            [this, fd, client_id] { serve_connection(fd, client_id); });
    }
}

void SocketServer::serve_connection(int fd, uint64_t client_id) {
    ProtocolHandler handler(service_);
    // The connection IS the tenant: requests cannot reach another
    // client's lane or sessions whatever tokens they send.
    handler.set_forced_client("conn-" + std::to_string(client_id));

    LineStream stream(fd);
    const ProtocolHandler::LineReader reader = [&stream](std::string& out) {
        return stream.next(out);
    };
    std::string request;
    std::string response;
    while (stream.next(request)) {
        const ProtocolAction action = handler.handle(request, reader, response);
        if (!write_all_nosignal(fd, response)) {
            // A client that hung up mid-RESULT is routine churn, not a
            // server problem: count it and let this thread retire. The
            // job itself is unaffected and stays retained for pickup.
            if (errno == EPIPE || errno == ECONNRESET)
                service_.note_client_disconnect();
            break;
        }
        if (action == ProtocolAction::kQuit) break;
        if (action == ProtocolAction::kShutdown) {
            request_stop();  // the wait()ing thread performs the teardown
            break;
        }
    }
    // The owning thread is the only closer of its fd; deregister first so
    // stop() never shuts down a recycled descriptor.
    {
        std::lock_guard<std::mutex> lk(mu_);
        conn_fds_.erase(std::find(conn_fds_.begin(), conn_fds_.end(), fd));
    }
    ::close(fd);
}

void SocketServer::request_stop() {
    {
        std::lock_guard<std::mutex> lk(wait_mu_);
        stop_requested_ = true;
    }
    wait_cv_.notify_all();
}

void SocketServer::wait() {
    std::unique_lock<std::mutex> lk(wait_mu_);
    wait_cv_.wait(lk, [this] { return stop_requested_; });
}

void SocketServer::stop() {
    request_stop();
    std::lock_guard<std::mutex> teardown(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);

    // 1. No new connections.
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    // 2. Drain the service: cancels queued + running jobs, wakes every
    //    connection thread parked in a RESULT wait.
    service_.shutdown();

    // 3. Unblock connection reads and join the handlers. Threads close
    //    their own fds on the way out (serve_connection).
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
        threads.swap(conn_threads_);
    }
    for (std::thread& t : threads) t.join();

    ::unlink(socket_path_.c_str());
}

}  // namespace bosphorus::service
