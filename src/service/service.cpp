// The multi-tenant solve service behind include/bosphorus/service.h.
//
// One mutex (`mu_`) guards the whole control plane: lanes, queues,
// session slots, counters and job states. Workers run the data plane
// (Engine/Session solves) outside the lock; every handoff of a Session
// slot between workers goes through the lock, which is what makes the
// single-threaded Session safe to pool -- the scheduler never dispatches
// two jobs against one slot at a time, and the lock edge orders the
// memory of consecutive owners.
//
// Scheduling: dispatch_locked() runs on every submit and every job
// completion. It hands free worker slots to client lanes in round-robin
// order; within a lane the scan is FIFO, skipping (in order) jobs whose
// session slot is busy -- and, to preserve per-session submit order,
// every *later* job on a session that was skipped in this scan.
//
// Deadlines: each job's cancellation token is linked with a steady-clock
// deadline predicate. The engine polls it at technique iteration
// boundaries and threads it into SAT backends as the terminate hook, so
// expiry stops even a mid-solve external process cooperatively -- worker
// threads are never killed.
#include "bosphorus/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "bosphorus/sat_backend.h"
#include "bosphorus/session.h"
#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"
#include "sat/inprocess/inprocess.h"
#include "util/fault.h"
#include "util/timer.h"

namespace bosphorus {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from_now(double timeout_s) {
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(timeout_s));
}

/// Metrics key of the in-loop backend a config routes the SAT step to.
std::string backend_key(const EngineConfig& cfg) {
    if (cfg.sat_backend.empty()) return "native";
    return sat::SolverSpec(cfg.sat_backend).backend_name();
}

}  // namespace

const char* job_state_name(JobState state) {
    switch (state) {
        case JobState::kQueued: return "queued";
        case JobState::kRunning: return "running";
        case JobState::kDone: return "done";
        case JobState::kCancelled: return "cancelled";
        case JobState::kExpired: return "expired";
        case JobState::kFailed: return "failed";
    }
    return "?";
}

struct SolveService::Impl {
    /// One pooled warm session. `busy` hands exclusive slot access to a
    /// single worker at a time (set/cleared under mu_); `session` itself
    /// is only touched by the owning worker.
    struct SessionSlot {
        Problem base;
        std::unique_ptr<Session> session;  // materialised by the first job
        bool busy = false;
    };

    struct Job {
        JobId id = 0;
        std::string client;
        // One-shot payload (slot == nullptr) or sweep payload.
        Problem problem;
        std::shared_ptr<SessionSlot> slot;
        AssumptionSet assumptions;

        EngineConfig cfg;  // resolved at submit (solver spec folded in)
        double timeout_s = 0.0;

        JobState state = JobState::kQueued;
        runtime::CancellationSource cancel;
        Status error;
        Report report;
        Timer since_submit;
        double queued_s = 0.0;
        double run_s = 0.0;
    };

    struct Lane {
        std::deque<std::shared_ptr<Job>> queue;
        std::map<std::string, std::shared_ptr<SessionSlot>> sessions;
        size_t inflight = 0;  ///< queued + running jobs of this client
    };

    explicit Impl(ServiceConfig cfg)
        : cfg_(std::move(cfg)),
          workers_(cfg_.n_workers == 0
                       ? runtime::ThreadPool::default_thread_count()
                       : cfg_.n_workers),
          pool_(workers_) {
        cfg_.n_workers = workers_;
        if (!cfg_.fault_plan.empty()) {
            const Status s =
                fault::FaultInjector::global().arm(cfg_.fault_plan);
            if (!s.ok())
                std::fprintf(stderr, "bosphorus: ignoring fault plan: %s\n",
                             s.to_string().c_str());
        }
    }

    // ---- control plane (all under mu_) -----------------------------------

    /// Milliseconds until the backlog ahead of a new submit has likely
    /// drained: one EWMA runtime per full worker-rotation of the queue.
    /// Requires mu_.
    uint64_t retry_after_ms_locked() const {
        const double ewma = ewma_run_s_ > 0 ? ewma_run_s_ : 0.05;
        const double rotations =
            std::ceil(double(queued_ + 1) / double(workers_));
        const double wait_s = ewma * rotations;
        return static_cast<uint64_t>(std::max(1.0, wait_s * 1000.0));
    }

    Result<JobId> admit(std::shared_ptr<Job> job) {
        std::unique_lock<std::mutex> lk(mu_);
        if (stopping_)
            return Status::unavailable("service is shutting down");
        if (queued_ >= cfg_.max_queued_jobs) {
            ++stats_rejected_;
            return Status::unavailable(
                "job queue full (" + std::to_string(queued_) + " queued, cap " +
                std::to_string(cfg_.max_queued_jobs) + ") retry_after_ms=" +
                std::to_string(retry_after_ms_locked()));
        }
        Lane* lane = lane_for_locked(job->client);
        if (lane == nullptr) {
            ++stats_rejected_;
            return Status::unavailable(
                "client table full (cap " + std::to_string(cfg_.max_clients) +
                " clients)");
        }
        if (cfg_.max_inflight_per_client > 0 &&
            lane->inflight >= cfg_.max_inflight_per_client) {
            ++stats_rejected_;
            return Status::unavailable(
                "client '" + job->client + "' at its in-flight quota (" +
                std::to_string(cfg_.max_inflight_per_client) +
                " jobs) retry_after_ms=" +
                std::to_string(retry_after_ms_locked()));
        }
        // Deadline-aware admission: with all workers busy, a new job waits
        // ~one EWMA runtime per worker-rotation of the queue and then runs
        // for ~one more. If that already overshoots its own deadline,
        // admitting it only burns a slot on work that will expire -- shed
        // it now, with a hint for when to retry. The estimate needs a few
        // observed runtimes before it is trusted.
        if (cfg_.deadline_admission && ewma_samples_ >= 4 &&
            running_ >= workers_) {
            const double est_wait_s =
                ewma_run_s_ *
                std::ceil(double(queued_ + 1) / double(workers_));
            if (est_wait_s + ewma_run_s_ > job->timeout_s) {
                ++stats_rejected_;
                ++stats_deadline_rejected_;
                return Status::unavailable(
                    "deadline " + std::to_string(job->timeout_s) +
                    "s unmeetable at current depth (est wait " +
                    std::to_string(est_wait_s) + "s) retry_after_ms=" +
                    std::to_string(retry_after_ms_locked()));
            }
        }
        job->id = next_id_++;
        jobs_.emplace(job->id, job);
        lane->queue.push_back(job);
        ++lane->inflight;
        ++queued_;
        ++stats_accepted_;
        dispatch_locked();
        return job->id;
    }

    /// A job of `client` left the in-flight set (terminal). Requires mu_.
    void release_inflight_locked(const std::string& client) {
        auto it = lanes_.find(client);
        if (it != lanes_.end() && it->second.inflight > 0)
            --it->second.inflight;
    }

    /// The lane for `client`, created on first use; nullptr when the
    /// client table is at capacity.
    Lane* lane_for_locked(const std::string& client) {
        auto it = lanes_.find(client);
        if (it != lanes_.end()) return &it->second;
        if (lanes_.size() >= cfg_.max_clients) return nullptr;
        rr_order_.push_back(client);
        return &lanes_[client];
    }

    /// Hand free worker slots to lanes, round-robin. Requires mu_.
    void dispatch_locked() {
        if (stopping_) return;
        while (running_ < workers_ && queued_ > 0) {
            std::shared_ptr<Job> job = pick_next_locked();
            if (!job) break;  // all queued work blocked on busy sessions
            job->state = JobState::kRunning;
            job->queued_s = job->since_submit.seconds();
            if (job->slot) job->slot->busy = true;
            --queued_;
            ++running_;
            pool_.submit([this, job] { run_job(std::move(job)); });
        }
    }

    /// Next dispatchable job in round-robin lane order; also reaps
    /// queue entries cancelled while waiting. Requires mu_.
    std::shared_ptr<Job> pick_next_locked() {
        const size_t n_lanes = rr_order_.size();
        for (size_t k = 0; k < n_lanes; ++k) {
            const size_t lane_idx = (rr_pos_ + k) % n_lanes;
            Lane& lane = lanes_[rr_order_[lane_idx]];
            // FIFO scan; sessions skipped once stay skipped so jobs on one
            // session never overtake each other.
            std::unordered_set<SessionSlot*> blocked;
            for (size_t i = 0; i < lane.queue.size();) {
                std::shared_ptr<Job>& j = lane.queue[i];
                if (j->state != JobState::kQueued) {  // cancelled in place
                    lane.queue.erase(lane.queue.begin() + i);
                    continue;
                }
                SessionSlot* slot = j->slot.get();
                if (slot && (slot->busy || blocked.count(slot))) {
                    blocked.insert(slot);
                    ++i;
                    continue;
                }
                std::shared_ptr<Job> job = std::move(j);
                lane.queue.erase(lane.queue.begin() + i);
                rr_pos_ = (lane_idx + 1) % n_lanes;
                return job;
            }
        }
        return nullptr;
    }

    // ---- data plane (outside mu_) ----------------------------------------

    void run_job(std::shared_ptr<Job> job) {
        // Injected dispatch stall: the job sits on its worker slot doing
        // nothing for a bounded moment, as a heavily-loaded scheduler
        // would make it. Charged to queue wait, not to the job's deadline
        // (which starts below, like for any other dispatch latency).
        if (fault::FaultInjector::global().should_fire(
                fault::Site::kQueueDelay)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
            std::lock_guard<std::mutex> lk(mu_);
            job->queued_s = job->since_submit.seconds();
        }
        const Timer run_timer;
        const Clock::time_point deadline = deadline_from_now(job->timeout_s);
        const runtime::CancellationToken token =
            runtime::CancellationToken::linked(
                job->cancel.token(),
                [deadline] { return Clock::now() >= deadline; });

        Status error;
        Report report;
        bool failed = false;
        if (!job->slot) {
            EngineConfig cfg = job->cfg;
            cfg.time_budget_s = std::min(cfg.time_budget_s, job->timeout_s);
            if (cfg_.cooperative) {
                // Cooperative mode: race the default portfolio on this
                // instance with fact sharing. solve_portfolio creates and
                // wires the shared pool; the entries all inherit this
                // job's resolved config (backend spec included).
                cfg.cooperative = true;
                Result<PortfolioReport> res = solve_portfolio(
                    job->problem, default_portfolio(cfg), 0, token);
                if (res.ok()) {
                    report = std::move(res).value().report;
                } else {
                    failed = true;
                    error = res.status();
                }
            } else {
                Engine engine(cfg);
                engine.set_cancellation_token(token);
                Result<Report> res = engine.run(job->problem);
                if (res.ok()) {
                    report = std::move(res).value();
                } else {
                    failed = true;
                    error = res.status();
                }
            }
        } else {
            run_sweep_job(*job, token, report, error, failed);
        }

        std::unique_lock<std::mutex> lk(mu_);
        job->run_s = run_timer.seconds();
        job->report = std::move(report);
        job->error = std::move(error);
        job->state = classify_locked(*job, failed, deadline);
        if (job->slot) job->slot->busy = false;
        --running_;
        account_locked(*job);
        release_inflight_locked(job->client);
        retain_locked(job->id);
        dispatch_locked();
        lk.unlock();
        cv_.notify_all();
    }

    /// One push / assume* / solve / pop round trip on the job's warm
    /// session, materialising it first if this is the slot's first job.
    /// The scheduler guarantees exclusive slot access.
    void run_sweep_job(Job& job, const runtime::CancellationToken& token,
                       Report& report, Status& error, bool& failed) {
        SessionSlot& slot = *job.slot;
        if (!slot.session)
            slot.session = std::make_unique<Session>(slot.base, job.cfg);
        Session& session = *slot.session;
        session.set_cancellation_token(token);

        Status st = session.push();
        for (const auto& [var, value] : job.assumptions) {
            if (!st.ok()) break;
            st = session.assume(var, value);
        }
        if (st.ok()) {
            Result<Report> res = session.solve();
            if (res.ok()) {
                report = std::move(res).value();
            } else {
                failed = true;
                error = res.status();
            }
        } else {
            failed = true;
            error = st;
        }
        session.pop();
        session.set_cancellation_token({});
    }

    /// Terminal state of a finished run. Requires mu_ (serialises the
    /// cancel-vs-expiry attribution against cancel()).
    JobState classify_locked(const Job& job, bool failed,
                             Clock::time_point deadline) const {
        if (failed) return JobState::kFailed;
        if (job.report.verdict != sat::Result::kUnknown) return JobState::kDone;
        if (job.cancel.cancel_requested()) return JobState::kCancelled;
        if (job.report.timed_out || Clock::now() >= deadline)
            return JobState::kExpired;
        return JobState::kDone;  // undecided fixed point within budget
    }

    /// Fold a terminal job into the counters. Requires mu_.
    void account_locked(const Job& job) {
        switch (job.state) {
            case JobState::kDone: ++stats_completed_; break;
            case JobState::kCancelled: ++stats_cancelled_; break;
            case JobState::kExpired: ++stats_expired_; break;
            case JobState::kFailed: ++stats_failed_; break;
            default: break;
        }
        if (job.state == JobState::kDone || job.state == JobState::kExpired) {
            const bool decided = job.report.verdict != sat::Result::kUnknown;
            par2_sum_ += decided ? job.run_s : 2.0 * job.timeout_s;
            ++par2_jobs_;
        }
        if (job.run_s > 0.0) {
            // EWMA of observed runtimes, feeding deadline admission.
            ewma_run_s_ = ewma_samples_ == 0
                              ? job.run_s
                              : 0.9 * ewma_run_s_ + 0.1 * job.run_s;
            ++ewma_samples_;
        }
        if (job.state != JobState::kFailed) {
            BackendVerdicts& tally = backend_verdicts_[backend_key(job.cfg)];
            if (job.report.verdict == sat::Result::kSat) ++tally.sat;
            else if (job.report.verdict == sat::Result::kUnsat) ++tally.unsat;
            else ++tally.unknown;
        }
    }

    /// Keep the terminal-job table bounded. Requires mu_.
    void retain_locked(JobId finished) {
        finished_fifo_.push_back(finished);
        while (finished_fifo_.size() > cfg_.max_retained_jobs) {
            jobs_.erase(finished_fifo_.front());
            finished_fifo_.pop_front();
        }
    }

    void shutdown() {
        std::unique_lock<std::mutex> lk(mu_);
        if (!stopping_) {
            stopping_ = true;
            // Queued jobs never started: cancel them in place, always.
            for (auto& [key, lane] : lanes_) {
                for (auto& job : lane.queue) {
                    if (job->state != JobState::kQueued) continue;
                    job->state = JobState::kCancelled;
                    ++stats_cancelled_;
                    release_inflight_locked(job->client);
                    retain_locked(job->id);
                }
                lane.queue.clear();
            }
            queued_ = 0;
            // Graceful drain: running jobs get the grace window (their
            // own deadlines still apply) before the cooperative cancel.
            if (cfg_.drain_grace_s > 0.0 && running_ > 0) {
                cv_.wait_for(lk,
                             std::chrono::duration<double>(cfg_.drain_grace_s),
                             [this] { return running_ == 0; });
            }
            for (auto& [id, job] : jobs_) {
                if (job->state == JobState::kRunning)
                    job->cancel.request_cancel();
            }
        }
        cv_.notify_all();
        cv_.wait(lk, [this] { return running_ == 0; });
    }

    // ---- members ---------------------------------------------------------

    ServiceConfig cfg_;
    const unsigned workers_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    runtime::ThreadPool pool_;  // after mu_/cv_: joined before they die

    std::unordered_map<JobId, std::shared_ptr<Job>> jobs_;
    std::map<std::string, Lane> lanes_;
    std::vector<std::string> rr_order_;
    size_t rr_pos_ = 0;
    std::deque<JobId> finished_fifo_;

    JobId next_id_ = 1;
    size_t queued_ = 0;
    size_t running_ = 0;
    bool stopping_ = false;

    uint64_t stats_accepted_ = 0;
    uint64_t stats_rejected_ = 0;
    uint64_t stats_deadline_rejected_ = 0;
    uint64_t stats_client_disconnects_ = 0;
    uint64_t stats_completed_ = 0;
    uint64_t stats_cancelled_ = 0;
    uint64_t stats_expired_ = 0;
    uint64_t stats_failed_ = 0;
    double par2_sum_ = 0.0;
    uint64_t par2_jobs_ = 0;
    double ewma_run_s_ = 0.0;
    uint64_t ewma_samples_ = 0;
    std::map<std::string, BackendVerdicts> backend_verdicts_;
    Timer uptime_;
};

// ---- SolveService ----------------------------------------------------------

SolveService::SolveService(ServiceConfig cfg)
    : impl_(std::make_unique<Impl>(std::move(cfg))) {}

SolveService::~SolveService() { shutdown(); }

const ServiceConfig& SolveService::config() const { return impl_->cfg_; }

namespace {

/// Resolve and validate a per-job deadline against the service bounds.
Result<double> resolve_timeout(const ServiceConfig& cfg, double requested) {
    if (requested < 0.0)
        return Status::invalid_argument("timeout_s must be >= 0");
    double t = requested == 0.0 ? cfg.default_timeout_s : requested;
    if (cfg.max_timeout_s > 0.0) t = std::min(t, cfg.max_timeout_s);
    return t;
}

}  // namespace

Result<JobId> SolveService::submit(JobRequest request) {
    const Result<double> timeout =
        resolve_timeout(impl_->cfg_, request.timeout_s);
    if (!timeout.ok()) return timeout.status();

    EngineConfig cfg = impl_->cfg_.engine;
    if (!request.solver.empty()) {
        // Validate the spec now so a typo fails the submit, not the job.
        auto probe =
            sat::BackendRegistry::global().create(sat::SolverSpec(request.solver));
        if (!probe.ok()) return probe.status();
        cfg.sat_backend = request.solver;
    }

    auto job = std::make_shared<Impl::Job>();
    job->client = std::move(request.client);
    job->problem = std::move(request.problem);
    job->cfg = std::move(cfg);
    job->timeout_s = *timeout;
    return impl_->admit(std::move(job));
}

Status SolveService::open_session(const std::string& client,
                                  const std::string& name, Problem base) {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    if (impl_->stopping_)
        return Status::unavailable("service is shutting down");
    Impl::Lane* lane = impl_->lane_for_locked(client);
    if (lane == nullptr)
        return Status::unavailable(
            "client table full (cap " +
            std::to_string(impl_->cfg_.max_clients) + " clients)");
    if (lane->sessions.count(name))
        return Status::invalid_argument("session '" + name +
                                        "' is already open for this client");
    if (lane->sessions.size() >= impl_->cfg_.max_sessions_per_client)
        return Status::unavailable(
            "session pool full (cap " +
            std::to_string(impl_->cfg_.max_sessions_per_client) +
            " sessions per client)");
    auto slot = std::make_shared<Impl::SessionSlot>();
    slot->base = std::move(base);
    lane->sessions.emplace(name, std::move(slot));
    return Status();
}

Result<JobId> SolveService::submit_assumptions(const std::string& client,
                                               const std::string& name,
                                               AssumptionSet assumptions,
                                               double timeout_s) {
    const Result<double> timeout = resolve_timeout(impl_->cfg_, timeout_s);
    if (!timeout.ok()) return timeout.status();

    std::shared_ptr<Impl::SessionSlot> slot;
    {
        std::lock_guard<std::mutex> lk(impl_->mu_);
        auto lane_it = impl_->lanes_.find(client);
        if (lane_it != impl_->lanes_.end()) {
            auto it = lane_it->second.sessions.find(name);
            if (it != lane_it->second.sessions.end()) slot = it->second;
        }
    }
    if (!slot)
        return Status::invalid_argument("no open session '" + name +
                                        "' for client '" + client + "'");
    for (const auto& [var, value] : assumptions) {
        (void)value;
        if (var >= slot->base.num_vars())
            return Status::invalid_argument(
                "assumption variable x" + std::to_string(var + 1) +
                " outside the session's variable space (" +
                std::to_string(slot->base.num_vars()) + " vars)");
    }

    auto job = std::make_shared<Impl::Job>();
    job->client = client;
    job->slot = std::move(slot);
    job->assumptions = std::move(assumptions);
    job->cfg = impl_->cfg_.engine;
    job->timeout_s = *timeout;
    return impl_->admit(std::move(job));
}

Status SolveService::close_session(const std::string& client,
                                   const std::string& name) {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto lane_it = impl_->lanes_.find(client);
    if (lane_it == impl_->lanes_.end() ||
        lane_it->second.sessions.erase(name) == 0)
        return Status::invalid_argument("no open session '" + name +
                                        "' for client '" + client + "'");
    return Status();
}

Result<JobState> SolveService::job_state(JobId id) const {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    auto it = impl_->jobs_.find(id);
    if (it == impl_->jobs_.end())
        return Status::invalid_argument("unknown job id " + std::to_string(id));
    return it->second->state;
}

Result<JobOutcome> SolveService::wait(JobId id, double wait_s) {
    std::unique_lock<std::mutex> lk(impl_->mu_);
    auto it = impl_->jobs_.find(id);
    if (it == impl_->jobs_.end())
        return Status::invalid_argument("unknown job id " + std::to_string(id));
    // Hold the job alive across the wait even if retention evicts it.
    std::shared_ptr<Impl::Job> job = it->second;

    const auto terminal = [&job] {
        return job->state != JobState::kQueued &&
               job->state != JobState::kRunning;
    };
    if (wait_s < 0.0) {
        impl_->cv_.wait(lk, terminal);
    } else if (!impl_->cv_.wait_for(
                   lk, std::chrono::duration<double>(wait_s), terminal)) {
        return Status::timeout("job " + std::to_string(id) + " still " +
                               job_state_name(job->state) + " after " +
                               std::to_string(wait_s) + "s");
    }

    JobOutcome out;
    out.id = id;
    out.state = job->state;
    out.error = job->error;
    out.report = job->report;
    out.queued_s = job->queued_s;
    out.run_s = job->run_s;
    out.timeout_s = job->timeout_s;
    return out;
}

Status SolveService::cancel(JobId id) {
    std::unique_lock<std::mutex> lk(impl_->mu_);
    auto it = impl_->jobs_.find(id);
    if (it == impl_->jobs_.end())
        return Status::invalid_argument("unknown job id " + std::to_string(id));
    std::shared_ptr<Impl::Job> job = it->second;
    if (job->state == JobState::kQueued) {
        // Cancelled in place; the queue entry is reaped by the scheduler.
        job->state = JobState::kCancelled;
        job->queued_s = job->since_submit.seconds();
        --impl_->queued_;
        ++impl_->stats_cancelled_;
        impl_->release_inflight_locked(job->client);
        impl_->retain_locked(id);
        lk.unlock();
        impl_->cv_.notify_all();
        return Status();
    }
    if (job->state == JobState::kRunning) job->cancel.request_cancel();
    return Status();  // terminal states: idempotent no-op
}

ServiceStats SolveService::stats() const {
    ServiceStats s;
    {
        std::lock_guard<std::mutex> lk(impl_->mu_);
        s.accepted = impl_->stats_accepted_;
        s.rejected = impl_->stats_rejected_;
        s.deadline_rejected = impl_->stats_deadline_rejected_;
        s.client_disconnects = impl_->stats_client_disconnects_;
        s.ewma_run_s = impl_->ewma_run_s_;
        s.completed = impl_->stats_completed_;
        s.cancelled = impl_->stats_cancelled_;
        s.expired = impl_->stats_expired_;
        s.failed = impl_->stats_failed_;
        s.queued = impl_->queued_;
        s.running = impl_->running_;
        s.clients = impl_->lanes_.size();
        for (const auto& [key, lane] : impl_->lanes_) {
            s.open_sessions += lane.sessions.size();
            for (const auto& [name, slot] : lane.sessions)
                if (slot->session) ++s.warm_sessions;
        }
        s.par2_sum = impl_->par2_sum_;
        s.par2_jobs = impl_->par2_jobs_;
        s.backend_verdicts = impl_->backend_verdicts_;
        s.uptime_s = impl_->uptime_.seconds();
    }
    s.store = anf::MonomialStore::global().stats();

    // Process-global resilience / fault surface, read through so one
    // METRICS round trip shows the whole failure-handling picture.
    auto& inject = fault::FaultInjector::global();
    s.fault_plan = inject.plan();
    s.faults_injected = inject.total_fired();
    const auto& counters = sat::resilience_counters();
    s.resilience_attempts =
        counters.attempts.load(std::memory_order_relaxed);
    s.resilience_retries = counters.retries.load(std::memory_order_relaxed);
    s.resilience_fallbacks =
        counters.fallbacks.load(std::memory_order_relaxed);
    s.resilience_garbage =
        counters.garbage_rejected.load(std::memory_order_relaxed);
    s.resilience_exhausted =
        counters.exhausted.load(std::memory_order_relaxed);
    const auto& health = sat::BackendRegistry::global().health();
    s.circuit_opens = health.total_opens();
    s.circuits = health.snapshot();
    const auto& inproc = sat::inprocess::counters();
    s.inprocess_vivified_literals =
        inproc.vivified_literals.load(std::memory_order_relaxed);
    s.inprocess_vivified_clauses =
        inproc.vivified_clauses.load(std::memory_order_relaxed);
    s.inprocess_vivify_passes =
        inproc.vivify_passes.load(std::memory_order_relaxed);
    s.inprocess_reconf_decisions =
        inproc.reconf_decisions.load(std::memory_order_relaxed);
    s.inprocess_db_reductions =
        inproc.db_reductions.load(std::memory_order_relaxed);
    s.inprocess_tier_core = inproc.tier_core.load(std::memory_order_relaxed);
    s.inprocess_tier_mid = inproc.tier_mid.load(std::memory_order_relaxed);
    s.inprocess_tier_local =
        inproc.tier_local.load(std::memory_order_relaxed);
    return s;
}

void SolveService::note_client_disconnect() {
    std::lock_guard<std::mutex> lk(impl_->mu_);
    ++impl_->stats_client_disconnects_;
}

void SolveService::shutdown() { impl_->shutdown(); }

}  // namespace bosphorus
