#include "service/protocol.h"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bosphorus/bosphorus.h"

namespace bosphorus::service {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> toks;
    std::istringstream in(line);
    std::string t;
    while (in >> t) toks.push_back(std::move(t));
    return toks;
}

bool parse_u64(const std::string& t, uint64_t& out) {
    auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
    return ec == std::errc() && p == t.data() + t.size();
}

bool parse_i64(const std::string& t, int64_t& out) {
    auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
    return ec == std::errc() && p == t.data() + t.size();
}

/// "-" means "service default" (0.0); otherwise a non-negative double.
bool parse_timeout(const std::string& t, double& out) {
    if (t == "-") {
        out = 0.0;
        return true;
    }
    try {
        size_t used = 0;
        out = std::stod(t, &used);
        return used == t.size() && out >= 0.0;
    } catch (...) {
        return false;
    }
}

std::string fmt_seconds(double s) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", s);
    return buf;
}

const char* wire_code(StatusCode code) {
    switch (code) {
        case StatusCode::kOk: return "OK";
        case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
        case StatusCode::kParseError: return "PARSE_ERROR";
        case StatusCode::kIoError: return "IO_ERROR";
        case StatusCode::kInterrupted: return "INTERRUPTED";
        case StatusCode::kTimeout: return "TIMEOUT";
        case StatusCode::kUnavailable: return "UNAVAILABLE";
        case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
        case StatusCode::kInternal: return "INTERNAL";
    }
    return "INTERNAL";
}

std::string err(const Status& status) {
    return std::string("ERR ") + wire_code(status.code()) + " " +
           status.message() + "\n";
}

std::string err_invalid(const std::string& message) {
    return err(Status::invalid_argument(message));
}

const char* verdict_name(sat::Result verdict) {
    switch (verdict) {
        case sat::Result::kSat: return "sat";
        case sat::Result::kUnsat: return "unsat";
        default: return "unknown";
    }
}

/// Read a counted payload block and parse it as an instance.
Result<Problem> read_problem(const std::string& kind, uint64_t n_lines,
                             const ProtocolHandler::LineReader& read_line) {
    if (kind != "anf" && kind != "cnf")
        return Status::invalid_argument("instance kind must be anf or cnf, got '" +
                                        kind + "'");
    std::string text;
    std::string line;
    for (uint64_t i = 0; i < n_lines; ++i) {
        if (!read_line(line))
            return Status::invalid_argument(
                "payload truncated: got " + std::to_string(i) + " of " +
                std::to_string(n_lines) + " lines");
        text += line;
        text += '\n';
    }
    return kind == "anf" ? Problem::from_anf_text(text)
                         : Problem::from_cnf_text(text);
}

std::string outcome_line(const JobOutcome& out) {
    std::string resp = "OK RESULT " + std::to_string(out.id) + " " +
                       job_state_name(out.state) + " " +
                       verdict_name(out.report.verdict) + " " +
                       fmt_seconds(out.queued_s) + " " +
                       fmt_seconds(out.run_s) + " ";
    if (out.report.verdict == sat::Result::kSat) {
        std::string bits;
        bits.reserve(out.report.solution.size());
        for (bool b : out.report.solution) bits += b ? '1' : '0';
        resp += bits.empty() ? "-" : bits;
    } else {
        resp += "-";
    }
    if (out.state == JobState::kFailed)
        resp += std::string(" ") + wire_code(out.error.code()) + ": " +
                out.error.message();
    resp += "\n";
    return resp;
}

std::string metrics_block(const ServiceStats& s) {
    std::vector<std::pair<std::string, std::string>> kv;
    auto put = [&kv](const std::string& k, auto v) {
        kv.emplace_back(k, std::to_string(v));
    };
    put("jobs_accepted", s.accepted);
    put("jobs_rejected", s.rejected);
    put("jobs_completed", s.completed);
    put("jobs_cancelled", s.cancelled);
    put("jobs_expired", s.expired);
    put("jobs_failed", s.failed);
    put("queue_depth", s.queued);
    put("running", s.running);
    put("clients", s.clients);
    put("open_sessions", s.open_sessions);
    put("warm_sessions", s.warm_sessions);
    kv.emplace_back("par2", fmt_seconds(s.par2()));
    put("par2_jobs", s.par2_jobs);
    for (const auto& [name, tally] : s.backend_verdicts) {
        put("backend." + name + ".sat", tally.sat);
        put("backend." + name + ".unsat", tally.unsat);
        put("backend." + name + ".unknown", tally.unknown);
    }
    put("store_entries", s.store.entries);
    put("store_arena_bytes", s.store.arena_bytes);
    put("store_entry_bytes", s.store.entry_bytes);
    put("store_mul_memo_entries", s.store.mul_memo_entries);
    put("store_mul_memo_hits", s.store.mul_memo_hits);
    put("store_mul_memo_misses", s.store.mul_memo_misses);
    put("jobs_deadline_rejected", s.deadline_rejected);
    put("client_disconnects", s.client_disconnects);
    kv.emplace_back("run_ewma_s", fmt_seconds(s.ewma_run_s));
    kv.emplace_back("fault_plan",
                    s.fault_plan.empty() ? "-" : s.fault_plan);
    put("faults_injected", s.faults_injected);
    put("resilience.attempts", s.resilience_attempts);
    put("resilience.retries", s.resilience_retries);
    put("resilience.fallbacks", s.resilience_fallbacks);
    put("resilience.garbage_rejected", s.resilience_garbage);
    put("resilience.exhausted", s.resilience_exhausted);
    put("inprocess.vivified_literals", s.inprocess_vivified_literals);
    put("inprocess.vivified_clauses", s.inprocess_vivified_clauses);
    put("inprocess.vivify_passes", s.inprocess_vivify_passes);
    put("inprocess.reconf_decisions", s.inprocess_reconf_decisions);
    put("inprocess.db_reductions", s.inprocess_db_reductions);
    put("inprocess.tier_core", s.inprocess_tier_core);
    put("inprocess.tier_mid", s.inprocess_tier_mid);
    put("inprocess.tier_local", s.inprocess_tier_local);
    put("circuit_opens", s.circuit_opens);
    for (const auto& c : s.circuits) {
        const std::string prefix = "circuit." + c.backend + ".";
        kv.emplace_back(prefix + "state",
                        sat::HealthTracker::state_name(c.state));
        put(prefix + "failures", c.failures);
        put(prefix + "consecutive_failures", c.consecutive_failures);
        put(prefix + "opens", c.opens);
    }
    kv.emplace_back("uptime_s", fmt_seconds(s.uptime_s));

    std::string resp = "OK METRICS " + std::to_string(kv.size()) + "\n";
    for (const auto& [k, v] : kv) resp += k + " " + v + "\n";
    return resp;
}

}  // namespace

ProtocolAction ProtocolHandler::handle(const std::string& request,
                                       const LineReader& read_line,
                                       std::string& response) {
    response.clear();
    const std::vector<std::string> toks = tokenize(request);
    if (toks.empty()) {
        response = err_invalid("empty request");
        return ProtocolAction::kContinue;
    }
    const std::string& verb = toks[0];

    if (verb == "HELLO") {
        response = std::string("OK bosphorusd ") + version() + "\n";
        return ProtocolAction::kContinue;
    }

    if (verb == "QUIT") {
        response = "OK\n";
        return ProtocolAction::kQuit;
    }

    if (verb == "SHUTDOWN") {
        response = "OK\n";
        return ProtocolAction::kShutdown;
    }

    if (verb == "SUBMIT") {
        // SUBMIT <client> <kind> <timeout|-> <solver|-> <nlines>
        uint64_t n_lines = 0;
        double timeout_s = 0.0;
        if (toks.size() != 6 || !parse_timeout(toks[3], timeout_s) ||
            !parse_u64(toks[5], n_lines)) {
            response = err_invalid(
                "usage: SUBMIT <client> anf|cnf <timeout_s|-> <solver|-> "
                "<nlines>");
            return ProtocolAction::kContinue;
        }
        Result<Problem> problem = read_problem(toks[2], n_lines, read_line);
        if (!problem.ok()) {
            response = err(problem.status());
            return ProtocolAction::kContinue;
        }
        JobRequest req;
        req.client = client_for(toks[1]);
        req.problem = std::move(problem).value();
        req.timeout_s = timeout_s;
        if (toks[4] != "-") req.solver = toks[4];
        Result<JobId> id = service_.submit(std::move(req));
        if (!id.ok()) {
            response = err(id.status());
            return ProtocolAction::kContinue;
        }
        response = "OK JOB " + std::to_string(*id) + "\n";
        return ProtocolAction::kContinue;
    }

    if (verb == "SESSION") {
        if (toks.size() >= 2 && toks[1] == "OPEN") {
            // SESSION OPEN <client> <name> <kind> <nlines>
            uint64_t n_lines = 0;
            if (toks.size() != 6 || !parse_u64(toks[5], n_lines)) {
                response = err_invalid(
                    "usage: SESSION OPEN <client> <name> anf|cnf <nlines>");
                return ProtocolAction::kContinue;
            }
            Result<Problem> base = read_problem(toks[4], n_lines, read_line);
            if (!base.ok()) {
                response = err(base.status());
                return ProtocolAction::kContinue;
            }
            const Status st = service_.open_session(
                client_for(toks[2]), toks[3], std::move(base).value());
            response = st.ok() ? "OK\n" : err(st);
            return ProtocolAction::kContinue;
        }
        if (toks.size() == 4 && toks[1] == "CLOSE") {
            const Status st =
                service_.close_session(client_for(toks[2]), toks[3]);
            response = st.ok() ? "OK\n" : err(st);
            return ProtocolAction::kContinue;
        }
        response = err_invalid("usage: SESSION OPEN|CLOSE ...");
        return ProtocolAction::kContinue;
    }

    if (verb == "ASSUME") {
        // ASSUME <client> <name> <timeout|-> <lit>...
        double timeout_s = 0.0;
        if (toks.size() < 5 || !parse_timeout(toks[3], timeout_s)) {
            response = err_invalid(
                "usage: ASSUME <client> <name> <timeout_s|-> <lit>...");
            return ProtocolAction::kContinue;
        }
        AssumptionSet assumptions;
        for (size_t i = 4; i < toks.size(); ++i) {
            int64_t lit = 0;
            if (!parse_i64(toks[i], lit) || lit == 0) {
                response = err_invalid("bad assumption literal '" + toks[i] +
                                       "' (1-based signed, e.g. -3)");
                return ProtocolAction::kContinue;
            }
            const uint64_t var = uint64_t(lit < 0 ? -lit : lit) - 1;
            assumptions.emplace_back(static_cast<anf::Var>(var), lit > 0);
        }
        Result<JobId> id = service_.submit_assumptions(
            client_for(toks[1]), toks[2], std::move(assumptions), timeout_s);
        if (!id.ok()) {
            response = err(id.status());
            return ProtocolAction::kContinue;
        }
        response = "OK JOB " + std::to_string(*id) + "\n";
        return ProtocolAction::kContinue;
    }

    if (verb == "STATUS") {
        uint64_t id = 0;
        if (toks.size() != 2 || !parse_u64(toks[1], id)) {
            response = err_invalid("usage: STATUS <job-id>");
            return ProtocolAction::kContinue;
        }
        Result<JobState> state = service_.job_state(id);
        if (!state.ok()) {
            response = err(state.status());
            return ProtocolAction::kContinue;
        }
        response = "OK STATUS " + std::to_string(id) + " " +
                   job_state_name(*state) + "\n";
        return ProtocolAction::kContinue;
    }

    if (verb == "RESULT") {
        uint64_t id = 0;
        double wait_s = -1.0;
        const bool ok = (toks.size() == 2 && parse_u64(toks[1], id)) ||
                        (toks.size() == 3 && parse_u64(toks[1], id) &&
                         parse_timeout(toks[2], wait_s));
        if (!ok) {
            response = err_invalid("usage: RESULT <job-id> [<wait_s>]");
            return ProtocolAction::kContinue;
        }
        Result<JobOutcome> outcome = service_.wait(id, wait_s);
        if (!outcome.ok()) {
            response = err(outcome.status());
            return ProtocolAction::kContinue;
        }
        response = outcome_line(*outcome);
        return ProtocolAction::kContinue;
    }

    if (verb == "CANCEL") {
        uint64_t id = 0;
        if (toks.size() != 2 || !parse_u64(toks[1], id)) {
            response = err_invalid("usage: CANCEL <job-id>");
            return ProtocolAction::kContinue;
        }
        const Status st = service_.cancel(id);
        response = st.ok() ? "OK\n" : err(st);
        return ProtocolAction::kContinue;
    }

    if (verb == "METRICS") {
        response = metrics_block(service_.stats());
        return ProtocolAction::kContinue;
    }

    response = err_invalid("unknown verb '" + verb + "'");
    return ProtocolAction::kContinue;
}

}  // namespace bosphorus::service
