// The bosphorusd wire protocol: newline-delimited request lines mapped
// onto a SolveService. Deliberately socket-free -- the server
// (src/service/server.h) and the tests both drive a ProtocolHandler with
// plain strings, so every verb is unit-testable in process.
//
// Requests are space-separated tokens; SUBMIT and SESSION OPEN carry an
// instance payload as a counted block of raw lines after the request
// line. Responses are a single "OK ..." or "ERR <CODE> <message>" line,
// except METRICS, whose "OK METRICS <n>" line is followed by n
// "<key> <value>" lines.
//
//   HELLO
//     -> OK bosphorusd <version>
//   SUBMIT <client> anf|cnf <timeout_s|-> <solver|-> <nlines>
//     <nlines> payload lines (ANF text / DIMACS)
//     -> OK JOB <id>
//   SESSION OPEN <client> <name> anf|cnf <nlines>  (+ payload)
//     -> OK
//   SESSION CLOSE <client> <name>
//     -> OK
//   ASSUME <client> <name> <timeout_s|-> <lit>...
//     lits are 1-based signed DIMACS-style: 3 assumes x3 = 1, -3 = 0
//     -> OK JOB <id>
//   STATUS <id>
//     -> OK STATUS <id> <state>
//   RESULT <id> [<wait_s>]
//     blocks until terminal (wait_s bounds the wait; default indefinite)
//     -> OK RESULT <id> <state> <verdict> <queued_s> <run_s> <solution|->
//        (for state=failed a trailing "<code>: <message>" field follows)
//   CANCEL <id>
//     -> OK
//   METRICS
//     -> OK METRICS <n>  (+ n "<key> <value>" lines)
//   SHUTDOWN
//     -> OK  (and the server stops accepting; existing connections close)
//   QUIT
//     -> OK  (closes this connection only)
//
// A client identity is fixed at the transport layer (the server assigns
// one per connection via set_forced_client, so tenants cannot spoof each
// other's lanes); the <client> token is then still required but ignored.
#pragma once

#include <functional>
#include <string>

#include "bosphorus/service.h"

namespace bosphorus::service {

/// What a handled request asks the transport to do next.
enum class ProtocolAction {
    kContinue,  ///< keep the connection open
    kQuit,      ///< close this connection
    kShutdown,  ///< stop the whole server (SHUTDOWN verb)
};

/// One connection's view of the protocol (stateless between requests
/// apart from the forced client identity). Not thread-safe; one handler
/// per connection.
class ProtocolHandler {
public:
    /// Reads the next raw payload line into `out`; false at end-of-input.
    using LineReader = std::function<bool(std::string& out)>;

    explicit ProtocolHandler(SolveService& service) : service_(service) {}

    /// Pin every request on this handler to one client lane, ignoring the
    /// <client> token of SUBMIT/SESSION/ASSUME. The server sets this per
    /// connection; empty (the default) trusts the request token.
    void set_forced_client(std::string client) {
        forced_client_ = std::move(client);
        force_client_ = true;
    }

    /// Handle one request line. `read_line` supplies payload lines for
    /// SUBMIT / SESSION OPEN; `response` receives the full response text
    /// (one or more '\n'-terminated lines). Never throws; malformed input
    /// becomes an ERR response.
    ProtocolAction handle(const std::string& request,
                          const LineReader& read_line, std::string& response);

private:
    std::string client_for(const std::string& token) const {
        return force_client_ ? forced_client_ : token;
    }

    SolveService& service_;
    std::string forced_client_;
    bool force_client_ = false;
};

}  // namespace bosphorus::service
