// A minimal Unix-domain-socket front end for the wire protocol: one
// accept loop, one thread per connection, one ProtocolHandler per
// connection (pinned to a per-connection client identity, so tenants
// cannot write into each other's lanes by sending a forged <client>
// token).
//
// Lifecycle is split so teardown never runs on a connection thread:
// `request_stop()` is async-signal-thread-safe in spirit (flag + cv) and
// is what SIGINT/SIGTERM handlers and the SHUTDOWN verb call; the thread
// parked in `wait()` -- bosphorusd's main -- then performs the actual
// teardown via `stop()`: close the listener, drain the SolveService
// (which cancels every job and unblocks RESULT waits), shut down the
// connection sockets, join the connection threads, unlink the path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bosphorus/service.h"
#include "service/protocol.h"

namespace bosphorus::service {

/// SIGPIPE-safe full write: send() with MSG_NOSIGNAL, retried over
/// EINTR and short writes. A peer that already hung up yields false with
/// errno == EPIPE instead of a process-killing signal, so one rude
/// client can never take a worker (or the daemon) down with it.
bool write_all_nosignal(int fd, const std::string& data);

/// Serve `service` over a Unix socket at `socket_path` (see file comment).
class SocketServer {
public:
    SocketServer(SolveService& service, std::string socket_path);
    /// Runs stop().
    ~SocketServer();

    SocketServer(const SocketServer&) = delete;
    SocketServer& operator=(const SocketServer&) = delete;

    /// Bind + listen + start the accept loop. Fails with kIoError when
    /// the socket cannot be bound, and refuses to clobber an existing
    /// path that is not a socket.
    Status start();

    /// Ask the server to stop; returns immediately. Callable from any
    /// thread (a signal-watcher thread, a connection thread handling the
    /// SHUTDOWN verb). The thread blocked in wait() wakes up and is
    /// expected to call stop().
    void request_stop();

    /// Block until request_stop() is called.
    void wait();

    /// Full teardown (see file comment). Must not be called from a
    /// connection thread -- call request_stop() there instead. Idempotent;
    /// concurrent callers serialise, later ones no-op.
    void stop();

private:
    void accept_loop();
    void serve_connection(int fd, uint64_t client_id);

    SolveService& service_;
    const std::string socket_path_;

    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::atomic<bool> stopping_{false};

    std::mutex mu_;  // guards conn_fds_ / conn_threads_ / next_client_
    std::vector<int> conn_fds_;  // live connections (owning thread erases)
    std::vector<std::thread> conn_threads_;
    uint64_t next_client_ = 1;

    std::mutex stop_mu_;  // serialises stop(); stopped_ = teardown done
    bool stopped_ = false;

    std::mutex wait_mu_;  // guards stop_requested_
    std::condition_variable wait_cv_;
    bool stop_requested_ = false;
};

}  // namespace bosphorus::service
