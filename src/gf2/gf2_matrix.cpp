#include "gf2/gf2_matrix.h"

#include <bit>

namespace bosphorus::gf2 {

long Matrix::first_set_in_row(size_t r) const {
    const uint64_t* p = row_ptr(r);
    for (size_t w = 0; w < words_per_row_; ++w) {
        if (p[w] != 0) {
            const long c = static_cast<long>(w * 64 + std::countr_zero(p[w]));
            return c < static_cast<long>(cols_) ? c : -1;
        }
    }
    return -1;
}

size_t Matrix::row_popcount(size_t r) const {
    const uint64_t* p = row_ptr(r);
    size_t n = 0;
    for (size_t w = 0; w < words_per_row_; ++w) n += std::popcount(p[w]);
    return n;
}

size_t Matrix::add_row() {
    data_.resize(data_.size() + words_per_row_, 0);
    return rows_++;
}

size_t Matrix::rref(std::vector<size_t>* pivot_cols) {
    // Big eliminations without a pivot-column request go through the
    // Four-Russians path; it produces the identical reduced matrix.
    if (!pivot_cols && rows_ >= 128 && cols_ >= 128) return rref_m4r();
    if (pivot_cols) pivot_cols->clear();
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < rows_; ++col) {
        // Find a pivot row at or below `rank` with a 1 in this column.
        size_t pivot = rows_;
        for (size_t r = rank; r < rows_; ++r) {
            if (get(r, col)) { pivot = r; break; }
        }
        if (pivot == rows_) continue;
        swap_rows(rank, pivot);
        // Eliminate the column from every other row (full Gauss-Jordan).
        for (size_t r = 0; r < rows_; ++r) {
            if (r != rank && get(r, col)) xor_row(r, rank);
        }
        if (pivot_cols) pivot_cols->push_back(col);
        ++rank;
    }
    return rank;
}

size_t Matrix::rref_m4r(unsigned k) {
    if (k < 1) k = 1;
    if (k > 16) k = 16;
    size_t rank = 0;
    size_t col = 0;
    std::vector<uint64_t> table;
    while (col < cols_ && rank < rows_) {
        // --- find up to k pivots starting at (rank, col) -----------------
        // Pivot rows are swapped up to rows rank..rank+k'-1 and kept in
        // RREF among themselves; candidate bits below are evaluated
        // against the block on the fly (no row writes until a pivot hits).
        std::vector<size_t> pcols;
        size_t c = col;
        while (c < cols_ && pcols.size() < k && rank + pcols.size() < rows_) {
            size_t found = SIZE_MAX;
            for (size_t r = rank + pcols.size(); r < rows_; ++r) {
                bool bit = get(r, c);
                for (size_t i = 0; i < pcols.size(); ++i) {
                    if (get(r, pcols[i])) bit ^= get(rank + i, c);
                }
                if (bit) {
                    found = r;
                    break;
                }
            }
            if (found == SIZE_MAX) {
                ++c;
                continue;
            }
            for (size_t i = 0; i < pcols.size(); ++i) {
                if (get(found, pcols[i])) xor_row(found, rank + i);
            }
            swap_rows(found, rank + pcols.size());
            for (size_t i = 0; i < pcols.size(); ++i) {
                if (get(rank + i, c)) xor_row(rank + i, rank + pcols.size());
            }
            pcols.push_back(c);
            ++c;
        }
        if (pcols.empty()) break;  // remaining rows are zero
        const size_t kk = pcols.size();

        // --- table of all 2^kk combinations of the pivot rows ------------
        table.assign((size_t{1} << kk) * words_per_row_, 0);
        for (uint32_t idx = 1; idx < (1u << kk); ++idx) {
            const uint32_t low = idx & (idx - 1);
            const int i = std::countr_zero(idx ^ low);
            uint64_t* dst = table.data() + size_t{idx} * words_per_row_;
            const uint64_t* src = table.data() + size_t{low} * words_per_row_;
            const uint64_t* prow = row_ptr(rank + static_cast<size_t>(i));
            for (size_t w = 0; w < words_per_row_; ++w)
                dst[w] = src[w] ^ prow[w];
        }

        // --- clear the pivot columns from every other row ----------------
        for (size_t r = 0; r < rows_; ++r) {
            if (r >= rank && r < rank + kk) continue;
            uint32_t idx = 0;
            for (size_t i = 0; i < kk; ++i)
                idx |= static_cast<uint32_t>(get(r, pcols[i])) << i;
            if (idx == 0) continue;
            const uint64_t* src = table.data() + size_t{idx} * words_per_row_;
            uint64_t* dst = row_ptr(r);
            for (size_t w = 0; w < words_per_row_; ++w) dst[w] ^= src[w];
        }
        rank += kk;
        col = pcols.back() + 1;
    }
    return rank;
}

size_t Matrix::row_echelon() {
    size_t rank = 0;
    for (size_t col = 0; col < cols_ && rank < rows_; ++col) {
        size_t pivot = rows_;
        for (size_t r = rank; r < rows_; ++r) {
            if (get(r, col)) { pivot = r; break; }
        }
        if (pivot == rows_) continue;
        swap_rows(rank, pivot);
        for (size_t r = rank + 1; r < rows_; ++r) {
            if (get(r, col)) xor_row(r, rank);
        }
        ++rank;
    }
    return rank;
}

std::vector<std::vector<bool>> Matrix::nullspace() {
    std::vector<size_t> pivots;
    const size_t rank = rref(&pivots);

    // Mark pivot columns; the rest are free.
    std::vector<long> pivot_row_of_col(cols_, -1);
    for (size_t i = 0; i < rank; ++i) pivot_row_of_col[pivots[i]] = (long)i;

    std::vector<std::vector<bool>> basis;
    for (size_t free_col = 0; free_col < cols_; ++free_col) {
        if (pivot_row_of_col[free_col] >= 0) continue;
        std::vector<bool> v(cols_, false);
        v[free_col] = true;
        // Each pivot variable equals the sum of the free variables appearing
        // in its (fully reduced) row.
        for (size_t i = 0; i < rank; ++i) {
            if (get(i, free_col)) v[pivots[i]] = true;
        }
        basis.push_back(std::move(v));
    }
    return basis;
}

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
    Matrix c(a.rows(), b.cols());
    for (size_t i = 0; i < a.rows(); ++i) {
        uint64_t* dst = c.row_ptr(i);
        for (size_t k = 0; k < a.cols(); ++k) {
            if (!a.get(i, k)) continue;
            const uint64_t* src = b.row_ptr(k);
            for (size_t w = 0; w < c.words_per_row_; ++w) dst[w] ^= src[w];
        }
    }
    return c;
}

Matrix Matrix::identity(size_t n) {
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i) m.set(i, i, true);
    return m;
}

Matrix Matrix::random(size_t rows, size_t cols, Rng& rng) {
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.coin()) m.set(r, c, true);
    return m;
}

}  // namespace bosphorus::gf2
