// Dense GF(2) matrices with bit-packed rows and Gauss-Jordan elimination.
//
// This module substitutes for M4RI in the original Bosphorus: it provides the
// dense Boolean linear algebra needed by eXtended Linearization (XL), ElimLin
// and the S-box implicit-quadratic derivation.  Rows are packed 64 bits per
// machine word, so row-XOR (the inner loop of elimination) runs word-parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace bosphorus::gf2 {

/// Dense matrix over GF(2). Rows are bit-packed into 64-bit words.
///
/// The elimination routines implement plain word-sliced Gauss-Jordan; for the
/// matrix sizes Bosphorus produces (up to ~2^17 x 2^17 in the default
/// configuration) this is within a small constant factor of M4RI's Method of
/// Four Russians while being considerably simpler to verify.
class Matrix {
public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64),
          data_(rows * words_per_row_, 0) {}

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    bool get(size_t r, size_t c) const {
        return (word(r, c / 64) >> (c % 64)) & 1ULL;
    }

    void set(size_t r, size_t c, bool v) {
        uint64_t& w = word(r, c / 64);
        const uint64_t mask = 1ULL << (c % 64);
        if (v) w |= mask; else w &= ~mask;
    }

    void flip(size_t r, size_t c) { word(r, c / 64) ^= 1ULL << (c % 64); }

    /// rows_[dst] ^= rows_[src]
    void xor_row(size_t dst, size_t src) {
        uint64_t* d = row_ptr(dst);
        const uint64_t* s = row_ptr(src);
        for (size_t w = 0; w < words_per_row_; ++w) d[w] ^= s[w];
    }

    void swap_rows(size_t a, size_t b) {
        if (a == b) return;
        uint64_t* pa = row_ptr(a);
        uint64_t* pb = row_ptr(b);
        for (size_t w = 0; w < words_per_row_; ++w) std::swap(pa[w], pb[w]);
    }

    bool row_is_zero(size_t r) const {
        const uint64_t* p = row_ptr(r);
        for (size_t w = 0; w < words_per_row_; ++w)
            if (p[w] != 0) return false;
        return true;
    }

    /// Column index of the first set bit in row r, or -1 if the row is zero.
    long first_set_in_row(size_t r) const;

    /// Number of set bits in row r.
    size_t row_popcount(size_t r) const;

    /// Append a zero row and return its index.
    size_t add_row();

    /// In-place reduced row echelon form (Gauss-Jordan elimination).
    /// Returns the rank. `pivot_cols`, if non-null, receives the pivot column
    /// of row i for i < rank, in increasing order. Large matrices without a
    /// pivot-column request are dispatched to the Method of Four Russians.
    size_t rref(std::vector<size_t>* pivot_cols = nullptr);

    /// Method of Four Russians RREF (the M4RI algorithm): pivots are found
    /// k at a time, all 2^k combinations of the pivot rows are tabulated,
    /// and every other row is cleared with a single table lookup + row XOR.
    /// Word-for-word the same result as plain rref().
    size_t rref_m4r(unsigned k = 8);

    /// Row echelon form only (no back-substitution). Returns rank.
    size_t row_echelon();

    /// Basis of the right nullspace: each returned row vector v satisfies
    /// M v = 0. The matrix is left in RREF.
    std::vector<std::vector<bool>> nullspace();

    /// C = A * B over GF(2). Requires A.cols() == B.rows().
    static Matrix multiply(const Matrix& a, const Matrix& b);

    static Matrix identity(size_t n);

    static Matrix random(size_t rows, size_t cols, Rng& rng);

    bool operator==(const Matrix& o) const {
        return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
    }

private:
    uint64_t& word(size_t r, size_t w) { return data_[r * words_per_row_ + w]; }
    const uint64_t& word(size_t r, size_t w) const {
        return data_[r * words_per_row_ + w];
    }
    uint64_t* row_ptr(size_t r) { return data_.data() + r * words_per_row_; }
    const uint64_t* row_ptr(size_t r) const {
        return data_.data() + r * words_per_row_;
    }

    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t words_per_row_ = 0;
    std::vector<uint64_t> data_;
};

}  // namespace bosphorus::gf2
