// bosphorus -- command-line front-end, mirroring the original tool's usage:
//
//   bosphorus --anf problem.anf [--cnf out.cnf] [--anfout out.anf] [opts]
//   bosphorus --cnfin problem.cnf [--cnf out.cnf] [opts]
//   bosphorus --solve            run the full pipeline and report SAT/UNSAT
//
// Options mirror the paper's parameters: -M, -D (xl degree), -K (karnaugh),
// -L (xor cut), --lp (clause cut), -C (conflict budget start), --maxiters,
// --timeout, --seed, -v.
//
// Built on the library facade: the input file loads into a
// bosphorus::Problem, the learning loop is a bosphorus::Engine, and all
// failures arrive as structured Status values instead of exceptions.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include <vector>

#include "anf/anf_parser.h"
#include "bosphorus/bosphorus.h"
#include "runtime/thread_pool.h"
#include "sat/dimacs.h"
#include "sat/inprocess/profiles.h"
#include "sat/solve_cnf.h"
#include "util/fault.h"
#include "util/timer.h"

namespace {

using namespace bosphorus;

void usage() {
    std::puts(
        "bosphorus: bridging ANF and CNF solvers (DATE'19 reproduction)\n"
        "\n"
        "usage:\n"
        "  bosphorus --anf FILE   [options]   process an ANF problem\n"
        "  bosphorus --cnfin FILE [options]   process a CNF problem\n"
        "  bosphorus --stream-preprocess IN OUT [options]\n"
        "                  out-of-core CNF preprocessing: stream IN through\n"
        "                  XOR recovery + simplification into OUT under a\n"
        "                  hard memory budget (IN may far exceed RAM)\n"
        "\n"
        "streaming options:\n"
        "  --memory-budget N[K|M|G]  pipeline memory target (default 64M)\n"
        "  --stream-xor-len N   max XOR length recovered per window (4)\n"
        "  --stream-rounds N    fact-discovery scans before the window\n"
        "                       pass (2)\n"
        "  --stream-no-bve      disable windowed variable elimination\n"
        "                       (output then preserves the model set)\n"
        "  --stream-plain-cnf   expand XORs to clauses instead of \"x\"\n"
        "                       lines (output fit for any DIMACS solver)\n"
        "\n"
        "output:\n"
        "  --cnf FILE      write processed CNF (with learnt facts)\n"
        "  --anfout FILE   write processed ANF\n"
        "  --solve         run a back-end SAT solver on the processed CNF\n"
        "  --solver SPEC   back-end from the registry: minisat | lingeling\n"
        "                  | cms (default) | dimacs-exec:CMD | any\n"
        "                  registered name\n"
        "  --solver-cmd CMD  shorthand for --solver dimacs-exec:CMD (run\n"
        "                  an external DIMACS solver binary; the CNF file\n"
        "                  path is appended as its last argument)\n"
        "  --loop-solver SPEC  back end of the in-loop conflict-bounded\n"
        "                  SAT step (default: the built-in native solver)\n"
        "  --list-solvers  print the registered back-ends and exit\n"
        "\n"
        "concurrency:\n"
        "  --batch FILE... process many instances across a thread pool\n"
        "                  (*.cnf loads as CNF, anything else as ANF)\n"
        "  --portfolio     race 4 technique configs on one instance;\n"
        "                  first decisive finisher cancels the rest\n"
        "  --cooperative   portfolio/sweep workers share learnt facts\n"
        "                  through a lock-free pool instead of racing\n"
        "                  isolated (verdicts stay identical; per-run\n"
        "                  determinism is relaxed)\n"
        "  --threads N     worker threads (default: hardware concurrency;\n"
        "                  requests beyond the core count are clamped)\n"
        "\n"
        "incremental solving:\n"
        "  --assume FILE   solve under the assumptions in FILE (signed\n"
        "                  1-based DIMACS-style literals: '5' fixes x5=1,\n"
        "                  '-5' fixes x5=0; '0' terminators optional)\n"
        "  --sweep FILE    one assumption set per line; sweeps all of them\n"
        "                  over ONE shared simplified base system through\n"
        "                  warm-started incremental Sessions\n"
        "\n"
        "parameters (paper section IV defaults):\n"
        "  -M N            XL/ElimLin sample budget exponent (30)\n"
        "  -D N            XL expansion degree (1)\n"
        "  -K N            Karnaugh variable limit (8)\n"
        "  -L N            XOR cutting length (5)\n"
        "  --lp N          clause cutting length L' (5)\n"
        "  -C N            SAT conflict budget start (10000)\n"
        "  --maxiters N    max outer-loop iterations (64)\n"
        "  --timeout S     Bosphorus time budget in seconds (1000)\n"
        "  --no-xl / --no-el / --no-sat   disable a learning step\n"
        "  --sat-profile P  native in-loop solver profile: auto (default,\n"
        "                  feature-driven, re-evaluated per solve) | fixed\n"
        "                  | balanced | crypto-xor | agile-restart |\n"
        "                  heavy-tail\n"
        "  --sat-restart-base N  Luby restart unit in conflicts (100);\n"
        "                  implies --sat-profile fixed unless a profile is\n"
        "                  given explicitly\n"
        "  --sat-db-floor N      learnt-DB local-tier cap floor (1000);\n"
        "                  same implied-fixed rule\n"
        "  --no-inprocess  disable native-solver in-processing entirely\n"
        "                  (vivification, tiered learnt DB, profiles)\n"
        "  --gb            enable the Groebner (Buchberger/F4) step\n"
        "  --seed N        RNG seed (1)\n"
        "  --fault-plan P  arm deterministic fault injection, e.g.\n"
        "                  'backend-crash=0.3,seed=7' (testing; also via\n"
        "                  the BOSPHORUS_FAULT_PLAN environment variable)\n"
        "  -v N            verbosity (0)\n"
        "  --version       print the library version and exit\n");
}

int fail(const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 2;
}

/// Parse "64M" / "512K" / "2G" / "1048576" into bytes. Throws
/// std::invalid_argument (caught by main's backstop) on malformed input.
uint64_t parse_bytes(const std::string& text) {
    size_t pos = 0;
    const unsigned long long n = std::stoull(text, &pos);
    uint64_t mult = 1;
    if (pos < text.size()) {
        const char suffix = static_cast<char>(std::toupper(text[pos]));
        if (suffix == 'K') mult = 1ull << 10;
        else if (suffix == 'M') mult = 1ull << 20;
        else if (suffix == 'G') mult = 1ull << 30;
        else throw std::invalid_argument("bad size suffix in '" + text + "'");
        if (pos + 1 < text.size() &&
            !(pos + 2 == text.size() && std::toupper(text[pos + 1]) == 'B'))
            throw std::invalid_argument("bad size '" + text + "'");
    }
    return n * mult;
}

/// `--stream-preprocess IN OUT`: run the out-of-core pipeline and report
/// its counters; exit 20 if preprocessing refuted the formula.
int run_stream_preprocess(const std::string& in_path,
                          const std::string& out_path,
                          const StreamPreprocessConfig& cfg, int verbosity) {
    StreamPreprocessConfig run_cfg = cfg;
    if (verbosity > 0) {
        run_cfg.on_progress = [](const StreamProgress& p) {
            const char* phase = p.phase == StreamPhase::kDiscover ? "discover"
                                : p.phase == StreamPhase::kCount  ? "count"
                                                                  : "window";
            std::fprintf(stderr,
                         "c stream: %s round=%llu %llu/%llu bytes, "
                         "%llu clauses, %llu windows\r",
                         phase, static_cast<unsigned long long>(p.round),
                         static_cast<unsigned long long>(p.bytes_read),
                         static_cast<unsigned long long>(p.bytes_total),
                         static_cast<unsigned long long>(p.clauses_seen),
                         static_cast<unsigned long long>(p.windows_flushed));
        };
    }
    StreamPreprocessor pp(run_cfg);
    const Result<StreamPreprocessStats> stats = pp.run(in_path, out_path);
    if (verbosity > 0) std::fputc('\n', stderr);
    if (!stats.ok()) return fail(stats.status());
    std::printf("%s\n", stream_summary_line(*stats).c_str());
    if (stats->verdict == sat::Result::kUnsat) {
        std::puts("s UNSATISFIABLE");
        return 20;
    }
    return 0;
}

const char* verdict_name(sat::Result r) {
    if (r == sat::Result::kSat) return "SAT";
    if (r == sat::Result::kUnsat) return "UNSAT";
    return "UNKNOWN";
}

void print_model(const std::vector<bool>& solution, size_t num_vars) {
    std::printf("v");
    for (size_t v = 0; v < num_vars && v < solution.size(); ++v)
        std::printf(" %s%zu", solution[v] ? "" : "-", v + 1);
    std::printf(" 0\n");
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
    // Library failures arrive as Status values; this backstop catches what
    // does not (std::stoul on malformed numeric options, bad_alloc, ...).
    try {
        return run(argc, argv);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 2;
    }
}

namespace {

/// Everything the plain and portfolio paths share downstream of a Report:
/// write --anfout/--cnf, report the engine's own verdict, optionally run
/// the back-end solver (--solve) on the processed CNF.
struct OutputOptions {
    std::string cnf_out;
    std::string anf_out;
    bool solve_after = false;
    sat::SolverSpec solver;
};
int finish_run(const Report& res, const OutputOptions& out_opt,
               size_t problem_vars);

int run_batch(const std::vector<std::string>& files, const EngineConfig& opt,
              unsigned n_threads);
int run_portfolio(const Problem& problem, const EngineConfig& opt,
                  unsigned n_threads, size_t problem_vars,
                  const OutputOptions& out_opt);
int run_assume(const Problem& problem, const EngineConfig& opt,
               const std::string& assume_file, size_t problem_vars,
               const OutputOptions& out_opt);
int run_sweep(const Problem& problem, const EngineConfig& opt,
              const std::string& sweep_file, unsigned n_threads);

int run(int argc, char** argv) {
    std::string anf_in, cnf_in, cnf_out, anf_out;
    std::string solver_name = sat::kDefaultSolverName;
    std::string assume_file, sweep_file;
    std::string stream_in, stream_out;
    StreamPreprocessConfig stream_cfg;
    bool solve_after = false;
    bool batch_mode = false;
    bool portfolio_mode = false;
    unsigned n_threads = 0;  // 0 = hardware concurrency
    std::vector<std::string> batch_files;
    EngineConfig opt;
    bool sat_profile_explicit = false;
    bool sat_knob_explicit = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--anf") anf_in = next();
        else if (a == "--stream-preprocess") {
            stream_in = next();
            stream_out = next();
        }
        else if (a == "--memory-budget")
            stream_cfg.memory_budget_bytes = parse_bytes(next());
        else if (a == "--stream-xor-len")
            stream_cfg.xor_max_len = std::stoull(next());
        else if (a == "--stream-rounds")
            stream_cfg.discovery_rounds = std::stoi(next());
        else if (a == "--stream-no-bve") stream_cfg.window_bve = false;
        else if (a == "--stream-plain-cnf") stream_cfg.emit_xor_lines = false;
        else if (a == "--version") {
            std::printf("bosphorus %s (DATE'19 reproduction)\n", version());
            return 0;
        }
        else if (a == "--assume") assume_file = next();
        else if (a == "--sweep") sweep_file = next();
        else if (a == "--batch") batch_mode = true;
        else if (a == "--portfolio") portfolio_mode = true;
        else if (a == "--cooperative") opt.cooperative = true;
        else if (a == "--threads") n_threads = std::stoul(next());
        else if (batch_mode && !a.empty() && a[0] != '-')
            batch_files.push_back(a);
        else if (a == "--cnfin") cnf_in = next();
        else if (a == "--cnf") cnf_out = next();
        else if (a == "--anfout") anf_out = next();
        else if (a == "--solve") solve_after = true;
        else if (a == "--solver") solver_name = next();
        else if (a == "--solver-cmd") solver_name = "dimacs-exec:" + next();
        else if (a == "--loop-solver") opt.sat_backend = next();
        else if (a == "--list-solvers") {
            for (const auto& info : sat::BackendRegistry::global().list()) {
                std::printf("%-12s %s%s\n", info.name.c_str(),
                            info.description.c_str(),
                            info.builtin ? "" : " (user-registered)");
            }
            return 0;
        }
        else if (a == "-M") {
            const unsigned m = std::stoul(next());
            opt.xl.m_budget = m;
            opt.elimlin.m_budget = m;
        } else if (a == "-D") opt.xl.degree = std::stoul(next());
        else if (a == "-K") opt.conv.karnaugh_k = std::stoul(next());
        else if (a == "-L") opt.conv.xor_cut = std::stoul(next());
        else if (a == "--lp") opt.clause_cut = std::stoul(next());
        else if (a == "-C") opt.sat_conflicts_start = std::stoll(next());
        else if (a == "--maxiters") opt.max_iterations = std::stoul(next());
        else if (a == "--timeout") opt.time_budget_s = std::stod(next());
        else if (a == "--gb") opt.use_groebner = true;
        else if (a == "--sat-profile") {
            opt.sat_profile = next();
            sat::inprocess::ProfileId pid;
            if (!sat::inprocess::profile_from_name(opt.sat_profile, pid)) {
                std::fprintf(stderr, "unknown --sat-profile: %s\n",
                             opt.sat_profile.c_str());
                usage();
                return 2;
            }
            sat_profile_explicit = true;
        }
        else if (a == "--sat-restart-base") {
            opt.sat_restart_base = std::stoi(next());
            sat_knob_explicit = true;
        }
        else if (a == "--sat-db-floor") {
            opt.sat_learnt_db_floor = std::stoll(next());
            sat_knob_explicit = true;
        }
        else if (a == "--no-inprocess") opt.sat_inprocess = false;
        else if (a == "--no-xl") opt.use_xl = false;
        else if (a == "--no-el") opt.use_elimlin = false;
        else if (a == "--no-sat") opt.use_sat = false;
        else if (a == "--seed") opt.seed = std::stoull(next());
        else if (a == "--fault-plan") {
            const Status fs = fault::FaultInjector::global().arm(next());
            if (!fs.ok()) return fail(fs);
        }
        else if (a == "-v") opt.verbosity = std::stoi(next());
        else if (a == "-h" || a == "--help") { usage(); return 0; }
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    // Explicit solver knobs are dead weight while a profile overrides
    // them: --sat-restart-base / --sat-db-floor imply --sat-profile fixed
    // unless a profile was named explicitly.
    if (sat_knob_explicit && !sat_profile_explicit) opt.sat_profile = "fixed";
    if (batch_mode) {
        if (batch_files.empty()) {
            std::fprintf(stderr, "--batch needs at least one input file\n");
            return 2;
        }
        // Refuse flag combinations batch mode would otherwise silently
        // drop (per-instance outputs / back-end solving / portfolio).
        if (solve_after || portfolio_mode || !cnf_out.empty() ||
            !anf_out.empty() || !assume_file.empty() || !sweep_file.empty()) {
            std::fprintf(stderr,
                         "--batch does not support --solve, --portfolio, "
                         "--cnf, --anfout, --assume or --sweep\n");
            return 2;
        }
        return run_batch(batch_files, opt, n_threads);
    }
    if (!stream_in.empty()) {
        if (!anf_in.empty() || !cnf_in.empty() || solve_after ||
            portfolio_mode || !cnf_out.empty() || !anf_out.empty() ||
            !assume_file.empty() || !sweep_file.empty()) {
            std::fprintf(stderr,
                         "--stream-preprocess is a standalone mode (only "
                         "--memory-budget / --stream-* / -v apply)\n");
            return 2;
        }
        return run_stream_preprocess(stream_in, stream_out, stream_cfg,
                                     opt.verbosity);
    }
    if (anf_in.empty() == cnf_in.empty()) {
        usage();
        return 2;
    }

    const sat::SolverSpec solver_spec{solver_name};
    // Validate the back-end (and --loop-solver) up front: a typo should
    // fail before any solving starts, not after the engine ran.
    {
        auto probe = sat::BackendRegistry::global().create(solver_spec);
        if (!probe.ok()) return fail(probe.status());
    }
    if (!opt.sat_backend.empty()) {
        auto probe = sat::BackendRegistry::global().create(
            sat::SolverSpec{opt.sat_backend});
        if (!probe.ok()) return fail(probe.status());
    }

    Result<Problem> problem = anf_in.empty()
                                  ? Problem::from_cnf_file(cnf_in)
                                  : Problem::from_anf_file(anf_in);
    if (!problem.ok()) return fail(problem.status());
    const size_t problem_vars = problem->num_vars();

    OutputOptions out_opt;
    out_opt.cnf_out = cnf_out;
    out_opt.anf_out = anf_out;
    out_opt.solve_after = solve_after;
    out_opt.solver = solver_spec;

    if (!sweep_file.empty()) {
        if (portfolio_mode || solve_after || !cnf_out.empty() ||
            !anf_out.empty() || !assume_file.empty()) {
            std::fprintf(stderr,
                         "--sweep does not support --solve, --portfolio, "
                         "--cnf, --anfout or --assume\n");
            return 2;
        }
        return run_sweep(*problem, opt, sweep_file, n_threads);
    }
    if (!assume_file.empty()) {
        if (portfolio_mode) {
            std::fprintf(stderr, "--assume does not support --portfolio\n");
            return 2;
        }
        return run_assume(*problem, opt, assume_file, problem_vars, out_opt);
    }

    if (portfolio_mode)
        return run_portfolio(*problem, opt, n_threads, problem_vars, out_opt);

    Engine engine(opt);
    const Result<Report> run = engine.run(*problem);
    if (!run.ok()) return fail(run.status());
    const Report& res = *run;

    std::fprintf(stderr, "c engine: %zu iterations, %.2fs; facts:",
                 res.iterations, res.seconds);
    for (const auto& t : res.techniques)
        std::fprintf(stderr, " %s=%zu", t.name.c_str(), t.facts);
    std::fprintf(stderr, "; vars fixed=%zu replaced=%zu\n", res.vars_fixed,
                 res.vars_replaced);

    return finish_run(res, out_opt, problem_vars);
}

int finish_run(const Report& res, const OutputOptions& out_opt,
               size_t problem_vars) {
    if (!out_opt.anf_out.empty()) {
        std::ofstream out(out_opt.anf_out);
        if (!out)
            return fail(Status::io_error("cannot write " + out_opt.anf_out));
        anf::write_system(out, res.processed_anf);
    }
    if (!out_opt.cnf_out.empty()) {
        std::ofstream out(out_opt.cnf_out);
        if (!out)
            return fail(Status::io_error("cannot write " + out_opt.cnf_out));
        sat::write_dimacs(out, res.processed_cnf.cnf);
    }

    if (res.verdict == sat::Result::kUnsat) {
        std::puts("s UNSATISFIABLE");
        return 20;
    }
    if (res.verdict == sat::Result::kSat) {
        std::puts("s SATISFIABLE");
        print_model(res.solution, problem_vars);
        return 10;
    }

    if (out_opt.solve_after) {
        const Result<sat::CnfSolveOutcome> so =
            sat::solve_cnf_with(res.processed_cnf.cnf, out_opt.solver);
        if (!so.ok()) return fail(so.status());
        if (so->result == sat::Result::kUnsat) {
            std::puts("s UNSATISFIABLE");
            return 20;
        }
        if (so->result == sat::Result::kSat) {
            std::puts("s SATISFIABLE");
            std::vector<bool> solution(so->model.size());
            for (size_t v = 0; v < so->model.size(); ++v)
                solution[v] = so->model[v] == sat::LBool::kTrue;
            print_model(solution, problem_vars);
            return 10;
        }
        std::puts("s UNKNOWN");
        return 0;
    }

    std::puts("s UNKNOWN");
    return 0;
}

/// `--batch`: every input file becomes a Problem (*.cnf/*.dimacs load as
/// DIMACS, everything else as ANF text) and the whole set runs through
/// BatchEngine across the thread pool. Per-file verdict lines go to
/// stdout; a machine-greppable summary closes the run.
int run_batch(const std::vector<std::string>& files, const EngineConfig& opt,
              unsigned n_threads) {
    auto is_cnf = [](const std::string& f) {
        return f.ends_with(".cnf") || f.ends_with(".dimacs");
    };

    std::vector<Problem> problems;
    problems.reserve(files.size());
    for (const auto& f : files) {
        Result<Problem> p =
            is_cnf(f) ? Problem::from_cnf_file(f) : Problem::from_anf_file(f);
        if (!p.ok()) return fail(p.status());
        problems.push_back(std::move(*p));
    }

    const Timer timer;
    BatchEngine batch(opt);
    const std::vector<Result<Report>> results =
        batch.solve_all(problems, n_threads);

    size_t n_sat = 0, n_unsat = 0, n_unknown = 0, n_error = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (!r.ok()) {
            ++n_error;
            std::printf("i %zu %s ERROR %s\n", i, files[i].c_str(),
                        r.status().to_string().c_str());
            continue;
        }
        if (r->verdict == sat::Result::kSat) ++n_sat;
        else if (r->verdict == sat::Result::kUnsat) ++n_unsat;
        else ++n_unknown;
        std::printf("i %zu %s %s iters=%zu facts=%zu %.2fs\n", i,
                    files[i].c_str(), verdict_name(r->verdict), r->iterations,
                    r->total_facts(), r->seconds);
    }
    std::printf(
        "c batch: %zu instances, %u threads, sat=%zu unsat=%zu unknown=%zu "
        "error=%zu, %.2fs wall\n",
        results.size(), BatchEngine::threads_for(results.size(), n_threads),
        n_sat, n_unsat, n_unknown, n_error, timer.seconds());
    return n_error == 0 ? 0 : 2;
}

/// Parse one whitespace-separated run of signed 1-based DIMACS-style
/// literals ("5" = x5 := 1, "-5" = x5 := 0; "0" terminators and blank
/// tokens ignored) into (var, value) assumptions.
Result<AssumptionSet> parse_assumptions(const std::string& text,
                                        const std::string& where) {
    AssumptionSet set;
    std::istringstream in(text);
    long long lit = 0;
    while (in >> lit) {
        if (lit == 0) continue;
        const long long v = lit > 0 ? lit : -lit;
        if (v - 1 > static_cast<long long>(
                        std::numeric_limits<anf::Var>::max())) {
            return Status::parse_error(where + ": literal " +
                                       std::to_string(lit) +
                                       " exceeds the variable index range");
        }
        set.emplace_back(static_cast<anf::Var>(v - 1), lit > 0);
    }
    if (!in.eof())
        return Status::parse_error(where + ": expected signed integer "
                                           "literals (e.g. '5 -7 0')");
    return set;
}

/// `--assume FILE`: the whole file is one assumption set, applied to the
/// problem through a Session before a single solve; downstream output
/// handling (--cnf/--anfout/--solve, verdict, exit code) matches a plain
/// run exactly.
int run_assume(const Problem& problem, const EngineConfig& opt,
               const std::string& assume_file, size_t problem_vars,
               const OutputOptions& out_opt) {
    std::ifstream in(assume_file);
    if (!in) return fail(Status::io_error("cannot read " + assume_file));
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Result<AssumptionSet> set =
        parse_assumptions(buffer.str(), assume_file);
    if (!set.ok()) return fail(set.status());

    Session session(problem, opt);
    for (const auto& [var, value] : *set) {
        const Status s = session.assume(var, value);
        if (!s.ok()) return fail(s);
    }
    const Result<Report> run = session.solve();
    if (!run.ok()) return fail(run.status());

    std::fprintf(stderr,
                 "c session: %zu assumptions, %zu iterations, %.2fs; "
                 "vars fixed=%zu replaced=%zu\n",
                 set->size(), run->iterations, run->seconds, run->vars_fixed,
                 run->vars_replaced);
    return finish_run(*run, out_opt, problem_vars);
}

/// `--sweep FILE`: every non-comment line is one assumption set; all of
/// them run through BatchEngine::solve_all_incremental over one shared
/// base system. Per-candidate verdict lines go to stdout; a
/// machine-greppable summary closes the run.
int run_sweep(const Problem& problem, const EngineConfig& opt,
              const std::string& sweep_file, unsigned n_threads) {
    std::ifstream in(sweep_file);
    if (!in) return fail(Status::io_error("cannot read " + sweep_file));

    std::vector<AssumptionSet> candidates;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        if (line[first] == '#' || line[first] == 'c') continue;
        Result<AssumptionSet> set = parse_assumptions(
            line, sweep_file + " line " + std::to_string(line_no));
        if (!set.ok()) return fail(set.status());
        candidates.push_back(std::move(*set));
    }
    if (candidates.empty()) {
        std::fprintf(stderr, "--sweep: no assumption sets in %s\n",
                     sweep_file.c_str());
        return 2;
    }

    EngineConfig sweep_opt = opt;
    sweep_opt.emit_processed = false;  // sweeps only consume verdicts

    const Timer timer;
    BatchEngine batch(sweep_opt);
    const std::vector<Result<Report>> results =
        batch.solve_all_incremental(problem, candidates, n_threads);

    size_t n_sat = 0, n_unsat = 0, n_unknown = 0, n_error = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i];
        if (!r.ok()) {
            ++n_error;
            std::printf("a %zu ERROR %s\n", i, r.status().to_string().c_str());
            continue;
        }
        if (r->verdict == sat::Result::kSat) ++n_sat;
        else if (r->verdict == sat::Result::kUnsat) ++n_unsat;
        else ++n_unknown;
        std::printf("a %zu %s iters=%zu facts=%zu %.3fs", i,
                    verdict_name(r->verdict), r->iterations, r->total_facts(),
                    r->seconds);
        if (r->verdict == sat::Result::kSat) {
            std::printf(" model");
            for (size_t v = 0; v < problem.num_vars() &&
                               v < r->solution.size(); ++v)
                std::printf(" %s%zu", r->solution[v] ? "" : "-", v + 1);
        }
        std::printf("\n");
    }
    std::printf(
        "c sweep: %zu candidates, %u threads, sat=%zu unsat=%zu unknown=%zu "
        "error=%zu, %.2fs wall\n",
        results.size(), BatchEngine::threads_for(results.size(), n_threads),
        n_sat, n_unsat, n_unknown, n_error, timer.seconds());
    return n_error == 0 ? 0 : 2;
}

/// `--portfolio`: race the standard four configurations (see
/// default_portfolio) on one instance; then treat the winner's Report
/// exactly like a plain run's -- --cnf/--anfout/--solve all apply -- so
/// scripts cannot tell it from a plain run.
int run_portfolio(const Problem& problem, const EngineConfig& opt,
                  unsigned n_threads, size_t problem_vars,
                  const OutputOptions& out_opt) {
    const std::vector<PortfolioEntry> entries = default_portfolio(opt);
    const Result<PortfolioReport> run =
        solve_portfolio(problem, entries, n_threads);
    if (!run.ok()) return fail(run.status());

    for (const auto& o : run->outcomes) {
        std::fprintf(stderr,
                     "c portfolio: %-13s %-7s %s iters=%zu facts=%zu %.2fs\n",
                     o.name.c_str(), verdict_name(o.verdict),
                     o.errored ? "error" : o.interrupted ? "cancelled"
                                                         : "finished",
                     o.iterations, o.facts, o.seconds);
    }
    if (opt.cooperative) {
        std::fprintf(stderr,
                     "c portfolio: shared pool: %llu facts (%llu duplicate "
                     "publishes suppressed)\n",
                     static_cast<unsigned long long>(run->facts_shared),
                     static_cast<unsigned long long>(run->facts_suppressed));
    }
    std::fprintf(stderr, "c portfolio winner: %s (%.2fs total)\n",
                 run->winner_name.c_str(), run->seconds);

    return finish_run(run->report, out_opt, problem_vars);
}

}  // namespace
