// bosphorus -- command-line front-end, mirroring the original tool's usage:
//
//   bosphorus --anf problem.anf [--cnf out.cnf] [--anfout out.anf] [opts]
//   bosphorus --cnfin problem.cnf [--cnf out.cnf] [opts]
//   bosphorus --solve            run the full pipeline and report SAT/UNSAT
//
// Options mirror the paper's parameters: -M, -D (xl degree), -K (karnaugh),
// -L (xor cut), --lp (clause cut), -C (conflict budget start), --maxiters,
// --timeout, --seed, -v.
//
// Built on the library facade: the input file loads into a
// bosphorus::Problem, the learning loop is a bosphorus::Engine, and all
// failures arrive as structured Status values instead of exceptions.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "anf/anf_parser.h"
#include "bosphorus/bosphorus.h"
#include "sat/dimacs.h"
#include "sat/solve_cnf.h"

namespace {

using namespace bosphorus;

void usage() {
    std::puts(
        "bosphorus: bridging ANF and CNF solvers (DATE'19 reproduction)\n"
        "\n"
        "usage:\n"
        "  bosphorus --anf FILE   [options]   process an ANF problem\n"
        "  bosphorus --cnfin FILE [options]   process a CNF problem\n"
        "\n"
        "output:\n"
        "  --cnf FILE      write processed CNF (with learnt facts)\n"
        "  --anfout FILE   write processed ANF\n"
        "  --solve         run a back-end SAT solver on the processed CNF\n"
        "  --solver NAME   minisat | lingeling | cms (default cms)\n"
        "\n"
        "parameters (paper section IV defaults):\n"
        "  -M N            XL/ElimLin sample budget exponent (30)\n"
        "  -D N            XL expansion degree (1)\n"
        "  -K N            Karnaugh variable limit (8)\n"
        "  -L N            XOR cutting length (5)\n"
        "  --lp N          clause cutting length L' (5)\n"
        "  -C N            SAT conflict budget start (10000)\n"
        "  --maxiters N    max outer-loop iterations (64)\n"
        "  --timeout S     Bosphorus time budget in seconds (1000)\n"
        "  --no-xl / --no-el / --no-sat   disable a learning step\n"
        "  --gb            enable the Groebner (Buchberger/F4) step\n"
        "  --seed N        RNG seed (1)\n"
        "  -v N            verbosity (0)\n");
}

int fail(const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 2;
}

void print_model(const std::vector<bool>& solution, size_t num_vars) {
    std::printf("v");
    for (size_t v = 0; v < num_vars && v < solution.size(); ++v)
        std::printf(" %s%zu", solution[v] ? "" : "-", v + 1);
    std::printf(" 0\n");
}

int run(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
    // Library failures arrive as Status values; this backstop catches what
    // does not (std::stoul on malformed numeric options, bad_alloc, ...).
    try {
        return run(argc, argv);
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 2;
    }
}

namespace {

int run(int argc, char** argv) {
    std::string anf_in, cnf_in, cnf_out, anf_out;
    std::string solver_name = sat::kDefaultSolverName;
    bool solve_after = false;
    EngineConfig opt;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", a.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--anf") anf_in = next();
        else if (a == "--cnfin") cnf_in = next();
        else if (a == "--cnf") cnf_out = next();
        else if (a == "--anfout") anf_out = next();
        else if (a == "--solve") solve_after = true;
        else if (a == "--solver") solver_name = next();
        else if (a == "-M") {
            const unsigned m = std::stoul(next());
            opt.xl.m_budget = m;
            opt.elimlin.m_budget = m;
        } else if (a == "-D") opt.xl.degree = std::stoul(next());
        else if (a == "-K") opt.conv.karnaugh_k = std::stoul(next());
        else if (a == "-L") opt.conv.xor_cut = std::stoul(next());
        else if (a == "--lp") opt.clause_cut = std::stoul(next());
        else if (a == "-C") opt.sat_conflicts_start = std::stoll(next());
        else if (a == "--maxiters") opt.max_iterations = std::stoul(next());
        else if (a == "--timeout") opt.time_budget_s = std::stod(next());
        else if (a == "--gb") opt.use_groebner = true;
        else if (a == "--no-xl") opt.use_xl = false;
        else if (a == "--no-el") opt.use_elimlin = false;
        else if (a == "--no-sat") opt.use_sat = false;
        else if (a == "--seed") opt.seed = std::stoull(next());
        else if (a == "-v") opt.verbosity = std::stoi(next());
        else if (a == "-h" || a == "--help") { usage(); return 0; }
        else {
            std::fprintf(stderr, "unknown option: %s\n", a.c_str());
            usage();
            return 2;
        }
    }
    if (anf_in.empty() == cnf_in.empty()) {
        usage();
        return 2;
    }

    const auto solver_kind = sat::solver_kind_from_name(solver_name);
    if (!solver_kind.ok()) return fail(solver_kind.status());

    Result<Problem> problem = anf_in.empty()
                                  ? Problem::from_cnf_file(cnf_in)
                                  : Problem::from_anf_file(anf_in);
    if (!problem.ok()) return fail(problem.status());
    const size_t problem_vars = problem->num_vars();

    Engine engine(opt);
    const Result<Report> run = engine.run(*problem);
    if (!run.ok()) return fail(run.status());
    const Report& res = *run;

    std::fprintf(stderr, "c engine: %zu iterations, %.2fs; facts:",
                 res.iterations, res.seconds);
    for (const auto& t : res.techniques)
        std::fprintf(stderr, " %s=%zu", t.name.c_str(), t.facts);
    std::fprintf(stderr, "; vars fixed=%zu replaced=%zu\n", res.vars_fixed,
                 res.vars_replaced);

    if (!anf_out.empty()) {
        std::ofstream out(anf_out);
        if (!out) return fail(Status::io_error("cannot write " + anf_out));
        anf::write_system(out, res.processed_anf);
    }
    if (!cnf_out.empty()) {
        std::ofstream out(cnf_out);
        if (!out) return fail(Status::io_error("cannot write " + cnf_out));
        sat::write_dimacs(out, res.processed_cnf.cnf);
    }

    if (res.verdict == sat::Result::kUnsat) {
        std::puts("s UNSATISFIABLE");
        return 20;
    }
    if (res.verdict == sat::Result::kSat) {
        std::puts("s SATISFIABLE");
        print_model(res.solution, problem_vars);
        return 10;
    }

    if (solve_after) {
        const sat::SolveOutcome so =
            sat::solve_cnf(res.processed_cnf.cnf, *solver_kind);
        if (so.result == sat::Result::kUnsat) {
            std::puts("s UNSATISFIABLE");
            return 20;
        }
        if (so.result == sat::Result::kSat) {
            std::puts("s SATISFIABLE");
            std::vector<bool> solution(so.model.size());
            for (size_t v = 0; v < so.model.size(); ++v)
                solution[v] = so.model[v] == sat::LBool::kTrue;
            print_model(solution, problem_vars);
            return 10;
        }
        std::puts("s UNKNOWN");
        return 0;
    }

    std::puts("s UNKNOWN");
    return 0;
}

}  // namespace
