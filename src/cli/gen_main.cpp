// bosphorus_gen -- benchmark instance generator.
//
// Writes the paper's benchmark families to .anf / .cnf files so they can be
// fed to this tool, the original Bosphorus, or any DIMACS solver:
//
//   bosphorus_gen sr      --rounds 1 --rows 4 --cols 4 --e 8 --out f.anf
//   bosphorus_gen simon   --pairs 9 --rounds 7 --out f.anf
//   bosphorus_gen bitcoin --k 10 --sha-rounds 16 --out f.anf
//   bosphorus_gen ksat    --vars 100 --clauses 426 --out f.cnf
//   bosphorus_gen php     --holes 8 --out f.cnf
//   bosphorus_gen xorcycle --len 50 --unsat --out f.cnf
//   bosphorus_gen dimacs  --vars 100000 --clauses 5000000 --out f.cnf
//
// The `dimacs` family (also spelled `--dimacs`) streams its output in O(1)
// memory, so it can produce files far larger than RAM -- it feeds the
// out-of-core preprocessor's tests and CI smoke job.
//
// All generators take --seed N (default 1).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "anf/anf_parser.h"
#include "cnfgen/generators.h"
#include "crypto/aes_small.h"
#include "crypto/sha256.h"
#include "crypto/simon.h"
#include "sat/dimacs.h"

namespace {

using namespace bosphorus;

int usage() {
    std::puts(
        "bosphorus_gen: benchmark instance generator\n"
        "  sr       --rounds N --rows R --cols C --e E   small-scale AES\n"
        "  simon    --pairs N --rounds R                 Simon32/64 SP/RC\n"
        "  bitcoin  --k K --sha-rounds R                 nonce finding\n"
        "  ksat     --vars N --clauses M [--k K]         random k-SAT\n"
        "  php      --holes H                            pigeonhole\n"
        "  xorcycle --len N [--unsat]                    XOR cycle\n"
        "  dimacs   --vars N --clauses M [--k K] [--xor-pct P]\n"
        "           [--xor-len L] [--no-plant]   streamed mixed DIMACS,\n"
        "           O(1) memory, SAT by construction unless --no-plant\n"
        "common:    --seed S --out FILE (default stdout)\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string family = argv[1];

    std::map<std::string, std::string> opts;
    bool unsat = false;
    bool no_plant = false;
    for (int i = 2; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--unsat") {
            unsat = true;
        } else if (a == "--no-plant") {
            no_plant = true;
        } else if (a.rfind("--", 0) == 0 && i + 1 < argc) {
            opts[a.substr(2)] = argv[++i];
        } else {
            std::fprintf(stderr, "bad argument: %s\n", a.c_str());
            return usage();
        }
    }
    auto get = [&](const char* key, long def) {
        auto it = opts.find(key);
        return it == opts.end() ? def : std::stol(it->second);
    };
    Rng rng(static_cast<uint64_t>(get("seed", 1)));

    std::ofstream file;
    std::ostream* out = &std::cout;
    if (opts.count("out")) {
        file.open(opts["out"]);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", opts["out"].c_str());
            return 2;
        }
        out = &file;
    }

    try {
        if (family == "sr") {
            crypto::SmallScaleAes::Params p;
            p.rounds = get("rounds", 1);
            p.rows = get("rows", 4);
            p.cols = get("cols", 4);
            p.e = get("e", 8);
            const crypto::SmallScaleAes aes(p);
            const auto inst = aes.random_instance(rng);
            *out << "c small-scale AES SR(" << p.rounds << "," << p.rows
                 << "," << p.cols << "," << p.e << ") key recovery; "
                 << inst.num_vars << " vars\n";
            anf::write_system(*out, inst.polys);
        } else if (family == "simon") {
            const crypto::Simon32 simon(get("rounds", 7));
            const auto inst = simon.encode(get("pairs", 9), rng);
            *out << "c Simon32/64 " << simon.rounds() << " rounds, "
                 << get("pairs", 9) << " SP/RC pairs; " << inst.num_vars
                 << " vars (first 64 = key)\n";
            anf::write_system(*out, inst.polys);
        } else if (family == "bitcoin") {
            const auto inst = crypto::encode_bitcoin_nonce(
                get("k", 10), get("sha-rounds", 16), rng);
            *out << "c weakened bitcoin nonce finding: k=" << inst.k
                 << ", sha rounds=" << inst.rounds << "; nonce bits are x1.."
                 << "x32\n";
            anf::write_system(*out, inst.polys);
        } else if (family == "ksat") {
            const auto cnf = cnfgen::random_ksat(
                get("vars", 100), get("clauses", 426), get("k", 3), rng);
            sat::write_dimacs(*out, cnf);
        } else if (family == "php") {
            sat::write_dimacs(*out, cnfgen::pigeonhole(get("holes", 8)));
        } else if (family == "xorcycle") {
            sat::write_dimacs(
                *out, cnfgen::xor_cycle(get("len", 50), !unsat, rng));
        } else if (family == "dimacs" || family == "--dimacs") {
            cnfgen::StreamDimacs cfg;
            cfg.num_vars = static_cast<uint64_t>(get("vars", 10000));
            cfg.num_clauses = static_cast<uint64_t>(get("clauses", 50000));
            cfg.k = static_cast<unsigned>(get("k", 3));
            cfg.xor_percent = static_cast<unsigned>(get("xor-pct", 10));
            cfg.xor_len = static_cast<unsigned>(get("xor-len", 3));
            cfg.unit_percent = static_cast<unsigned>(get("unit-pct", 1));
            cfg.duplicate_percent = static_cast<unsigned>(get("dup-pct", 2));
            cfg.comment_every =
                static_cast<unsigned>(get("comment-every", 10000));
            cfg.plant = !no_plant;
            cnfgen::write_stream_dimacs(*out, cfg, rng);
        } else {
            return usage();
        }
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 2;
    }
    return 0;
}
