// bosphorusd -- the multi-tenant solve daemon: a SolveService behind a
// Unix-domain socket speaking the newline protocol of
// src/service/protocol.h.
//
//   bosphorusd --socket /tmp/bosphorusd.sock [options]
//
// Drive it with examples/service_client.cpp, `nc -U`, or any client that
// writes "VERB args\n" lines. SIGINT/SIGTERM (or a SHUTDOWN verb) stop it
// cleanly: queued and running jobs are cancelled cooperatively, workers
// drain, the socket is unlinked.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "bosphorus/bosphorus.h"
#include "service/server.h"

namespace {

using namespace bosphorus;

void usage() {
    std::puts(
        "bosphorusd: the Bosphorus solve service (DATE'19 reproduction)\n"
        "\n"
        "usage:\n"
        "  bosphorusd --socket PATH [options]\n"
        "\n"
        "options:\n"
        "  --socket PATH        Unix socket to listen on\n"
        "                       (default /tmp/bosphorusd.sock)\n"
        "  --workers N          worker threads (default: hardware\n"
        "                       concurrency; explicit counts are honoured)\n"
        "  --max-queue N        admission bound on waiting jobs (256)\n"
        "  --max-sessions N     open sessions per client (8)\n"
        "  --max-inflight N     per-client in-flight job quota (0 = none)\n"
        "  --default-timeout S  per-job deadline when none given (30)\n"
        "  --max-timeout S      hard cap on requested deadlines (0 = none)\n"
        "  --drain-grace S      on shutdown, let running jobs finish for up\n"
        "                       to S seconds before cancelling them (0)\n"
        "  --no-deadline-admission\n"
        "                       accept jobs even when the queue is too deep\n"
        "                       for their deadline to be meetable\n"
        "  --fault-plan PLAN    arm deterministic fault injection, e.g.\n"
        "                       'backend-crash=0.3,io-enospc=1@cap1,seed=7'\n"
        "                       (testing; also via BOSPHORUS_FAULT_PLAN)\n"
        "  --loop-solver SPEC   default in-loop SAT back end (native)\n"
        "  --cooperative        run one-shot jobs as cooperative portfolio\n"
        "                       races sharing learnt facts (verdicts are\n"
        "                       identical to isolated runs; each job may\n"
        "                       use one thread per portfolio entry)\n"
        "  --timeout S          engine time budget per job (1000)\n"
        "  --seed N             engine RNG seed (1)\n"
        "  -v                   verbose engine logging\n"
        "  --help               this text\n"
        "\n"
        "protocol (one request per line; see src/service/protocol.h):\n"
        "  HELLO | SUBMIT | SESSION OPEN/CLOSE | ASSUME | STATUS |\n"
        "  RESULT | CANCEL | METRICS | SHUTDOWN | QUIT");
}

bool parse_unsigned(const char* s, unsigned long& out) {
    char* end = nullptr;
    out = std::strtoul(s, &end, 10);
    return end != s && *end == '\0';
}

bool parse_double(const char* s, double& out) {
    char* end = nullptr;
    out = std::strtod(s, &end);
    return end != s && *end == '\0' && out >= 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string socket_path = "/tmp/bosphorusd.sock";
    ServiceConfig cfg;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        unsigned long n = 0;
        double d = 0.0;
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            const char* v = next();
            if (!v) { usage(); return 2; }
            socket_path = v;
        } else if (arg == "--workers") {
            const char* v = next();
            if (!v || !parse_unsigned(v, n)) { usage(); return 2; }
            cfg.n_workers = static_cast<unsigned>(n);
        } else if (arg == "--max-queue") {
            const char* v = next();
            if (!v || !parse_unsigned(v, n)) { usage(); return 2; }
            cfg.max_queued_jobs = n;
        } else if (arg == "--max-sessions") {
            const char* v = next();
            if (!v || !parse_unsigned(v, n)) { usage(); return 2; }
            cfg.max_sessions_per_client = n;
        } else if (arg == "--max-inflight") {
            const char* v = next();
            if (!v || !parse_unsigned(v, n)) { usage(); return 2; }
            cfg.max_inflight_per_client = n;
        } else if (arg == "--drain-grace") {
            const char* v = next();
            if (!v || !parse_double(v, d)) { usage(); return 2; }
            cfg.drain_grace_s = d;
        } else if (arg == "--no-deadline-admission") {
            cfg.deadline_admission = false;
        } else if (arg == "--fault-plan") {
            const char* v = next();
            if (!v) { usage(); return 2; }
            cfg.fault_plan = v;
        } else if (arg == "--default-timeout") {
            const char* v = next();
            if (!v || !parse_double(v, d)) { usage(); return 2; }
            cfg.default_timeout_s = d;
        } else if (arg == "--max-timeout") {
            const char* v = next();
            if (!v || !parse_double(v, d)) { usage(); return 2; }
            cfg.max_timeout_s = d;
        } else if (arg == "--cooperative") {
            cfg.cooperative = true;
        } else if (arg == "--loop-solver") {
            const char* v = next();
            if (!v) { usage(); return 2; }
            cfg.engine.sat_backend = v;
        } else if (arg == "--timeout") {
            const char* v = next();
            if (!v || !parse_double(v, d)) { usage(); return 2; }
            cfg.engine.time_budget_s = d;
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v || !parse_unsigned(v, n)) { usage(); return 2; }
            cfg.engine.seed = n;
        } else if (arg == "-v") {
            ++cfg.engine.verbosity;
        } else {
            std::fprintf(stderr, "bosphorusd: unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    // A client that disappears mid-write must surface as EPIPE on the
    // connection thread, never as a process-killing SIGPIPE. The write
    // path already uses MSG_NOSIGNAL; this covers platforms without it.
    std::signal(SIGPIPE, SIG_IGN);

    // Deliver SIGINT/SIGTERM to a dedicated sigwait thread: signal
    // handlers cannot take the locks request_stop() needs.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    SolveService svc(cfg);
    service::SocketServer server(svc, socket_path);
    const Status st = server.start();
    if (!st.ok()) {
        std::fprintf(stderr, "bosphorusd: %s\n", st.to_string().c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "bosphorusd %s listening on %s (%u workers, queue cap %zu)\n",
                 version(), socket_path.c_str(), svc.config().n_workers,
                 svc.config().max_queued_jobs);

    std::atomic<bool> quit_signal_thread{false};
    std::thread signal_thread([&sigs, &server, &quit_signal_thread] {
        const timespec tick{0, 200'000'000};  // re-check the exit flag at 5 Hz
        while (!quit_signal_thread.load(std::memory_order_acquire)) {
            const int sig = sigtimedwait(&sigs, nullptr, &tick);
            if (sig > 0) {
                std::fprintf(stderr,
                             "bosphorusd: caught signal %d, shutting down\n",
                             sig);
                server.request_stop();
                return;
            }
        }
    });

    server.wait();
    server.stop();
    quit_signal_thread.store(true, std::memory_order_release);
    signal_thread.join();

    const ServiceStats stats = svc.stats();
    std::fprintf(stderr,
                 "bosphorusd: served %llu jobs (%llu done, %llu cancelled, "
                 "%llu expired, %llu failed), %llu rejected; PAR-2 %.3f\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.cancelled),
                 static_cast<unsigned long long>(stats.expired),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.rejected),
                 stats.par2());
    return 0;
}
