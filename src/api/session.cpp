// The incremental Session: persistent master AnfSystem with push/pop
// scopes over the snapshot/trail in core/anf_system.h, and the
// fact-learning loop both Session::solve and (via a throwaway Session)
// Engine::run execute.
#include "bosphorus/session.h"

#include <algorithm>
#include <utility>

#include "bosphorus/bosphorus.h"
#include "core/cnf_to_anf.h"
#include "util/log.h"
#include "util/timer.h"

namespace bosphorus {

using anf::Polynomial;

// ---- version ---------------------------------------------------------------

#define BOSPHORUS_STRINGIFY_IMPL(x) #x
#define BOSPHORUS_STRINGIFY(x) BOSPHORUS_STRINGIFY_IMPL(x)

const char* version() {
    return BOSPHORUS_STRINGIFY(BOSPHORUS_VERSION_MAJOR) "." BOSPHORUS_STRINGIFY(
        BOSPHORUS_VERSION_MINOR);
}

// ---- construction ----------------------------------------------------------

Session::Materialized Session::materialize(const Problem& problem,
                                           const EngineConfig& cfg) {
    Materialized m;  // m.timer starts here; it keeps running until the
                     // delegated constructor body reads setup_seconds_
    if (problem.kind() == Problem::Kind::kCnf) {
        core::Cnf2AnfResult conv =
            core::cnf_to_anf(problem.cnf(), cfg.clause_cut);
        m.polys = std::move(conv.polys);
        m.num_vars = conv.num_vars;
        m.num_original_vars = problem.cnf().num_vars;
    } else {
        m.polys = problem.polynomials();
        m.num_vars = problem.num_vars();
        m.num_original_vars = m.num_vars;
    }
    return m;
}

Session::Session(const Problem& problem, EngineConfig cfg)
    : Session(materialize(problem, cfg), std::move(cfg),
              /*build_registry=*/true, /*enable_warm=*/true) {}

Session::Session(const Problem& problem, EngineConfig cfg, OneShotTag)
    : Session(materialize(problem, cfg), std::move(cfg),
              /*build_registry=*/false, /*enable_warm=*/false) {}

Session::Session(Materialized m, EngineConfig cfg, bool build_registry,
                 bool enable_warm)
    : cfg_(std::move(cfg)),
      sys_(std::move(m.polys), m.num_vars),
      num_vars_(m.num_vars),
      num_original_vars_(m.num_original_vars),
      enable_warm_(enable_warm) {
    if (build_registry) techniques_ = make_default_techniques(cfg_);
    // Covers CNF conversion *and* the master system's initial propagation
    // (the sys_ member construction above).
    setup_seconds_ = m.timer.seconds();
}

Session::~Session() = default;

// ---- scopes ----------------------------------------------------------------

Status Session::add(const Polynomial& p) {
    const auto vars = p.variables();  // sorted ascending
    if (!vars.empty() && vars.back() >= num_vars_) {
        return Status::invalid_argument(
            "Session::add: polynomial mentions variable x" +
            std::to_string(vars.back() + 1) + " outside the problem's " +
            std::to_string(num_vars_) + "-variable space");
    }
    sys_.add_original(p);
    if (frames_.empty()) {
        needs_bind_ = true;  // the persistent base grew: rebind lazily
        // The base is now stronger than the constructed problem: its
        // consequences are no longer publishable to a shared fact pool.
        coop_base_is_problem_ = false;
    } else {
        frames_.back().free_adds = true;  // cold path until this scope pops
    }
    return {};
}

Status Session::assume(anf::Var v, bool value) {
    if (v >= num_vars_) {
        return Status::invalid_argument(
            "Session::assume: variable x" + std::to_string(v + 1) +
            " outside the problem's " + std::to_string(num_vars_) +
            "-variable space");
    }
    // The equation x = value, i.e. the polynomial x (+ 1); propagation
    // turns it into a fixed variable, which is exactly what the warm SAT
    // step forwards as a native assumption literal.
    Polynomial f = Polynomial::variable(v);
    if (value) f += Polynomial::constant(true);
    sys_.add_original(f);
    // Depth-0 assumptions are permanent: the base outgrows the problem.
    if (frames_.empty()) coop_base_is_problem_ = false;
    return {};
}

Status Session::push() {
    if (frames_.empty()) rebind_if_needed();  // capture the base pre-scope
    frames_.push_back(Frame{sys_.snapshot(), false});
    return {};
}

Status Session::pop() {
    if (frames_.empty()) {
        return Status::invalid_argument(
            "Session::pop: no open scope (push/pop must balance)");
    }
    sys_.restore(frames_.back().snap);
    frames_.pop_back();
    // No scope left means no snapshot left to rewind to: drop the trails
    // so depth-0 work between sweeps doesn't accumulate them forever.
    if (frames_.empty()) sys_.clear_trail();
    return {};
}

bool Session::okay() const { return sys_.okay(); }

// ---- registry & hooks ------------------------------------------------------

Session& Session::add_technique(std::unique_ptr<Technique> technique) {
    techniques_.push_back(std::move(technique));
    needs_bind_ = true;  // the newcomer has never seen the base
    return *this;
}

Session& Session::clear_techniques() {
    techniques_.clear();
    needs_bind_ = true;
    return *this;
}

std::vector<std::string> Session::technique_names() const {
    std::vector<std::string> names;
    names.reserve(techniques_.size());
    for (const auto& t : techniques_) names.push_back(t->name());
    return names;
}

Session& Session::set_interrupt_callback(InterruptCallback cb) {
    interrupt_ = std::move(cb);
    return *this;
}

Session& Session::set_progress_callback(ProgressCallback cb) {
    progress_ = std::move(cb);
    return *this;
}

Session& Session::set_cancellation_token(runtime::CancellationToken token) {
    cancel_ = std::move(token);
    return *this;
}

// ---- warm-base bookkeeping -------------------------------------------------

void Session::rebind_if_needed() {
    if (!enable_warm_ || !needs_bind_ || !frames_.empty()) return;
    const std::vector<Polynomial> base = sys_.to_polynomials();
    for (const auto& t : techniques_) t->bind_base(base, num_vars_);
    needs_bind_ = false;
    bound_ = true;
    coop_bound_publishable_ = coop_base_is_problem_;
}

bool Session::warm_valid() const {
    if (!enable_warm_ || !bound_ || needs_bind_) return false;
    for (const Frame& f : frames_)
        if (f.free_adds) return false;
    return true;
}

// ---- cooperative fact exchange ---------------------------------------------

// Drain foreign facts from the shared pool and inject the unit ones into
// the master ANF as learnt facts (binaries are consumed at the SAT layer
// through the technique's own cursor -- see SatTechniqueConfig::fact_pool
// -- where a clausal fact is directly expressible). Every pool fact is a
// consequence of the shared base problem, which this session's system
// contains, so injection at any scope preserves the solution set.
size_t Session::coop_import_anf() {
    coop_buf_.clear();
    const size_t drained =
        cfg_.fact_pool->import(coop_cursor_, cfg_.coop_worker, coop_buf_);
    for (const runtime::SharedFact& f : coop_buf_) {
        if (f.kind != runtime::SharedFact::Kind::kUnit) continue;
        if (f.a.var() >= num_vars_) continue;
        // Literal f.a is true: x = !sign, i.e. the polynomial x (+ 1).
        Polynomial p = Polynomial::variable(f.a.var());
        if (!f.a.sign()) p += Polynomial::constant(true);
        sys_.add_fact(p);
        if (!sys_.okay()) break;
    }
    return drained;
}

// Publish this session's resolved variables: fixed vars as units, and
// equivalences as the two binary clauses importers pair back up into an
// ANF equivalence. Only sound when the current system IS the shared base
// problem (depth 0, no user constraints) -- callers gate on that. The
// pool's duplicate filter absorbs re-publishes across iterations.
size_t Session::coop_publish_anf() {
    runtime::SharedFactPool& pool = *cfg_.fact_pool;
    const size_t limit = std::min(num_vars_, pool.num_shared_vars());
    size_t published = 0;
    for (anf::Var v = 0; v < limit; ++v) {
        const core::VarState st = sys_.resolve(v);
        if (st.kind == core::VarState::Kind::kFixed) {
            // The literal that is TRUE under the fixing.
            if (pool.publish_unit(cfg_.coop_worker, sat::mk_lit(v, !st.value)))
                ++published;
        } else if (st.kind == core::VarState::Kind::kReplaced &&
                   st.root < limit) {
            // v == root ^ flip: clauses (~v | r^flip) and (v | ~(r^flip)).
            if (pool.publish_binary(cfg_.coop_worker, sat::mk_lit(v, true),
                                    sat::mk_lit(st.root, st.flip)))
                ++published;
            if (pool.publish_binary(cfg_.coop_worker, sat::mk_lit(v, false),
                                    sat::mk_lit(st.root, !st.flip)))
                ++published;
        }
    }
    return published;
}

// ---- the fact-learning loop ------------------------------------------------

Result<Report> Session::solve() {
    Timer timer;
    // The first solve is charged the session's construction cost, so a
    // one-shot run (Engine::run) budgets and reports materialisation +
    // initial propagation exactly like the pre-Session loop did.
    const double charged = solves_done_ == 0 ? setup_seconds_ : 0.0;
    auto elapsed = [&]() { return charged + timer.seconds(); };
    Log log{cfg_.verbosity};
    Rng rng(cfg_.seed);
    Report rep;
    rep.num_vars = num_vars_;
    rep.num_original_vars = num_original_vars_;

    if (frames_.empty()) rebind_if_needed();
    const bool warm = warm_valid();

    rep.techniques.reserve(techniques_.size());
    for (const auto& t : techniques_) {
        if (solves_done_ == 0)
            t->begin_run();
        else
            t->reset_for_resolve();
        rep.techniques.push_back({t->name(), 0, 0});
    }
    ++solves_done_;

    auto out_of_time = [&]() {
        if (elapsed() > cfg_.time_budget_s) {
            rep.timed_out = true;
            return true;
        }
        return false;
    };

    // One stop signal for the whole solve: the external cancellation token
    // (batch shutdown, portfolio loser) folded with the user's interrupt
    // callback. Handed into every FactSink so the core loops poll it at
    // iteration boundaries -- cancellation lands mid-step, not only
    // between steps.
    const runtime::CancellationToken stop =
        runtime::CancellationToken::linked(cancel_, interrupt_);

    // Cooperative fact exchange: at every iteration boundary drain the
    // other workers' facts into the master ANF and publish this system's
    // resolved variables back (the SAT technique additionally exchanges
    // clause-level facts through its own cursor). Publishing is gated on
    // the current system being exactly the shared base problem; importing
    // is always sound (the pool only carries base consequences).
    const bool coop = cfg_.cooperative && cfg_.fact_pool != nullptr;
    const bool coop_cold_ok =
        coop && frames_.empty() && coop_base_is_problem_;
    const bool coop_warm_ok = coop && coop_bound_publishable_;

    bool halted = false;  // a technique decided, or an interrupt arrived
    for (rep.iterations = 0;
         sys_.okay() && rep.iterations < cfg_.max_iterations && !out_of_time();
         ++rep.iterations) {
        bool changed = false;
        if (coop) rep.facts_imported += coop_import_anf();

        for (size_t ti = 0; ti < techniques_.size(); ++ti) {
            if (!sys_.okay() || out_of_time()) break;
            if (stop.cancelled()) {
                rep.interrupted = true;
                halted = true;
                break;
            }

            Technique& tech = *techniques_[ti];
            FactSink sink(sys_, rng, cfg_.time_budget_s - elapsed(),
                          rep.iterations, cfg_.verbosity, stop, warm,
                          coop_cold_ok, coop_warm_ok);
            StepReport sr = tech.step(sys_, sink);
            if (!sr.status.ok()) return sr.status;
            rep.facts_imported += sink.coop_imported();
            rep.facts_published += sink.coop_published();

            const size_t fresh = sink.fresh() + sr.facts_fresh;
            rep.techniques[ti].steps += 1;
            rep.techniques[ti].facts += fresh;
            changed |= fresh > 0;

            if (progress_) {
                Progress p;
                p.iteration = rep.iterations;
                p.technique = rep.techniques[ti].name;
                p.facts_seen = sink.seen() + sr.facts_seen;
                p.facts_fresh = fresh;
                p.total_facts = rep.total_facts();
                p.elapsed_s = elapsed();
                progress_(p);
            }

            if (sr.decided) {
                if (*sr.decided == sat::Result::kSat) {
                    rep.verdict = sat::Result::kSat;
                    rep.solution = std::move(sr.solution);
                }
                halted = true;
                break;
            }
        }

        if (coop_cold_ok && sys_.okay())
            rep.facts_published += coop_publish_anf();

        if (halted || !changed) break;  // decision/interrupt or fixed point
    }

    // A cancellation that landed inside the final step (core loops bailed
    // early, loop then exited on "no change") is still an interruption.
    if (!halted && rep.verdict == sat::Result::kUnknown && stop.cancelled())
        rep.interrupted = true;

    if (!sys_.okay()) rep.verdict = sat::Result::kUnsat;

    if (cfg_.emit_processed) {
        rep.processed_anf = sys_.to_polynomials();
        core::Anf2CnfConfig out_cfg = cfg_.conv;
        out_cfg.native_xor = false;  // emitted CNF is plain DIMACS-compatible
        rep.processed_cnf =
            core::anf_to_cnf(rep.processed_anf, num_vars_, out_cfg);
    }
    rep.vars_fixed = sys_.num_fixed();
    rep.vars_replaced = sys_.num_replaced();
    rep.seconds = elapsed();
    log.info(1,
             "session: solve #%zu depth %zu %s, %zu iterations, %zu facts, "
             "fixed=%zu replaced=%zu, %.2fs",
             solves_done_, frames_.size(), warm ? "warm" : "cold",
             rep.iterations, rep.total_facts(), rep.vars_fixed,
             rep.vars_replaced, rep.seconds);
    return rep;
}

}  // namespace bosphorus
