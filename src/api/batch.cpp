// The concurrent batch-solving runtime: BatchEngine::solve_all and the
// portfolio racer, built on the work-stealing pool + cancellation token +
// result queue under src/runtime/.
#include "bosphorus/batch.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "bosphorus/session.h"
#include "runtime/fact_exchange.h"
#include "runtime/result_queue.h"
#include "runtime/thread_pool.h"
#include "util/timer.h"

namespace bosphorus {

// ---- BatchEngine -----------------------------------------------------------

BatchEngine::BatchEngine(EngineConfig cfg) : cfg_(cfg) {}

BatchEngine& BatchEngine::set_cancellation_token(
    runtime::CancellationToken token) {
    cancel_ = std::move(token);
    return *this;
}

unsigned BatchEngine::threads_for(size_t n_instances, unsigned n_threads) {
    // Clamp to the hardware: engine workloads are compute-bound, so extra
    // workers beyond the core count only add scheduling churn (measured as
    // a 0.95x "speedup" in BENCH_batch.json on a 1-core box before this
    // clamp existed).
    const unsigned hw = runtime::ThreadPool::default_thread_count();
    if (n_threads == 0 || n_threads > hw) n_threads = hw;
    return static_cast<unsigned>(std::min<size_t>(n_threads, n_instances));
}

std::vector<Result<Report>> BatchEngine::solve_all(
    const std::vector<Problem>& problems, unsigned n_threads,
    const BatchCallback& on_result) const {
    // Pre-size with the "never started" status; every launched task
    // overwrites its own slot, so whatever remains was skipped by a
    // cancellation that arrived before the task was picked up.
    std::vector<Result<Report>> out(
        problems.size(),
        Status::interrupted("batch cancelled before this instance started"));
    if (problems.empty()) return out;

    n_threads = threads_for(problems.size(), n_threads);

    // Snapshot the token: workers capture the copy, so a (misuse-y)
    // set_cancellation_token() racing the batch cannot tear a token read.
    const runtime::CancellationToken cancel = cancel_;
    EngineConfig cfg = cfg_;
    // Fact sharing requires every worker to solve the SAME problem (pool
    // facts are consequences of a shared base). solve_all instances are
    // distinct problems, so sharing here would be unsound: strip it.
    cfg.cooperative = false;
    cfg.fact_pool.reset();

    std::mutex callback_mutex;
    runtime::ThreadPool pool(n_threads);
    for (size_t i = 0; i < problems.size(); ++i) {
        pool.submit([&problems, &out, &on_result, &callback_mutex, &cancel,
                     &cfg, i] {
            if (!cancel.cancelled()) {
                // A private Engine per instance: techniques are stateful
                // across steps, and a private Rng seeded from cfg is what
                // makes the batch bit-identical to a sequential loop.
                try {
                    Engine engine(cfg);
                    engine.set_cancellation_token(cancel);
                    out[i] = engine.run(problems[i]);
                } catch (const std::exception& ex) {
                    // Keep the batch contract: a failure lands in its own
                    // slot instead of tearing down the whole pool.
                    out[i] = Status::internal(std::string("engine threw: ") +
                                              ex.what());
                }
            }
            if (on_result) {
                std::lock_guard<std::mutex> lk(callback_mutex);
                try {
                    on_result(i, out[i]);
                } catch (...) {
                    // A throwing observer must not tear down the pool; the
                    // result is already in its slot either way.
                }
            }
        });
    }
    pool.wait_idle();
    return out;
}

std::vector<Result<Report>> BatchEngine::solve_all_incremental(
    const Problem& base, const std::vector<AssumptionSet>& candidates,
    unsigned n_threads, const BatchCallback& on_result) const {
    std::vector<Result<Report>> out(
        candidates.size(),
        Status::interrupted("sweep cancelled before this candidate started"));
    if (candidates.empty()) return out;

    n_threads = threads_for(candidates.size(), n_threads);
    const runtime::CancellationToken cancel = cancel_;
    EngineConfig cfg = cfg_;
    // Sweep workers all hold the same base problem, so cooperative fact
    // sharing is sound: one pool for the sweep, one worker id per block.
    // (Each worker's Session publishes only base-consequence facts --
    // live-solver exports and depth-0 resolutions -- and imports
    // everything; see Session::solve and src/runtime/fact_exchange.h.)
    if (cfg.cooperative && !cfg.fact_pool)
        cfg.fact_pool =
            std::make_shared<runtime::SharedFactPool>(base.num_vars());

    // One contiguous block of candidates per worker: the partition is a
    // pure function of (candidate count, worker count), so a worker's
    // warm-start history -- and with it the whole result vector -- cannot
    // depend on scheduling.
    const size_t per_block =
        (candidates.size() + n_threads - 1) / n_threads;

    std::mutex callback_mutex;
    runtime::ThreadPool pool(n_threads);
    for (unsigned b = 0; b < n_threads; ++b) {
        const size_t begin = static_cast<size_t>(b) * per_block;
        const size_t end = std::min(candidates.size(), begin + per_block);
        if (begin >= end) break;
        pool.submit([&candidates, &out, &on_result, &callback_mutex, &cancel,
                     &cfg, &base, begin, end, b] {
            // The worker's private Session: the base is materialised and
            // simplified once for the whole block.
            std::unique_ptr<Session> session;
            for (size_t i = begin; i < end; ++i) {
                if (cancel.cancelled()) break;  // slots keep kInterrupted
                try {
                    if (!session) {
                        EngineConfig wcfg = cfg;
                        wcfg.coop_worker = b;  // distinct id per worker
                        session = std::make_unique<Session>(base, wcfg);
                        session->set_cancellation_token(cancel);
                    }
                    session->push();
                    Status bad;
                    for (const auto& [var, value] : candidates[i]) {
                        bad = session->assume(var, value);
                        if (!bad.ok()) break;
                    }
                    out[i] = bad.ok() ? session->solve() : Result<Report>(bad);
                    session->pop();
                } catch (const std::exception& ex) {
                    out[i] = Status::internal(
                        std::string("incremental solve threw: ") + ex.what());
                    session.reset();  // rebuild rather than trust its state
                }
                if (on_result) {
                    std::lock_guard<std::mutex> lk(callback_mutex);
                    try {
                        on_result(i, out[i]);
                    } catch (...) {
                        // Observer failures must not tear down the sweep.
                    }
                }
            }
        });
    }
    pool.wait_idle();
    return out;
}

// ---- portfolio -------------------------------------------------------------

std::vector<PortfolioEntry> default_portfolio(const EngineConfig& base) {
    std::vector<PortfolioEntry> entries;

    EngineConfig balanced = base;
    balanced.use_groebner = false;
    entries.push_back({"balanced", balanced});

    EngineConfig xl_heavy = base;
    xl_heavy.use_groebner = false;
    xl_heavy.use_elimlin = false;
    xl_heavy.xl.degree = std::max(2u, base.xl.degree);
    xl_heavy.xl.delta_m = base.xl.delta_m + 2;
    entries.push_back({"xl-heavy", xl_heavy});

    EngineConfig el_heavy = base;
    el_heavy.use_groebner = false;
    el_heavy.use_xl = false;
    el_heavy.elimlin.max_iterations = base.elimlin.max_iterations * 2;
    entries.push_back({"elimlin-heavy", el_heavy});

    EngineConfig groebner = base;
    groebner.use_groebner = true;
    entries.push_back({"groebner", groebner});

    // Decorrelate the subsampling choices across the portfolio.
    for (size_t i = 0; i < entries.size(); ++i)
        entries[i].config.seed = base.seed + i;
    return entries;
}

std::vector<PortfolioEntry> backend_portfolio(
    const EngineConfig& base, const std::vector<sat::SolverSpec>& backends) {
    std::vector<PortfolioEntry> entries;
    entries.reserve(backends.size());
    for (const auto& spec : backends) {
        EngineConfig cfg = base;
        cfg.sat_backend = spec.spec;
        // Same seed everywhere: the entries must differ in nothing but
        // the back end, so the race isolates the solver axis.
        entries.push_back(
            {spec.spec.empty() ? std::string("native") : spec.spec, cfg});
    }
    return entries;
}

std::vector<PortfolioEntry> default_backend_portfolio(
    const EngineConfig& base) {
    return backend_portfolio(base, {"minisat", "lingeling", "cms"});
}

Result<PortfolioReport> solve_portfolio(const Problem& problem,
                                        const std::vector<PortfolioEntry>& entries,
                                        unsigned n_threads,
                                        runtime::CancellationToken cancel) {
    if (entries.empty())
        return Status::invalid_argument(
            "solve_portfolio: the entry list is empty");

    Timer timer;
    const size_t k = entries.size();
    // Same oversubscription clamp as BatchEngine::threads_for.
    const unsigned hw = runtime::ThreadPool::default_thread_count();
    if (n_threads == 0 || n_threads > hw) n_threads = hw;
    n_threads = static_cast<unsigned>(std::min<size_t>(n_threads, k));

    // Cooperative entries share one fact pool over the problem's original
    // variables (CNF auxiliaries differ per entry and are rejected by the
    // pool's variable bound). Entries that brought their own pool keep it
    // -- and their caller-assigned worker id with it.
    std::vector<PortfolioEntry> wired;
    const std::vector<PortfolioEntry>* running = &entries;
    std::shared_ptr<runtime::SharedFactPool> pool_shared;
    bool any_coop = false;
    for (const PortfolioEntry& e : entries)
        any_coop |= e.config.cooperative && !e.config.fact_pool;
    if (any_coop) {
        pool_shared =
            std::make_shared<runtime::SharedFactPool>(problem.num_vars());
        wired = entries;
        for (size_t i = 0; i < wired.size(); ++i) {
            EngineConfig& c = wired[i].config;
            if (!c.cooperative || c.fact_pool) continue;
            c.fact_pool = pool_shared;
            c.coop_worker = static_cast<unsigned>(i);
        }
        running = &wired;
    }

    // The race-internal source fires when a decisive winner lands; each
    // worker token also observes the caller's external token.
    runtime::CancellationSource race_cancel;
    const runtime::CancellationToken worker_token =
        runtime::CancellationToken::linked(
            race_cancel.token(),
            [external = std::move(cancel)] { return external.cancelled(); });

    std::vector<Result<Report>> results(
        k, Status::internal("portfolio entry did not run"));
    std::vector<double> entry_seconds(k, 0.0);

    // Finish order, not submission order: the queue is what lets the race
    // cancel the losers the moment the first decisive verdict arrives.
    runtime::ResultQueue<size_t> finished;

    size_t winner = SIZE_MAX;  // first decisive finisher
    {
        runtime::ThreadPool pool(n_threads);
        for (size_t i = 0; i < k; ++i) {
            pool.submit([&, i] {
                Timer entry_timer;
                try {
                    Engine engine((*running)[i].config);
                    engine.set_cancellation_token(worker_token);
                    results[i] = engine.run(problem);
                } catch (const std::exception& ex) {
                    results[i] = Status::internal(
                        std::string("portfolio entry threw: ") + ex.what());
                }
                entry_seconds[i] = entry_timer.seconds();
                finished.push(i);  // every worker pushes, even on failure
            });
        }
        for (size_t received = 0; received < k; ++received) {
            const std::optional<size_t> idx = finished.pop();
            if (!idx) break;  // unreachable: every worker pushes exactly once
            const Result<Report>& r = results[*idx];
            if (winner == SIZE_MAX && r.ok() &&
                r->verdict != sat::Result::kUnknown) {
                winner = *idx;
                race_cancel.request_cancel();
            }
        }
    }  // pool joins: all slots written

    PortfolioReport rep;
    rep.outcomes.reserve(k);
    for (size_t i = 0; i < k; ++i) {
        PortfolioOutcome o;
        o.name = entries[i].name;
        o.seconds = entry_seconds[i];
        if (results[i].ok()) {
            const Report& r = *results[i];
            o.verdict = r.verdict;
            o.interrupted = r.interrupted;
            o.timed_out = r.timed_out;
            o.iterations = r.iterations;
            o.facts = r.total_facts();
            o.facts_imported = r.facts_imported;
            o.facts_published = r.facts_published;
        } else {
            o.errored = true;
        }
        rep.outcomes.push_back(std::move(o));
    }

    if (winner == SIZE_MAX) {
        // Nobody decided: the most productive healthy entry wins (lowest
        // index on ties, so the choice is deterministic given the reports).
        size_t best_facts = 0;
        for (size_t i = 0; i < k; ++i) {
            if (!results[i].ok()) continue;
            if (winner == SIZE_MAX || results[i]->total_facts() > best_facts) {
                winner = i;
                best_facts = results[i]->total_facts();
            }
        }
        if (winner == SIZE_MAX) return results[0].status();  // all errored
    }

    rep.winner = winner;
    rep.winner_name = entries[winner].name;
    rep.report = std::move(results[winner].value());
    rep.seconds = timer.seconds();
    if (pool_shared) {
        rep.facts_shared = pool_shared->published();
        rep.facts_suppressed = pool_shared->suppressed();
    }
    return rep;
}

Result<PortfolioReport> Engine::solve_portfolio(
    const Problem& problem, const std::vector<PortfolioEntry>& entries,
    unsigned n_threads, runtime::CancellationToken cancel) {
    return ::bosphorus::solve_portfolio(problem, entries, n_threads,
                                        std::move(cancel));
}

}  // namespace bosphorus
