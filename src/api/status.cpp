#include "bosphorus/status.h"

namespace bosphorus {

const char* status_code_name(StatusCode code) {
    switch (code) {
        case StatusCode::kOk: return "OK";
        case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
        case StatusCode::kParseError: return "PARSE_ERROR";
        case StatusCode::kIoError: return "IO_ERROR";
        case StatusCode::kInterrupted: return "INTERRUPTED";
        case StatusCode::kTimeout: return "TIMEOUT";
        case StatusCode::kUnavailable: return "UNAVAILABLE";
        case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
        case StatusCode::kInternal: return "INTERNAL";
    }
    return "?";
}

std::string Status::to_string() const {
    if (ok()) return "OK";
    std::string s = status_code_name(code_);
    if (!message_.empty()) {
        s += ": ";
        s += message_;
    }
    return s;
}

}  // namespace bosphorus
