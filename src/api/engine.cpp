#include "bosphorus/engine.h"

#include <utility>

#include "bosphorus/session.h"
#include "core/anf_system.h"

namespace bosphorus {

using anf::Polynomial;

// ---- FactSink --------------------------------------------------------------

bool FactSink::add(const Polynomial& fact) {
    ++seen_;
    if (sys_.add_fact(fact)) {
        ++fresh_;
        return true;
    }
    return false;
}

bool FactSink::okay() const { return sys_.okay(); }

// ---- Report ----------------------------------------------------------------

size_t Report::facts_from(const std::string& name) const {
    size_t total = 0;
    for (const auto& t : techniques)
        if (t.name == name) total += t.facts;
    return total;
}

size_t Report::total_facts() const {
    size_t total = 0;
    for (const auto& t : techniques) total += t.facts;
    return total;
}

// ---- Engine ----------------------------------------------------------------

std::vector<std::unique_ptr<Technique>> make_default_techniques(
    const EngineConfig& cfg) {
    std::vector<std::unique_ptr<Technique>> out;
    if (cfg.use_xl) out.push_back(make_xl_technique(cfg.xl));
    if (cfg.use_elimlin) out.push_back(make_elimlin_technique(cfg.elimlin));
    if (cfg.use_groebner) out.push_back(make_groebner_technique(cfg.groebner));
    if (cfg.use_sat) {
        SatTechniqueConfig sat_cfg;
        sat_cfg.conv = cfg.conv;
        sat_cfg.native_xor = cfg.sat_native_xor;
        sat_cfg.conflicts_start = cfg.sat_conflicts_start;
        sat_cfg.conflicts_max = cfg.sat_conflicts_max;
        sat_cfg.conflicts_step = cfg.sat_conflicts_step;
        sat_cfg.harvest_binary_clauses = cfg.harvest_binary_clauses;
        sat_cfg.backend = cfg.sat_backend;
        sat_cfg.inprocess = cfg.sat_inprocess;
        sat_cfg.sat_profile = cfg.sat_profile;
        sat_cfg.restart_base = cfg.sat_restart_base;
        sat_cfg.learnt_db_floor = cfg.sat_learnt_db_floor;
        sat_cfg.learnt_db_growth = cfg.sat_learnt_db_growth;
        if (cfg.cooperative && cfg.fact_pool) {
            sat_cfg.fact_pool = cfg.fact_pool;
            sat_cfg.coop_worker = cfg.coop_worker;
        }
        out.push_back(make_sat_technique(sat_cfg));
    }
    return out;
}

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg), techniques_(make_default_techniques(cfg_)) {}

Engine& Engine::add_technique(std::unique_ptr<Technique> technique) {
    techniques_.push_back(std::move(technique));
    return *this;
}

Engine& Engine::clear_techniques() {
    techniques_.clear();
    return *this;
}

std::vector<std::string> Engine::technique_names() const {
    std::vector<std::string> names;
    names.reserve(techniques_.size());
    for (const auto& t : techniques_) names.push_back(t->name());
    return names;
}

Engine& Engine::set_interrupt_callback(InterruptCallback cb) {
    interrupt_ = std::move(cb);
    return *this;
}

Engine& Engine::set_progress_callback(ProgressCallback cb) {
    progress_ = std::move(cb);
    return *this;
}

Engine& Engine::set_cancellation_token(runtime::CancellationToken token) {
    cancel_ = std::move(token);
    return *this;
}

Result<Report> Engine::run(const Problem& problem) {
    // A one-shot run is a throwaway Session solved exactly once. The
    // Session borrows this Engine's registry and hooks (so custom
    // techniques and callbacks behave as always) and never takes the
    // warm path -- OneShotTag keeps the result bit-identical to the
    // pre-Session loop.
    Session session(problem, cfg_, Session::OneShotTag{});
    session.techniques_ = std::move(techniques_);
    session.interrupt_ = interrupt_;
    session.progress_ = progress_;
    session.cancel_ = cancel_;
    try {
        Result<Report> out = session.solve();
        techniques_ = std::move(session.techniques_);
        return out;
    } catch (...) {
        techniques_ = std::move(session.techniques_);
        throw;
    }
}

}  // namespace bosphorus
