#include "bosphorus/engine.h"

#include <algorithm>
#include <utility>

#include "core/anf_system.h"
#include "core/cnf_to_anf.h"
#include "util/log.h"
#include "util/timer.h"

namespace bosphorus {

using anf::Polynomial;

// ---- FactSink --------------------------------------------------------------

bool FactSink::add(const Polynomial& fact) {
    ++seen_;
    if (sys_.add_fact(fact)) {
        ++fresh_;
        return true;
    }
    return false;
}

bool FactSink::okay() const { return sys_.okay(); }

// ---- Report ----------------------------------------------------------------

size_t Report::facts_from(const std::string& name) const {
    size_t total = 0;
    for (const auto& t : techniques)
        if (t.name == name) total += t.facts;
    return total;
}

size_t Report::total_facts() const {
    size_t total = 0;
    for (const auto& t : techniques) total += t.facts;
    return total;
}

// ---- Engine ----------------------------------------------------------------

Engine::Engine(EngineConfig cfg) : cfg_(cfg) {
    if (cfg_.use_xl) add_technique(make_xl_technique(cfg_.xl));
    if (cfg_.use_elimlin) add_technique(make_elimlin_technique(cfg_.elimlin));
    if (cfg_.use_groebner)
        add_technique(make_groebner_technique(cfg_.groebner));
    if (cfg_.use_sat) {
        SatTechniqueConfig sat_cfg;
        sat_cfg.conv = cfg_.conv;
        sat_cfg.native_xor = cfg_.sat_native_xor;
        sat_cfg.conflicts_start = cfg_.sat_conflicts_start;
        sat_cfg.conflicts_max = cfg_.sat_conflicts_max;
        sat_cfg.conflicts_step = cfg_.sat_conflicts_step;
        sat_cfg.harvest_binary_clauses = cfg_.harvest_binary_clauses;
        add_technique(make_sat_technique(sat_cfg));
    }
}

Engine& Engine::add_technique(std::unique_ptr<Technique> technique) {
    techniques_.push_back(std::move(technique));
    return *this;
}

Engine& Engine::clear_techniques() {
    techniques_.clear();
    return *this;
}

std::vector<std::string> Engine::technique_names() const {
    std::vector<std::string> names;
    names.reserve(techniques_.size());
    for (const auto& t : techniques_) names.push_back(t->name());
    return names;
}

Engine& Engine::set_interrupt_callback(InterruptCallback cb) {
    interrupt_ = std::move(cb);
    return *this;
}

Engine& Engine::set_progress_callback(ProgressCallback cb) {
    progress_ = std::move(cb);
    return *this;
}

Engine& Engine::set_cancellation_token(runtime::CancellationToken token) {
    cancel_ = std::move(token);
    return *this;
}

Result<Report> Engine::run(const Problem& problem) {
    Timer timer;
    Log log{cfg_.verbosity};
    Rng rng(cfg_.seed);
    Report rep;

    // Materialise the master ANF (CNF input converts per section III-D).
    std::vector<Polynomial> polys;
    size_t num_vars = 0;
    if (problem.kind() == Problem::Kind::kCnf) {
        core::Cnf2AnfResult conv =
            core::cnf_to_anf(problem.cnf(), cfg_.clause_cut);
        polys = std::move(conv.polys);
        num_vars = conv.num_vars;
        rep.num_original_vars = problem.cnf().num_vars;
    } else {
        polys = problem.polynomials();
        num_vars = problem.num_vars();
        rep.num_original_vars = num_vars;
    }
    rep.num_vars = num_vars;

    core::AnfSystem sys(std::move(polys), num_vars);

    rep.techniques.reserve(techniques_.size());
    for (const auto& t : techniques_) {
        t->begin_run();
        rep.techniques.push_back({t->name(), 0, 0});
    }

    auto out_of_time = [&]() {
        if (timer.seconds() > cfg_.time_budget_s) {
            rep.timed_out = true;
            return true;
        }
        return false;
    };

    // One stop signal for the whole run: the external cancellation token
    // (batch shutdown, portfolio loser) folded with the user's interrupt
    // callback. Handed into every FactSink so the core loops poll it at
    // iteration boundaries -- cancellation lands mid-step, not only
    // between steps.
    const runtime::CancellationToken stop =
        runtime::CancellationToken::linked(cancel_, interrupt_);

    bool halted = false;  // a technique decided, or an interrupt arrived
    for (rep.iterations = 0;
         sys.okay() && rep.iterations < cfg_.max_iterations && !out_of_time();
         ++rep.iterations) {
        bool changed = false;

        for (size_t ti = 0; ti < techniques_.size(); ++ti) {
            if (!sys.okay() || out_of_time()) break;
            if (stop.cancelled()) {
                rep.interrupted = true;
                halted = true;
                break;
            }

            Technique& tech = *techniques_[ti];
            FactSink sink(sys, rng, cfg_.time_budget_s - timer.seconds(),
                          rep.iterations, cfg_.verbosity, stop);
            StepReport sr = tech.step(sys, sink);
            if (!sr.status.ok()) return sr.status;

            const size_t fresh = sink.fresh() + sr.facts_fresh;
            rep.techniques[ti].steps += 1;
            rep.techniques[ti].facts += fresh;
            changed |= fresh > 0;

            if (progress_) {
                Progress p;
                p.iteration = rep.iterations;
                p.technique = rep.techniques[ti].name;
                p.facts_seen = sink.seen() + sr.facts_seen;
                p.facts_fresh = fresh;
                p.total_facts = rep.total_facts();
                p.elapsed_s = timer.seconds();
                progress_(p);
            }

            if (sr.decided) {
                if (*sr.decided == sat::Result::kSat) {
                    rep.verdict = sat::Result::kSat;
                    rep.solution = std::move(sr.solution);
                }
                halted = true;
                break;
            }
        }

        if (halted || !changed) break;  // decision/interrupt or fixed point
    }

    // A cancellation that landed inside the final step (core loops bailed
    // early, loop then exited on "no change") is still an interruption.
    if (!halted && rep.verdict == sat::Result::kUnknown && stop.cancelled())
        rep.interrupted = true;

    if (!sys.okay()) rep.verdict = sat::Result::kUnsat;

    rep.processed_anf = sys.to_polynomials();
    core::Anf2CnfConfig out_cfg = cfg_.conv;
    out_cfg.native_xor = false;  // the emitted CNF is plain DIMACS-compatible
    rep.processed_cnf = core::anf_to_cnf(rep.processed_anf, num_vars, out_cfg);
    rep.vars_fixed = sys.num_fixed();
    rep.vars_replaced = sys.num_replaced();
    rep.seconds = timer.seconds();
    log.info(1,
             "engine: %zu iterations, %zu facts, fixed=%zu replaced=%zu, "
             "%.2fs",
             rep.iterations, rep.total_facts(), rep.vars_fixed,
             rep.vars_replaced, rep.seconds);
    return rep;
}

}  // namespace bosphorus
