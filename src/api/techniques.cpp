// The four built-in learning techniques, packaged as Engine plugins.
#include <algorithm>
#include <array>
#include <map>
#include <utility>

#include "bosphorus/sat_backend.h"
#include "bosphorus/technique.h"
#include "core/anf_system.h"
#include "runtime/fact_exchange.h"
#include "sat/solver.h"
#include "util/log.h"

namespace bosphorus {

using anf::Polynomial;
using anf::Var;

namespace {

/// Feed a batch of facts through the sink, stopping on contradiction.
void deposit(FactSink& sink, const std::vector<Polynomial>& facts) {
    for (const auto& f : facts) {
        sink.add(f);
        if (!sink.okay()) break;
    }
}

class XlTechnique final : public Technique {
public:
    explicit XlTechnique(const core::XlConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "xl"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::XlStats stats;
        const auto facts = core::run_xl(sys.equations(), cfg_, sink.rng(),
                                        &stats, sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu XL: %zu rows, %zu cols, %zu facts (%zu new)",
            sink.iteration(), stats.expanded_rows, stats.columns, facts.size(),
            sink.fresh());
        return {};
    }

private:
    core::XlConfig cfg_;
};

class ElimLinTechnique final : public Technique {
public:
    explicit ElimLinTechnique(const core::ElimLinConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "elimlin"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::ElimLinStats stats;
        const auto facts = core::run_elimlin(sys.equations(), cfg_,
                                             sink.rng(), &stats,
                                             sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu ElimLin: %zu iters, %zu facts (%zu new)",
            sink.iteration(), stats.iterations, facts.size(), sink.fresh());
        return {};
    }

private:
    core::ElimLinConfig cfg_;
};

class GroebnerTechnique final : public Technique {
public:
    explicit GroebnerTechnique(const core::GroebnerConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "groebner"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::GroebnerStats stats;
        const auto facts = core::run_groebner(sys.equations(), cfg_,
                                              sink.rng(), &stats,
                                              sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu Groebner: %zu spairs, %zu facts (%zu new)",
            sink.iteration(), stats.spairs_formed, facts.size(), sink.fresh());
        return {};
    }

private:
    core::GroebnerConfig cfg_;
};

/// Learnt binary clauses pair up into equivalences: (a|b) & (!a|!b) means
/// a == !b, and (a|!b) & (!a|b) means a == b. Returns linear polynomials.
std::vector<Polynomial> equivalences_from_binaries(
    const std::vector<std::array<sat::Lit, 2>>& binaries, size_t num_anf_vars) {
    // Key: unordered variable pair; value: bitmask of seen sign patterns.
    std::map<std::pair<sat::Var, sat::Var>, unsigned> seen;
    for (const auto& b : binaries) {
        sat::Lit l0 = b[0], l1 = b[1];
        if (l0.var() > l1.var()) std::swap(l0, l1);
        if (l0.var() >= num_anf_vars || l1.var() >= num_anf_vars) continue;
        if (l0.var() == l1.var()) continue;
        const unsigned pattern =
            (l0.sign() ? 1u : 0u) | (l1.sign() ? 2u : 0u);
        seen[{l0.var(), l1.var()}] |= 1u << pattern;
    }
    std::vector<Polynomial> out;
    for (const auto& [vars, mask] : seen) {
        const auto [a, b] = vars;
        // patterns: 0 = (a|b), 1 = (!a|b), 2 = (a|!b), 3 = (!a|!b)
        const bool anti = (mask & (1u << 0)) && (mask & (1u << 3));
        const bool equal = (mask & (1u << 1)) && (mask & (1u << 2));
        if (anti) {
            // a + b + 1 = 0
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b) +
                          Polynomial::constant(true));
        }
        if (equal) {
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b));
        }
    }
    return out;
}

/// Shared kSat epilogue of every SAT-step flavour (native/backend x
/// cold/live): build the assignment from `value_at(v)`, verify it
/// against the live system, and either decide kSat with the solution or
/// halt without a verdict. One definition so the four paths cannot
/// drift.
template <typename ValueAt>
void decide_from_model(core::AnfSystem& sys, size_t num_vars,
                       ValueAt value_at, StepReport& report) {
    std::vector<bool> assignment(num_vars, false);
    for (Var v = 0; v < num_vars; ++v) assignment[v] = value_at(v);
    if (sys.check_solution(assignment)) {
        report.decided = sat::Result::kSat;
        report.solution = std::move(assignment);
    } else {
        // Model fails verification: halt without a verdict.
        report.decided = sat::Result::kUnknown;
    }
}

class SatTechnique final : public Technique {
public:
    explicit SatTechnique(const SatTechniqueConfig& cfg)
        : cfg_(cfg), conflict_budget_(cfg.conflicts_start) {
        sat::inprocess::ProfileId id;
        if (!sat::inprocess::profile_from_name(cfg_.sat_profile, id)) {
            config_error_ = Status::invalid_argument(
                "unknown sat profile '" + cfg_.sat_profile +
                "' (expected auto, fixed, balanced, crypto-xor, "
                "agile-restart or heavy-tail)");
        }
    }
    std::string name() const override { return "sat"; }

    /// The native solver configuration every native path (persistent live
    /// solver and per-step cold solver) is built from; one definition so
    /// warm and cold cannot drift.
    sat::Solver::Config solver_config() const {
        sat::Solver::Config scfg;
        scfg.enable_xor = cfg_.native_xor;
        scfg.inprocess.enabled = cfg_.inprocess;
        sat::inprocess::ProfileId id;
        if (sat::inprocess::profile_from_name(cfg_.sat_profile, id))
            scfg.inprocess.profile = id;
        if (cfg_.restart_base > 0) scfg.restart_base = cfg_.restart_base;
        if (cfg_.learnt_db_floor > 0)
            scfg.inprocess.local_cap_min =
                static_cast<size_t>(cfg_.learnt_db_floor);
        if (cfg_.learnt_db_growth > 0)
            scfg.inprocess.local_cap_growth = cfg_.learnt_db_growth;
        return scfg;
    }

    void begin_run() override { conflict_budget_ = cfg_.conflicts_start; }

    /// Warm re-solve: restart the conflict-budget schedule but keep the
    /// live solver (and everything it has learnt about the base system).
    void reset_for_resolve() override {
        conflict_budget_ = cfg_.conflicts_start;
    }

    /// Build the persistent solver for a Session's base system. It is
    /// loaded once and reused across every warm solve; scoped state
    /// reaches it as native assumption literals in step_live(). With a
    /// named backend configured, the persistent solver is a registry
    /// backend instead of the built-in native solver.
    void bind_base(const std::vector<Polynomial>& base,
                   size_t num_vars) override {
        // A fresh persistent solver has none of the cached foreign facts:
        // re-inject them all on the next live step.
        coop_live_added_ = 0;
        if (!cfg_.backend.empty()) {
            live_.reset();
            live_backend_.reset();
            auto backend = sat::BackendRegistry::global().create(
                sat::SolverSpec{cfg_.backend});
            if (!backend.ok()) {
                backend_error_ = backend.status();
                return;
            }
            backend_error_ = Status();
            core::Anf2CnfConfig conv_cfg = cfg_.conv;
            conv_cfg.native_xor =
                cfg_.native_xor && (*backend)->supports_native_xor();
            const core::Anf2CnfResult conv =
                core::anf_to_cnf(base, num_vars, conv_cfg);
            live_backend_ = std::move(*backend);
            live_num_anf_vars_ = conv.num_anf_vars;
            live_backend_->load(conv.cnf);  // false: okay() stays false
            return;
        }
        core::Anf2CnfConfig conv_cfg = cfg_.conv;
        conv_cfg.native_xor = cfg_.native_xor;
        const core::Anf2CnfResult conv =
            core::anf_to_cnf(base, num_vars, conv_cfg);
        live_ = std::make_unique<sat::Solver>(solver_config());
        live_num_anf_vars_ = conv.num_anf_vars;
        live_->load(conv.cnf);  // a false return leaves okay() false: UNSAT
    }

    // ---- cooperative fact exchange (src/runtime/fact_exchange.h) ----
    //
    // With a SharedFactPool configured, foreign learnt facts are drained
    // into `coop_clauses_` (a local cache, because cold paths build a
    // fresh solver per step and must re-inject everything) and added as
    // clauses before every solve round; own harvests are published back.
    // Every cached fact is a consequence of the shared base problem, so
    // injection is sound into any solver over a system that contains the
    // base -- cold, live, scoped or not.

    /// Drain newly published foreign facts into the cache, crediting the
    /// step's import tally. Returns the number drained.
    size_t coop_refresh(FactSink& sink) {
        if (!cfg_.fact_pool) return 0;
        const size_t n = cfg_.fact_pool->import(coop_cursor_, cfg_.coop_worker,
                                                coop_clauses_);
        if (n) sink.count_coop_imported(n);
        return n;
    }

    /// Add cached facts [from, end) as clauses through `add`, skipping
    /// facts over variables the target encoding does not map identically
    /// (>= n_anf_vars; cannot happen for correctly sized pools, kept as a
    /// guard). Returns the new cache end.
    template <typename AddClause>
    size_t coop_inject(size_t from, size_t n_anf_vars, AddClause add) const {
        for (size_t i = from; i < coop_clauses_.size(); ++i) {
            const runtime::SharedFact& f = coop_clauses_[i];
            if (f.kind == runtime::SharedFact::Kind::kUnit) {
                if (f.a.var() < n_anf_vars) add(std::vector<sat::Lit>{f.a});
            } else if (f.a.var() < n_anf_vars && f.b.var() < n_anf_vars) {
                add(std::vector<sat::Lit>{f.a, f.b});
            }
        }
        return coop_clauses_.size();
    }

    /// Publish a solver's learnt units and binaries to the pool (which
    /// itself rejects variables outside the shared space -- that is how
    /// CNF auxiliaries above the original problem vars are filtered).
    /// Callers gate cold-path publishes on FactSink::coop_publish_base().
    void coop_publish(const std::vector<sat::Lit>& units,
                      const std::vector<std::array<sat::Lit, 2>>& binaries,
                      FactSink& sink) {
        if (!cfg_.fact_pool) return;
        runtime::SharedFactPool& pool = *cfg_.fact_pool;
        size_t published = 0;
        for (const sat::Lit u : units)
            if (pool.publish_unit(cfg_.coop_worker, u)) ++published;
        for (const auto& b : binaries)
            if (pool.publish_binary(cfg_.coop_worker, b[0], b[1])) ++published;
        if (published) sink.count_coop_published(published);
    }

    // Deliberate: the empty-spec native paths below are NOT routed
    // through an InTreeBackend adapter. The registry's "cms" adapter
    // performs XOR recovery the in-loop solver must not (the conversion
    // already emits native XORs), and the native paths carry the
    // bit-identical warm-Session/batch trajectory guarantees of PRs 3-4
    // that a re-route would put at risk. The shared pieces (harvest,
    // decide_from_model) are factored; the per-path solver plumbing
    // stays separate on purpose.
    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        if (!config_error_.ok()) {
            StepReport report;
            report.status = config_error_;
            return report;
        }
        if (!cfg_.backend.empty()) {
            if (!backend_error_.ok()) {
                StepReport report;
                report.status = backend_error_;
                return report;
            }
            if (live_backend_ && sink.warm_base_valid())
                return step_live_backend(sys, sink);
            return step_cold_backend(sys, sink);
        }
        if (live_ && sink.warm_base_valid()) return step_live(sys, sink);
        return step_cold(sys, sink);
    }

private:
    /// Deposit a solver's accumulated linear facts -- learnt units,
    /// equivalences paired up from learnt binaries, and (optionally) the
    /// binaries themselves as quadratic facts -- restricted to the first
    /// `n_anf_vars` variables. Shared by every cold and live path (native
    /// and backend) so they cannot diverge. Returns false once the sink
    /// reports contradiction.
    bool harvest(const std::vector<sat::Lit>& units,
                 const std::vector<std::array<sat::Lit, 2>>& binaries,
                 size_t n_anf_vars, FactSink& sink) {
        for (const sat::Lit u : units) {
            if (u.var() >= n_anf_vars) continue;
            // u true: var = !sign  ->  polynomial x (+ 1).
            Polynomial f = Polynomial::variable(u.var());
            if (!u.sign()) f += Polynomial::constant(true);
            sink.add(f);
            if (!sink.okay()) return false;
        }
        deposit(sink, equivalences_from_binaries(binaries, n_anf_vars));
        if (!sink.okay()) return false;
        if (cfg_.harvest_binary_clauses) {
            for (const auto& b : binaries) {
                if (b[0].var() >= n_anf_vars || b[1].var() >= n_anf_vars)
                    continue;
                // (l0 | l1) = 0 in ANF: product of negated literals.
                Polynomial f0 = Polynomial::variable(b[0].var());
                if (!b[0].sign()) f0 += Polynomial::constant(true);
                Polynomial f1 = Polynomial::variable(b[1].var());
                if (!b[1].sign()) f1 += Polynomial::constant(true);
                sink.add(f0 * f1);
                if (!sink.okay()) return false;
            }
        }
        return sink.okay();
    }

    /// The classic one-shot path: convert the current (scope-simplified)
    /// system to CNF and run a fresh bounded solver over it.
    StepReport step_cold(core::AnfSystem& sys, FactSink& sink) {
        StepReport report;
        // The CDCL run below is already bounded by conflicts + wall clock;
        // polling here keeps a cancelled engine from paying for the CNF
        // conversion and solver setup at all.
        if (sink.cancelled()) return report;

        core::Anf2CnfConfig conv_cfg = cfg_.conv;
        conv_cfg.native_xor = cfg_.native_xor;
        const size_t num_vars = sys.num_vars();
        const core::Anf2CnfResult conv =
            core::anf_to_cnf(sys.to_polynomials(), num_vars, conv_cfg);

        sat::Solver solver(solver_config());
        // Cancellation reaches a *running* solve through the terminate
        // hook (portfolio losers stop mid-budget, not at the step end).
        solver.set_terminate_callback(
            [token = sink.cancel_token()] { return token.cancelled(); });
        const double remaining = std::max(0.1, sink.time_remaining_s());
        sat::Result r = sat::Result::kUnsat;
        if (solver.load(conv.cnf)) {
            coop_refresh(sink);
            coop_inject(0, conv.num_anf_vars, [&](std::vector<sat::Lit> c) {
                solver.add_clause(std::move(c));
            });
            if (solver.okay()) r = solver.solve(conflict_budget_, remaining);
        }

        if (r == sat::Result::kUnsat || !solver.okay()) {
            // The learnt fact is the contradictory equation 1 = 0.
            sink.add(Polynomial::constant(true));
            return report;
        }
        if (r == sat::Result::kSat) {
            // A full solution: report it and stop the loop. It is not used
            // to simplify the ANF (it may not be unique).
            decide_from_model(sys, num_vars, [&](Var v) {
                return solver.model()[v] == sat::LBool::kTrue;
            }, report);
            return report;
        }

        // Undecided within the conflict budget: extract linear equations
        // from the learnt unit and binary clauses.
        if (!harvest(solver.learnt_units(), solver.learnt_binaries(),
                     conv.num_anf_vars, sink))
            return report;
        // Cold harvests are consequences of the *current* (possibly
        // scoped) system: only share them when that system is the base.
        if (sink.coop_publish_base())
            coop_publish(solver.learnt_units(), solver.learnt_binaries(), sink);
        if (sink.fresh() == 0) {
            // No new facts: raise the conflict budget (section IV).
            conflict_budget_ = std::min(cfg_.conflicts_max,
                                        conflict_budget_ + cfg_.conflicts_step);
        }
        Log{sink.verbosity()}.info(
            2, "iter %zu SAT: budget %lld, %zu new facts", sink.iteration(),
            static_cast<long long>(conflict_budget_), sink.fresh());
        return report;
    }

    /// The incremental path: no CNF conversion, no solver construction.
    /// The live solver holds the base system (plus everything it has
    /// learnt); the current scope reaches it purely as assumption
    /// literals -- one per variable the AnfSystem has fixed. Sound
    /// because every scoped constraint is itself such a literal
    /// (FactSink::warm_base_valid guards this), so base CNF + assumptions
    /// is logically equivalent to the live system.
    StepReport step_live(core::AnfSystem& sys, FactSink& sink) {
        StepReport report;
        if (sink.cancelled()) return report;

        sat::Solver& solver = *live_;
        if (!solver.okay()) {
            sink.add(Polynomial::constant(true));  // base itself is UNSAT
            return report;
        }
        solver.set_terminate_callback(
            [token = sink.cancel_token()] { return token.cancelled(); });

        // Inject foreign facts the persistent solver has not seen yet.
        // They are base consequences, so they may be added permanently.
        coop_refresh(sink);
        if (coop_live_added_ < coop_clauses_.size()) {
            coop_live_added_ =
                coop_inject(coop_live_added_, live_num_anf_vars_,
                            [&](std::vector<sat::Lit> c) {
                                solver.add_clause(std::move(c));
                            });
            if (!solver.okay()) {
                sink.add(Polynomial::constant(true));
                return report;
            }
        }

        std::vector<sat::Lit> assumptions;
        const size_t num_vars = sys.num_vars();
        for (Var v = 0; v < num_vars && v < live_num_anf_vars_; ++v) {
            const core::VarState st = sys.resolve(v);
            if (st.kind == core::VarState::Kind::kFixed)
                assumptions.push_back(sat::mk_lit(v, !st.value));
        }

        const double remaining = std::max(0.1, sink.time_remaining_s());
        const sat::Result r =
            solver.solve_assuming(assumptions, conflict_budget_, remaining);

        if (r == sat::Result::kUnsat || !solver.okay()) {
            // UNSAT under the scope's assumptions (or outright): the
            // current system has derived 1 = 0. pop() un-derives it.
            sink.add(Polynomial::constant(true));
            return report;
        }
        if (r == sat::Result::kSat) {
            decide_from_model(sys, num_vars, [&](Var v) {
                return v < solver.model().size() &&
                       solver.model()[v] == sat::LBool::kTrue;
            }, report);
            return report;
        }

        // Undecided: harvest linear facts. Learnt units live on the
        // solver's level-0 trail and learnt binaries are implied by the
        // clause database alone -- both are consequences of the *base*
        // system, never of the assumptions, so depositing them at any
        // scope (and re-depositing after a pop; the sink deduplicates)
        // is sound.
        if (!harvest(solver.learnt_units(), solver.learnt_binaries(),
                     live_num_anf_vars_, sink))
            return report;
        // The persistent solver's clause database only ever contains
        // consequences of the bound base (assumptions never enter it), so
        // when that base is the shared problem its exports are
        // publishable at any scope.
        if (sink.coop_publish_warm())
            coop_publish(solver.learnt_units(), solver.learnt_binaries(), sink);
        Log{sink.verbosity()}.info(
            2, "iter %zu SAT(live): %zu assumptions, budget %lld, %zu new",
            sink.iteration(), assumptions.size(),
            static_cast<long long>(conflict_budget_), sink.fresh());
        if (sink.fresh() == 0) {
            // The warm solver got stuck on the base encoding. Fall back to
            // one cold step: solving the *scope-simplified* CNF is
            // structurally easier, so the warm path is never less decisive
            // than the one-shot path. The fallback owns the budget
            // escalation (section IV schedule, once per step); typical
            // sweep candidates are decided above and never pay this.
            return step_cold(sys, sink);
        }
        return report;
    }

    /// Cold step through a registry backend: a fresh backend per step
    /// gets the scope-simplified system's CNF and one bounded solve; the
    /// verdict handling mirrors step_cold exactly, and whatever facts the
    /// backend can export are harvested (external processes export none
    /// -- the step still decides SAT/UNSAT and escalates its budget).
    StepReport step_cold_backend(core::AnfSystem& sys, FactSink& sink) {
        StepReport report;
        if (sink.cancelled()) return report;

        auto backend = sat::BackendRegistry::global().create(
            sat::SolverSpec{cfg_.backend});
        if (!backend.ok()) {
            report.status = backend.status();
            return report;
        }
        sat::SolverBackend& b = **backend;
        core::Anf2CnfConfig conv_cfg = cfg_.conv;
        conv_cfg.native_xor = cfg_.native_xor && b.supports_native_xor();
        const size_t num_vars = sys.num_vars();
        const core::Anf2CnfResult conv =
            core::anf_to_cnf(sys.to_polynomials(), num_vars, conv_cfg);

        b.set_terminate_callback(
            [token = sink.cancel_token()] { return token.cancelled(); });
        const double remaining = std::max(0.1, sink.time_remaining_s());
        sat::Result r = sat::Result::kUnsat;
        if (b.load(conv.cnf)) {
            coop_refresh(sink);
            coop_inject(0, conv.num_anf_vars, [&](std::vector<sat::Lit> c) {
                b.add_clause(c);
            });
            if (b.okay()) r = b.solve(conflict_budget_, remaining);
        }

        if (r == sat::Result::kUnsat || !b.okay()) {
            sink.add(Polynomial::constant(true));
            return report;
        }
        if (r == sat::Result::kSat) {
            decide_from_model(sys, num_vars, [&](Var v) {
                return b.value(v) == sat::LBool::kTrue;
            }, report);
            return report;
        }

        if (!harvest(b.learnt_units(), b.learnt_binaries(),
                     conv.num_anf_vars, sink))
            return report;
        if (sink.coop_publish_base())
            coop_publish(b.learnt_units(), b.learnt_binaries(), sink);
        if (sink.fresh() == 0) {
            conflict_budget_ = std::min(cfg_.conflicts_max,
                                        conflict_budget_ + cfg_.conflicts_step);
        }
        Log{sink.verbosity()}.info(
            2, "iter %zu SAT(%s): budget %lld, %zu new facts",
            sink.iteration(), cfg_.backend.c_str(),
            static_cast<long long>(conflict_budget_), sink.fresh());
        return report;
    }

    /// Warm step through the persistent Session backend: the current
    /// scope reaches the backend as assumption literals (backends
    /// without native assumptions degrade them to a cold solve
    /// internally -- verdict-equivalent either way), mirroring
    /// step_live. Falls back to one cold backend step when the warm
    /// solve was fact-free, so warm is never less decisive.
    StepReport step_live_backend(core::AnfSystem& sys, FactSink& sink) {
        StepReport report;
        if (sink.cancelled()) return report;

        sat::SolverBackend& b = *live_backend_;
        if (!b.okay()) {
            sink.add(Polynomial::constant(true));  // base itself is UNSAT
            return report;
        }
        b.set_terminate_callback(
            [token = sink.cancel_token()] { return token.cancelled(); });

        coop_refresh(sink);
        if (coop_live_added_ < coop_clauses_.size()) {
            coop_live_added_ = coop_inject(
                coop_live_added_, live_num_anf_vars_,
                [&](const std::vector<sat::Lit>& c) { b.add_clause(c); });
            if (!b.okay()) {
                sink.add(Polynomial::constant(true));
                return report;
            }
        }

        const size_t num_vars = sys.num_vars();
        size_t n_assumed = 0;
        for (Var v = 0; v < num_vars && v < live_num_anf_vars_; ++v) {
            const core::VarState st = sys.resolve(v);
            if (st.kind == core::VarState::Kind::kFixed) {
                b.assume(sat::mk_lit(v, !st.value));
                ++n_assumed;
            }
        }

        const double remaining = std::max(0.1, sink.time_remaining_s());
        const sat::Result r = b.solve(conflict_budget_, remaining);

        if (r == sat::Result::kUnsat || !b.okay()) {
            sink.add(Polynomial::constant(true));
            return report;
        }
        if (r == sat::Result::kSat) {
            decide_from_model(sys, num_vars, [&](Var v) {
                return b.value(v) == sat::LBool::kTrue;
            }, report);
            return report;
        }

        if (!harvest(b.learnt_units(), b.learnt_binaries(),
                     live_num_anf_vars_, sink))
            return report;
        // Like the native live path: a persistent backend's exports are
        // bound-base consequences, publishable at any scope when the
        // bound base is the shared problem. (Backends that degrade
        // assumptions to units export nothing on assumption-laden solves
        // -- see the lingeling adapter -- so no unsound fact can leak
        // through this call.)
        if (sink.coop_publish_warm())
            coop_publish(b.learnt_units(), b.learnt_binaries(), sink);
        Log{sink.verbosity()}.info(
            2, "iter %zu SAT(%s live): %zu assumptions, %zu new",
            sink.iteration(), cfg_.backend.c_str(), n_assumed, sink.fresh());
        if (sink.fresh() == 0) {
            return step_cold_backend(sys, sink);
        }
        return report;
    }

    SatTechniqueConfig cfg_;
    int64_t conflict_budget_;
    std::unique_ptr<sat::Solver> live_;  ///< persistent Session solver
    std::unique_ptr<sat::SolverBackend> live_backend_;  ///< named-backend twin
    Status backend_error_;  ///< a failed bind_base, surfaced at step()
    Status config_error_;   ///< a bad SatTechniqueConfig, surfaced at step()
    size_t live_num_anf_vars_ = 0;
    // Cooperative exchange state: the private import cursor, the cache of
    // foreign facts drained so far (cold paths re-inject all of it), and
    // how much of the cache the persistent live solver has already seen.
    runtime::SharedFactPool::Cursor coop_cursor_;
    std::vector<runtime::SharedFact> coop_clauses_;
    size_t coop_live_added_ = 0;
};

}  // namespace

std::unique_ptr<Technique> make_xl_technique(const core::XlConfig& cfg) {
    return std::make_unique<XlTechnique>(cfg);
}

std::unique_ptr<Technique> make_elimlin_technique(
    const core::ElimLinConfig& cfg) {
    return std::make_unique<ElimLinTechnique>(cfg);
}

std::unique_ptr<Technique> make_groebner_technique(
    const core::GroebnerConfig& cfg) {
    return std::make_unique<GroebnerTechnique>(cfg);
}

std::unique_ptr<Technique> make_sat_technique(const SatTechniqueConfig& cfg) {
    return std::make_unique<SatTechnique>(cfg);
}

}  // namespace bosphorus
