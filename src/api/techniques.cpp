// The four built-in learning techniques, packaged as Engine plugins.
#include <algorithm>
#include <array>
#include <map>
#include <utility>

#include "bosphorus/technique.h"
#include "core/anf_system.h"
#include "sat/solver.h"
#include "util/log.h"

namespace bosphorus {

using anf::Polynomial;
using anf::Var;

namespace {

/// Feed a batch of facts through the sink, stopping on contradiction.
void deposit(FactSink& sink, const std::vector<Polynomial>& facts) {
    for (const auto& f : facts) {
        sink.add(f);
        if (!sink.okay()) break;
    }
}

class XlTechnique final : public Technique {
public:
    explicit XlTechnique(const core::XlConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "xl"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::XlStats stats;
        const auto facts = core::run_xl(sys.equations(), cfg_, sink.rng(),
                                        &stats, sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu XL: %zu rows, %zu cols, %zu facts (%zu new)",
            sink.iteration(), stats.expanded_rows, stats.columns, facts.size(),
            sink.fresh());
        return {};
    }

private:
    core::XlConfig cfg_;
};

class ElimLinTechnique final : public Technique {
public:
    explicit ElimLinTechnique(const core::ElimLinConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "elimlin"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::ElimLinStats stats;
        const auto facts = core::run_elimlin(sys.equations(), cfg_,
                                             sink.rng(), &stats,
                                             sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu ElimLin: %zu iters, %zu facts (%zu new)",
            sink.iteration(), stats.iterations, facts.size(), sink.fresh());
        return {};
    }

private:
    core::ElimLinConfig cfg_;
};

class GroebnerTechnique final : public Technique {
public:
    explicit GroebnerTechnique(const core::GroebnerConfig& cfg) : cfg_(cfg) {}
    std::string name() const override { return "groebner"; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        core::GroebnerStats stats;
        const auto facts = core::run_groebner(sys.equations(), cfg_,
                                              sink.rng(), &stats,
                                              sink.cancel_token());
        deposit(sink, facts);
        Log{sink.verbosity()}.info(
            2, "iter %zu Groebner: %zu spairs, %zu facts (%zu new)",
            sink.iteration(), stats.spairs_formed, facts.size(), sink.fresh());
        return {};
    }

private:
    core::GroebnerConfig cfg_;
};

/// Learnt binary clauses pair up into equivalences: (a|b) & (!a|!b) means
/// a == !b, and (a|!b) & (!a|b) means a == b. Returns linear polynomials.
std::vector<Polynomial> equivalences_from_binaries(
    const std::vector<std::array<sat::Lit, 2>>& binaries, size_t num_anf_vars) {
    // Key: unordered variable pair; value: bitmask of seen sign patterns.
    std::map<std::pair<sat::Var, sat::Var>, unsigned> seen;
    for (const auto& b : binaries) {
        sat::Lit l0 = b[0], l1 = b[1];
        if (l0.var() > l1.var()) std::swap(l0, l1);
        if (l0.var() >= num_anf_vars || l1.var() >= num_anf_vars) continue;
        if (l0.var() == l1.var()) continue;
        const unsigned pattern =
            (l0.sign() ? 1u : 0u) | (l1.sign() ? 2u : 0u);
        seen[{l0.var(), l1.var()}] |= 1u << pattern;
    }
    std::vector<Polynomial> out;
    for (const auto& [vars, mask] : seen) {
        const auto [a, b] = vars;
        // patterns: 0 = (a|b), 1 = (!a|b), 2 = (a|!b), 3 = (!a|!b)
        const bool anti = (mask & (1u << 0)) && (mask & (1u << 3));
        const bool equal = (mask & (1u << 1)) && (mask & (1u << 2));
        if (anti) {
            // a + b + 1 = 0
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b) +
                          Polynomial::constant(true));
        }
        if (equal) {
            out.push_back(Polynomial::variable(a) + Polynomial::variable(b));
        }
    }
    return out;
}

class SatTechnique final : public Technique {
public:
    explicit SatTechnique(const SatTechniqueConfig& cfg)
        : cfg_(cfg), conflict_budget_(cfg.conflicts_start) {}
    std::string name() const override { return "sat"; }

    void begin_run() override { conflict_budget_ = cfg_.conflicts_start; }

    StepReport step(core::AnfSystem& sys, FactSink& sink) override {
        StepReport report;
        // The CDCL run below is already bounded by conflicts + wall clock;
        // polling here keeps a cancelled engine from paying for the CNF
        // conversion and solver setup at all.
        if (sink.cancelled()) return report;

        core::Anf2CnfConfig conv_cfg = cfg_.conv;
        conv_cfg.native_xor = cfg_.native_xor;
        const size_t num_vars = sys.num_vars();
        const core::Anf2CnfResult conv =
            core::anf_to_cnf(sys.to_polynomials(), num_vars, conv_cfg);

        sat::Solver::Config scfg;
        scfg.enable_xor = cfg_.native_xor;
        sat::Solver solver(scfg);
        const double remaining = std::max(0.1, sink.time_remaining_s());
        sat::Result r = sat::Result::kUnsat;
        if (solver.load(conv.cnf)) {
            r = solver.solve(conflict_budget_, remaining);
        }

        if (r == sat::Result::kUnsat || !solver.okay()) {
            // The learnt fact is the contradictory equation 1 = 0.
            sink.add(Polynomial::constant(true));
            return report;
        }
        if (r == sat::Result::kSat) {
            // A full solution: report it and stop the loop. It is not used
            // to simplify the ANF (it may not be unique).
            std::vector<bool> assignment(num_vars, false);
            for (Var v = 0; v < num_vars; ++v)
                assignment[v] = solver.model()[v] == sat::LBool::kTrue;
            if (sys.check_solution(assignment)) {
                report.decided = sat::Result::kSat;
                report.solution = std::move(assignment);
            } else {
                // Model fails verification: halt without a verdict.
                report.decided = sat::Result::kUnknown;
            }
            return report;
        }

        // Undecided within the conflict budget: extract linear equations
        // from the learnt unit and binary clauses.
        for (const sat::Lit u : solver.learnt_units()) {
            if (u.var() >= conv.num_anf_vars) continue;
            // u true: var = !sign  ->  polynomial x (+ 1).
            Polynomial f = Polynomial::variable(u.var());
            if (!u.sign()) f += Polynomial::constant(true);
            sink.add(f);
            if (!sink.okay()) return report;
        }
        deposit(sink, equivalences_from_binaries(solver.learnt_binaries(),
                                                 conv.num_anf_vars));
        if (!sink.okay()) return report;
        if (cfg_.harvest_binary_clauses) {
            for (const auto& b : solver.learnt_binaries()) {
                if (b[0].var() >= conv.num_anf_vars ||
                    b[1].var() >= conv.num_anf_vars)
                    continue;
                // (l0 | l1) = 0 in ANF: product of negated literals.
                Polynomial f0 = Polynomial::variable(b[0].var());
                if (!b[0].sign()) f0 += Polynomial::constant(true);
                Polynomial f1 = Polynomial::variable(b[1].var());
                if (!b[1].sign()) f1 += Polynomial::constant(true);
                sink.add(f0 * f1);
                if (!sink.okay()) return report;
            }
        }
        if (sink.fresh() == 0) {
            // No new facts: raise the conflict budget (section IV).
            conflict_budget_ = std::min(cfg_.conflicts_max,
                                        conflict_budget_ + cfg_.conflicts_step);
        }
        Log{sink.verbosity()}.info(
            2, "iter %zu SAT: budget %lld, %zu new facts", sink.iteration(),
            static_cast<long long>(conflict_budget_), sink.fresh());
        return report;
    }

private:
    SatTechniqueConfig cfg_;
    int64_t conflict_budget_;
};

}  // namespace

std::unique_ptr<Technique> make_xl_technique(const core::XlConfig& cfg) {
    return std::make_unique<XlTechnique>(cfg);
}

std::unique_ptr<Technique> make_elimlin_technique(
    const core::ElimLinConfig& cfg) {
    return std::make_unique<ElimLinTechnique>(cfg);
}

std::unique_ptr<Technique> make_groebner_technique(
    const core::GroebnerConfig& cfg) {
    return std::make_unique<GroebnerTechnique>(cfg);
}

std::unique_ptr<Technique> make_sat_technique(const SatTechniqueConfig& cfg) {
    return std::make_unique<SatTechnique>(cfg);
}

}  // namespace bosphorus
