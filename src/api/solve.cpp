#include "bosphorus/solve.h"

#include <algorithm>
#include <utility>

#include "core/anf_to_cnf.h"
#include "core/cnf_to_anf.h"
#include "util/timer.h"

namespace bosphorus {

using anf::Polynomial;

namespace {

/// Check a CNF model against the original ANF equations.
bool verify_anf_model(const std::vector<Polynomial>& polys, size_t num_vars,
                      const std::vector<sat::LBool>& model) {
    std::vector<bool> assignment(num_vars, false);
    for (size_t v = 0; v < num_vars && v < model.size(); ++v)
        assignment[v] = model[v] == sat::LBool::kTrue;
    for (const auto& p : polys) {
        if (p.evaluate(assignment)) return false;
    }
    return true;
}

/// Run the learning loop with its share of the budget. On success sets
/// *decided when the engine settled the instance (outcome is final);
/// a non-OK status propagates out of solve().
Status preprocess(const Problem& problem, const SolveConfig& cfg, Report* rep,
                  SolveOutcome* out, bool* decided) {
    *decided = false;
    EngineConfig ecfg = cfg.engine;
    ecfg.time_budget_s = std::min(cfg.engine_budget_s, cfg.timeout_s);
    Engine engine(ecfg);
    auto run = engine.run(problem);
    if (!run.ok()) return run.status();
    *rep = std::move(*run);
    out->engine_seconds = rep->seconds;
    if (rep->verdict == sat::Result::kUnsat) {
        out->result = sat::Result::kUnsat;
        out->solved_in_loop = true;
        *decided = true;
    } else if (rep->verdict == sat::Result::kSat) {
        out->result = sat::Result::kSat;
        out->solved_in_loop = true;
        out->model_verified = true;  // checked inside the loop
        *decided = true;
    }
    return Status();
}

Result<SolveOutcome> solve_anf(const std::vector<Polynomial>& polys,
                               size_t num_vars, const SolveConfig& cfg,
                               const Problem& problem) {
    Timer timer;
    SolveOutcome out;

    std::vector<Polynomial> to_convert;
    if (cfg.preprocess) {
        Report rep;
        bool decided = false;
        const Status st = preprocess(problem, cfg, &rep, &out, &decided);
        if (!st.ok()) return st;
        if (decided) {
            out.seconds = timer.seconds();
            return out;
        }
        to_convert = std::move(rep.processed_anf);
    } else {
        to_convert = polys;
    }

    core::Anf2CnfConfig conv_cfg =
        cfg.preprocess ? cfg.engine.conv : core::Anf2CnfConfig{};
    conv_cfg.native_xor = false;  // back-end solvers receive plain CNF
    const core::Anf2CnfResult conv =
        core::anf_to_cnf(to_convert, num_vars, conv_cfg);

    const double remaining = std::max(0.1, cfg.timeout_s - timer.seconds());
    const Result<sat::CnfSolveOutcome> so =
        sat::solve_cnf_with(conv.cnf, cfg.solver, remaining);
    if (!so.ok()) return so.status();
    out.result = so->result;
    out.solver_stats = so->stats;
    if (so->result == sat::Result::kSat) {
        out.model_verified = verify_anf_model(polys, num_vars, so->model);
        if (!out.model_verified) out.result = sat::Result::kUnknown;
    }
    out.seconds = timer.seconds();
    return out;
}

Result<SolveOutcome> solve_cnf_problem(const sat::Cnf& cnf,
                                       const SolveConfig& cfg,
                                       const Problem& problem) {
    Timer timer;
    SolveOutcome out;

    sat::Cnf work = cnf;
    if (cfg.preprocess) {
        Report rep;
        bool decided = false;
        const Status st = preprocess(problem, cfg, &rep, &out, &decided);
        if (!st.ok()) return st;
        if (decided) {
            out.seconds = timer.seconds();
            return out;
        }
        // Per section III-D the tool returns the original CNF augmented
        // with the learnt facts (re-encoding CNF -> ANF -> CNF would be a
        // suboptimal description): append the learnt units/equivalences
        // over original variables.
        for (const auto& p : rep.processed_anf) {
            if (p.degree() > 1 || p.size() > 3) continue;
            const auto vars = p.variables();
            if (vars.empty()) continue;
            if (std::any_of(vars.begin(), vars.end(), [&](anf::Var v) {
                    return v >= cnf.num_vars;
                }))
                continue;
            if (vars.size() == 1 && p.size() <= 2) {
                // x (+1) = 0: a unit clause.
                const bool value = p.has_constant_term();
                work.add_clause({sat::mk_lit(vars[0], !value)});
            } else if (vars.size() == 2 && p.size() <= 3) {
                // x + y (+1) = 0: an (anti-)equivalence, two binaries.
                const bool anti = p.has_constant_term();
                work.add_clause({sat::mk_lit(vars[0], false),
                                 sat::mk_lit(vars[1], !anti)});
                work.add_clause({sat::mk_lit(vars[0], true),
                                 sat::mk_lit(vars[1], anti)});
            }
        }
    }

    const double remaining = std::max(0.1, cfg.timeout_s - timer.seconds());
    const Result<sat::CnfSolveOutcome> so =
        sat::solve_cnf_with(work, cfg.solver, remaining);
    if (!so.ok()) return so.status();
    out.result = so->result;
    out.solver_stats = so->stats;
    if (so->result == sat::Result::kSat) {
        out.model_verified = sat::model_satisfies(cnf, so->model);
        if (!out.model_verified) out.result = sat::Result::kUnknown;
    }
    out.seconds = timer.seconds();
    return out;
}

}  // namespace

Result<SolveOutcome> solve(const Problem& problem, const SolveConfig& cfg) {
    if (problem.kind() == Problem::Kind::kCnf)
        return solve_cnf_problem(problem.cnf(), cfg, problem);
    return solve_anf(problem.polynomials(), problem.num_vars(), cfg, problem);
}

double par2_score(const std::vector<SolveOutcome>& outcomes,
                  double timeout_s) {
    double score = 0.0;
    for (const auto& o : outcomes) {
        if (o.result == sat::Result::kUnknown) {
            score += 2.0 * timeout_s;
        } else {
            score += o.seconds;
        }
    }
    return score;
}

}  // namespace bosphorus
