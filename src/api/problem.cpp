#include "bosphorus/problem.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "anf/anf_parser.h"
#include "sat/dimacs.h"

namespace bosphorus {

Problem Problem::from_anf(std::vector<anf::Polynomial> polys,
                          size_t num_vars) {
    Problem p;
    p.kind_ = Kind::kAnf;
    p.polys_ = std::move(polys);
    p.num_vars_ = num_vars;
    for (const auto& poly : p.polys_)
        for (anf::Var v : poly.variables())
            p.num_vars_ = std::max(p.num_vars_, static_cast<size_t>(v) + 1);
    return p;
}

Problem Problem::from_cnf(sat::Cnf cnf) {
    Problem p;
    p.kind_ = Kind::kCnf;
    p.num_vars_ = cnf.num_vars;
    p.cnf_ = std::move(cnf);
    return p;
}

Result<Problem> Problem::from_anf_text(const std::string& text) {
    auto parsed = anf::try_parse_system_from_string(text);
    if (!parsed.ok()) return parsed.status();
    return from_anf(std::move(parsed->polynomials), parsed->num_vars);
}

Result<Problem> Problem::from_cnf_text(const std::string& text) {
    auto parsed = sat::try_read_dimacs_from_string(text);
    if (!parsed.ok()) return parsed.status();
    return from_cnf(std::move(*parsed));
}

Result<Problem> Problem::from_anf_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::io_error("cannot open " + path);
    auto parsed = anf::try_parse_system(in);
    if (!parsed.ok())
        return Status::parse_error(path + ": " + parsed.status().message());
    return from_anf(std::move(parsed->polynomials), parsed->num_vars);
}

Result<Problem> Problem::from_cnf_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return Status::io_error("cannot open " + path);
    auto parsed = sat::try_read_dimacs(in);
    if (!parsed.ok())
        return Status::parse_error(path + ": " + parsed.status().message());
    return from_cnf(std::move(*parsed));
}

Status Problem::add_polynomial(const anf::Polynomial& p) {
    if (kind_ == Kind::kCnf)
        return Status::invalid_argument(
            "add_polynomial on a CNF problem (use add_clause)");
    kind_ = Kind::kAnf;
    for (anf::Var v : p.variables())
        num_vars_ = std::max(num_vars_, static_cast<size_t>(v) + 1);
    polys_.push_back(p);
    return Status();
}

Status Problem::add_clause(std::vector<sat::Lit> lits) {
    if (kind_ == Kind::kAnf)
        return Status::invalid_argument(
            "add_clause on an ANF problem (use add_polynomial)");
    kind_ = Kind::kCnf;
    for (sat::Lit l : lits)
        num_vars_ = std::max(num_vars_, static_cast<size_t>(l.var()) + 1);
    cnf_.num_vars = num_vars_;
    cnf_.add_clause(std::move(lits));
    return Status();
}

Status Problem::add_xor_clause(std::vector<sat::Var> vars, bool rhs) {
    if (kind_ == Kind::kAnf)
        return Status::invalid_argument(
            "add_xor_clause on an ANF problem (use add_polynomial)");
    kind_ = Kind::kCnf;
    for (sat::Var v : vars)
        num_vars_ = std::max(num_vars_, static_cast<size_t>(v) + 1);
    cnf_.num_vars = num_vars_;
    cnf_.xors.push_back({std::move(vars), rhs});
    return Status();
}

anf::Var Problem::new_var() {
    const auto v = static_cast<anf::Var>(num_vars_++);
    cnf_.num_vars = num_vars_;
    return v;
}

void Problem::reserve_vars(size_t n) {
    num_vars_ = std::max(num_vars_, n);
    cnf_.num_vars = std::max(cnf_.num_vars, num_vars_);
}

bool Problem::empty() const { return num_constraints() == 0; }

size_t Problem::num_vars() const { return num_vars_; }

size_t Problem::num_constraints() const {
    return kind_ == Kind::kCnf ? cnf_.clauses.size() + cnf_.xors.size()
                               : polys_.size();
}

}  // namespace bosphorus
