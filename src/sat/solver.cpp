#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sat/solve_cnf.h"
#include "sat/xor_engine.h"

namespace bosphorus::sat {

Solver::Solver(Config cfg) : cfg_(cfg) {
    // Effective knobs start at the Config values; a profile application
    // (in-processing only) overrides them per solve call.
    eff_var_decay_ = cfg_.var_decay;
    eff_clause_decay_ = cfg_.clause_decay;
    eff_restart_base_ = cfg_.restart_base;
    eff_vivify_budget_ = cfg_.inprocess.vivify_propagation_budget;
    eff_vivify_interval_ = cfg_.inprocess.vivify_restart_interval;
    if (cfg_.inprocess.enabled) {
        db_mgr_ = std::make_unique<inprocess::ClauseDbManager>(cfg_.inprocess);
        vivifier_ = std::make_unique<inprocess::Vivifier>();
    }
    if (cfg_.enable_xor) xor_engine_ = std::make_unique<XorEngine>(*this);
}

Solver::~Solver() = default;

Var Solver::new_var() {
    const Var v = static_cast<Var>(assigns_.size());
    assigns_.push_back(LBool::kUndef);
    polarity_.push_back(true);  // default phase: assign false first
    var_level_.push_back(0);
    var_reason_.push_back(kNoReason);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    insert_var_order(v);
    if (xor_engine_) xor_engine_->ensure_num_vars(assigns_.size());
    return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
    if (!ok_) return false;
    assert(decision_level() == 0);

    // Canonicalise: sort, dedupe, drop false literals, detect tautology and
    // satisfied clauses.
    std::sort(lits.begin(), lits.end());
    std::vector<Lit> out;
    Lit prev = lit_undef();
    for (Lit l : lits) {
        assert(l.var() < num_vars());
        if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/tautology
        if (value(l) == LBool::kFalse || l == prev) continue;     // falsified/duplicate
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kNoReason);
        return ok_ = (propagate() == kNoReason);
    }
    const CRef cr = alloc_clause(std::move(out), /*learnt=*/false);
    problem_clauses_.push_back(cr);
    attach_clause(cr);
    return true;
}

bool Solver::add_xor(const XorConstraint& x) {
    if (!ok_) return false;
    // Normalise: XOR semantics are insensitive to order; duplicate vars
    // cancel in pairs.
    std::vector<Var> vars = x.vars;
    std::sort(vars.begin(), vars.end());
    std::vector<Var> kept;
    for (size_t i = 0; i < vars.size();) {
        size_t j = i;
        while (j < vars.size() && vars[j] == vars[i]) ++j;
        if ((j - i) % 2 == 1) kept.push_back(vars[i]);
        i = j;
    }
    bool rhs = x.rhs;

    if (kept.empty()) {
        if (rhs) ok_ = false;
        return ok_;
    }
    if (kept.size() == 1) {
        enqueue_or_check(kept[0], rhs);
        return ok_;
    }

    if (xor_engine_) {
        XorConstraint norm{std::move(kept), rhs};
        xor_engine_->add_xor(std::move(norm));
        return true;
    }

    // No native XOR support: expand into CNF through the shared
    // append_xor_as_clauses helper (sat/solve_cnf.h), which cuts long
    // constraints with fresh auxiliary variables to bound the 2^(l-1)
    // clause blow-up.
    Cnf expansion;
    expansion.num_vars = num_vars();
    append_xor_as_clauses(expansion, XorConstraint{std::move(kept), rhs});
    while (num_vars() < expansion.num_vars) new_var();
    for (auto& clause : expansion.clauses) {
        if (!add_clause(std::move(clause))) return false;
    }
    return ok_;
}

void Solver::enqueue_or_check(Var v, bool val) {
    const Lit l = mk_lit(v, !val);
    if (value(l) == LBool::kFalse) {
        ok_ = false;
    } else if (value(l) == LBool::kUndef) {
        enqueue(l, kNoReason);
        if (propagate() != kNoReason) ok_ = false;
    }
}

bool Solver::load(const Cnf& cnf) {
    while (num_vars() < cnf.num_vars) new_var();
    for (const auto& cl : cnf.clauses) {
        if (!add_clause(cl)) return false;
    }
    for (const auto& x : cnf.xors) {
        if (!add_xor(x)) return false;
    }
    return ok_;
}

// ---------------------------------------------------------------- clauses

Solver::CRef Solver::alloc_clause(std::vector<Lit> lits, bool learnt) {
    const CRef cr = static_cast<CRef>(clauses_.size());
    Clause c;
    c.lits = std::move(lits);
    c.learnt = learnt;
    clauses_.push_back(std::move(c));
    return cr;
}

void Solver::attach_clause(CRef cr) {
    const auto& lits = clauses_[cr].lits;
    assert(lits.size() >= 2);
    watches_[(~lits[0]).raw()].push_back({cr, lits[1]});
    watches_[(~lits[1]).raw()].push_back({cr, lits[0]});
}

void Solver::detach_clause(CRef cr) {
    const auto& lits = clauses_[cr].lits;
    for (int i = 0; i < 2; ++i) {
        auto& ws = watches_[(~lits[i]).raw()];
        for (size_t j = 0; j < ws.size(); ++j) {
            if (ws[j].cref == cr) {
                ws[j] = ws.back();
                ws.pop_back();
                break;
            }
        }
    }
}

void Solver::remove_clause(CRef cr) {
    detach_clause(cr);
    clauses_[cr].deleted = true;
    clauses_[cr].lits.clear();
    clauses_[cr].lits.shrink_to_fit();
    ++stats_.deleted_clauses;
}

// ------------------------------------------------------------ propagation

void Solver::enqueue(Lit l, CRef reason) {
    assert(value(l) == LBool::kUndef);
    assigns_[l.var()] = lbool_from(!l.sign());
    var_level_[l.var()] = decision_level();
    var_reason_[l.var()] = reason;
    trail_.push_back(l);
}

Solver::CRef Solver::propagate() {
    CRef confl = kNoReason;
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++stats_.propagations;
        auto& ws = watches_[p.raw()];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            const Watcher w = ws[i];
            if (value(w.blocker) == LBool::kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause& c = clauses_[w.cref];
            auto& lits = c.lits;
            // Ensure the false literal (~p) is at position 1.
            const Lit false_lit = ~p;
            if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
            assert(lits[1] == false_lit);
            ++i;

            const Lit first = lits[0];
            if (first != w.blocker && value(first) == LBool::kTrue) {
                ws[j++] = {w.cref, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < lits.size(); ++k) {
                if (value(lits[k]) != LBool::kFalse) {
                    std::swap(lits[1], lits[k]);
                    watches_[(~lits[1]).raw()].push_back({w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found) continue;

            // Clause is unit or conflicting.
            ws[j++] = {w.cref, first};
            if (value(first) == LBool::kFalse) {
                confl = w.cref;
                qhead_ = trail_.size();
                while (i < ws.size()) ws[j++] = ws[i++];
            } else {
                enqueue(first, w.cref);
            }
        }
        ws.resize(j);
        if (confl != kNoReason) break;
    }
    return confl;
}

// ------------------------------------------------------- conflict analysis

void Solver::analyze(CRef confl, std::vector<Lit>& out_learnt,
                     int& out_btlevel, uint32_t& out_lbd) {
    out_learnt.clear();
    out_learnt.push_back(lit_undef());  // slot for the asserting literal

    int path_count = 0;
    Lit p = lit_undef();
    size_t index = trail_.size();

    do {
        assert(confl != kNoReason);
        Clause& c = clauses_[confl];
        if (c.learnt) {
            cla_bump(c);
            // In-processing: refresh the LBD of clauses participating in
            // conflicts (all their literals are assigned here, so the
            // levels are valid) and remember they were useful. XOR
            // conflict/reason clauses stay kUntracked and are skipped.
            if (c.tier != inprocess::kUntracked) {
                c.used = 1;
                const uint32_t nl = clause_lbd(c);
                if (nl < c.lbd) {
                    c.lbd = nl;
                    c.tier = static_cast<uint8_t>(db_mgr_->on_lbd_improved(
                        static_cast<inprocess::Tier>(c.tier), nl));
                }
            }
        }

        const size_t start = (p == lit_undef()) ? 0 : 1;
        for (size_t k = start; k < c.lits.size(); ++k) {
            const Lit q = c.lits[k];
            if (seen_[q.var()] || level(q.var()) == 0) continue;
            seen_[q.var()] = 1;
            var_bump(q.var());
            if (level(q.var()) >= decision_level()) {
                ++path_count;
            } else {
                out_learnt.push_back(q);
            }
        }
        // Walk back to the next marked literal on the trail.
        while (!seen_[trail_[index - 1].var()]) --index;
        p = trail_[--index];
        confl = var_reason_[p.var()];
        seen_[p.var()] = 0;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Conflict-clause minimisation: drop literals implied by the rest.
    analyze_clear_.assign(out_learnt.begin() + 1, out_learnt.end());
    for (const Lit l : analyze_clear_) seen_[l.var()] = 1;
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learnt.size(); ++i)
        abstract_levels |= 1u << (level(out_learnt[i].var()) & 31);
    size_t keep = 1;
    for (size_t i = 1; i < out_learnt.size(); ++i) {
        if (var_reason_[out_learnt[i].var()] == kNoReason ||
            !lit_redundant(out_learnt[i], abstract_levels)) {
            out_learnt[keep++] = out_learnt[i];
        }
    }
    out_learnt.resize(keep);
    for (const Lit l : analyze_clear_) seen_[l.var()] = 0;
    seen_[out_learnt[0].var()] = 0;

    // Compute backtrack level and LBD.
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learnt.size(); ++i) {
            if (level(out_learnt[i].var()) > level(out_learnt[max_i].var()))
                max_i = i;
        }
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = level(out_learnt[1].var());
    }
    // LBD: number of distinct decision levels among the literals.
    uint32_t lbd = 0;
    for (const Lit l : out_learnt) {
        const int lv = level(l.var());
        bool fresh = true;
        for (const Lit m : out_learnt) {
            if (m == l) break;
            if (level(m.var()) == lv) { fresh = false; break; }
        }
        if (fresh) ++lbd;
    }
    out_lbd = lbd;
}

bool Solver::lit_redundant(Lit l, uint32_t abstract_levels) {
    analyze_stack_.clear();
    analyze_stack_.push_back(l);
    const size_t top = analyze_clear_.size();
    while (!analyze_stack_.empty()) {
        const Lit q = analyze_stack_.back();
        analyze_stack_.pop_back();
        assert(var_reason_[q.var()] != kNoReason);
        const Clause& c = clauses_[var_reason_[q.var()]];
        for (size_t i = 1; i < c.lits.size(); ++i) {
            const Lit p = c.lits[i];
            if (seen_[p.var()] || level(p.var()) == 0) continue;
            if (var_reason_[p.var()] == kNoReason ||
                !((1u << (level(p.var()) & 31)) & abstract_levels)) {
                // Cannot be shown redundant: undo the marks made here.
                for (size_t j = top; j < analyze_clear_.size(); ++j)
                    seen_[analyze_clear_[j].var()] = 0;
                analyze_clear_.resize(top);
                return false;
            }
            seen_[p.var()] = 1;
            analyze_stack_.push_back(p);
            analyze_clear_.push_back(p);
        }
    }
    return true;
}

void Solver::cancel_until(int target_level) {
    if (decision_level() <= target_level) return;
    const size_t new_size = trail_lim_[target_level];
    for (size_t i = trail_.size(); i-- > new_size;) {
        const Var v = trail_[i].var();
        assigns_[v] = LBool::kUndef;
        polarity_[v] = trail_[i].sign();
        var_reason_[v] = kNoReason;
        if (heap_pos_[v] < 0) insert_var_order(v);
    }
    trail_.resize(new_size);
    trail_lim_.resize(target_level);
    qhead_ = std::min(qhead_, trail_.size());
    if (xor_engine_)
        xor_engine_->set_qhead(std::min(xor_engine_->qhead(), trail_.size()));
}

// ----------------------------------------------------------------- VSIDS

void Solver::var_bump(Var v) {
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[v] >= 0) heap_up(static_cast<size_t>(heap_pos_[v]));
}

void Solver::var_decay_all() { var_inc_ /= eff_var_decay_; }

void Solver::cla_bump(Clause& c) {
    c.activity += static_cast<float>(cla_inc_);
    if (c.activity > 1e20f) {
        for (CRef cr : learnts_) clauses_[cr].activity *= 1e-20f;
        cla_inc_ *= 1e-20;
    }
}

bool Solver::heap_lt(Var a, Var b) const {
    if (activity_[a] != activity_[b]) return activity_[a] > activity_[b];
    return a < b;  // deterministic tie-break
}

void Solver::insert_var_order(Var v) {
    if (heap_pos_[v] >= 0) return;
    heap_pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heap_up(heap_.size() - 1);
}

void Solver::heap_up(size_t i) {
    const Var v = heap_[i];
    while (i > 0) {
        const size_t parent = (i - 1) / 2;
        if (!heap_lt(v, heap_[parent])) break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = static_cast<int>(i);
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<int>(i);
}

void Solver::heap_down(size_t i) {
    const Var v = heap_[i];
    for (;;) {
        const size_t left = 2 * i + 1;
        if (left >= heap_.size()) break;
        size_t child = left;
        if (left + 1 < heap_.size() && heap_lt(heap_[left + 1], heap_[left]))
            child = left + 1;
        if (!heap_lt(heap_[child], v)) break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = static_cast<int>(i);
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = static_cast<int>(i);
}

Lit Solver::pick_branch_lit() {
    while (!heap_.empty()) {
        const Var v = heap_[0];
        heap_[0] = heap_.back();
        heap_pos_[heap_[0]] = 0;
        heap_.pop_back();
        heap_pos_[v] = -1;
        if (!heap_.empty()) heap_down(0);
        if (assigns_[v] == LBool::kUndef) return mk_lit(v, polarity_[v]);
    }
    return lit_undef();
}

// ------------------------------------------------------------- learnt DB

void Solver::reduce_db() {
    // Order learnts: glue (LBD <= 2) are protected; otherwise prefer to
    // delete high-LBD, low-activity clauses.
    std::sort(learnts_.begin(), learnts_.end(), [this](CRef a, CRef b) {
        const Clause& ca = clauses_[a];
        const Clause& cb = clauses_[b];
        if ((ca.lbd <= 2) != (cb.lbd <= 2)) return cb.lbd <= 2;
        if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
        return ca.activity < cb.activity;
    });
    const size_t limit = learnts_.size() / 2;
    std::vector<CRef> kept;
    kept.reserve(learnts_.size());
    size_t removed = 0;
    for (size_t i = 0; i < learnts_.size(); ++i) {
        const CRef cr = learnts_[i];
        Clause& c = clauses_[cr];
        const bool locked = !c.lits.empty() &&
                            var_reason_[c.lits[0].var()] == cr &&
                            value(c.lits[0]) == LBool::kTrue;
        if (removed < limit && c.lbd > 2 && c.lits.size() > 2 && !locked) {
            remove_clause(cr);
            ++removed;
        } else {
            kept.push_back(cr);
        }
    }
    learnts_ = std::move(kept);
}

// --------------------------------------------------------- in-processing

void Solver::apply_profile(inprocess::ProfileId id) {
    using inprocess::ProfileId;
    inprocess::SolverProfile p;
    if (id == ProfileId::kFixed) {
        // Honour the explicit Config knobs verbatim.
        p = {"fixed",
             cfg_.var_decay,
             cfg_.clause_decay,
             cfg_.restart_base,
             cfg_.inprocess.core_lbd_cut,
             cfg_.inprocess.mid_lbd_cut,
             cfg_.inprocess.vivify_restart_interval,
             cfg_.inprocess.vivify_propagation_budget,
             cfg_.inprocess.local_cap_growth};
    } else {
        p = inprocess::profile(id);
    }
    eff_var_decay_ = p.var_decay;
    eff_clause_decay_ = p.clause_decay;
    eff_restart_base_ = p.restart_base;
    eff_vivify_budget_ = p.vivify_propagation_budget;
    eff_vivify_interval_ = p.vivify_restart_interval;
    db_mgr_->apply_profile(p);
    if (profile_applied_ && id != active_profile_) {
        ++stats_.reconf_decisions;
        inprocess::counters().reconf_decisions.fetch_add(
            1, std::memory_order_relaxed);
    }
    profile_applied_ = true;
    active_profile_ = id;
}

void Solver::run_vivify_pass() {
    const auto ps = vivifier_->run(*this, eff_vivify_budget_,
                                   cfg_.inprocess.vivify_max_clause_size,
                                   cfg_.inprocess.vivify_irredundant);
    stats_.vivified_literals += ps.literals_removed;
    stats_.vivified_clauses += ps.clauses_shrunk;
    ++stats_.vivify_passes;
    last_vivify_conflicts_ = stats_.conflicts;
}

bool Solver::vivify_due() const {
    return stats_.conflicts - last_vivify_conflicts_ >=
           cfg_.inprocess.vivify_min_conflicts;
}

uint32_t Solver::clause_lbd(const Clause& c) {
    // Only valid for fully assigned clauses (conflict/reason clauses in
    // analyze): unassigned variables carry stale levels.
    ++lbd_stamp_;
    uint32_t lbd = 0;
    for (const Lit l : c.lits) {
        const int lv = level(l.var());
        if (lv == 0) continue;  // level-0 literals are effectively gone
        if (static_cast<size_t>(lv) >= level_stamp_.size())
            level_stamp_.resize(static_cast<size_t>(lv) + 1, 0);
        if (level_stamp_[lv] != lbd_stamp_) {
            level_stamp_[lv] = lbd_stamp_;
            ++lbd;
        }
    }
    return lbd;
}

bool Solver::check_db_invariants() const {
    // 1. Clause lists hold only live clauses with consistent flags; the
    //    tier counts match a full recount.
    for (const CRef cr : problem_clauses_) {
        const Clause& c = clauses_[cr];
        if (c.deleted || c.learnt) return false;
    }
    inprocess::ClauseDbManager::TierCounts recount;
    for (const CRef cr : learnts_) {
        const Clause& c = clauses_[cr];
        if (c.deleted || !c.learnt) return false;
        if (db_mgr_) {
            switch (c.tier) {
                case inprocess::kCore: ++recount.core; break;
                case inprocess::kMid: ++recount.mid; break;
                case inprocess::kLocal: ++recount.local; break;
                default: return false;  // kUntracked must not be listed
            }
        }
    }
    if (db_mgr_) {
        const auto& tc = db_mgr_->tier_counts();
        if (recount.core != tc.core || recount.mid != tc.mid ||
            recount.local != tc.local)
            return false;
    }
    // 2. Every watcher points at a live clause and watches one of its
    //    first two literals; every listed clause is watched exactly twice.
    std::vector<uint8_t> watch_count(clauses_.size(), 0);
    for (size_t raw = 0; raw < watches_.size(); ++raw) {
        const Lit watched = ~Lit::from_raw(static_cast<uint32_t>(raw));
        for (const Watcher& w : watches_[raw]) {
            const Clause& c = clauses_[w.cref];
            if (c.deleted || c.lits.size() < 2) return false;
            if (c.lits[0] != watched && c.lits[1] != watched) return false;
            if (watch_count[w.cref] >= 2) return false;
            ++watch_count[w.cref];
        }
    }
    for (const CRef cr : problem_clauses_) {
        if (clauses_[cr].lits.size() >= 2 && watch_count[cr] != 2)
            return false;
    }
    for (const CRef cr : learnts_) {
        if (watch_count[cr] != 2) return false;
    }
    // 3. Reasons of variables assigned above level 0 are live clauses
    //    whose first literal is the implied one.
    for (const Lit l : trail_) {
        if (var_level_[l.var()] == 0) continue;
        const CRef r = var_reason_[l.var()];
        if (r == kNoReason) continue;
        const Clause& c = clauses_[r];
        if (c.deleted || c.lits.empty() || c.lits[0] != l) return false;
    }
    return true;
}

void Solver::debug_force_reduce() {
    if (inprocessing_on()) {
        db_mgr_->reduce(*this);
    } else {
        reduce_db();
    }
}

inprocess::Vivifier::PassStats Solver::debug_force_vivify(
    uint64_t propagation_budget) {
    if (!vivifier_ || !ok_) return {};
    cancel_until(0);
    const auto ps = vivifier_->run(*this, propagation_budget,
                                   cfg_.inprocess.vivify_max_clause_size,
                                   cfg_.inprocess.vivify_irredundant);
    stats_.vivified_literals += ps.literals_removed;
    stats_.vivified_clauses += ps.clauses_shrunk;
    ++stats_.vivify_passes;
    return ps;
}

double Solver::luby(double y, int i) const {
    // Finite subsequence length and position within it.
    int size = 1, seq = 0;
    while (size < i + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != i) {
        size = (size - 1) / 2;
        --seq;
        i = i % size;
    }
    return std::pow(y, seq);
}

void Solver::record_learnt_fact(const std::vector<Lit>& clause) {
    if (clause.size() == 2) {
        const Lit lo = std::min(clause[0], clause[1]);
        const Lit hi = std::max(clause[0], clause[1]);
        const uint64_t key =
            (static_cast<uint64_t>(lo.raw()) << 32) | hi.raw();
        if (binaries_seen_.insert(key).second)
            learnt_binaries_.push_back({clause[0], clause[1]});
    }
    // Unit learnt clauses reach the trail at level 0 and are exported via
    // the units_reported_ cursor in solve().
}

// ------------------------------------------------------------------ solve

Result Solver::solve(int64_t conflict_budget, double timeout_s) {
    return solve_assuming({}, conflict_budget, timeout_s);
}

Result Solver::solve_assuming(const std::vector<Lit>& assumptions,
                              int64_t conflict_budget, double timeout_s) {
    cancel_until(0);  // make repeated solve calls on one instance safe
    failed_assumptions_.clear();
    if (!ok_) return Result::kUnsat;
    Timer timer;

    // Sticky interrupt + IPASIR-style terminate hook. The atomic flag is
    // checked at every conflict and decision; the (potentially costlier)
    // callback only every 128th poll.
    uint32_t poll_counter = 0;
    auto stop_requested = [&]() -> bool {
        if (interrupt_.load(std::memory_order_acquire)) return true;
        if (terminate_cb_ && (++poll_counter & 127u) == 0 && terminate_cb_())
            return true;
        return false;
    };
    if (stop_requested()) return Result::kUnknown;

    if (xor_engine_ && !xor_engine_->gauss_jordan_level0()) {
        ok_ = false;
        return Result::kUnsat;
    }

    if (inprocessing_on()) {
        ++solve_calls_;
        // Per-call profile (re-)selection: static features plus the LBD
        // window observed in the previous call.
        feat_ = inprocess::InstanceFeatures::extract(*this);
        feat_.avg_first_window_lbd = prev_window_lbd_;
        inprocess::ProfileId want = cfg_.inprocess.profile;
        if (want == inprocess::ProfileId::kAuto)
            want = inprocess::select_profile(feat_);
        apply_profile(want);
        window_lbd_sum_ = 0;
        window_lbd_count_ = 0;
        window_reconf_done_ = false;
        // Entry vivification on warm re-solves only: a cold one-shot call
        // pays nothing up front, and short warm solves that learned
        // little since the last pass skip it too (vivify_due).
        if (cfg_.inprocess.vivify && solve_calls_ > 1 && vivify_due()) {
            run_vivify_pass();
            if (!ok_) {
                while (units_reported_ < trail_.size())
                    learnt_units_.push_back(trail_[units_reported_++]);
                return Result::kUnsat;
            }
        }
    } else {
        // Legacy learnt-DB cap, reset on every call.
        max_learnts_ = std::max<double>(
            static_cast<double>(problem_clauses_.size()) / 3.0, 1000.0);
    }

    int64_t conflicts_this_call = 0;
    int curr_restarts = 0;
    int64_t restart_limit = static_cast<int64_t>(
        luby(2.0, curr_restarts) * eff_restart_base_);
    int64_t conflicts_since_restart = 0;

    std::vector<Lit> learnt_clause;
    Result result = Result::kUnknown;

    for (;;) {
        // Propagation: clause propagation and XOR propagation to fixpoint.
        CRef confl = propagate();
        if (confl == kNoReason && xor_engine_) {
            std::vector<Lit> xconfl;
            if (!xor_engine_->propagate(xconfl)) {
                // Materialise the conflicting XOR row as a clause.
                confl = alloc_clause(std::move(xconfl), /*learnt=*/true);
            } else if (qhead_ < trail_.size()) {
                continue;  // XOR enqueued literals: run clause propagation
            }
        }

        if (confl != kNoReason) {
            ++stats_.conflicts;
            ++conflicts_this_call;
            ++conflicts_since_restart;
            if (decision_level() == 0) {
                ok_ = false;
                result = Result::kUnsat;
                break;
            }
            int bt_level;
            uint32_t lbd;
            analyze(confl, learnt_clause, bt_level, lbd);
            cancel_until(bt_level);
            record_learnt_fact(learnt_clause);
            if (learnt_clause.size() == 1) {
                enqueue(learnt_clause[0], kNoReason);
            } else {
                const CRef cr = alloc_clause(learnt_clause, /*learnt=*/true);
                clauses_[cr].lbd = lbd;
                if (inprocessing_on()) {
                    clauses_[cr].tier =
                        static_cast<uint8_t>(db_mgr_->classify(lbd));
                    clauses_[cr].used = 1;
                    db_mgr_->on_learnt(lbd);
                }
                learnts_.push_back(cr);
                attach_clause(cr);
                cla_bump(clauses_[cr]);
                enqueue(learnt_clause[0], cr);
            }
            ++stats_.learnt_clauses;
            if (inprocessing_on() && !window_reconf_done_) {
                // Opening-window LBD observation; once full, give the
                // kAuto rule one mid-call chance to switch profiles.
                window_lbd_sum_ += lbd;
                if (++window_lbd_count_ >=
                    cfg_.inprocess.window_lbd_conflicts) {
                    window_reconf_done_ = true;
                    prev_window_lbd_ =
                        static_cast<double>(window_lbd_sum_) /
                        static_cast<double>(window_lbd_count_);
                    if (cfg_.inprocess.profile ==
                        inprocess::ProfileId::kAuto) {
                        feat_.avg_first_window_lbd = prev_window_lbd_;
                        const inprocess::ProfileId want =
                            inprocess::select_profile(feat_);
                        if (want != active_profile_) apply_profile(want);
                    }
                }
            }
            var_decay_all();
            cla_inc_ /= eff_clause_decay_;

            if (conflict_budget >= 0 && conflicts_this_call >= conflict_budget) {
                result = Result::kUnknown;
                break;
            }
            if (timeout_s > 0 && (stats_.conflicts & 1023) == 0 &&
                timer.seconds() > timeout_s) {
                result = Result::kUnknown;
                break;
            }
            if (stop_requested()) {
                result = Result::kUnknown;
                break;
            }
        } else {
            if (conflicts_since_restart >= restart_limit) {
                ++stats_.restarts;
                ++curr_restarts;
                conflicts_since_restart = 0;
                restart_limit = static_cast<int64_t>(
                    luby(2.0, curr_restarts) * eff_restart_base_);
                cancel_until(0);
                if (inprocessing_on() && cfg_.inprocess.vivify &&
                    eff_vivify_interval_ > 0 &&
                    curr_restarts % static_cast<int>(eff_vivify_interval_) ==
                        0 &&
                    vivify_due()) {
                    run_vivify_pass();
                    if (!ok_) {
                        result = Result::kUnsat;
                        break;
                    }
                }
                continue;
            }
            if (inprocessing_on()) {
                if (db_mgr_->should_reduce(problem_clauses_.size()))
                    db_mgr_->reduce(*this);
            } else if (static_cast<double>(learnts_.size()) >= max_learnts_) {
                reduce_db();
                max_learnts_ *= cfg_.learnt_growth;
            }
            // Re-enqueue any assumption not yet decided (restarts and
            // backjumps may have unwound them) before real branching.
            Lit next = lit_undef();
            bool failed_assumption = false;
            while (decision_level() <
                   static_cast<int>(assumptions.size())) {
                const Lit p = assumptions[decision_level()];
                assert(p.var() < num_vars());
                if (value(p) == LBool::kTrue) {
                    // Already implied: open a dummy level so the remaining
                    // assumptions keep their positions.
                    trail_lim_.push_back(static_cast<int>(trail_.size()));
                } else if (value(p) == LBool::kFalse) {
                    // The clause database refutes this assumption: UNSAT
                    // under assumptions, but the formula itself stays ok.
                    failed_assumption = true;
                    break;
                } else {
                    next = p;
                    break;
                }
            }
            if (failed_assumption) {
                failed_assumptions_.push_back(
                    assumptions[decision_level()]);
                result = Result::kUnsat;
                break;
            }
            if (stop_requested()) {
                result = Result::kUnknown;
                break;
            }
            if (next == lit_undef()) next = pick_branch_lit();
            if (next == lit_undef()) {
                // All variables assigned: a model.
                model_.assign(assigns_.begin(), assigns_.end());
                result = Result::kSat;
                break;
            }
            ++stats_.decisions;
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            enqueue(next, kNoReason);
        }
    }

    cancel_until(0);
    // Export new level-0 implied literals as learnt unit facts.
    while (units_reported_ < trail_.size()) {
        learnt_units_.push_back(trail_[units_reported_++]);
    }
    return result;
}

}  // namespace bosphorus::sat
