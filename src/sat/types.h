// Core SAT types: variables, literals, ternary logic, CNF container.
//
// Conventions follow MiniSat: a literal packs (variable << 1) | sign, where
// sign = 1 means the negated literal. Variables are 0-based internally;
// DIMACS I/O converts to/from 1-based signed integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bosphorus::sat {

using Var = uint32_t;

class Lit {
public:
    Lit() = default;
    Lit(Var v, bool negated) : x_((v << 1) | (negated ? 1u : 0u)) {}

    static Lit from_raw(uint32_t raw) {
        Lit l;
        l.x_ = raw;
        return l;
    }

    Var var() const { return x_ >> 1; }
    bool sign() const { return x_ & 1; }  // true = negated
    uint32_t raw() const { return x_; }

    Lit operator~() const { return from_raw(x_ ^ 1); }

    bool operator==(const Lit& o) const { return x_ == o.x_; }
    bool operator!=(const Lit& o) const { return x_ != o.x_; }
    bool operator<(const Lit& o) const { return x_ < o.x_; }

    /// 1-based signed DIMACS representation: +v for positive, -v for negated.
    int to_dimacs() const {
        const int v = static_cast<int>(var()) + 1;
        return sign() ? -v : v;
    }

private:
    uint32_t x_ = 0xFFFFFFFFu;
};

inline Lit mk_lit(Var v, bool negated = false) { return Lit(v, negated); }

constexpr uint32_t kLitUndefRaw = 0xFFFFFFFFu;
inline Lit lit_undef() { return Lit::from_raw(kLitUndefRaw); }

/// Ternary truth value.
enum class LBool : uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
inline LBool operator^(LBool a, bool flip) {
    if (a == LBool::kUndef) return a;
    return lbool_from((a == LBool::kTrue) != flip);
}

/// A native XOR constraint: vars_[0] ^ vars_[1] ^ ... = rhs.
/// Used by the CMS-like solver configuration (Gauss-Jordan propagation).
struct XorConstraint {
    std::vector<Var> vars;
    bool rhs = false;
};

/// A CNF formula, optionally with native XOR constraints attached.
struct Cnf {
    size_t num_vars = 0;
    std::vector<std::vector<Lit>> clauses;
    std::vector<XorConstraint> xors;

    Var new_var() { return static_cast<Var>(num_vars++); }

    void add_clause(std::vector<Lit> lits) { clauses.push_back(std::move(lits)); }
};

/// Final solver verdict.
enum class Result : uint8_t { kSat, kUnsat, kUnknown };

}  // namespace bosphorus::sat
