#include "sat/dimacs.h"

#include <algorithm>
#include <sstream>

#include "stream/dimacs_tokenizer.h"

namespace bosphorus::sat {

::bosphorus::Result<Cnf> try_read_dimacs(std::istream& in) {
    stream::IstreamByteSource src(in);
    stream::DimacsTokenizer tok(src, {.chunk_bytes = 64 * 1024});
    Cnf cnf;
    std::vector<Lit> lits;
    for (;;) {
        auto item = tok.next(lits);
        if (!item.ok()) return item.status();
        if (*item == stream::DimacsTokenizer::Item::kEof) break;
        switch (*item) {
            case stream::DimacsTokenizer::Item::kHeader:
                break;  // declared counts folded in below
            case stream::DimacsTokenizer::Item::kClause:
                cnf.clauses.push_back(lits);
                break;
            case stream::DimacsTokenizer::Item::kXor:
                cnf.xors.push_back(xor_from_dimacs_lits(lits));
                break;
            case stream::DimacsTokenizer::Item::kEof:
                break;
        }
    }
    cnf.num_vars = std::max<size_t>(tok.header().vars, tok.max_var_seen());
    return cnf;
}

Cnf read_dimacs(std::istream& in) {
    auto r = try_read_dimacs(in);
    if (!r.ok()) throw DimacsError(r.status().message());
    return std::move(*r);
}

Cnf read_dimacs_from_string(const std::string& text) {
    std::istringstream in(text);
    return read_dimacs(in);
}

::bosphorus::Result<Cnf> try_read_dimacs_from_string(const std::string& text) {
    std::istringstream in(text);
    return try_read_dimacs(in);
}

void write_dimacs(std::ostream& out, const Cnf& cnf) {
    out << "p cnf " << cnf.num_vars << " "
        << cnf.clauses.size() + cnf.xors.size() << "\n";
    for (const auto& clause : cnf.clauses) {
        for (Lit l : clause) out << l.to_dimacs() << " ";
        out << "0\n";
    }
    for (const auto& x : cnf.xors) {
        out << "x";
        bool first = true;
        // Fold the rhs into the first literal's sign: lits XOR to true.
        for (size_t i = 0; i < x.vars.size(); ++i) {
            const bool neg = (i == 0) ? !x.rhs : false;
            out << (first ? "" : " ") << (neg ? -static_cast<int>(x.vars[i] + 1)
                                             : static_cast<int>(x.vars[i] + 1));
            first = false;
        }
        out << " 0\n";
    }
}

}  // namespace bosphorus::sat
