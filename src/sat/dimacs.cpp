#include "sat/dimacs.h"

#include <cstdlib>
#include <sstream>

namespace bosphorus::sat {

namespace {

/// Convert a signed DIMACS literal to an internal Lit, growing num_vars.
Lit lit_from_dimacs(long dl, size_t& num_vars) {
    const unsigned long v = static_cast<unsigned long>(dl < 0 ? -dl : dl);
    if (v == 0) throw DimacsError("literal 0 inside clause body");
    if (v > num_vars) num_vars = v;
    return mk_lit(static_cast<Var>(v - 1), dl < 0);
}

}  // namespace

Cnf read_dimacs(std::istream& in) {
    Cnf cnf;
    std::string line;
    bool header_seen = false;
    size_t declared_vars = 0;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        const size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        const char c0 = line[first];
        if (c0 == 'c') continue;
        if (c0 == 'p') {
            std::istringstream hs(line.substr(first + 1));
            std::string fmt;
            long nv = 0, nc = 0;
            hs >> fmt >> nv >> nc;
            if (fmt != "cnf") throw DimacsError("expected 'p cnf' header");
            declared_vars = static_cast<size_t>(nv);
            header_seen = true;
            continue;
        }
        const bool is_xor = (c0 == 'x');
        std::istringstream ls(line.substr(is_xor ? first + 1 : first));
        long dl;
        if (is_xor) {
            XorConstraint x;
            x.rhs = true;  // literals XOR to true
            while (ls >> dl && dl != 0) {
                const Lit l = lit_from_dimacs(dl, cnf.num_vars);
                // lit = var ^ sign; folding the sign into the rhs.
                x.vars.push_back(l.var());
                if (l.sign()) x.rhs = !x.rhs;
            }
            cnf.xors.push_back(std::move(x));
        } else {
            std::vector<Lit> clause;
            while (ls >> dl && dl != 0) {
                clause.push_back(lit_from_dimacs(dl, cnf.num_vars));
            }
            cnf.clauses.push_back(std::move(clause));
        }
    }
    if (!header_seen) throw DimacsError("missing 'p cnf' header");
    cnf.num_vars = std::max(cnf.num_vars, declared_vars);
    return cnf;
}

Cnf read_dimacs_from_string(const std::string& text) {
    std::istringstream in(text);
    return read_dimacs(in);
}

::bosphorus::Result<Cnf> try_read_dimacs(std::istream& in) {
    try {
        return read_dimacs(in);
    } catch (const DimacsError& e) {
        return Status::parse_error(e.what());
    }
}

::bosphorus::Result<Cnf> try_read_dimacs_from_string(const std::string& text) {
    std::istringstream in(text);
    return try_read_dimacs(in);
}

void write_dimacs(std::ostream& out, const Cnf& cnf) {
    out << "p cnf " << cnf.num_vars << " "
        << cnf.clauses.size() + cnf.xors.size() << "\n";
    for (const auto& clause : cnf.clauses) {
        for (Lit l : clause) out << l.to_dimacs() << " ";
        out << "0\n";
    }
    for (const auto& x : cnf.xors) {
        out << "x";
        bool first = true;
        // Fold the rhs into the first literal's sign: lits XOR to true.
        for (size_t i = 0; i < x.vars.size(); ++i) {
            const bool neg = (i == 0) ? !x.rhs : false;
            out << (first ? "" : " ") << (neg ? -static_cast<int>(x.vars[i] + 1)
                                             : static_cast<int>(x.vars[i] + 1));
            first = false;
        }
        out << " 0\n";
    }
}

}  // namespace bosphorus::sat
