// The "resilient" decorator backend and the registry's HealthTracker.
//
// ResilientBackend buffers the formula (the LingelingLikeBackend shape:
// cold, verdict-equivalent, no warm starts) and drives a fallback chain
// of real backends through bounded retries. Every attempt runs on a
// FRESH instance of the underlying backend, so a crashed / hung /
// garbage-spewing attempt leaves nothing poisoned behind; a kSat model
// is verified against the buffered formula before it is believed, so a
// lying backend costs a retry, never a wrong verdict.
//
// Failure taxonomy per attempt:
//   - verdict (kSat with a verified model / kUnsat / in-process
//     kUnknown, which only means budget-or-timeout): done, record
//     success with the circuit breaker.
//   - stopped (interrupt, terminate hook, the *overall* deadline):
//     return kUnknown without a health penalty -- the caller asked.
//   - failed (external kUnknown with none of the above causes, an
//     unverifiable model, an injected crash): record a health failure,
//     back off with deterministic jitter, retry; after max_attempts
//     move down the chain.
//
// In-process attempts can also "crash" via the backend-crash fault site,
// so the whole retry/fallback machinery is testable without spawning a
// single child process.
#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "bosphorus/sat_backend.h"
#include "sat/solve_cnf.h"
#include "util/fault.h"
#include "util/timer.h"

namespace bosphorus::sat {

// ---- HealthTracker ---------------------------------------------------------

namespace {

double monotonic_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

void HealthTracker::set_config(Config cfg) {
    std::lock_guard<std::mutex> lock(mu_);
    cfg_ = cfg;
}

HealthTracker::Config HealthTracker::config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cfg_;
}

const char* HealthTracker::state_name(CircuitState s) {
    switch (s) {
        case CircuitState::kClosed: return "closed";
        case CircuitState::kOpen: return "open";
        case CircuitState::kHalfOpen: return "half-open";
    }
    return "?";
}

bool HealthTracker::allow(const std::string& backend) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, e] : entries_) {
        if (name != backend) continue;
        switch (e.state) {
            case CircuitState::kClosed: return true;
            case CircuitState::kHalfOpen: return false;  // probe in flight
            case CircuitState::kOpen:
                if (monotonic_seconds() - e.opened_at_s <
                    cfg_.open_cooldown_s)
                    return false;
                // Cooldown over: this caller becomes the one probe.
                e.state = CircuitState::kHalfOpen;
                return true;
        }
    }
    return true;  // unknown backends start closed
}

void HealthTracker::record_success(const std::string& backend) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, e] : entries_) {
        if (name != backend) continue;
        ++e.successes;
        e.consecutive_failures = 0;
        e.state = CircuitState::kClosed;
        return;
    }
    Entry e;
    e.successes = 1;
    entries_.emplace_back(backend, e);
}

void HealthTracker::record_failure(const std::string& backend) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry* entry = nullptr;
    for (auto& [name, e] : entries_) {
        if (name == backend) {
            entry = &e;
            break;
        }
    }
    if (!entry) {
        entries_.emplace_back(backend, Entry{});
        entry = &entries_.back().second;
    }
    ++entry->failures;
    ++entry->consecutive_failures;
    const bool open_now =
        entry->state == CircuitState::kHalfOpen ||  // failed probe
        (entry->state == CircuitState::kClosed &&
         entry->consecutive_failures >= cfg_.failure_threshold);
    if (open_now) {
        entry->state = CircuitState::kOpen;
        entry->opened_at_s = monotonic_seconds();
        ++entry->opens;
    }
}

std::vector<HealthTracker::Snapshot> HealthTracker::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Snapshot> out;
    out.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
        Snapshot s;
        s.backend = name;
        s.state = e.state;
        s.successes = e.successes;
        s.failures = e.failures;
        s.consecutive_failures = e.consecutive_failures;
        s.opens = e.opens;
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const Snapshot& a, const Snapshot& b) {
                  return a.backend < b.backend;
              });
    return out;
}

uint64_t HealthTracker::total_opens() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& [_, e] : entries_) total += e.opens;
    return total;
}

void HealthTracker::reset() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

// ---- ResilienceCounters ----------------------------------------------------

ResilienceCounters& resilience_counters() {
    static ResilienceCounters counters;
    return counters;
}

// ---- ResilientBackend ------------------------------------------------------

namespace {

/// splitmix64 (the rng.h seeding mixer): deterministic backoff jitter.
uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

bool is_in_process(const std::string& backend_name) {
    return backend_name == "minisat" || backend_name == "lingeling" ||
           backend_name == "cms";
}

std::string trim(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

/// `key=value` option entries are recognised by their keys; anything
/// else in the comma-list is a chain backend spec.
bool parse_option(const std::string& entry, ResilienceOptions& opts,
                  Status& error) {
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = trim(entry.substr(0, eq));
    const std::string value = trim(entry.substr(eq + 1));
    const auto number = [&](double lo, double* out) {
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(value.c_str(), &end);
        if (errno != 0 || end == value.c_str() || *end != '\0' || v < lo) {
            error = Status::invalid_argument("resilient: bad value '" +
                                             value + "' for option '" + key +
                                             "'");
            return false;
        }
        *out = v;
        return true;
    };
    double v = 0;
    if (key == "retries") {
        // retries=N means N retries, i.e. N+1 attempts per chain entry.
        if (number(0, &v)) opts.max_attempts = static_cast<uint32_t>(v) + 1;
        return true;
    }
    if (key == "attempt-timeout") {
        if (number(0, &v)) opts.attempt_timeout_s = v;
        return true;
    }
    if (key == "backoff") {
        if (number(0, &v)) opts.backoff_base_s = v;
        return true;
    }
    return false;  // an '=' inside a command line, not an option
}

class ResilientBackend final : public SolverBackend {
public:
    ResilientBackend(std::vector<SolverSpec> chain, ResilienceOptions opts)
        : chain_(std::move(chain)), opts_(opts) {}

    std::string name() const override { return "resilient"; }

    void ensure_vars(size_t n) override {
        buffer_.num_vars = std::max(buffer_.num_vars, n);
    }
    size_t num_vars() const override { return buffer_.num_vars; }

    bool add_clause(const std::vector<Lit>& lits) override {
        buffer_.clauses.push_back(lits);
        if (lits.empty()) ok_ = false;
        return ok_;
    }

    bool add_xor(const XorConstraint& x) override {
        buffer_.xors.push_back(x);
        return ok_;
    }

    void assume(Lit l) override { assumptions_.push_back(l); }

    Result solve(int64_t conflict_budget, double timeout_s) override {
        const std::vector<Lit> assumptions = std::move(assumptions_);
        assumptions_.clear();
        failed_all_ = false;
        model_.clear();
        if (stop_requested()) return Result::kUnknown;
        if (!ok_) return Result::kUnsat;

        // The formula every attempt solves (and every kSat model is
        // verified against): buffer + assumptions as unit clauses.
        Cnf work = buffer_;
        for (const Lit a : assumptions) work.add_clause({a});

        auto& counters = resilience_counters();
        auto& health = BackendRegistry::global().health();
        Timer overall;

        for (size_t ci = 0; ci < chain_.size(); ++ci) {
            const SolverSpec& spec = chain_[ci];
            const std::string backend_name = spec.backend_name();
            // The final entry is the known-good floor: it must stay
            // reachable even with its circuit open, or degrading would
            // have nowhere left to go.
            const bool last = ci + 1 == chain_.size();
            if (!last && !health.allow(backend_name)) {
                counters.fallbacks.fetch_add(1, std::memory_order_relaxed);
                continue;
            }

            for (uint32_t attempt = 0; attempt < opts_.max_attempts;
                 ++attempt) {
                if (stop_requested()) return Result::kUnknown;
                double remaining = -1;
                if (timeout_s >= 0) {
                    remaining = timeout_s - overall.seconds();
                    if (remaining <= 0) return Result::kUnknown;
                }
                double attempt_timeout = opts_.attempt_timeout_s;
                if (attempt_timeout < 0) {
                    attempt_timeout = remaining;
                } else if (remaining >= 0) {
                    attempt_timeout = std::min(attempt_timeout, remaining);
                }

                counters.attempts.fetch_add(1, std::memory_order_relaxed);
                Result verdict = Result::kUnknown;
                const Attempt outcome =
                    run_attempt(spec, work, assumptions.empty(),
                                conflict_budget, attempt_timeout, &verdict);
                if (outcome == Attempt::kVerdict) {
                    health.record_success(backend_name);
                    return verdict;
                }
                if (outcome == Attempt::kStopped) return Result::kUnknown;
                health.record_failure(backend_name);
                if (attempt + 1 < opts_.max_attempts) {
                    counters.retries.fetch_add(1, std::memory_order_relaxed);
                    backoff(attempt, timeout_s, overall);
                }
            }
            if (!last)
                counters.fallbacks.fetch_add(1, std::memory_order_relaxed);
        }
        counters.exhausted.fetch_add(1, std::memory_order_relaxed);
        return Result::kUnknown;
    }

    LBool value(Var v) const override {
        return v < model_.size() ? model_[v] : LBool::kFalse;
    }

    /// Degraded-assumption backend: a refuted solve blames every
    /// assumption (attempts are cold; conflicts cannot be attributed).
    bool failed(Lit) const override { return failed_all_ || !ok_; }

    bool okay() const override { return ok_; }

    void interrupt() override {
        interrupted_.store(true, std::memory_order_release);
    }
    void clear_interrupt() override {
        interrupted_.store(false, std::memory_order_release);
    }
    void set_terminate_callback(std::function<bool()> cb) override {
        terminate_cb_ = std::move(cb);
    }

    Solver::Stats stats() const override { return stats_; }

    bool supports_assumptions() const override { return false; }

private:
    enum class Attempt : uint8_t { kVerdict, kFailed, kStopped };

    bool stop_requested() const {
        if (interrupted_.load(std::memory_order_acquire)) return true;
        return terminate_cb_ && terminate_cb_();
    }

    /// One solve on a fresh instance of `spec`. On kVerdict, `*verdict`
    /// holds the (verified) answer and this object's model/ok state is
    /// updated; kFailed and kStopped leave no trace behind.
    Attempt run_attempt(const SolverSpec& spec, const Cnf& work,
                        bool outright, int64_t conflict_budget,
                        double timeout_s, Result* verdict) {
        const bool in_process = is_in_process(spec.backend_name());
        auto& inject = fault::FaultInjector::global();
        // Subprocess backends evaluate crash/hang themselves, at the
        // point the real failure would strike; for in-process attempts
        // the decorator plays the crashing child, so the whole retry /
        // fallback machinery is testable without fork().
        if (in_process && inject.armed() &&
            inject.should_fire(fault::Site::kBackendCrash))
            return Attempt::kFailed;

        auto made = BackendRegistry::global().create(spec);
        if (!made.ok()) return Attempt::kFailed;
        SolverBackend& b = **made;
        b.set_terminate_callback([this] { return stop_requested(); });

        const bool loaded = b.load(work);
        Result r = Result::kUnsat;
        if (loaded) r = b.solve(conflict_budget, timeout_s);

        if (r == Result::kSat) {
            std::vector<LBool> model(work.num_vars, LBool::kFalse);
            for (Var v = 0; v < work.num_vars; ++v) model[v] = b.value(v);
            // Injected garbage on an in-process attempt: corrupt the
            // reported model and let the REAL verification path reject it.
            if (in_process && inject.armed() &&
                inject.should_fire(fault::Site::kBackendGarbage)) {
                for (auto& val : model)
                    val = val == LBool::kTrue ? LBool::kFalse : LBool::kTrue;
            }
            if (!model_satisfies(work, model)) {
                resilience_counters().garbage_rejected.fetch_add(
                    1, std::memory_order_relaxed);
                return Attempt::kFailed;
            }
            model_ = std::move(model);
            accumulate(b.stats());
            *verdict = Result::kSat;
            return Attempt::kVerdict;
        }
        if (r == Result::kUnsat) {
            // Trusted, like every other path that cannot check proofs.
            if (outright) ok_ = false;
            failed_all_ = !outright;
            accumulate(b.stats());
            *verdict = Result::kUnsat;
            return Attempt::kVerdict;
        }
        // kUnknown. The caller stopping us is not a backend failure.
        if (stop_requested()) return Attempt::kStopped;
        if (in_process) {
            // In-tree backends do not crash: kUnknown means the conflict
            // budget or the attempt's wall-clock ran out -- a legitimate
            // outcome the engine loop knows how to continue from.
            accumulate(b.stats());
            *verdict = Result::kUnknown;
            return Attempt::kVerdict;
        }
        // External kUnknown with no stop cause: crash, hang (reaped by
        // the attempt timeout) or garbage. Retry.
        return Attempt::kFailed;
    }

    /// Exponential backoff with deterministic jitter, interruptible in
    /// 2ms slices, never sleeping past the overall deadline.
    void backoff(uint32_t attempt, double timeout_s, const Timer& overall) {
        double delay = opts_.backoff_base_s;
        for (uint32_t i = 0; i < attempt; ++i) delay *= 2;
        delay = std::min(delay, opts_.backoff_max_s);
        // +/-25% jitter from a private splitmix64 stream.
        jitter_state_ = mix64(jitter_state_);
        const double unit =
            static_cast<double>(jitter_state_ >> 11) / 9007199254740992.0;
        delay *= 0.75 + 0.5 * unit;
        Timer slept;
        while (slept.seconds() < delay) {
            if (stop_requested()) return;
            if (timeout_s >= 0 && overall.seconds() >= timeout_s) return;
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }

    void accumulate(const Solver::Stats& s) {
        stats_.conflicts += s.conflicts;
        stats_.decisions += s.decisions;
        stats_.propagations += s.propagations;
        stats_.restarts += s.restarts;
        stats_.learnt_clauses += s.learnt_clauses;
        stats_.deleted_clauses += s.deleted_clauses;
        stats_.xor_propagations += s.xor_propagations;
    }

    std::vector<SolverSpec> chain_;
    ResilienceOptions opts_;
    Cnf buffer_;
    bool ok_ = true;
    bool failed_all_ = false;
    std::vector<Lit> assumptions_;
    std::vector<LBool> model_;
    Solver::Stats stats_;
    std::atomic<bool> interrupted_{false};
    std::function<bool()> terminate_cb_;
    uint64_t jitter_state_ = 0x243F6A8885A308D3ull;  // fixed: deterministic
};

}  // namespace

::bosphorus::Result<std::unique_ptr<SolverBackend>> make_resilient_backend(
    const std::string& arg) {
    if (trim(arg).empty())
        return Status::invalid_argument(
            "resilient needs a chain: use "
            "\"resilient:<primary>[,<fallback>...][,retries=N]"
            "[,attempt-timeout=S][,backoff=S]\"");

    ResilienceOptions opts;
    std::vector<SolverSpec> chain;
    size_t pos = 0;
    while (pos <= arg.size()) {
        size_t comma = arg.find(',', pos);
        if (comma == std::string::npos) comma = arg.size();
        const std::string entry = trim(arg.substr(pos, comma - pos));
        pos = comma + 1;
        if (entry.empty()) continue;
        Status option_error;
        if (parse_option(entry, opts, option_error)) {
            if (!option_error.ok()) return option_error;
            continue;
        }
        const SolverSpec spec{entry};
        if (spec.backend_name() == "resilient")
            return Status::invalid_argument(
                "resilient: chains do not nest ('" + entry + "')");
        chain.emplace_back(spec);
    }
    if (chain.empty())
        return Status::invalid_argument(
            "resilient: the chain names no backend");

    // Guarantee a known-good floor: without an in-tree entry, degrading
    // from a dead external solver would have nowhere to land.
    bool has_in_process = false;
    for (const auto& s : chain)
        has_in_process = has_in_process || is_in_process(s.backend_name());
    if (!has_in_process) chain.emplace_back(SolverSpec{"cms"});

    // Fail fast only when NOTHING in the chain can be instantiated; a
    // typo'd primary with a healthy fallback is exactly what this
    // decorator exists to survive.
    Status first_error;
    bool any_ok = false;
    for (const auto& s : chain) {
        auto probe = BackendRegistry::global().create(s);
        if (probe.ok()) {
            any_ok = true;
            break;
        }
        if (first_error.ok()) first_error = probe.status();
    }
    if (!any_ok)
        return Status::invalid_argument(
            "resilient: no chain entry is usable (first error: " +
            first_error.message() + ")");

    return std::unique_ptr<SolverBackend>(
        new ResilientBackend(std::move(chain), opts));
}

}  // namespace bosphorus::sat
