// The SAT back-end registry and the three in-tree adapters.
//
// Each built-in configuration of the deprecated closed enum (minisat /
// lingeling / cms) becomes a registered SolverBackend over sat::Solver:
//
//  - "minisat":  a persistent incremental Solver without native XOR
//    support; assumptions are native (solve_assuming).
//  - "lingeling": SatELite-style preprocessing is destructive, so the
//    adapter buffers everything and runs a cold simplify+solve per call;
//    assumptions degrade to per-solve unit clauses added *before*
//    preprocessing.
//  - "cms": a persistent incremental Solver with native XOR + level-0
//    Gauss-Jordan; clauses added before the first solve additionally go
//    through recover_xors (CryptoMiniSat-style XOR detection), exactly
//    like the enum path did.
//
// The "dimacs-exec" external-process backend lives in dimacs_exec.cpp and
// is registered here alongside the in-tree three.
#include "bosphorus/sat_backend.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sat/dimacs_exec.h"
#include "sat/preprocess.h"
#include "util/timer.h"

namespace bosphorus::sat {

// ---- SolverSpec ------------------------------------------------------------

SolverSpec::SolverSpec(SolverKind kind) {
    switch (kind) {
        case SolverKind::kMinisatLike: spec = "minisat"; break;
        case SolverKind::kLingelingLike: spec = "lingeling"; break;
        case SolverKind::kCmsLike: spec = "cms"; break;
    }
}

std::string SolverSpec::backend_name() const {
    const size_t colon = spec.find(':');
    return colon == std::string::npos ? spec : spec.substr(0, colon);
}

std::string SolverSpec::argument() const {
    const size_t colon = spec.find(':');
    return colon == std::string::npos ? std::string() : spec.substr(colon + 1);
}

// ---- SolverBackend ---------------------------------------------------------

bool SolverBackend::load(const Cnf& cnf) {
    ensure_vars(cnf.num_vars);
    for (const auto& cl : cnf.clauses) {
        if (!add_clause(cl)) return false;
    }
    for (const auto& x : cnf.xors) {
        if (!add_xor(x)) return false;
    }
    return okay();
}

namespace {

// ---- "minisat" / "cms": persistent incremental adapters --------------------

/// Shared shape of the two live in-tree adapters: one persistent Solver,
/// native assumptions via solve_assuming, facts forwarded straight from
/// the solver. The CMS flavor adds native XOR plus one-shot XOR recovery
/// over the clauses buffered before the first solve.
class InTreeBackend final : public SolverBackend {
public:
    InTreeBackend(std::string name, bool native_xor, bool recover)
        : name_(std::move(name)), recover_pending_(recover) {
        Solver::Config cfg;
        cfg.enable_xor = native_xor;
        solver_ = std::make_unique<Solver>(cfg);
        native_xor_ = native_xor;
    }

    std::string name() const override { return name_; }

    void ensure_vars(size_t n) override {
        while (solver_->num_vars() < n) solver_->new_var();
    }
    size_t num_vars() const override { return solver_->num_vars(); }

    bool add_clause(const std::vector<Lit>& lits) override {
        if (recover_pending_) preload_clauses_.push_back(lits);
        return solver_->add_clause(lits);
    }

    bool add_xor(const XorConstraint& x) override {
        // Native XORs arriving before the first solve disable recovery,
        // mirroring solve_cnf's "only when cnf.xors is empty" rule.
        recover_pending_ = false;
        preload_clauses_.clear();
        preload_clauses_.shrink_to_fit();
        return solver_->add_xor(x);
    }

    void assume(Lit l) override { assumptions_.push_back(l); }

    Result solve(int64_t conflict_budget, double timeout_s) override {
        if (recover_pending_) {
            // First solve: CryptoMiniSat-style XOR detection over every
            // clause added so far (they stay in place as clauses).
            recover_pending_ = false;
            Cnf probe;
            probe.num_vars = solver_->num_vars();
            probe.clauses = std::move(preload_clauses_);
            for (const auto& x : recover_xors(probe)) {
                if (!solver_->add_xor(x)) break;
            }
            preload_clauses_.clear();
            preload_clauses_.shrink_to_fit();
        }
        last_assumptions_ = std::move(assumptions_);
        assumptions_.clear();
        const Result r = solver_->solve_assuming(
            last_assumptions_, conflict_budget, timeout_s);
        last_refuted_ = (r == Result::kUnsat) && solver_->okay();
        return r;
    }

    LBool value(Var v) const override {
        const auto& model = solver_->model();
        if (v >= model.size() || model[v] == LBool::kUndef)
            return LBool::kFalse;
        return model[v];
    }

    /// Sound over-approximation: the in-tree solver only records the
    /// *first* refuted assumption (earlier ones may have propagated into
    /// the refutation), so every assumption of a refuted call is blamed
    /// -- the contract allows over- but never under-approximation.
    bool failed(Lit a) const override {
        if (!solver_->okay()) return true;  // refuted with or without `a`
        if (!last_refuted_) return false;
        return std::find(last_assumptions_.begin(), last_assumptions_.end(),
                         a) != last_assumptions_.end();
    }

    bool okay() const override { return solver_->okay(); }

    void interrupt() override { solver_->interrupt(); }
    void clear_interrupt() override { solver_->clear_interrupt(); }
    void set_terminate_callback(std::function<bool()> cb) override {
        solver_->set_terminate_callback(std::move(cb));
    }

    Solver::Stats stats() const override { return solver_->stats(); }

    bool supports_assumptions() const override { return true; }
    bool supports_native_xor() const override { return native_xor_; }

    std::vector<Lit> learnt_units() const override {
        return solver_->learnt_units();
    }
    std::vector<std::array<Lit, 2>> learnt_binaries() const override {
        return solver_->learnt_binaries();
    }

private:
    std::string name_;
    std::unique_ptr<Solver> solver_;
    std::vector<Lit> assumptions_;       // pending, for the next solve only
    std::vector<Lit> last_assumptions_;  // of the last solve, for failed()
    bool last_refuted_ = false;  // last solve: kUnsat under assumptions
    std::vector<std::vector<Lit>> preload_clauses_;  // recovery input
    bool recover_pending_ = false;
    bool native_xor_ = false;
};

// ---- "lingeling": cold preprocessing adapter -------------------------------

/// Preprocessing (SatELite-style subsumption + BVE) is destructive and
/// model-changing, so it cannot wrap a persistent solver: this adapter
/// buffers the formula and pays a full simplify + solve per call.
/// Assumptions degrade to unit clauses appended to the buffered CNF
/// before preprocessing -- verdict-equivalent, never warm.
class LingelingLikeBackend final : public SolverBackend {
public:
    std::string name() const override { return "lingeling"; }

    void ensure_vars(size_t n) override {
        buffer_.num_vars = std::max(buffer_.num_vars, n);
    }
    size_t num_vars() const override { return buffer_.num_vars; }

    bool add_clause(const std::vector<Lit>& lits) override {
        buffer_.clauses.push_back(lits);
        if (lits.empty()) ok_ = false;
        return ok_;
    }

    bool add_xor(const XorConstraint& x) override {
        buffer_.xors.push_back(x);
        return ok_;
    }

    void assume(Lit l) override { assumptions_.push_back(l); }

    Result solve(int64_t conflict_budget, double timeout_s) override {
        const std::vector<Lit> assumptions = std::move(assumptions_);
        assumptions_.clear();
        failed_all_ = false;  // only the solve below may re-establish it
        if (interrupted_.load(std::memory_order_acquire))
            return Result::kUnknown;
        if (!ok_) return Result::kUnsat;

        Cnf work = buffer_;
        for (const Lit a : assumptions) work.add_clause({a});

        Preprocessor prep;
        if (!prep.simplify(work)) {
            // UNSAT of buffer + assumption units: outright only when no
            // assumptions were in play.
            if (assumptions.empty()) ok_ = false;
            failed_all_ = !assumptions.empty();
            return Result::kUnsat;
        }

        Solver solver;
        solver.set_terminate_callback([this] {
            if (interrupted_.load(std::memory_order_acquire)) return true;
            return terminate_cb_ && terminate_cb_();
        });
        Result r = Result::kUnsat;
        if (solver.load(work)) {
            r = solver.solve(conflict_budget, timeout_s);
        }
        accumulate(solver.stats());
        if (r == Result::kUnsat) {
            if (assumptions.empty()) ok_ = false;
            failed_all_ = !assumptions.empty();
        } else if (r == Result::kSat) {
            model_ = solver.model();
            model_.resize(std::max(model_.size(), buffer_.num_vars),
                          LBool::kFalse);
            prep.extend_model(model_);
            for (auto& v : model_)
                if (v == LBool::kUndef) v = LBool::kFalse;
        }
        // Facts learnt while assumption units were baked into the formula
        // are conditional on them -- only assumption-free solves export.
        if (assumptions.empty()) harvest(solver);
        return r;
    }

    LBool value(Var v) const override {
        return v < model_.size() ? model_[v] : LBool::kFalse;
    }

    /// Conservative over-approximation: a refuted assumption-carrying
    /// solve reports every assumption as failed (the degraded cold path
    /// cannot attribute the conflict).
    bool failed(Lit) const override { return failed_all_ || !ok_; }

    bool okay() const override { return ok_; }

    void interrupt() override {
        interrupted_.store(true, std::memory_order_release);
    }
    void clear_interrupt() override {
        interrupted_.store(false, std::memory_order_release);
    }
    void set_terminate_callback(std::function<bool()> cb) override {
        terminate_cb_ = std::move(cb);
    }

    Solver::Stats stats() const override { return stats_; }

    bool supports_assumptions() const override { return false; }

    std::vector<Lit> learnt_units() const override { return units_; }
    std::vector<std::array<Lit, 2>> learnt_binaries() const override {
        return binaries_;
    }

private:
    void accumulate(const Solver::Stats& s) {
        stats_.conflicts += s.conflicts;
        stats_.decisions += s.decisions;
        stats_.propagations += s.propagations;
        stats_.restarts += s.restarts;
        stats_.learnt_clauses += s.learnt_clauses;
        stats_.deleted_clauses += s.deleted_clauses;
        stats_.xor_propagations += s.xor_propagations;
    }

    void harvest(const Solver& solver) {
        for (const Lit u : solver.learnt_units()) {
            if (units_seen_.insert(u.raw()).second) units_.push_back(u);
        }
        for (const auto& b : solver.learnt_binaries()) {
            const Lit lo = std::min(b[0], b[1]), hi = std::max(b[0], b[1]);
            const uint64_t key =
                (static_cast<uint64_t>(lo.raw()) << 32) | hi.raw();
            if (binaries_seen_.insert(key).second) binaries_.push_back(b);
        }
    }

    Cnf buffer_;
    bool ok_ = true;
    bool failed_all_ = false;
    std::vector<Lit> assumptions_;
    std::vector<LBool> model_;
    Solver::Stats stats_;
    std::atomic<bool> interrupted_{false};
    std::function<bool()> terminate_cb_;
    std::vector<Lit> units_;
    std::unordered_set<uint32_t> units_seen_;
    std::vector<std::array<Lit, 2>> binaries_;
    std::unordered_set<uint64_t> binaries_seen_;
};

/// Reject arguments on backends that take none ("minisat:foo" is a typo,
/// not a request).
Status no_argument(const std::string& name, const std::string& arg) {
    if (arg.empty()) return Status();
    return Status::invalid_argument("backend '" + name +
                                    "' takes no ':<argument>' (got '" + arg +
                                    "')");
}

}  // namespace

// ---- BackendRegistry -------------------------------------------------------

BackendRegistry& BackendRegistry::global() {
    static BackendRegistry* registry = [] {
        auto* r = new BackendRegistry();
        const auto add = [&](const char* name, const char* description,
                             Factory factory) {
            r->entries_.emplace_back(
                BackendInfo{name, description, /*builtin=*/true},
                std::move(factory));
        };
        add("minisat", "plain CDCL (MiniSat 2.2 stand-in), incremental",
            [](const std::string& arg)
                -> ::bosphorus::Result<std::unique_ptr<SolverBackend>> {
                const Status s = no_argument("minisat", arg);
                if (!s.ok()) return s;
                return std::unique_ptr<SolverBackend>(new InTreeBackend(
                    "minisat", /*native_xor=*/false, /*recover=*/false));
            });
        add("lingeling",
            "CDCL + SatELite-style preprocessing; cold per solve",
            [](const std::string& arg)
                -> ::bosphorus::Result<std::unique_ptr<SolverBackend>> {
                const Status s = no_argument("lingeling", arg);
                if (!s.ok()) return s;
                return std::unique_ptr<SolverBackend>(
                    new LingelingLikeBackend());
            });
        add("cms",
            "CDCL + native XOR, Gauss-Jordan and XOR recovery "
            "(CryptoMiniSat5 stand-in), incremental",
            [](const std::string& arg)
                -> ::bosphorus::Result<std::unique_ptr<SolverBackend>> {
                const Status s = no_argument("cms", arg);
                if (!s.ok()) return s;
                return std::unique_ptr<SolverBackend>(new InTreeBackend(
                    "cms", /*native_xor=*/true, /*recover=*/true));
            });
        add("dimacs-exec",
            "external DIMACS solver process: dimacs-exec:<command>",
            [](const std::string& arg)
                -> ::bosphorus::Result<std::unique_ptr<SolverBackend>> {
                return make_dimacs_exec_backend(arg);
            });
        add("resilient",
            "retry/fallback decorator: resilient:<primary>[,<fallback>...]"
            "[,retries=N][,attempt-timeout=S][,backoff=S]",
            [](const std::string& arg)
                -> ::bosphorus::Result<std::unique_ptr<SolverBackend>> {
                return make_resilient_backend(arg);
            });
        return r;
    }();
    return *registry;
}

Status BackendRegistry::register_backend(BackendInfo info, Factory factory) {
    if (info.name.empty())
        return Status::invalid_argument("backend name must not be empty");
    if (info.name.find(':') != std::string::npos)
        return Status::invalid_argument(
            "backend name must not contain ':' (the spec separator): '" +
            info.name + "'");
    if (!factory)
        return Status::invalid_argument("backend '" + info.name +
                                        "' needs a factory");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [existing, _] : entries_) {
        if (existing.name == info.name)
            return Status::invalid_argument("backend '" + info.name +
                                            "' is already registered");
    }
    entries_.emplace_back(std::move(info), std::move(factory));
    return Status();
}

::bosphorus::Result<std::unique_ptr<SolverBackend>> BackendRegistry::create(
    const SolverSpec& spec) const {
    const std::string name = spec.backend_name();
    Factory factory;
    std::string known;
    {
        // One critical section for the lookup AND the known-name snapshot:
        // re-acquiring the lock to build the error message would let a
        // concurrent register_backend() slip a name into "registered: ..."
        // that this lookup never consulted (or hide one it did).
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& [info, f] : entries_) {
            if (info.name == name) {
                factory = f;
                break;
            }
            if (!known.empty()) known += ", ";
            known += info.name;
        }
    }
    if (!factory) {
        return Status::invalid_argument("unknown solver backend '" + name +
                                        "' (registered: " + known + ")");
    }
    return factory(spec.argument());
}

std::vector<BackendInfo> BackendRegistry::list() const {
    // An atomic snapshot: the whole table is copied under the registry
    // lock, so a listing (e.g. --list-solvers) racing register_backend()
    // observes either all of a registration or none of it, in
    // registration order -- never a partially-updated table.
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<BackendInfo> out;
    out.reserve(entries_.size());
    for (const auto& [info, _] : entries_) out.push_back(info);
    return out;
}

bool BackendRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [info, _] : entries_) {
        if (info.name == name) return true;
    }
    return false;
}

// ---- solve_cnf_with --------------------------------------------------------

::bosphorus::Result<CnfSolveOutcome> solve_cnf_with(const Cnf& cnf, const SolverSpec& spec,
                                       double timeout_s,
                                       int64_t conflict_budget) {
    Timer timer;
    ::bosphorus::Result<std::unique_ptr<SolverBackend>> backend =
        BackendRegistry::global().create(spec);
    if (!backend.ok()) return backend.status();

    CnfSolveOutcome out;
    SolverBackend& b = **backend;
    if (!b.load(cnf)) {
        out.result = Result::kUnsat;
        out.stats = b.stats();
        out.seconds = timer.seconds();
        return out;
    }
    out.result = b.solve(conflict_budget, timeout_s);
    out.stats = b.stats();
    if (out.result == Result::kSat) {
        out.model.resize(cnf.num_vars, LBool::kFalse);
        for (Var v = 0; v < cnf.num_vars; ++v) out.model[v] = b.value(v);
    }
    out.seconds = timer.seconds();
    return out;
}

}  // namespace bosphorus::sat
