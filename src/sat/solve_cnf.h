// One-call solving front-end with the three back-end configurations used in
// the paper's Table II:
//
//   kMinisatLike   : plain CDCL (stands in for MiniSat 2.2)
//   kLingelingLike : CDCL + SatELite-style preprocessing (Lingeling)
//   kCmsLike       : CDCL + XOR recovery + Gauss-Jordan (CryptoMiniSat5)
//
// The facade also recovers native XOR constraints from plain CNF for the
// CMS-like configuration, mirroring CryptoMiniSat's xor-detection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bosphorus/status.h"
#include "sat/solver.h"
#include "sat/types.h"

namespace bosphorus::sat {

enum class SolverKind { kMinisatLike, kLingelingLike, kCmsLike };

/// The back end used when none is specified, everywhere (CLI --solver
/// default, SolveConfig, PipelineConfig): the CMS-like configuration.
inline constexpr SolverKind kDefaultSolverKind = SolverKind::kCmsLike;
inline constexpr const char* kDefaultSolverName = "cms";

const char* solver_kind_name(SolverKind kind);

/// Parse a CLI-style solver name: "minisat", "lingeling" or "cms".
::bosphorus::Result<SolverKind> solver_kind_from_name(const std::string& name);

/// What one CNF-level solve produced. (Named CnfSolveOutcome -- not
/// SolveOutcome -- so the public bosphorus::SolveOutcome of
/// include/bosphorus/solve.h is never shadowed by this internal type.)
struct CnfSolveOutcome {
    Result result = Result::kUnknown;
    std::vector<LBool> model;  // valid iff result == kSat
    Solver::Stats stats;
    double seconds = 0.0;
};

/// Solve `cnf` with the given configuration, wall-clock timeout (seconds,
/// < 0 for none) and conflict budget (< 0 for unbounded).
///
/// Deprecated: the closed SolverKind axis is superseded by the pluggable
/// back-end interface of include/bosphorus/sat_backend.h (the registry's
/// "minisat"/"lingeling"/"cms" backends reproduce these three
/// configurations exactly; solve_cnf_with is the drop-in replacement).
/// Kept as the equivalence oracle the backend tests compare against.
CnfSolveOutcome solve_cnf(const Cnf& cnf, SolverKind kind,
                          double timeout_s = -1,
                          int64_t conflict_budget = -1);

/// Detect XOR constraints encoded as full 2^(l-1)-clause groups over the
/// same variable set (sizes 2..max_len). Clauses are left in place; the
/// recovered XORs are returned.
std::vector<XorConstraint> recover_xors(const Cnf& cnf, size_t max_len = 4);

/// Append `x` to `cnf` as plain clauses, cutting constraints longer than
/// `cut` with fresh auxiliary variables (allocated from cnf.num_vars) to
/// bound the 2^(l-1) clause blow-up. The one XOR-to-CNF expansion, shared
/// by Solver::add_xor (without the native engine) and the dimacs-exec
/// backend's DIMACS writer.
void append_xor_as_clauses(Cnf& cnf, const XorConstraint& x, size_t cut = 5);

/// True iff `model` satisfies every clause and XOR of `cnf`.
bool model_satisfies(const Cnf& cnf, const std::vector<LBool>& model);

}  // namespace bosphorus::sat
