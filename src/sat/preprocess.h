// CNF preprocessing: subsumption, self-subsuming resolution and bounded
// variable elimination (BVE), in the style of SatELite / the inprocessing
// built into Lingeling. This provides the "high-performance, heavily
// preprocessing" solver configuration of the paper's Table II.
//
// Variable elimination changes the model, so the preprocessor records the
// clauses it deleted and can extend a model of the simplified formula back
// to a model of the original (extend_model).
#pragma once

#include <vector>

#include "sat/types.h"

namespace bosphorus::sat {

class Preprocessor {
public:
    struct Config {
        /// A variable is only eliminated if the number of non-tautological
        /// resolvents does not exceed #occurrences + grow.
        int grow = 0;
        /// Variables occurring more often than this are never eliminated.
        size_t max_occurrences = 40;
        /// Resolvents longer than this block elimination.
        size_t max_resolvent_len = 24;
        /// Maximum sweeps of (subsume, eliminate).
        int max_passes = 3;
    };

    Preprocessor() : Preprocessor(Config{}) {}
    explicit Preprocessor(Config cfg) : cfg_(cfg) {}

    /// Simplify in place. Returns false if the formula was proved UNSAT.
    /// Native XOR constraints, if any, are left untouched (their variables
    /// are frozen, i.e. excluded from elimination).
    bool simplify(Cnf& cnf);

    /// As simplify(cnf), additionally freezing every variable v with
    /// `extra_frozen[v]` true (indices beyond the vector are unfrozen).
    /// The streaming preprocessor uses this to restrict bounded variable
    /// elimination to variables whose every occurrence lies inside the
    /// current clause window; all other rules are unaffected.
    bool simplify(Cnf& cnf, const std::vector<bool>& extra_frozen);

    /// Extend a model of the simplified formula to the original variables.
    /// `model` must be indexed by variable and already contain values for
    /// all non-eliminated variables.
    void extend_model(std::vector<LBool>& model) const;

    size_t eliminated_vars() const { return elim_stack_.size(); }
    size_t subsumed_clauses() const { return subsumed_; }
    size_t strengthened_clauses() const { return strengthened_; }

private:
    struct ElimEntry {
        Var v;
        std::vector<std::vector<Lit>> clauses;  // all clauses mentioning v
    };

    Config cfg_;
    std::vector<ElimEntry> elim_stack_;
    size_t subsumed_ = 0;
    size_t strengthened_ = 0;
};

}  // namespace bosphorus::sat
