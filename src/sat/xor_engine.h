// Native XOR constraint reasoning for the CMS-like solver configuration.
//
// CryptoMiniSat attaches GF(2) linear constraints directly to the CDCL
// search and runs Gauss-Jordan elimination over them. We reproduce the two
// behaviours that matter for the paper's experiments:
//
//  1. A *level-0 Gauss-Jordan pass* over the whole XOR system (using the
//     gf2 matrix substrate) that detects inconsistency and derives implied
//     unit and equivalence facts before search begins.
//  2. *Watched-XOR unit propagation* during search: each row watches two
//     unassigned variables; when a row has a single unassigned variable left
//     its value is implied, and a fully assigned row with wrong parity is a
//     conflict. Reasons are materialised as clauses so the CDCL conflict
//     analysis works unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.h"

namespace bosphorus::sat {

class Solver;

class XorEngine {
public:
    explicit XorEngine(Solver& solver) : solver_(solver) {}

    /// Register a constraint. Constants (already-assigned vars) are fine;
    /// they are evaluated lazily against the trail.
    void add_xor(XorConstraint x);

    /// Grow internal per-variable structures.
    void ensure_num_vars(size_t n);

    /// Run Gauss-Jordan elimination over all rows at decision level 0.
    /// Derived units are enqueued into the solver; derived equivalences are
    /// added as binary clauses. Returns false on GF(2)-level inconsistency
    /// (0 = 1 row).
    bool gauss_jordan_level0();

    /// Propagate all XOR rows against the current assignment, starting from
    /// the solver's XOR queue head. Returns a conflicting row's reason
    /// clause via out_conflict (empty if no conflict). Implied literals are
    /// enqueued into the solver with materialised reason clauses.
    /// Returns false on conflict.
    bool propagate(std::vector<Lit>& out_conflict);

    size_t num_rows() const { return rows_.size(); }

    /// Reset the propagation cursor (after backtracking past watched state).
    void set_qhead(size_t q) { qhead_ = q; }
    size_t qhead() const { return qhead_; }

private:
    struct Row {
        std::vector<Var> vars;
        bool rhs = false;
    };

    /// Row status against the current trail.
    struct RowState {
        int unassigned = 0;
        Var last_unassigned = 0;
        bool parity_of_assigned = false;
    };
    RowState scan(const Row& row) const;

    /// Reason clause asserting `implied` given the other (assigned) vars of
    /// the row. If `implied_var` is out of the row (conflict case), pass
    /// the full row falsification.
    std::vector<Lit> reason_clause(const Row& row, Var implied_var,
                                   bool implied_value) const;

    Solver& solver_;
    std::vector<Row> rows_;
    std::vector<std::vector<uint32_t>> occ_;  // var -> row indices
    size_t qhead_ = 0;                        // cursor into solver trail
};

}  // namespace bosphorus::sat
