#include "sat/solve_cnf.h"

#include <algorithm>
#include <map>

#include "sat/preprocess.h"
#include "util/timer.h"

namespace bosphorus::sat {

const char* solver_kind_name(SolverKind kind) {
    switch (kind) {
        case SolverKind::kMinisatLike: return "minisat-like";
        case SolverKind::kLingelingLike: return "lingeling-like";
        case SolverKind::kCmsLike: return "cms-like";
    }
    return "?";
}

::bosphorus::Result<SolverKind> solver_kind_from_name(const std::string& name) {
    if (name == "minisat") return SolverKind::kMinisatLike;
    if (name == "lingeling") return SolverKind::kLingelingLike;
    if (name == "cms") return SolverKind::kCmsLike;
    return Status::invalid_argument(
        "unknown solver '" + name + "' (expected minisat, lingeling or cms)");
}

void append_xor_as_clauses(Cnf& cnf, const XorConstraint& x, size_t cut) {
    std::vector<Var> work = x.vars;
    const bool rhs = x.rhs;
    while (work.size() > cut) {
        // a ^ b ^ rest = rhs  ->  t = a ^ b;  t ^ rest = rhs
        const Var a = work[0], b = work[1];
        const Var t = cnf.new_var();
        // t ^ a ^ b = 0 as CNF: forbid the odd-parity assignments.
        cnf.add_clause({mk_lit(t, true), mk_lit(a, false), mk_lit(b, false)});
        cnf.add_clause({mk_lit(t, true), mk_lit(a, true), mk_lit(b, true)});
        cnf.add_clause({mk_lit(t, false), mk_lit(a, false), mk_lit(b, true)});
        cnf.add_clause({mk_lit(t, false), mk_lit(a, true), mk_lit(b, false)});
        work.erase(work.begin(), work.begin() + 2);
        work.insert(work.begin(), t);
    }
    const size_t l = work.size();
    if (l == 0) {
        if (rhs) cnf.add_clause({});  // 0 = 1: the empty clause
        return;
    }
    // Enumerate all assignments of the short XOR with the wrong parity.
    for (uint32_t bits = 0; bits < (1u << l); ++bits) {
        bool parity = false;
        for (size_t i = 0; i < l; ++i) parity ^= (bits >> i) & 1;
        if (parity == rhs) continue;  // satisfying assignment, allowed
        std::vector<Lit> clause;
        clause.reserve(l);
        for (size_t i = 0; i < l; ++i)
            clause.push_back(mk_lit(work[i], ((bits >> i) & 1) != 0));
        cnf.add_clause(std::move(clause));
    }
}

std::vector<XorConstraint> recover_xors(const Cnf& cnf, size_t max_len) {
    // Group clauses by their sorted variable set; a set of l variables
    // encodes an XOR iff exactly the 2^(l-1) clauses of one sign-parity are
    // all present.
    std::map<std::vector<Var>, std::vector<const std::vector<Lit>*>> groups;
    for (const auto& clause : cnf.clauses) {
        if (clause.size() < 2 || clause.size() > max_len) continue;
        std::vector<Var> vars;
        vars.reserve(clause.size());
        for (Lit l : clause) vars.push_back(l.var());
        std::sort(vars.begin(), vars.end());
        if (std::adjacent_find(vars.begin(), vars.end()) != vars.end())
            continue;  // duplicate var in clause
        groups[std::move(vars)].push_back(&clause);
    }

    std::vector<XorConstraint> xors;
    for (const auto& [vars, clauses] : groups) {
        const size_t l = vars.size();
        const size_t need = 1ull << (l - 1);
        if (clauses.size() < need) continue;
        // Partition by parity of the number of negated literals.
        for (int parity = 0; parity <= 1; ++parity) {
            // Collect the distinct sign patterns with this parity.
            std::vector<uint32_t> patterns;
            for (const auto* cl : clauses) {
                uint32_t pattern = 0;
                int negs = 0;
                for (Lit lit : *cl) {
                    const size_t pos =
                        std::lower_bound(vars.begin(), vars.end(), lit.var()) -
                        vars.begin();
                    if (lit.sign()) {
                        pattern |= 1u << pos;
                        ++negs;
                    }
                }
                if (negs % 2 == parity) patterns.push_back(pattern);
            }
            std::sort(patterns.begin(), patterns.end());
            patterns.erase(std::unique(patterns.begin(), patterns.end()),
                           patterns.end());
            if (patterns.size() == need) {
                // A clause with negated-literal parity p forbids an
                // assignment of parity p, so the XOR's rhs is p ^ 1.
                XorConstraint x;
                x.vars = vars;
                x.rhs = (parity ^ 1) != 0;
                xors.push_back(std::move(x));
            }
        }
    }
    return xors;
}

bool model_satisfies(const Cnf& cnf, const std::vector<LBool>& model) {
    auto lit_true = [&](Lit l) {
        if (l.var() >= model.size()) return false;
        return (model[l.var()] == LBool::kTrue) != l.sign();
    };
    for (const auto& clause : cnf.clauses) {
        bool sat = false;
        for (Lit l : clause) {
            if (lit_true(l)) { sat = true; break; }
        }
        if (!sat) return false;
    }
    for (const auto& x : cnf.xors) {
        bool parity = false;
        for (Var v : x.vars)
            parity ^= (v < model.size() && model[v] == LBool::kTrue);
        if (parity != x.rhs) return false;
    }
    return true;
}

CnfSolveOutcome solve_cnf(const Cnf& cnf, SolverKind kind, double timeout_s,
                       int64_t conflict_budget) {
    Timer timer;
    CnfSolveOutcome out;

    Cnf work = cnf;
    Preprocessor prep;
    if (kind == SolverKind::kLingelingLike) {
        if (!prep.simplify(work)) {
            out.result = Result::kUnsat;
            out.seconds = timer.seconds();
            return out;
        }
    }
    if (kind == SolverKind::kCmsLike && work.xors.empty()) {
        work.xors = recover_xors(work);
    }

    Solver::Config cfg;
    cfg.enable_xor = (kind == SolverKind::kCmsLike);
    Solver solver(cfg);
    if (!solver.load(work)) {
        out.result = Result::kUnsat;
        out.stats = solver.stats();
        out.seconds = timer.seconds();
        return out;
    }
    out.result = solver.solve(conflict_budget, timeout_s);
    out.stats = solver.stats();
    if (out.result == Result::kSat) {
        out.model = solver.model();
        out.model.resize(std::max(out.model.size(),
                                  static_cast<size_t>(cnf.num_vars)),
                         LBool::kFalse);
        if (kind == SolverKind::kLingelingLike) prep.extend_model(out.model);
        for (auto& v : out.model)
            if (v == LBool::kUndef) v = LBool::kFalse;
    }
    out.seconds = timer.seconds();
    return out;
}

}  // namespace bosphorus::sat
