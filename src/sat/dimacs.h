// DIMACS CNF reader/writer, with CryptoMiniSat-style "x" lines for native
// XOR constraints (e.g. "x1 2 -3 0" meaning x1 ^ x2 ^ x3 = 0 is written as
// an XOR clause x1 ^ x2 ^ ~x3 = 1).
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "bosphorus/status.h"
#include "sat/types.h"

namespace bosphorus::sat {

struct DimacsError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Parse a DIMACS CNF. Lines beginning with 'x' are XOR clauses: the listed
/// literals XOR to true (CryptoMiniSat convention).
Cnf read_dimacs(std::istream& in);
Cnf read_dimacs_from_string(const std::string& text);

/// Non-throwing variants: malformed text yields StatusCode::kParseError.
::bosphorus::Result<Cnf> try_read_dimacs(std::istream& in);
::bosphorus::Result<Cnf> try_read_dimacs_from_string(const std::string& text);

void write_dimacs(std::ostream& out, const Cnf& cnf);

}  // namespace bosphorus::sat
