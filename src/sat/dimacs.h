// DIMACS CNF reader/writer, with CryptoMiniSat-style "x" lines for native
// XOR constraints (e.g. "x1 2 -3 0" meaning x1 ^ x2 ^ x3 = 0 is written as
// an XOR clause x1 ^ x2 ^ ~x3 = 1).
//
// Parsing is built on the incremental tokenizer of
// src/stream/dimacs_tokenizer.h (shared with the out-of-core streaming
// preprocessor), so the whole-file readers here and the windowed streaming
// path reject the same malformed inputs with the same structured errors:
// literal/header overflow, clauses before or without a 'p cnf' header,
// unterminated clauses at EOF, negative-zero literals and stray bytes all
// fail loudly instead of silently truncating the formula. Clauses may span
// lines and the final line needs no trailing newline.
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "bosphorus/status.h"
#include "sat/types.h"

namespace bosphorus::sat {

struct DimacsError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Parse a DIMACS CNF. Lines beginning with 'x' are XOR clauses: the listed
/// literals XOR to true (CryptoMiniSat convention). Throws DimacsError on
/// malformed input.
Cnf read_dimacs(std::istream& in);
Cnf read_dimacs_from_string(const std::string& text);

/// Non-throwing variants: malformed text yields StatusCode::kParseError.
::bosphorus::Result<Cnf> try_read_dimacs(std::istream& in);
::bosphorus::Result<Cnf> try_read_dimacs_from_string(const std::string& text);

/// Fold the signs of an "x" line's raw literals into the constraint's rhs:
/// the listed literals XOR to true, so each negation flips the rhs over the
/// plain variables. Shared by read_dimacs and the streaming tokenizer's
/// consumers.
inline XorConstraint xor_from_dimacs_lits(const std::vector<Lit>& lits) {
    XorConstraint x;
    x.rhs = true;
    x.vars.reserve(lits.size());
    for (const Lit l : lits) {
        x.vars.push_back(l.var());
        if (l.sign()) x.rhs = !x.rhs;
    }
    return x;
}

void write_dimacs(std::ostream& out, const Cnf& cnf);

}  // namespace bosphorus::sat
