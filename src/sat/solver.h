// CDCL SAT solver with optional native XOR reasoning.
//
// This is the in-tree substitute for the three back-end solvers evaluated in
// the paper (MiniSat, Lingeling, CryptoMiniSat5). The core implements the
// standard modern CDCL loop: two-watched-literal propagation, first-UIP
// conflict analysis with recursive clause minimisation, EVSIDS branching,
// phase saving, Luby restarts and activity/LBD-based learnt-clause deletion.
//
// Two features matter specifically for Bosphorus:
//  * a *conflict budget* (the paper bounds the in-loop solver by conflicts,
//    not time, for replicability), and
//  * an API exposing learnt unit and binary clauses, which the Bosphorus
//    loop converts into ANF value/equivalence facts (the modification the
//    authors made to CryptoMiniSat 5.6.3).
//
// With Config::enable_xor set, native XOR constraints are propagated by a
// watched-XOR scheme and a level-0 Gauss-Jordan elimination pass (see
// xor_engine.h) -- the CryptoMiniSat-like configuration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sat/inprocess/clause_db.h"
#include "sat/inprocess/features.h"
#include "sat/inprocess/inprocess.h"
#include "sat/inprocess/vivifier.h"
#include "sat/types.h"
#include "util/timer.h"

namespace bosphorus::sat {

class XorEngine;

class Solver {
public:
    struct Config {
        bool enable_xor = false;      ///< native XOR propagation + level-0 GJE
        double var_decay = 0.95;      ///< EVSIDS decay factor
        double clause_decay = 0.999;  ///< learnt clause activity decay
        int restart_base = 100;       ///< Luby restart unit (conflicts)
        double learnt_growth = 1.1;   ///< legacy learnt DB cap growth
        int verbosity = 0;
        /// In-processing engine (vivification, tiered learnt DB, profile
        /// auto-reconfiguration). inprocess.enabled = false reproduces the
        /// legacy solver numerically.
        inprocess::InprocessConfig inprocess;
    };

    struct Stats {
        uint64_t conflicts = 0;
        uint64_t decisions = 0;
        uint64_t propagations = 0;
        uint64_t restarts = 0;
        uint64_t learnt_clauses = 0;
        uint64_t deleted_clauses = 0;
        uint64_t xor_propagations = 0;
        uint64_t vivified_literals = 0;  ///< literals removed by vivification
        uint64_t vivified_clauses = 0;   ///< clauses shrunk by vivification
        uint64_t vivify_passes = 0;      ///< vivification sweeps run
        uint64_t reconf_decisions = 0;   ///< auto profile switches applied
        uint64_t db_reductions = 0;      ///< tiered reduce sweeps
    };

    Solver() : Solver(Config{}) {}
    explicit Solver(Config cfg);
    ~Solver();

    Solver(const Solver&) = delete;
    Solver& operator=(const Solver&) = delete;

    Var new_var();
    size_t num_vars() const { return assigns_.size(); }

    /// Add a clause. Returns false if the formula became trivially UNSAT.
    bool add_clause(std::vector<Lit> lits);

    /// Add a native XOR constraint (only meaningful with Config::enable_xor;
    /// otherwise it is expanded into CNF clauses internally).
    bool add_xor(const XorConstraint& x);

    /// Load a whole CNF (creates variables as needed).
    bool load(const Cnf& cnf);

    /// Solve with an optional conflict budget (< 0: unbounded) and wall-clock
    /// timeout in seconds (< 0: none). kUnknown when a budget ran out.
    Result solve(int64_t conflict_budget = -1, double timeout_s = -1.0);

    /// Incremental solve under `assumptions`: each literal is enqueued as a
    /// pseudo-decision before real branching starts, so the search explores
    /// only assignments extending them. Returns kUnsat when the formula is
    /// unsatisfiable *under the assumptions*; okay() stays true in that case
    /// unless the formula is unsatisfiable outright. The solver remains
    /// reusable afterwards: clauses learnt in one call (always implied by
    /// the clause database alone, never by the assumptions) carry over to
    /// the next, which is what makes warm re-solves cheap.
    Result solve_assuming(const std::vector<Lit>& assumptions,
                          int64_t conflict_budget = -1,
                          double timeout_s = -1.0);

    bool okay() const { return ok_; }

    /// When the last solve_assuming call returned kUnsat with okay()
    /// still true: the assumption literal the clause database forced
    /// false (at most one entry -- the search stops at the first refuted
    /// assumption). NOTE this is a *subset* of the IPASIR "failed" set:
    /// assumptions enqueued earlier may have participated in forcing it
    /// and are not listed. Callers needing a sound failed set must treat
    /// every assumption of the refuted call as potentially involved (the
    /// backend adapters do exactly that). Empty after a SAT or
    /// outright-UNSAT call.
    const std::vector<Lit>& failed_assumptions() const {
        return failed_assumptions_;
    }

    /// Ask a running solve() to stop at its next poll point (it returns
    /// kUnknown). Safe to call from any thread; sticky until
    /// clear_interrupt(), so an interrupt that lands between solves still
    /// stops the next one.
    void interrupt() { interrupt_.store(true, std::memory_order_release); }
    /// Re-arm after interrupt(): subsequent solves run normally.
    void clear_interrupt() { interrupt_.store(false, std::memory_order_release); }
    /// True once interrupt() has been called and not yet cleared.
    bool interrupt_requested() const {
        return interrupt_.load(std::memory_order_acquire);
    }

    /// Install a callback polled periodically during solve(); returning
    /// true stops the search with kUnknown (the IPASIR terminate hook --
    /// this is how cancellation tokens reach a running solver). The
    /// callback runs on the solving thread; pass nullptr to remove.
    void set_terminate_callback(std::function<bool()> cb) {
        terminate_cb_ = std::move(cb);
    }

    /// After kSat: the satisfying assignment, indexed by variable.
    const std::vector<LBool>& model() const { return model_; }

    /// Learnt facts for Bosphorus: unit literals learnt (or implied at
    /// decision level 0) and learnt binary clauses, accumulated across all
    /// solve() calls. Units are bounded by the variable count (they live
    /// on the level-0 trail); binaries are deduplicated, so both lists
    /// stay bounded by the *distinct* facts even over the thousands of
    /// solve_assuming calls a long-lived Session makes.
    const std::vector<Lit>& learnt_units() const { return learnt_units_; }
    const std::vector<std::array<Lit, 2>>& learnt_binaries() const {
        return learnt_binaries_;
    }

    const Stats& stats() const { return stats_; }

    /// Current value of a literal under the partial assignment.
    LBool value(Lit l) const { return assigns_[l.var()] ^ l.sign(); }
    LBool value(Var v) const { return assigns_[v]; }

    // ---- in-processing observability / test hooks ----------------------

    /// Live per-tier learnt clause counts (all zero when in-processing is
    /// disabled: the legacy DB is untiered).
    inprocess::ClauseDbManager::TierCounts db_tier_counts() const {
        return db_mgr_ ? db_mgr_->tier_counts()
                       : inprocess::ClauseDbManager::TierCounts{};
    }

    /// The profile in effect after the last solve call resolved kAuto
    /// (kFixed before any solve, or when in-processing is disabled).
    inprocess::ProfileId active_profile() const { return active_profile_; }

    /// Tier-policy diagnostics; both must stay 0 (the deletion policy
    /// never even *attempts* to delete glue or reason-locked clauses).
    uint64_t db_glue_delete_vetoes() const {
        return db_mgr_ ? db_mgr_->glue_delete_vetoes() : 0;
    }
    uint64_t db_locked_delete_vetoes() const {
        return db_mgr_ ? db_mgr_->locked_delete_vetoes() : 0;
    }

    /// Structural clause-database invariants, checkable at any consistent
    /// point (conflict/decision boundaries; this is what the terminate
    /// callback sees): clause lists hold no deleted clauses, every listed
    /// clause is watched on exactly its first two literals, reasons of
    /// assigned variables above level 0 are live with the implied literal
    /// first, and the tier counts match a full recount.
    bool check_db_invariants() const;

    /// Force one reduction sweep now (tiered when in-processing is on,
    /// legacy reduce_db otherwise). Test hook.
    void debug_force_reduce();

    /// Force one vivification pass with the given budget (no-op returning
    /// empty stats when in-processing is disabled). Test hook.
    inprocess::Vivifier::PassStats debug_force_vivify(
        uint64_t propagation_budget);

private:
    friend class XorEngine;
    friend class inprocess::Vivifier;
    friend class inprocess::ClauseDbManager;
    friend struct inprocess::InstanceFeatures;

    // ---- clause storage ----------------------------------------------
    struct Clause {
        std::vector<Lit> lits;
        float activity = 0.0f;
        uint32_t lbd = 0;
        bool learnt = false;
        bool deleted = false;
        // In-processing bookkeeping. tier is kUntracked for clauses the
        // ClauseDbManager does not manage (problem clauses, XOR
        // conflict/reason clauses, everything when in-processing is off).
        uint8_t tier = inprocess::kUntracked;
        uint8_t used = 0;  ///< participated in a conflict since last reduce
        uint8_t idle = 0;  ///< reductions spent unused in the mid tier
    };
    using CRef = int32_t;
    static constexpr CRef kNoReason = -1;

    struct Watcher {
        CRef cref;
        Lit blocker;
    };

    // ---- in-processing --------------------------------------------------
    /// True when the in-processing engine owns the learnt DB.
    bool inprocessing_on() const { return db_mgr_ != nullptr; }
    /// Install a named profile's (or kFixed: the Config's) knobs as the
    /// effective search parameters and tier cuts.
    void apply_profile(inprocess::ProfileId id);
    /// One budgeted vivification sweep, folding pass stats into stats_.
    void run_vivify_pass();
    /// Enough conflicts since the last pass to be worth another one?
    bool vivify_due() const;
    /// Recompute the LBD of a fully assigned clause (analyze-time hook).
    uint32_t clause_lbd(const Clause& c);

    // ---- search -------------------------------------------------------
    CRef propagate();
    void analyze(CRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
                 uint32_t& out_lbd);
    bool lit_redundant(Lit l, uint32_t abstract_levels);
    void cancel_until(int level);
    Lit pick_branch_lit();
    void record_learnt_fact(const std::vector<Lit>& clause);
    double luby(double y, int i) const;
    void reduce_db();

    // ---- assignment ----------------------------------------------------
    void enqueue(Lit l, CRef reason);
    /// Level-0 assignment of v := val; flags UNSAT on contradiction.
    void enqueue_or_check(Var v, bool val);
    int decision_level() const { return static_cast<int>(trail_lim_.size()); }
    int level(Var v) const { return var_level_[v]; }

    // ---- activity -------------------------------------------------------
    void var_bump(Var v);
    void var_decay_all();
    void cla_bump(Clause& c);
    void insert_var_order(Var v);

    // ---- heap (max-heap on activity, tie-break on index) ----------------
    void heap_up(size_t i);
    void heap_down(size_t i);
    bool heap_lt(Var a, Var b) const;

    CRef alloc_clause(std::vector<Lit> lits, bool learnt);
    void attach_clause(CRef cr);
    void detach_clause(CRef cr);
    void remove_clause(CRef cr);

    Config cfg_;
    Stats stats_;
    bool ok_ = true;

    std::vector<Clause> clauses_;        // arena; CRef indexes into this
    std::vector<CRef> problem_clauses_;  // original clauses
    std::vector<CRef> learnts_;          // learnt clauses

    std::vector<std::vector<Watcher>> watches_;  // indexed by Lit raw
    std::vector<LBool> assigns_;                 // by var
    std::vector<bool> polarity_;                 // phase saving, by var
    std::vector<int> var_level_;                 // by var
    std::vector<CRef> var_reason_;               // by var
    std::vector<double> activity_;               // by var
    double var_inc_ = 1.0;
    double cla_inc_ = 1.0;

    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    size_t qhead_ = 0;

    std::vector<Var> heap_;       // binary max-heap of decision candidates
    std::vector<int> heap_pos_;   // by var; -1 if absent

    // analyze() scratch
    std::vector<uint8_t> seen_;
    std::vector<Lit> analyze_stack_;
    std::vector<Lit> analyze_clear_;

    std::vector<LBool> model_;
    std::vector<Lit> failed_assumptions_;  // refuted by the last solve call
    std::atomic<bool> interrupt_{false};
    std::function<bool()> terminate_cb_;
    std::vector<Lit> learnt_units_;
    size_t units_reported_ = 0;  // trail prefix already exported as units
    std::vector<std::array<Lit, 2>> learnt_binaries_;
    // Dedup for learnt_binaries_ (normalised lit pair -> already recorded).
    std::unordered_set<uint64_t> binaries_seen_;

    double max_learnts_ = 0;  // legacy (in-processing off) learnt DB cap

    // ---- in-processing state --------------------------------------------
    std::unique_ptr<inprocess::ClauseDbManager> db_mgr_;  // null = disabled
    std::unique_ptr<inprocess::Vivifier> vivifier_;
    inprocess::ProfileId active_profile_ = inprocess::ProfileId::kFixed;
    bool profile_applied_ = false;  // first application is not a "reconf"
    // Effective search knobs: the active profile's values, or the Config
    // values verbatim under kFixed / disabled in-processing.
    double eff_var_decay_;
    double eff_clause_decay_;
    int eff_restart_base_;
    uint64_t eff_vivify_budget_;
    uint32_t eff_vivify_interval_;
    // Opening-window LBD observation of the current call, and the carry
    // from the previous call (feeds the next static profile selection).
    uint64_t window_lbd_sum_ = 0;
    uint32_t window_lbd_count_ = 0;
    bool window_reconf_done_ = false;
    double prev_window_lbd_ = 0.0;
    inprocess::InstanceFeatures feat_;  // cached per call for the mid-solve rule
    uint64_t solve_calls_ = 0;
    uint64_t last_vivify_conflicts_ = 0;  // conflict count at the last pass
    // clause_lbd() scratch: per-decision-level stamps.
    std::vector<uint64_t> level_stamp_;
    uint64_t lbd_stamp_ = 0;

    std::unique_ptr<XorEngine> xor_engine_;
};

}  // namespace bosphorus::sat
