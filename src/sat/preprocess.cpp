#include "sat/preprocess.h"

#include <algorithm>
#include <cstdint>

namespace bosphorus::sat {

namespace {

/// 64-bit clause signature for fast subsumption pre-filtering: bit
/// (var mod 64) set for every variable in the clause. C subsumes D only if
/// sig(C) & ~sig(D) == 0.
uint64_t signature(const std::vector<Lit>& clause) {
    uint64_t sig = 0;
    for (Lit l : clause) sig |= 1ULL << (l.var() % 64);
    return sig;
}

/// True iff `small` is a sub-multiset of `big` (both sorted).
bool subsumes(const std::vector<Lit>& small, const std::vector<Lit>& big) {
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

/// If resolving `a` and `b` on pivot literal (present positively in a,
/// negated in b) yields a non-tautological resolvent, write it to `out` and
/// return true.
bool resolve(const std::vector<Lit>& a, const std::vector<Lit>& b, Var pivot,
             std::vector<Lit>& out) {
    out.clear();
    for (Lit l : a)
        if (l.var() != pivot) out.push_back(l);
    for (Lit l : b)
        if (l.var() != pivot) out.push_back(l);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    for (size_t i = 0; i + 1 < out.size(); ++i) {
        if (out[i].var() == out[i + 1].var()) return false;  // tautology
    }
    return true;
}

}  // namespace

bool Preprocessor::simplify(Cnf& cnf) { return simplify(cnf, {}); }

bool Preprocessor::simplify(Cnf& cnf,
                            const std::vector<bool>& extra_frozen) {
    // Working copy with alive flags and occurrence lists.
    std::vector<std::vector<Lit>> cls = cnf.clauses;
    std::vector<bool> alive(cls.size(), true);
    for (auto& c : cls) {
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
    }

    // Frozen variables: those in XOR constraints must survive elimination,
    // plus whatever the caller pins (window-incomplete variables in the
    // streaming path).
    std::vector<bool> frozen(cnf.num_vars, false);
    for (const auto& x : cnf.xors)
        for (Var v : x.vars) frozen[v] = true;
    for (Var v = 0; v < cnf.num_vars && v < extra_frozen.size(); ++v)
        if (extra_frozen[v]) frozen[v] = true;

    // Fixed values derived by unit propagation at this level.
    std::vector<LBool> fixed(cnf.num_vars, LBool::kUndef);

    auto occ_build = [&](std::vector<std::vector<uint32_t>>& occ) {
        occ.assign(2 * cnf.num_vars, {});
        for (uint32_t i = 0; i < cls.size(); ++i) {
            if (!alive[i]) continue;
            for (Lit l : cls[i]) occ[l.raw()].push_back(i);
        }
    };

    // --- top-level unit propagation --------------------------------------
    auto propagate_units = [&]() -> bool {
        bool changed = true;
        while (changed) {
            changed = false;
            for (uint32_t i = 0; i < cls.size(); ++i) {
                if (!alive[i]) continue;
                std::vector<Lit>& c = cls[i];
                size_t out = 0;
                bool satisfied = false;
                for (Lit l : c) {
                    const LBool fv = fixed[l.var()];
                    if (fv == LBool::kUndef) {
                        c[out++] = l;
                    } else if ((fv == LBool::kTrue) != l.sign()) {
                        satisfied = true;
                        break;
                    }  // else: literal false, drop it
                }
                if (satisfied) {
                    alive[i] = false;
                    changed = true;
                    continue;
                }
                if (out != c.size()) {
                    c.resize(out);
                    changed = true;
                }
                if (c.empty()) return false;
                if (c.size() == 1) {
                    const Lit u = c[0];
                    const LBool want = lbool_from(!u.sign());
                    if (fixed[u.var()] == LBool::kUndef) {
                        fixed[u.var()] = want;
                        changed = true;
                    } else if (fixed[u.var()] != want) {
                        return false;
                    }
                }
            }
        }
        return true;
    };

    for (int pass = 0; pass < cfg_.max_passes; ++pass) {
        bool any_change = false;
        if (!propagate_units()) return false;

        std::vector<std::vector<uint32_t>> occ;
        occ_build(occ);
        std::vector<uint64_t> sigs(cls.size(), 0);
        for (uint32_t i = 0; i < cls.size(); ++i)
            if (alive[i]) sigs[i] = signature(cls[i]);

        // --- forward subsumption + self-subsuming resolution -------------
        for (uint32_t i = 0; i < cls.size(); ++i) {
            if (!alive[i] || cls[i].empty()) continue;
            // Search candidates through the least-occurring literal.
            Lit best = cls[i][0];
            for (Lit l : cls[i])
                if (occ[l.raw()].size() < occ[best.raw()].size()) best = l;
            for (uint32_t j : occ[best.raw()]) {
                if (j == i || !alive[j] || !alive[i]) continue;
                if (sigs[i] & ~sigs[j]) continue;
                if (cls[i].size() > cls[j].size()) continue;
                if (subsumes(cls[i], cls[j])) {
                    alive[j] = false;
                    ++subsumed_;
                    any_change = true;
                }
            }
            // Self-subsumption: C = A + l, D ⊇ A + ~l  =>  remove ~l from D.
            for (Lit l : cls[i]) {
                std::vector<Lit> with_neg = cls[i];
                std::replace(with_neg.begin(), with_neg.end(), l, ~l);
                std::sort(with_neg.begin(), with_neg.end());
                for (uint32_t j : occ[(~l).raw()]) {
                    if (j == i || !alive[j]) continue;
                    if (cls[j].size() < cls[i].size()) continue;
                    if (subsumes(with_neg, cls[j])) {
                        auto& d = cls[j];
                        d.erase(std::find(d.begin(), d.end(), ~l));
                        sigs[j] = signature(d);
                        ++strengthened_;
                        any_change = true;
                        if (d.size() <= 1) break;  // handled by unit pass
                    }
                }
            }
        }

        if (!propagate_units()) return false;
        occ_build(occ);

        // --- bounded variable elimination ---------------------------------
        for (Var v = 0; v < cnf.num_vars; ++v) {
            if (frozen[v] || fixed[v] != LBool::kUndef) continue;
            auto& pos = occ[mk_lit(v, false).raw()];
            auto& neg = occ[mk_lit(v, true).raw()];
            // Refresh alive-ness.
            auto live_count = [&](std::vector<uint32_t>& lst) {
                size_t n = 0;
                for (uint32_t idx : lst)
                    if (alive[idx]) ++n;
                return n;
            };
            const size_t np = live_count(pos), nn = live_count(neg);
            if (np + nn == 0 || np + nn > cfg_.max_occurrences) continue;

            // Count resolvents.
            std::vector<std::vector<Lit>> resolvents;
            bool blocked = false;
            std::vector<Lit> tmp;
            for (uint32_t ip : pos) {
                if (!alive[ip]) continue;
                for (uint32_t in : neg) {
                    if (!alive[in]) continue;
                    if (resolve(cls[ip], cls[in], v, tmp)) {
                        if (tmp.empty()) return false;  // empty resolvent
                        if (tmp.size() > cfg_.max_resolvent_len) {
                            blocked = true;
                            break;
                        }
                        resolvents.push_back(tmp);
                        if (resolvents.size() >
                            np + nn + static_cast<size_t>(cfg_.grow)) {
                            blocked = true;
                            break;
                        }
                    }
                }
                if (blocked) break;
            }
            if (blocked) continue;

            // Eliminate: record original clauses, swap in resolvents.
            ElimEntry entry;
            entry.v = v;
            for (uint32_t idx : pos) {
                if (!alive[idx]) continue;
                entry.clauses.push_back(cls[idx]);
                alive[idx] = false;
            }
            for (uint32_t idx : neg) {
                if (!alive[idx]) continue;
                entry.clauses.push_back(cls[idx]);
                alive[idx] = false;
            }
            elim_stack_.push_back(std::move(entry));
            for (auto& r : resolvents) {
                const uint32_t idx = static_cast<uint32_t>(cls.size());
                for (Lit l : r) occ[l.raw()].push_back(idx);
                sigs.push_back(signature(r));
                cls.push_back(std::move(r));
                alive.push_back(true);
            }
            any_change = true;
        }

        if (!propagate_units()) return false;
        if (!any_change) break;
    }

    // Emit the simplified formula: fixed values become unit clauses.
    std::vector<std::vector<Lit>> out;
    for (uint32_t i = 0; i < cls.size(); ++i) {
        if (alive[i] && !cls[i].empty()) out.push_back(cls[i]);
    }
    for (Var v = 0; v < cnf.num_vars; ++v) {
        if (fixed[v] != LBool::kUndef)
            out.push_back({mk_lit(v, fixed[v] == LBool::kFalse)});
    }
    cnf.clauses = std::move(out);
    return true;
}

void Preprocessor::extend_model(std::vector<LBool>& model) const {
    auto lit_true = [&](Lit l) {
        const LBool v = l.var() < model.size() ? model[l.var()] : LBool::kUndef;
        if (v == LBool::kUndef) return false;  // treat undef as false
        return (v == LBool::kTrue) != l.sign();
    };
    for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
        // Default the variable to false; flip to true iff some clause with
        // the positive literal is otherwise unsatisfied. (At most one
        // polarity can be forced: otherwise a resolvent, which the model
        // satisfies, would be falsified.)
        bool value = false;
        for (const auto& clause : it->clauses) {
            bool has_pos = false;
            bool satisfied_by_others = false;
            for (Lit l : clause) {
                if (l.var() == it->v) {
                    if (!l.sign()) has_pos = true;
                } else if (lit_true(l)) {
                    satisfied_by_others = true;
                    break;
                }
            }
            if (has_pos && !satisfied_by_others) {
                value = true;
                break;
            }
        }
        if (it->v >= model.size()) model.resize(it->v + 1, LBool::kUndef);
        model[it->v] = lbool_from(value);
    }
}

}  // namespace bosphorus::sat
