#include "sat/xor_engine.h"

#include <unordered_map>

#include "gf2/gf2_matrix.h"
#include "sat/solver.h"

namespace bosphorus::sat {

void XorEngine::add_xor(XorConstraint x) {
    const uint32_t idx = static_cast<uint32_t>(rows_.size());
    Row row;
    row.vars = std::move(x.vars);
    row.rhs = x.rhs;
    for (Var v : row.vars) {
        if (occ_.size() <= v) occ_.resize(v + 1);
        occ_[v].push_back(idx);
    }
    rows_.push_back(std::move(row));
}

void XorEngine::ensure_num_vars(size_t n) {
    if (occ_.size() < n) occ_.resize(n);
}

XorEngine::RowState XorEngine::scan(const Row& row) const {
    RowState st;
    for (Var v : row.vars) {
        const LBool val = solver_.value(v);
        if (val == LBool::kUndef) {
            ++st.unassigned;
            st.last_unassigned = v;
        } else {
            st.parity_of_assigned ^= (val == LBool::kTrue);
        }
    }
    return st;
}

std::vector<Lit> XorEngine::reason_clause(const Row& row, Var implied_var,
                                          bool implied_value) const {
    std::vector<Lit> clause;
    clause.reserve(row.vars.size());
    // The implied literal goes first (CDCL reason-clause convention).
    clause.push_back(mk_lit(implied_var, !implied_value));
    for (Var v : row.vars) {
        if (v == implied_var) continue;
        // Push the literal that is false under the current assignment.
        clause.push_back(mk_lit(v, solver_.value(v) == LBool::kTrue));
    }
    return clause;
}

bool XorEngine::gauss_jordan_level0() {
    if (rows_.empty()) return true;

    // Column space: only variables that occur in some XOR, plus the
    // right-hand-side column at the end.
    std::unordered_map<Var, size_t> col_of;
    std::vector<Var> var_of_col;
    for (const auto& row : rows_) {
        for (Var v : row.vars) {
            if (col_of.emplace(v, var_of_col.size()).second)
                var_of_col.push_back(v);
        }
    }
    const size_t ncols = var_of_col.size() + 1;
    const size_t rhs_col = var_of_col.size();

    gf2::Matrix m(rows_.size(), ncols);
    for (size_t r = 0; r < rows_.size(); ++r) {
        for (Var v : rows_[r].vars) m.flip(r, col_of[v]);
        if (rows_[r].rhs) m.flip(r, rhs_col);
        // Fold in variables already assigned at level 0.
        // (Handled implicitly: units derived below re-propagate.)
    }
    m.rref();

    for (size_t r = 0; r < m.rows(); ++r) {
        size_t weight = 0;
        Var v1 = 0, v2 = 0;
        for (size_t c = 0; c < rhs_col && weight <= 2; ++c) {
            if (m.get(r, c)) {
                if (weight == 0) v1 = var_of_col[c];
                else if (weight == 1) v2 = var_of_col[c];
                ++weight;
            }
        }
        const bool rhs = m.get(r, rhs_col);
        if (weight == 0) {
            if (rhs) return false;  // 0 = 1
        } else if (weight == 1) {
            solver_.enqueue_or_check(v1, rhs);
            if (!solver_.okay()) return false;
        } else if (weight == 2) {
            // v1 ^ v2 = rhs: an (in)equivalence, added as two binaries.
            // rhs = 0: v1 == v2;  rhs = 1: v1 == !v2.
            if (!solver_.add_clause({mk_lit(v1, false), mk_lit(v2, !rhs)}))
                return false;
            if (!solver_.add_clause({mk_lit(v1, true), mk_lit(v2, rhs)}))
                return false;
        }
    }
    return solver_.okay();
}

bool XorEngine::propagate(std::vector<Lit>& out_conflict) {
    out_conflict.clear();
    while (qhead_ < solver_.trail_.size()) {
        const Var v = solver_.trail_[qhead_++].var();
        if (v >= occ_.size()) continue;
        for (const uint32_t ri : occ_[v]) {
            const Row& row = rows_[ri];
            const RowState st = scan(row);
            if (st.unassigned == 0) {
                if (st.parity_of_assigned != row.rhs) {
                    // Fully assigned, wrong parity: conflict. Every literal
                    // in the conflict clause is false right now.
                    for (Var u : row.vars) {
                        out_conflict.push_back(
                            mk_lit(u, solver_.value(u) == LBool::kTrue));
                    }
                    return false;
                }
            } else if (st.unassigned == 1) {
                const bool val = row.rhs ^ st.parity_of_assigned;
                std::vector<Lit> reason =
                    reason_clause(row, st.last_unassigned, val);
                const Solver::CRef cr =
                    solver_.alloc_clause(std::move(reason), /*learnt=*/true);
                solver_.enqueue(mk_lit(st.last_unassigned, !val), cr);
                ++solver_.stats_.xor_propagations;
            }
        }
    }
    return true;
}

}  // namespace bosphorus::sat
