// Clause vivification (distillation) at restart boundaries -- the
// clausevivifier.cpp shape under a propagation budget.
//
// For a clause C = (l1 | ... | ln) temporarily detached from the
// database, the negations of its literals are enqueued one at a time as
// pseudo-decisions. Three things can happen while walking the literals:
//  * some li is already falsified by the previous assumptions: li is
//    redundant and is dropped;
//  * some li is already satisfied: C is implied by the prefix up to and
//    including li, so the tail is dropped;
//  * propagation conflicts: the prefix disjunction is itself implied by
//    the rest of the formula, so C shrinks to the prefix.
// The replacement clause is implied by F \ {C} in every case, so the
// rewrite preserves the model set exactly -- safe for warm Session
// solvers and for the learnt-fact export (a vivified unit simply lands
// on the level-0 trail and is exported through the normal cursor).
//
// Passes resume round-robin from a persistent cursor, so repeated calls
// at successive restarts cover the whole database even under a small
// per-pass budget. Learnt clauses are visited before irredundant ones.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bosphorus::sat {
class Solver;
}  // namespace bosphorus::sat

namespace bosphorus::sat::inprocess {

class Vivifier {
public:
    struct PassStats {
        uint64_t clauses_examined = 0;
        uint64_t clauses_shrunk = 0;    ///< rewritten with fewer literals
        uint64_t literals_removed = 0;  ///< total literals dropped
        uint64_t clauses_deleted = 0;   ///< proved satisfied at level 0
        uint64_t units_derived = 0;     ///< collapsed to level-0 units
        uint64_t propagations_used = 0;
    };

    /// One budgeted pass over the database. Requires decision level 0 and
    /// no conflict in flight; returns with the solver back at level 0.
    /// May derive level-0 units (exported as learnt facts) or set
    /// s.ok_ = false when the formula is refuted outright.
    PassStats run(Solver& s, uint64_t propagation_budget,
                  uint32_t max_clause_size, bool include_irredundant);

private:
    /// Vivify one clause in place. Returns false when the budget expired
    /// before the clause was finished (the clause is left unchanged).
    bool vivify_one(Solver& s, int32_t cref, uint64_t prop_budget_end,
                    PassStats& stats);

    /// Delete a clause from the database with tier bookkeeping. Works
    /// whether or not the clause is still attached.
    static void drop_clause(Solver& s, int32_t cref);

    // Round-robin cursors into Solver::learnts_ / problem_clauses_.
    size_t learnt_cursor_ = 0;
    size_t irred_cursor_ = 0;
};

}  // namespace bosphorus::sat::inprocess
