// Cheap instance features feeding the profile decision rule.
//
// Everything here is O(formula size) or cheaper and fully deterministic:
// counts, the vars/clauses ratio, XOR density, a coarse clause-size
// histogram, plus one *dynamic* feature -- the average LBD of the first
// window of learnt clauses -- that the solver folds in after the opening
// conflicts of a call, so warm re-solves adapt to how the search is
// actually behaving, not just to how the formula looks.
#pragma once

#include <cstddef>

#include "sat/types.h"

namespace bosphorus::sat {
class Solver;
}  // namespace bosphorus::sat

namespace bosphorus::sat::inprocess {

struct InstanceFeatures {
    size_t num_vars = 0;
    size_t num_clauses = 0;  ///< irredundant clauses (XORs not included)
    size_t num_xors = 0;     ///< native XOR rows

    double clause_var_ratio = 0.0;  ///< (clauses + xors) / vars
    double xor_density = 0.0;       ///< xors / (clauses + xors)
    double mean_clause_size = 0.0;  ///< over irredundant clauses

    // Clause-size histogram, as fractions of the irredundant clauses.
    double frac_binary = 0.0;   ///< size == 2
    double frac_ternary = 0.0;  ///< size == 3
    double frac_long = 0.0;     ///< size >= 7

    /// Mean LBD over the first window (inprocess window_lbd_conflicts) of
    /// learnt clauses of the current solve call; 0 until observed. The
    /// solver fills this in and re-runs the decision rule once per call.
    double avg_first_window_lbd = 0.0;

    /// Extract the static features from a loaded solver (its irredundant
    /// clause list and XOR engine). `avg_first_window_lbd` is left 0.
    static InstanceFeatures extract(const Solver& s);

    /// Extract the static features from a CNF container (used by tests
    /// and offline tools; mirrors extract() exactly).
    static InstanceFeatures from_cnf(const Cnf& cnf);
};

}  // namespace bosphorus::sat::inprocess
