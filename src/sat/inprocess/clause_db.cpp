#include "sat/inprocess/clause_db.h"

#include <algorithm>
#include <vector>

#include "sat/solver.h"

namespace bosphorus::sat::inprocess {

ClauseDbManager::ClauseDbManager(const InprocessConfig& cfg) : cfg_(cfg) {}

ClauseDbManager::~ClauseDbManager() {
    // Unregister this solver's share of the global tier gauges.
    auto& g = counters();
    g.tier_core.fetch_sub(static_cast<int64_t>(published_.core),
                          std::memory_order_relaxed);
    g.tier_mid.fetch_sub(static_cast<int64_t>(published_.mid),
                         std::memory_order_relaxed);
    g.tier_local.fetch_sub(static_cast<int64_t>(published_.local),
                           std::memory_order_relaxed);
}

Tier ClauseDbManager::classify(uint32_t lbd) const {
    if (lbd <= cfg_.core_lbd_cut) return kCore;
    if (lbd <= cfg_.mid_lbd_cut) return kMid;
    return kLocal;
}

namespace {
size_t& tier_slot(ClauseDbManager::TierCounts& tc, Tier t) {
    switch (t) {
        case kCore: return tc.core;
        case kMid: return tc.mid;
        default: return tc.local;
    }
}
}  // namespace

void ClauseDbManager::on_learnt(uint32_t lbd) {
    ++tier_slot(counts_, classify(lbd));
}

Tier ClauseDbManager::on_lbd_improved(Tier old_tier, uint32_t new_lbd) {
    const Tier nt = classify(new_lbd);
    if (nt >= old_tier) return old_tier;  // promote only, never demote here
    --tier_slot(counts_, old_tier);
    ++tier_slot(counts_, nt);
    return nt;
}

Tier ClauseDbManager::on_vivified(Tier old_tier, uint32_t new_lbd) {
    return on_lbd_improved(old_tier, new_lbd);
}

void ClauseDbManager::on_removed(Tier tier) { --tier_slot(counts_, tier); }

bool ClauseDbManager::should_reduce(size_t problem_clauses) {
    if (local_cap_ <= 0) {
        // Seeded once with the legacy formula; unlike the legacy cap it is
        // never reset on subsequent solve calls.
        local_cap_ = std::max(static_cast<double>(problem_clauses) / 3.0,
                              static_cast<double>(cfg_.local_cap_min));
    }
    return static_cast<double>(counts_.local) >= local_cap_;
}

void ClauseDbManager::reduce(Solver& s) {
    ++reductions_;
    ++s.stats_.db_reductions;
    counters().db_reductions.fetch_add(1, std::memory_order_relaxed);

    // Pass 1: tier maintenance. Survivors of the local tier that were
    // used since the last reduction move up to mid; mid clauses that sat
    // idle too long drop back to local. Core is permanent.
    for (const Solver::CRef cr : s.learnts_) {
        Solver::Clause& c = s.clauses_[cr];
        if (c.deleted) continue;
        if (c.tier == kMid) {
            if (c.used) {
                c.idle = 0;
            } else if (++c.idle > cfg_.mid_idle_limit) {
                c.tier = kLocal;
                c.idle = 0;
                --counts_.mid;
                ++counts_.local;
            }
        } else if (c.tier == kLocal && c.used) {
            c.tier = kMid;
            c.idle = 0;
            --counts_.local;
            ++counts_.mid;
        }
        c.used = 0;
    }

    // Pass 2: delete the worst-ranked half of the local tier. Ranking is
    // (LBD desc, activity asc, cref asc) -- fully deterministic.
    std::vector<Solver::CRef> cand;
    for (const Solver::CRef cr : s.learnts_) {
        const Solver::Clause& c = s.clauses_[cr];
        if (!c.deleted && c.tier == kLocal) cand.push_back(cr);
    }
    std::sort(cand.begin(), cand.end(),
              [&s](Solver::CRef a, Solver::CRef b) {
                  const Solver::Clause& ca = s.clauses_[a];
                  const Solver::Clause& cb = s.clauses_[b];
                  if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
                  if (ca.activity != cb.activity)
                      return ca.activity < cb.activity;
                  return a < b;
              });
    const size_t target = cand.size() / 2;
    size_t removed = 0;
    for (const Solver::CRef cr : cand) {
        if (removed >= target) break;
        Solver::Clause& c = s.clauses_[cr];
        // Backstop protections. The tier policy keeps glue (LBD <= 2,
        // which classify() places in core under any sane cut) out of the
        // local tier entirely, so these vetoes must never fire -- the
        // invariant tests pin both counters to 0.
        if (c.lbd <= 2 || c.lits.size() <= 2) {
            ++glue_vetoes_;
            continue;
        }
        const bool locked = !c.lits.empty() &&
                            s.var_reason_[c.lits[0].var()] == cr &&
                            s.value(c.lits[0]) == LBool::kTrue;
        if (locked) {
            ++locked_vetoes_;
            continue;
        }
        s.remove_clause(cr);
        --counts_.local;
        ++removed;
    }

    // Compact the learnt list (reduce() is the only place local-tier
    // clauses die in bulk; vivification deletions are compacted by the
    // vivifier itself).
    std::vector<Solver::CRef> kept;
    kept.reserve(s.learnts_.size() - removed);
    for (const Solver::CRef cr : s.learnts_) {
        if (!s.clauses_[cr].deleted) kept.push_back(cr);
    }
    s.learnts_ = std::move(kept);

    local_cap_ *= cfg_.local_cap_growth;
    publish_gauges();
}

void ClauseDbManager::apply_profile(const SolverProfile& p) {
    cfg_.core_lbd_cut = p.core_lbd_cut;
    cfg_.mid_lbd_cut = p.mid_lbd_cut;
    cfg_.local_cap_growth = p.local_cap_growth;
}

void ClauseDbManager::publish_gauges() {
    auto& g = counters();
    g.tier_core.fetch_add(static_cast<int64_t>(counts_.core) -
                              static_cast<int64_t>(published_.core),
                          std::memory_order_relaxed);
    g.tier_mid.fetch_add(static_cast<int64_t>(counts_.mid) -
                             static_cast<int64_t>(published_.mid),
                         std::memory_order_relaxed);
    g.tier_local.fetch_add(static_cast<int64_t>(counts_.local) -
                               static_cast<int64_t>(published_.local),
                           std::memory_order_relaxed);
    published_ = counts_;
}

}  // namespace bosphorus::sat::inprocess
