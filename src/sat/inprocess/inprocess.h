// In-processing engine for the native CDCL core -- configuration and the
// process-global observability counters.
//
// The subsystem has three legs, mirroring CryptoMiniSat's in-processing
// stack:
//  * Vivifier (vivifier.h): strengthens/shrinks clauses at restart
//    boundaries under a propagation budget (clausevivifier.cpp).
//  * ClauseDbManager (clause_db.h): a three-tier core/mid/local learnt-DB
//    policy with glue protection, survival promotion and a *persistent*
//    cap, so clause management carries across warm Session::solve calls
//    instead of resetting per call (reducedb.cpp).
//  * profiles.h/features.h: ~4 named configurations picked per solve by a
//    hand-rolled feature rule (the scripts/reconf.py shape, no ML).
//
// Everything is deterministic: given (formula, config, call sequence) the
// vivification passes, reductions and reconfiguration decisions replay
// bit-for-bit, which keeps the warm-vs-cold differential gates of
// bench_incremental meaningful.
#pragma once

#include <atomic>
#include <cstdint>

#include "sat/inprocess/profiles.h"

namespace bosphorus::sat::inprocess {

/// All in-processing knobs, embedded in Solver::Config. The defaults are
/// the kBalanced profile's values; named profiles override the marked
/// fields per solve call.
struct InprocessConfig {
    /// Master switch. Off reproduces the legacy solver numerically:
    /// single-tier activity/LBD reduce_db with a per-call cap, no
    /// vivification, no reconfiguration.
    bool enabled = true;

    /// Which configuration to run (see profiles.h). kAuto re-evaluates
    /// the feature rule at every solve call (and once more after the
    /// first learnt-LBD window); kFixed pins the explicit Config knobs.
    ProfileId profile = ProfileId::kAuto;

    // ---- vivification (profile-overridable) ------------------------------
    bool vivify = true;  ///< run the Vivifier at restart boundaries
    /// Propagations one vivification pass may spend before yielding.
    uint64_t vivify_propagation_budget = 200'000;
    /// Run a pass every Nth restart (and once at the start of each warm
    /// re-solve; never at the start of a first/cold call).
    uint32_t vivify_restart_interval = 6;
    /// Clauses longer than this are skipped (budget goes further on the
    /// short clauses propagation actually visits).
    uint32_t vivify_max_clause_size = 64;
    bool vivify_irredundant = true;  ///< also strengthen problem clauses
    /// Skip a scheduled pass unless this many conflicts happened since
    /// the last one: re-vivifying an unchanged DB is pure overhead, which
    /// matters on the short solves of a warm assumption sweep.
    uint64_t vivify_min_conflicts = 300;

    // ---- tiered learnt DB (profile-overridable) --------------------------
    uint32_t core_lbd_cut = 3;  ///< LBD <= this: core, never deleted
    uint32_t mid_lbd_cut = 6;   ///< LBD <= this: mid, survival-protected
    /// Reductions a mid clause may sit unused before demotion to local.
    uint32_t mid_idle_limit = 2;
    /// Floor of the local-tier cap (the persistent reduce trigger).
    size_t local_cap_min = 1000;
    /// Local-tier cap growth per reduction (persists across solve calls).
    double local_cap_growth = 1.1;

    /// Conflicts of the opening LBD window feeding
    /// InstanceFeatures::avg_first_window_lbd.
    uint32_t window_lbd_conflicts = 100;
};

/// Process-global in-processing counters, read through by bosphorusd
/// METRICS (the resilience_counters() pattern). The tier_* entries are
/// live gauges summed across all live solvers: each ClauseDbManager
/// reports deltas at reduce boundaries and unregisters its last report on
/// destruction.
struct InprocessCounters {
    std::atomic<uint64_t> vivified_literals{0};  ///< literals removed
    std::atomic<uint64_t> vivified_clauses{0};   ///< clauses shrunk
    std::atomic<uint64_t> vivify_deleted{0};     ///< clauses proved satisfied
    std::atomic<uint64_t> vivify_passes{0};      ///< vivification sweeps run
    std::atomic<uint64_t> reconf_decisions{0};   ///< auto profile switches
    std::atomic<uint64_t> db_reductions{0};      ///< tiered reduce sweeps
    std::atomic<int64_t> tier_core{0};   ///< live core-tier clauses
    std::atomic<int64_t> tier_mid{0};    ///< live mid-tier clauses
    std::atomic<int64_t> tier_local{0};  ///< live local-tier clauses
};

/// The process-global instance (never destroyed; safe from any thread).
InprocessCounters& counters();

}  // namespace bosphorus::sat::inprocess
