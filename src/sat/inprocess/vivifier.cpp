#include "sat/inprocess/vivifier.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "sat/inprocess/clause_db.h"
#include "sat/inprocess/inprocess.h"
#include "sat/solver.h"

namespace bosphorus::sat::inprocess {

void Vivifier::drop_clause(Solver& s, int32_t cref) {
    Solver::Clause& c = s.clauses_[cref];
    if (c.learnt && c.tier != kUntracked && s.db_mgr_)
        s.db_mgr_->on_removed(static_cast<Tier>(c.tier));
    s.remove_clause(cref);
}

Vivifier::PassStats Vivifier::run(Solver& s, uint64_t propagation_budget,
                                  uint32_t max_clause_size,
                                  bool include_irredundant) {
    PassStats st;
    if (!s.ok_) return st;
    assert(s.decision_level() == 0);

    const uint64_t prop_start = s.stats_.propagations;

    // Reach the level-0 fixpoint before assuming anything.
    if (s.propagate() != Solver::kNoReason) {
        s.ok_ = false;
        return st;
    }

    const uint64_t budget_end = s.stats_.propagations + propagation_budget;

    bool exhausted = false;
    auto sweep = [&](std::vector<int32_t>& list, size_t& cursor) {
        const size_t n = list.size();
        if (n == 0) return;
        if (cursor >= n) cursor = 0;
        for (size_t step = 0; step < n && !exhausted && s.ok_; ++step) {
            const size_t idx = (cursor + step) % n;
            const int32_t cr = list[idx];
            const Solver::Clause& c = s.clauses_[cr];
            if (c.deleted) continue;
            if (c.lits.size() < 3 || c.lits.size() > max_clause_size)
                continue;
            if (!vivify_one(s, cr, budget_end, st)) {
                exhausted = true;
                cursor = idx;  // resume from this clause next pass
            }
        }
        if (!exhausted) cursor = 0;
    };

    sweep(s.learnts_, learnt_cursor_);
    if (s.ok_ && include_irredundant) sweep(s.problem_clauses_, irred_cursor_);

    // Compact deleted clauses out of the lists (cursors stay approximate
    // round-robin positions, which is all they promise).
    if (st.clauses_deleted > 0 || st.units_derived > 0) {
        auto compact = [&s](std::vector<int32_t>& list) {
            list.erase(
                std::remove_if(list.begin(), list.end(),
                               [&s](int32_t cr) {
                                   return s.clauses_[cr].deleted;
                               }),
                list.end());
        };
        compact(s.learnts_);
        compact(s.problem_clauses_);
    }

    st.propagations_used = s.stats_.propagations - prop_start;

    auto& g = counters();
    g.vivify_passes.fetch_add(1, std::memory_order_relaxed);
    g.vivified_literals.fetch_add(st.literals_removed,
                                  std::memory_order_relaxed);
    g.vivified_clauses.fetch_add(st.clauses_shrunk, std::memory_order_relaxed);
    g.vivify_deleted.fetch_add(st.clauses_deleted, std::memory_order_relaxed);
    return st;
}

bool Vivifier::vivify_one(Solver& s, int32_t cref, uint64_t prop_budget_end,
                          PassStats& st) {
    Solver::Clause& c = s.clauses_[cref];
    ++st.clauses_examined;
    const size_t orig_size = c.lits.size();

    // Level-0 prescan. At decision level 0 every assignment is permanent:
    // a satisfied clause can be deleted outright, a falsified literal
    // dropped (both rewrites preserve the model set of the whole formula
    // because the level-0 trail itself survives).
    std::vector<Lit> work;
    work.reserve(orig_size);
    for (const Lit l : c.lits) {
        const LBool v = s.value(l);
        if (v == LBool::kTrue) {
            drop_clause(s, cref);
            ++st.clauses_deleted;
            return true;
        }
        if (v == LBool::kFalse) continue;
        work.push_back(l);
    }
    if (work.empty()) {
        // Cannot happen for an attached clause at a level-0 fixpoint (the
        // watch scheme would have reported the conflict); defensive.
        s.ok_ = false;
        return true;
    }
    if (work.size() == 1) {
        // The clause collapsed to a permanent unit.
        s.detach_clause(cref);
        drop_clause(s, cref);
        st.literals_removed += orig_size - 1;
        ++st.units_derived;
        s.enqueue(work[0], Solver::kNoReason);
        if (s.propagate() != Solver::kNoReason) s.ok_ = false;
        return true;
    }

    // Assumption walk: detach C so it cannot propagate against itself,
    // then assume the negation of each literal in turn as a
    // pseudo-decision. `result` accumulates the literals the replacement
    // clause keeps; every rewrite below is implied by F \ {C}.
    s.detach_clause(cref);
    std::vector<Lit> result;
    result.reserve(work.size());
    bool budget_out = false;
    size_t next_unexamined = work.size();
    for (size_t i = 0; i < work.size(); ++i) {
        const Lit l = work[i];
        const LBool v = s.value(l);
        if (v == LBool::kFalse) continue;  // implied by the prefix: redundant
        if (v == LBool::kTrue) {           // prefix already implies l
            result.push_back(l);
            break;                         // tail is redundant
        }
        if (i + 1 == work.size()) {
            // Last literal: assuming it cannot shrink anything further.
            result.push_back(l);
            break;
        }
        if (s.stats_.propagations >= prop_budget_end) {
            budget_out = true;
            next_unexamined = i;
            break;
        }
        s.trail_lim_.push_back(static_cast<int>(s.trail_.size()));
        s.enqueue(~l, Solver::kNoReason);
        result.push_back(l);
        if (s.propagate() != Solver::kNoReason) {
            // The assumed prefix is itself implied: C shrinks to it.
            break;
        }
    }
    s.cancel_until(0);

    if (budget_out) {
        // Keep the drops already justified (each is valid independently of
        // the tail) plus the unexamined tail, then end the pass.
        for (size_t i = next_unexamined; i < work.size(); ++i)
            result.push_back(work[i]);
    }

    if (result.size() == orig_size) {
        s.attach_clause(cref);  // nothing gained; clause unchanged
        return !budget_out;
    }

    assert(!result.empty());
    if (result.size() == 1) {
        drop_clause(s, cref);
        st.literals_removed += orig_size - 1;
        ++st.units_derived;
        // All kept literals are unassigned after backtracking to level 0.
        s.enqueue(result[0], Solver::kNoReason);
        if (s.propagate() != Solver::kNoReason) s.ok_ = false;
        return !budget_out;
    }

    st.literals_removed += orig_size - result.size();
    ++st.clauses_shrunk;
    c.lits = std::move(result);
    const uint32_t new_lbd =
        std::min(c.lbd, static_cast<uint32_t>(c.lits.size()));
    if (new_lbd != c.lbd) {
        c.lbd = new_lbd;
        if (c.learnt && c.tier != kUntracked && s.db_mgr_)
            c.tier = s.db_mgr_->on_vivified(static_cast<Tier>(c.tier), new_lbd);
    }
    s.attach_clause(cref);
    return !budget_out;
}

}  // namespace bosphorus::sat::inprocess
