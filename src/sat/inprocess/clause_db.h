// Tiered learnt-clause database management (the reducedb.cpp shape).
//
// Learnt clauses live in one of three tiers:
//  * core  (LBD <= core_lbd_cut): proven-valuable glue clauses; never
//    deleted. Clauses are promoted here when conflict analysis observes
//    an improved LBD below the cut.
//  * mid   (LBD <= mid_lbd_cut): kept across reductions while they keep
//    participating in conflicts; after mid_idle_limit idle reductions
//    they are demoted to local.
//  * local (everything else): the churn tier. When it outgrows the
//    persistent cap, the unused half with the worst (LBD, activity) is
//    deleted; clauses that were used since the last reduction are
//    promoted to mid instead (survival promotion).
//
// Unlike the legacy single-shot reduce_db(), the cap and all tier state
// persist across solve calls: a warm Session's live solver garbage
// collects its accumulated learnts instead of resetting the limit (and
// thus hoarding) on every re-solve.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sat/inprocess/inprocess.h"

namespace bosphorus::sat {
class Solver;
}  // namespace bosphorus::sat

namespace bosphorus::sat::inprocess {

/// Clause tier tags, stored in Solver::Clause::tier. kUntracked marks
/// clauses the manager does not own: problem clauses, XOR conflict/reason
/// clauses (allocated learnt but never entering the learnt list), and
/// every clause when in-processing is disabled.
enum Tier : uint8_t { kCore = 0, kMid = 1, kLocal = 2, kUntracked = 3 };

class ClauseDbManager {
public:
    explicit ClauseDbManager(const InprocessConfig& cfg);
    ~ClauseDbManager();

    ClauseDbManager(const ClauseDbManager&) = delete;
    ClauseDbManager& operator=(const ClauseDbManager&) = delete;

    /// Per-tier live clause counts (maintained incrementally; exact).
    struct TierCounts {
        size_t core = 0;
        size_t mid = 0;
        size_t local = 0;
        size_t total() const { return core + mid + local; }
    };

    /// Tier for a freshly learnt clause of this LBD.
    Tier classify(uint32_t lbd) const;

    /// Record a newly allocated learnt clause (updates the counts).
    void on_learnt(uint32_t lbd);

    /// Conflict analysis observed an improved LBD for a clause currently
    /// in `old_tier`. Returns the (possibly promoted) tier.
    Tier on_lbd_improved(Tier old_tier, uint32_t new_lbd);

    /// A vivified clause shrank; re-classify upward only (never demote a
    /// clause for getting stronger).
    Tier on_vivified(Tier old_tier, uint32_t new_lbd);

    /// A clause left the database outside reduce() (vivification proved
    /// it satisfied, or it collapsed to a unit).
    void on_removed(Tier tier);

    /// True when the local tier outgrew the persistent cap and a reduce()
    /// sweep is due. `problem_clauses` seeds the initial cap the first
    /// time it is consulted (max(problem/3, local_cap_min), the legacy
    /// formula -- but seeded once, never reset per call).
    bool should_reduce(size_t problem_clauses);

    /// One tiered reduction sweep over s.learnts_ (see the file comment).
    /// Requires: no conflict in flight. Reason-locked clauses and
    /// LBD <= 2 glue are never deleted regardless of tier bookkeeping.
    /// Grows the cap and publishes tier gauges to counters().
    void reduce(Solver& s);

    const TierCounts& tier_counts() const { return counts_; }
    uint64_t reductions() const { return reductions_; }
    double local_cap() const { return local_cap_; }

    /// Apply a named profile's tier knobs (kAuto reconfiguration).
    void apply_profile(const SolverProfile& p);

    // Diagnostics the "glue/locked never deleted" tests pin: these count
    // *attempts* the policy had to veto and must stay 0 forever.
    uint64_t glue_delete_vetoes() const { return glue_vetoes_; }
    uint64_t locked_delete_vetoes() const { return locked_vetoes_; }

private:
    void publish_gauges();

    InprocessConfig cfg_;  ///< tier knobs (profile-overridable copy)
    TierCounts counts_;
    TierCounts published_;  ///< last gauge report to counters()
    double local_cap_ = 0;  ///< 0 = not yet seeded
    uint64_t reductions_ = 0;
    uint64_t glue_vetoes_ = 0;
    uint64_t locked_vetoes_ = 0;
};

}  // namespace bosphorus::sat::inprocess
