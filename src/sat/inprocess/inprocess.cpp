#include "sat/inprocess/inprocess.h"

namespace bosphorus::sat::inprocess {

InprocessCounters& counters() {
    // Leaked singleton: bosphorusd worker threads may still read gauges
    // while static destructors run, so never destroy it.
    static InprocessCounters* g = new InprocessCounters();
    return *g;
}

}  // namespace bosphorus::sat::inprocess
