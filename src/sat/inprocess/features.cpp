#include "sat/inprocess/features.h"

#include "sat/solver.h"
#include "sat/xor_engine.h"

namespace bosphorus::sat::inprocess {

namespace {

// Shared accumulation over clause sizes, so extract() and from_cnf()
// cannot drift apart.
struct SizeAccum {
    size_t clauses = 0;
    size_t total_lits = 0;
    size_t binary = 0;
    size_t ternary = 0;
    size_t long_ = 0;  // size >= 7

    void add(size_t size) {
        ++clauses;
        total_lits += size;
        if (size == 2) ++binary;
        else if (size == 3) ++ternary;
        if (size >= 7) ++long_;
    }

    void finish(InstanceFeatures& f, size_t num_vars, size_t num_xors) const {
        f.num_vars = num_vars;
        f.num_clauses = clauses;
        f.num_xors = num_xors;
        const double constraints = static_cast<double>(clauses + num_xors);
        f.clause_var_ratio =
            num_vars ? constraints / static_cast<double>(num_vars) : 0.0;
        f.xor_density =
            constraints > 0 ? static_cast<double>(num_xors) / constraints : 0.0;
        if (clauses > 0) {
            const double n = static_cast<double>(clauses);
            f.mean_clause_size = static_cast<double>(total_lits) / n;
            f.frac_binary = static_cast<double>(binary) / n;
            f.frac_ternary = static_cast<double>(ternary) / n;
            f.frac_long = static_cast<double>(long_) / n;
        }
    }
};

}  // namespace

InstanceFeatures InstanceFeatures::extract(const Solver& s) {
    InstanceFeatures f;
    SizeAccum acc;
    for (const auto cr : s.problem_clauses_) {
        const auto& c = s.clauses_[cr];
        if (c.deleted) continue;
        acc.add(c.lits.size());
    }
    const size_t xors = s.xor_engine_ ? s.xor_engine_->num_rows() : 0;
    acc.finish(f, s.num_vars(), xors);
    return f;
}

InstanceFeatures InstanceFeatures::from_cnf(const Cnf& cnf) {
    InstanceFeatures f;
    SizeAccum acc;
    for (const auto& lits : cnf.clauses) acc.add(lits.size());
    acc.finish(f, cnf.num_vars, cnf.xors.size());
    return f;
}

}  // namespace bosphorus::sat::inprocess
