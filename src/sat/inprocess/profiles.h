// Named solver configurations and the feature-driven selection rule.
//
// CryptoMiniSat ships dozens of "reconf" configurations and a trained
// predictor (scripts/reconf.py) that maps cheap instance features onto
// one of them. We reproduce the shape with a hand-rolled decision rule
// over four named profiles -- no ML dependency, fully deterministic, so
// warm-Session trajectories stay replayable. A profile bundles the
// search knobs (restart pacing, activity decay) with the in-processing
// knobs (learnt-DB tier cuts, vivification cadence) that
// clause_db.h/vivifier.h consume.
#pragma once

#include <cstdint>
#include <string>

namespace bosphorus::sat::inprocess {

struct InstanceFeatures;

/// The selectable configurations. kFixed means "use the Solver::Config
/// knobs exactly as given" (this is also the numeric behaviour of a
/// pre-in-processing solver); kAuto re-runs the decision rule at every
/// solve call.
enum class ProfileId : uint8_t {
    kAuto = 0,      ///< select_profile() decides, re-evaluated per solve
    kFixed,         ///< honour the explicit Solver::Config knobs
    kBalanced,      ///< the paper-default middle ground
    kCryptoXor,     ///< XOR-dense crypto instances: patient, deep search
    kAgileRestart,  ///< propagation-heavy instances: rapid restarts
    kHeavyTail,     ///< learnt-clause floods: aggressive DB management
};

/// One named configuration: every knob a profile may override. kFixed is
/// represented by *not* applying a profile, so every field here is
/// concrete.
struct SolverProfile {
    const char* name;      ///< stable CLI-facing identifier
    double var_decay;      ///< EVSIDS decay factor
    double clause_decay;   ///< learnt clause activity decay
    int restart_base;      ///< Luby restart unit (conflicts)
    uint32_t core_lbd_cut; ///< LBD <= this: core tier, never deleted
    uint32_t mid_lbd_cut;  ///< LBD <= this: mid tier, survival-protected
    uint32_t vivify_restart_interval;  ///< vivify every Nth restart
    uint64_t vivify_propagation_budget;  ///< per vivification pass
    double local_cap_growth;  ///< local-tier cap growth per reduction
};

/// The table entry for a *named* profile (kBalanced..kHeavyTail).
/// kAuto/kFixed have no table entry; passing them is a programming error
/// (asserts in debug, returns kBalanced's entry in release).
const SolverProfile& profile(ProfileId id);

/// The hand-rolled decision rule (the reconf.py stand-in): map cheap
/// instance features onto one of the four named profiles. Deterministic;
/// documented in docs/architecture.md ("In-processing").
ProfileId select_profile(const InstanceFeatures& f);

/// Stable name for any ProfileId ("auto", "fixed", "balanced", ...).
const char* profile_name(ProfileId id);

/// Parse a profile name as accepted by --sat-profile. Returns false on an
/// unknown name (id is left untouched).
bool profile_from_name(const std::string& name, ProfileId& id);

}  // namespace bosphorus::sat::inprocess
