#include "sat/inprocess/profiles.h"

#include <cassert>

#include "sat/inprocess/features.h"

namespace bosphorus::sat::inprocess {

namespace {

// The four named configurations. Values follow the shape of CryptoMiniSat's
// reconf set: a middle-ground default, a patient deep-search profile for
// XOR-dense crypto instances, a rapid-restart profile for propagation-heavy
// over-constrained instances, and an aggressive-deletion profile for
// searches that flood the learnt DB with high-LBD clauses.
constexpr SolverProfile kProfiles[] = {
    // name            var    clause  rst  core mid viv-int viv-budget growth
    {"balanced",       0.95,  0.999,  100, 3,   6,  6,      200'000,   1.10},
    {"crypto-xor",     0.95,  0.999,  192, 4,   7,  4,      400'000,   1.15},
    {"agile-restart",  0.85,  0.999,  32,  3,   5,  8,      100'000,   1.08},
    {"heavy-tail",     0.95,  0.997,  100, 2,   4,  3,      300'000,   1.03},
};

constexpr int kFirstNamed = static_cast<int>(ProfileId::kBalanced);

}  // namespace

const SolverProfile& profile(ProfileId id) {
    const int idx = static_cast<int>(id) - kFirstNamed;
    assert(idx >= 0 &&
           idx < static_cast<int>(sizeof(kProfiles) / sizeof(kProfiles[0])));
    if (idx < 0 || idx >= static_cast<int>(sizeof(kProfiles) / sizeof(kProfiles[0])))
        return kProfiles[0];
    return kProfiles[idx];
}

ProfileId select_profile(const InstanceFeatures& f) {
    // Hand-rolled decision list, evaluated top to bottom. Thresholds are
    // documented in docs/architecture.md; keep the two in sync.
    //
    // 1. XOR-dense instances (>= 5% of constraints are XOR rows) are the
    //    crypto workloads the paper targets: patient restarts, wide tier
    //    cuts, a big vivification budget.
    if (f.xor_density >= 0.05) return ProfileId::kCryptoXor;
    // 2. A high opening LBD says the search is learning junk: clamp the
    //    tiers down and vivify often.
    if (f.avg_first_window_lbd >= 12.0) return ProfileId::kHeavyTail;
    // 3. Heavily over-constrained, mostly short clauses: propagation does
    //    the work, so restart fast to keep it pointed somewhere useful.
    if (f.clause_var_ratio >= 6.0 && f.frac_long <= 0.2)
        return ProfileId::kAgileRestart;
    return ProfileId::kBalanced;
}

const char* profile_name(ProfileId id) {
    switch (id) {
        case ProfileId::kAuto: return "auto";
        case ProfileId::kFixed: return "fixed";
        default: return profile(id).name;
    }
}

bool profile_from_name(const std::string& name, ProfileId& id) {
    if (name == "auto") { id = ProfileId::kAuto; return true; }
    if (name == "fixed") { id = ProfileId::kFixed; return true; }
    for (int i = 0; i < static_cast<int>(sizeof(kProfiles) / sizeof(kProfiles[0])); ++i) {
        if (name == kProfiles[i].name) {
            id = static_cast<ProfileId>(kFirstNamed + i);
            return true;
        }
    }
    return false;
}

}  // namespace bosphorus::sat::inprocess
