#include "sat/dimacs_exec.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "sat/dimacs.h"
#include "sat/solve_cnf.h"
#include "util/fault.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#define BOSPHORUS_HAS_SUBPROCESS 1
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#endif

namespace bosphorus::sat {

#ifdef BOSPHORUS_HAS_SUBPROCESS

namespace {

/// Fail fast on commands that cannot possibly run: resolve the command
/// line's first token (the solver binary) against the filesystem / PATH
/// and require it to be executable. Catches `--solver-cmd kissatt`
/// typos at backend creation instead of one silent kUnknown per solve.
Status validate_command(const std::string& command) {
    std::string head = command.substr(0, command.find_first_of(" \t"));
    if (head.empty())
        return Status::invalid_argument("dimacs-exec: blank command");
    const auto runnable = [](const std::string& p) {
        return ::access(p.c_str(), X_OK) == 0;
    };
    if (head.find('/') != std::string::npos) {
        if (runnable(head)) return Status();
    } else {
        const char* path_env = ::getenv("PATH");
        std::istringstream dirs(path_env ? path_env : "");
        std::string dir;
        while (std::getline(dirs, dir, ':')) {
            if (!dir.empty() && runnable(dir + "/" + head)) return Status();
        }
    }
    return Status::invalid_argument(
        "dimacs-exec: solver command not found or not executable: '" + head +
        "'");
}

/// An owned temp file path, unlinked on destruction.
class TempFile {
public:
    static ::bosphorus::Result<TempFile> create(const char* tag) {
        std::string tmpl = "/tmp/bosphorus-";
        tmpl += tag;
        tmpl += "-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        const int fd = ::mkstemp(buf.data());
        if (fd < 0)
            return Status::io_error("dimacs-exec: cannot create a temp file");
        ::close(fd);
        TempFile t;
        t.path_ = buf.data();
        return t;
    }

    TempFile() = default;
    TempFile(TempFile&& o) noexcept : path_(std::move(o.path_)) {
        o.path_.clear();
    }
    TempFile& operator=(TempFile&& o) noexcept {
        if (this != &o) {
            reset();
            path_ = std::move(o.path_);
            o.path_.clear();
        }
        return *this;
    }
    TempFile(const TempFile&) = delete;
    TempFile& operator=(const TempFile&) = delete;
    ~TempFile() { reset(); }

    const std::string& path() const { return path_; }

private:
    void reset() {
        if (!path_.empty()) ::unlink(path_.c_str());
    }
    std::string path_;
};

struct ParsedOutput {
    Result result = Result::kUnknown;
    std::vector<int64_t> model_lits;  // signed DIMACS values from v lines
};

/// Parse SAT-competition output: the "s" status line decides the verdict,
/// "v" lines (whitespace-separated signed literals, 0 terminator
/// optional) carry the model.
ParsedOutput parse_solver_output(std::istream& in) {
    ParsedOutput out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("s ", 0) == 0) {
            if (line.find("UNSATISFIABLE") != std::string::npos)
                out.result = Result::kUnsat;
            else if (line.find("SATISFIABLE") != std::string::npos)
                out.result = Result::kSat;
        } else if (line.rfind("v", 0) == 0 &&
                   (line.size() == 1 || line[1] == ' ' || line[1] == '\t')) {
            std::istringstream vs(line.substr(1));
            int64_t lit = 0;
            while (vs >> lit) {
                if (lit != 0) out.model_lits.push_back(lit);
            }
        }
    }
    return out;
}

class DimacsExecBackend final : public SolverBackend {
public:
    explicit DimacsExecBackend(std::string command)
        : command_(std::move(command)) {}

    std::string name() const override { return "dimacs-exec"; }

    // num_vars() includes the XOR-expansion auxiliaries (matching the
    // in-tree adapters), so ensure_vars(num_vars() + 1) always yields a
    // genuinely fresh, unconstrained variable.
    void ensure_vars(size_t n) override {
        expanded_.num_vars = std::max(expanded_.num_vars, n);
    }
    size_t num_vars() const override { return expanded_.num_vars; }

    bool add_clause(const std::vector<Lit>& lits) override {
        expanded_.clauses.push_back(lits);
        if (lits.empty()) ok_ = false;
        return ok_;
    }

    // XORs are expanded to plain clauses as they arrive (the written
    // file is plain DIMACS; external solvers know no "x" lines), so a
    // warm Session's repeated solves never re-pay the expansion.
    bool add_xor(const XorConstraint& x) override {
        append_xor_as_clauses(expanded_, x);
        return ok_;
    }

    void assume(Lit l) override { assumptions_.push_back(l); }

    Result solve(int64_t /*conflict_budget: not expressible*/,
                 double timeout_s) override {
        const std::vector<Lit> assumptions = std::move(assumptions_);
        assumptions_.clear();
        failed_all_ = false;
        model_.clear();
        if (interrupted_.load(std::memory_order_acquire))
            return Result::kUnknown;
        if (!ok_) return Result::kUnsat;

        // Injected faults, evaluated exactly where the real failures
        // strike: a crash is a child that died without output, a hang is
        // a child that never writes, garbage is unparseable output. All
        // three collapse to kUnknown -- the same no-verdict the genuine
        // failure yields -- never a wrong verdict.
        auto& inject = fault::FaultInjector::global();
        if (inject.armed()) {
            if (inject.should_fire(fault::Site::kBackendCrash))
                return Result::kUnknown;
            if (inject.should_fire(fault::Site::kBackendHang))
                return hang_until_stopped(timeout_s);
        }

        // The formula the child sees: the pre-expanded clauses plus the
        // assumptions degraded to unit clauses.
        Cnf work = expanded_;
        for (const Lit a : assumptions) work.add_clause({a});

        auto in_file = TempFile::create("dimacs");
        auto out_file = TempFile::create("out");
        if (!in_file.ok() || !out_file.ok()) return Result::kUnknown;
        {
            std::ofstream out(in_file->path());
            if (!out) return Result::kUnknown;
            write_dimacs(out, work);
            // A truncated file (disk full, I/O error) could read as a
            // *stronger* formula, turning the child's UNSAT -- which is
            // taken on trust -- into a wrong verdict. No file, no solve.
            out.flush();
            if (!out) return Result::kUnknown;
        }

        const Result r = run_child(in_file->path(), out_file->path(),
                                   timeout_s, work);
        if (r == Result::kUnsat) {
            if (assumptions.empty()) ok_ = false;
            failed_all_ = !assumptions.empty();
        }
        return r;
    }

    LBool value(Var v) const override {
        return v < model_.size() ? model_[v] : LBool::kFalse;
    }

    /// Degraded-assumption backend: a refuted solve blames every
    /// assumption (the subprocess cannot attribute the conflict).
    bool failed(Lit) const override { return failed_all_ || !ok_; }

    bool okay() const override { return ok_; }

    void interrupt() override {
        interrupted_.store(true, std::memory_order_release);
    }
    void clear_interrupt() override {
        interrupted_.store(false, std::memory_order_release);
    }
    void set_terminate_callback(std::function<bool()> cb) override {
        terminate_cb_ = std::move(cb);
    }

    Solver::Stats stats() const override { return {}; }  // not observable

    bool supports_assumptions() const override { return false; }

private:
    /// An injected hang: behave exactly like a child that never writes
    /// output -- burn wall-clock until the timeout, an interrupt, or the
    /// terminate hook stops the solve, then report no verdict.
    Result hang_until_stopped(double timeout_s) {
        Timer timer;
        for (;;) {
            if (interrupted_.load(std::memory_order_acquire)) break;
            if (terminate_cb_ && terminate_cb_()) break;
            if (timeout_s >= 0 && timer.seconds() > timeout_s) break;
            struct timespec ts {0, 2'000'000};  // 2 ms
            ::nanosleep(&ts, nullptr);
        }
        return Result::kUnknown;
    }

    /// Stop the child's whole process group and reap it, escalating
    /// SIGTERM -> SIGKILL: solvers that flush stats on SIGTERM get a
    /// bounded grace window, then SIGKILL guarantees death. The final
    /// reap may block -- after SIGKILL that is a bounded wait for the
    /// kernel to deliver it -- so no zombie ever outlives a solve.
    static void terminate_child(pid_t pid, int* status) {
        ::kill(-pid, SIGTERM);
        ::kill(pid, SIGTERM);  // in case setpgid lost the race
        Timer grace;
        bool reaped = false;
        while (grace.seconds() < 0.2) {
            const pid_t done = ::waitpid(pid, status, WNOHANG);
            if (done == pid) {
                reaped = true;
                break;
            }
            if (done < 0 && errno != EINTR) break;
            struct timespec ts {0, 2'000'000};  // 2 ms
            ::nanosleep(&ts, nullptr);
        }
        // SIGKILL the group even when the direct child died in the grace
        // window: an intermediate shell exiting on SIGTERM must not let a
        // trap-armored grandchild in its process group live on.
        ::kill(-pid, SIGKILL);
        if (!reaped) {
            ::kill(pid, SIGKILL);
            while (::waitpid(pid, status, 0) < 0 && errno == EINTR) {}
        }
    }

    /// Fork/exec `command_ '<in_path>'` with stdout redirected to
    /// out_path, poll for completion / timeout / interrupt, and parse the
    /// result. The child runs in its own process group so a kill reaches
    /// grandchildren spawned by the shell.
    Result run_child(const std::string& in_path, const std::string& out_path,
                     double timeout_s, const Cnf& work) {
        Timer timer;
        const std::string cmdline = command_ + " '" + in_path + "'";

        const pid_t pid = ::fork();
        if (pid < 0) return Result::kUnknown;
        if (pid == 0) {
            // Child: own process group, stdout -> out_path.
            ::setpgid(0, 0);
#if defined(__linux__)
            // Best-effort orphan protection: setpgid detached us from the
            // terminal's foreground group, so a Ctrl-C that kills the
            // host process would otherwise leave the solver burning CPU
            // forever. Die with the parent instead.
            ::prctl(PR_SET_PDEATHSIG, SIGKILL);
            if (::getppid() == 1) ::_exit(127);  // parent already gone
#endif
            const int fd =
                ::open(out_path.c_str(), O_WRONLY | O_TRUNC, 0600);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::close(fd);
            }
            ::execl("/bin/sh", "sh", "-c", cmdline.c_str(),
                    static_cast<char*>(nullptr));
            ::_exit(127);
        }

        // Parent: poll, enforcing timeout / interrupt / terminate hook.
        bool killed = false;
        int status = 0;
        for (;;) {
            const pid_t done = ::waitpid(pid, &status, WNOHANG);
            if (done == pid) break;
            if (done < 0 && errno != EINTR) {
                // waitpid itself failed: stop the child rather than leak
                // it running unsupervised, then reap it.
                terminate_child(pid, &status);
                killed = true;
                break;
            }
            const bool stop =
                interrupted_.load(std::memory_order_acquire) ||
                (terminate_cb_ && terminate_cb_()) ||
                (timeout_s >= 0 && timer.seconds() > timeout_s);
            if (stop) {
                terminate_child(pid, &status);
                killed = true;
                break;
            }
            struct timespec ts {0, 2'000'000};  // 2 ms
            ::nanosleep(&ts, nullptr);
        }
        if (killed) return Result::kUnknown;

        std::ifstream out(out_path);
        ParsedOutput parsed = parse_solver_output(out);
        // Injected garbage output: what the child wrote is unparseable,
        // exactly as if it had printed diagnostics instead of a verdict.
        if (fault::FaultInjector::global().should_fire(
                fault::Site::kBackendGarbage)) {
            parsed = ParsedOutput{};
        }
        if (parsed.result == Result::kUnknown) {
            // Distinguish "the solver gave up" from "there is no solver":
            // sh exits 127 when the command cannot be run. The interface
            // has no error channel per solve, so surface it on stderr --
            // once -- instead of silently looking like a timeout.
            if (WIFEXITED(status) && WEXITSTATUS(status) == 127 &&
                !exec_failure_reported_) {
                exec_failure_reported_ = true;
                std::fprintf(stderr,
                             "c dimacs-exec: command not runnable (exit "
                             "127): %s\n",
                             command_.c_str());
            }
        }
        if (parsed.result == Result::kSat) {
            model_.assign(work.num_vars, LBool::kFalse);
            for (const int64_t lit : parsed.model_lits) {
                const uint64_t v = static_cast<uint64_t>(
                    lit > 0 ? lit : -lit) - 1;
                if (v < model_.size())
                    model_[v] = lit > 0 ? LBool::kTrue : LBool::kFalse;
            }
            // Trust but verify: a model that fails the formula we wrote
            // (including the degraded assumption units) is no verdict.
            if (!model_satisfies(work, model_)) {
                model_.clear();
                return Result::kUnknown;
            }
        }
        return parsed.result;
    }

    std::string command_;
    Cnf expanded_;  ///< the formula as written: clauses only, XORs cut
    bool ok_ = true;
    bool failed_all_ = false;
    std::vector<Lit> assumptions_;
    std::vector<LBool> model_;
    std::atomic<bool> interrupted_{false};
    std::function<bool()> terminate_cb_;
    bool exec_failure_reported_ = false;
};

}  // namespace

::bosphorus::Result<std::unique_ptr<SolverBackend>> make_dimacs_exec_backend(
    const std::string& command) {
    if (command.empty())
        return Status::invalid_argument(
            "dimacs-exec needs a command: use \"dimacs-exec:<cmd>\" (the "
            "DIMACS file path is appended as the last argument)");
    const Status valid = validate_command(command);
    if (!valid.ok()) return valid;
    return std::unique_ptr<SolverBackend>(new DimacsExecBackend(command));
}

#else  // !BOSPHORUS_HAS_SUBPROCESS

::bosphorus::Result<std::unique_ptr<SolverBackend>> make_dimacs_exec_backend(
    const std::string&) {
    return Status::error(StatusCode::kUnimplemented,
                         "dimacs-exec requires a POSIX platform");
}

#endif

}  // namespace bosphorus::sat
