// The external-process DIMACS back end behind the registry's
// "dimacs-exec:<command>" spec: write the formula as a DIMACS file, run
// any SAT-competition-conformant solver binary on it, parse the
// "s SATISFIABLE"/"s UNSATISFIABLE" status and "v" model lines, and kill
// the child (by process group) on timeout or interrupt.
//
// Assumptions degrade to cold solves: each solve() writes the buffered
// formula plus one unit clause per pending assumption, so external
// solvers need no incremental interface. Native XOR constraints are
// expanded into plain clauses in the written file (external solvers
// speak plain DIMACS). SAT models are verified against the written
// formula before being trusted; a nonconformant model yields kUnknown.
#pragma once

#include <memory>
#include <string>

#include "bosphorus/sat_backend.h"
#include "bosphorus/status.h"

namespace bosphorus::sat {

/// Build a dimacs-exec backend running `command` (a shell command line;
/// the DIMACS file path is appended as its last, quoted argument).
/// Fails with kInvalidArgument when `command` is empty and with
/// kUnimplemented on platforms without fork/exec.
::bosphorus::Result<std::unique_ptr<SolverBackend>> make_dimacs_exec_backend(
    const std::string& command);

}  // namespace bosphorus::sat
