// CNF benchmark generators -- the in-tree substitute for the SAT
// Competition 2017 suite used in the paper's last two Table II rows.
//
// The real competition set cannot be redistributed here, so we generate a
// mixed suite that exercises the same axes the paper's evaluation cares
// about: a SAT/UNSAT mix, resolution-hard UNSAT instances (pigeonhole),
// GF(2)-rich instances where XOR reasoning shines (parity chains -- these
// are where Bosphorus/CMS-style reasoning helps most, matching the paper's
// observation that the benefit concentrates on UNSAT instances), random
// k-SAT near the phase transition, and structured graph colouring.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "anf/polynomial.h"
#include "sat/types.h"
#include "util/rng.h"

namespace bosphorus::cnfgen {

/// A random quadratic ANF system with a planted satisfying assignment.
struct PlantedAnf {
    std::vector<anf::Polynomial> polys;
    size_t num_vars = 0;
    std::vector<bool> planted;  ///< the planted model (always satisfies)
};

/// Generate `num_eqs` polynomials, each the sum of `quadratic_terms`
/// random degree-2 monomials and `linear_terms` random variables, with
/// the constant term adjusted so `planted` is a root -- guaranteed SAT,
/// dense enough that XL/ElimLin do real elimination work. Shared by the
/// batch determinism test and bench_batch_throughput so both exercise the
/// same instance family.
PlantedAnf planted_quadratic_anf(size_t num_vars, size_t num_eqs,
                                 unsigned quadratic_terms,
                                 unsigned linear_terms, Rng& rng);

/// Uniform random k-SAT with `num_clauses` clauses over `num_vars`
/// variables (distinct variables per clause). At ratio ~4.26 (k = 3) the
/// instances straddle the SAT/UNSAT threshold.
sat::Cnf random_ksat(size_t num_vars, size_t num_clauses, unsigned k,
                     Rng& rng);

/// Pigeonhole principle PHP(holes + 1, holes): provably UNSAT,
/// exponentially hard for resolution-based solvers.
sat::Cnf pigeonhole(unsigned holes);

/// A cycle of XOR constraints x_i ^ x_{i+1} ^ t_i = c_i, expanded to CNF.
/// The parity of the constants makes the instance SAT or UNSAT; XOR-aware
/// reasoning (recovery + Gauss-Jordan) decides it instantly while plain
/// resolution struggles as `length` grows.
sat::Cnf xor_cycle(size_t length, bool satisfiable, Rng& rng);

/// Tseitin parity formula over a random 4-regular multigraph: one XOR
/// constraint per vertex over its incident edge variables, with random
/// charges whose total parity decides satisfiability. Odd-charged Tseitin
/// formulas on expanders are the classic resolution-hard / GF(2)-easy
/// family -- the sharpest separator between plain CDCL and the
/// Bosphorus/CMS-style reasoning the paper highlights.
sat::Cnf tseitin_expander(size_t vertices, bool satisfiable, Rng& rng);

/// Random graph k-colouring: `num_vertices` vertices, `num_edges` random
/// edges, `colors` colours (one-hot encoding with at-most-one clauses).
sat::Cnf graph_coloring(size_t num_vertices, size_t num_edges,
                        unsigned colors, Rng& rng);

/// Configuration of the O(1)-memory streaming DIMACS generator feeding the
/// out-of-core preprocessor tests and benchmarks.
struct StreamDimacs {
    uint64_t num_vars = 1000;     ///< variables declared in the header
    uint64_t num_clauses = 10000; ///< clause lines written (header-exact)
    unsigned k = 3;               ///< literals per random clause
    /// Percentage of constraint slots spent starting full XOR-encoding
    /// groups (each consumes 2^(xor_len-1) clause slots), giving the
    /// streaming XOR recovery something to find.
    unsigned xor_percent = 10;
    unsigned xor_len = 3;         ///< variables per planted XOR group
    unsigned unit_percent = 1;    ///< percentage of slots that are units
    unsigned duplicate_percent = 2;  ///< slots repeating the previous clause
    unsigned comment_every = 0;   ///< a comment line every N slots (0 = off)
    /// Plant a hidden assignment every clause/XOR group is consistent with,
    /// making the instance SAT by construction (equisatisfiability gates in
    /// CI then expect SAT on both sides). When false clauses are uniform
    /// random, so large instances are almost surely UNSAT.
    bool plant = true;
};

/// Stream a DIMACS file clause-by-clause: memory use is O(k + xor_len)
/// regardless of `num_clauses`, and the "p cnf" header is exact (the
/// constraint mix is budgeted, never truncated). Deterministic in (cfg,
/// rng state).
void write_stream_dimacs(std::ostream& out, const StreamDimacs& cfg,
                         Rng& rng);

/// A named instance of the generated competition-substitute suite.
struct SuiteInstance {
    std::string name;
    std::string family;
    sat::Cnf cnf;
};

/// The mixed suite standing in for the SAT-2017 rows of Table II. `scale`
/// stretches instance sizes (1 = smoke-test size).
std::vector<SuiteInstance> sat2017_substitute_suite(unsigned scale,
                                                    uint64_t seed);

}  // namespace bosphorus::cnfgen
