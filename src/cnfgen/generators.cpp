#include "cnfgen/generators.h"

#include <algorithm>
#include <ostream>
#include <set>
#include <string>

namespace bosphorus::cnfgen {

using sat::Cnf;
using sat::Lit;
using sat::mk_lit;
using sat::Var;

PlantedAnf planted_quadratic_anf(size_t num_vars, size_t num_eqs,
                                 unsigned quadratic_terms,
                                 unsigned linear_terms, Rng& rng) {
    PlantedAnf out;
    out.num_vars = num_vars;
    out.planted.resize(num_vars);
    for (size_t v = 0; v < num_vars; ++v) out.planted[v] = rng.coin();

    out.polys.reserve(num_eqs);
    for (size_t e = 0; e < num_eqs; ++e) {
        anf::Polynomial p;
        for (unsigned q = 0; q < quadratic_terms; ++q) {
            const auto a = static_cast<anf::Var>(rng.below(num_vars));
            const auto b = static_cast<anf::Var>(rng.below(num_vars));
            p += anf::Polynomial::variable(a) * anf::Polynomial::variable(b);
        }
        for (unsigned l = 0; l < linear_terms; ++l) {
            const auto a = static_cast<anf::Var>(rng.below(num_vars));
            p += anf::Polynomial::variable(a);
        }
        if (p.evaluate(out.planted)) p += anf::Polynomial::constant(true);
        if (p.is_zero()) { --e; continue; }  // degenerate draw, redo
        out.polys.push_back(std::move(p));
    }
    return out;
}

Cnf random_ksat(size_t num_vars, size_t num_clauses, unsigned k, Rng& rng) {
    Cnf cnf;
    cnf.num_vars = num_vars;
    for (size_t i = 0; i < num_clauses; ++i) {
        std::set<Var> vars;
        while (vars.size() < k)
            vars.insert(static_cast<Var>(rng.below(num_vars)));
        std::vector<Lit> clause;
        for (Var v : vars) clause.push_back(mk_lit(v, rng.coin()));
        cnf.add_clause(std::move(clause));
    }
    return cnf;
}

Cnf pigeonhole(unsigned holes) {
    // Variables: p(i, j) = pigeon i sits in hole j, i in [0, holes], j in
    // [0, holes).
    const unsigned pigeons = holes + 1;
    Cnf cnf;
    cnf.num_vars = pigeons * holes;
    auto p = [&](unsigned i, unsigned j) {
        return static_cast<Var>(i * holes + j);
    };
    // Every pigeon sits somewhere.
    for (unsigned i = 0; i < pigeons; ++i) {
        std::vector<Lit> clause;
        for (unsigned j = 0; j < holes; ++j)
            clause.push_back(mk_lit(p(i, j), false));
        cnf.add_clause(std::move(clause));
    }
    // No two pigeons share a hole.
    for (unsigned j = 0; j < holes; ++j)
        for (unsigned i1 = 0; i1 < pigeons; ++i1)
            for (unsigned i2 = i1 + 1; i2 < pigeons; ++i2)
                cnf.add_clause({mk_lit(p(i1, j), true), mk_lit(p(i2, j), true)});
    return cnf;
}

Cnf xor_cycle(size_t length, bool satisfiable, Rng& rng) {
    // Chain variables x_0..x_{length-1} and per-link slack t_i with
    // constraints x_i ^ x_{(i+1) % length} ^ t_i = c_i. Summing all
    // constraints, the x's cancel around the cycle, so
    // XOR(t_i) = XOR(c_i) -- forcing t_i all-zero via unit clauses makes
    // the instance SAT iff XOR(c_i) = 0.
    Cnf cnf;
    cnf.num_vars = 2 * length;
    bool parity = false;
    std::vector<bool> cs(length);
    for (size_t i = 0; i < length; ++i) {
        cs[i] = rng.coin();
        parity ^= cs[i];
    }
    // Fix the last constant so total parity equals the desired verdict
    // (0 = satisfiable, 1 = contradictory).
    if (parity != !satisfiable) cs[length - 1] = !cs[length - 1];

    for (size_t i = 0; i < length; ++i) {
        const Var x = static_cast<Var>(i);
        const Var x2 = static_cast<Var>((i + 1) % length);
        const Var t = static_cast<Var>(length + i);
        // x ^ x2 ^ t = c: 4 CNF clauses forbidding wrong-parity rows.
        for (unsigned bits = 0; bits < 8; ++bits) {
            const bool parity_row =
                ((bits & 1) != 0) ^ ((bits & 2) != 0) ^ ((bits & 4) != 0);
            if (parity_row == cs[i]) continue;
            cnf.add_clause({mk_lit(x, (bits & 1) != 0),
                            mk_lit(x2, (bits & 2) != 0),
                            mk_lit(t, (bits & 4) != 0)});
        }
        cnf.add_clause({mk_lit(t, true)});  // t = 0
    }
    return cnf;
}

Cnf tseitin_expander(size_t vertices, bool satisfiable, Rng& rng) {
    // 4-regular multigraph by random pairing of vertex stubs (self-loops
    // skipped: they XOR a variable with itself and carry no information).
    std::vector<size_t> stubs;
    for (size_t v = 0; v < vertices; ++v)
        for (int i = 0; i < 4; ++i) stubs.push_back(v);
    rng.shuffle(stubs);
    std::vector<std::vector<Var>> incident(vertices);
    Var next_edge = 0;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
        const size_t a = stubs[i], b = stubs[i + 1];
        if (a == b) continue;
        incident[a].push_back(next_edge);
        incident[b].push_back(next_edge);
        ++next_edge;
    }
    // Charges: all zero except vertex 0, which carries the verdict bit.
    // Every component away from vertex 0 has even (zero) charge and is
    // satisfiable; vertex 0's component sums to the verdict bit -- so the
    // formula's status is decided regardless of multigraph connectivity.
    std::vector<bool> charge(vertices, false);
    charge[0] = !satisfiable;

    Cnf cnf;
    cnf.num_vars = next_edge;
    for (size_t v = 0; v < vertices; ++v) {
        const auto& edges = incident[v];
        const size_t d = edges.size();
        if (d == 0) {
            if (charge[v]) cnf.add_clause({});  // 0 = 1: contradiction
            continue;
        }
        for (uint32_t bits = 0; bits < (1u << d); ++bits) {
            bool p = false;
            for (size_t i = 0; i < d; ++i) p ^= (bits >> i) & 1;
            if (p == charge[v]) continue;
            std::vector<Lit> clause;
            for (size_t i = 0; i < d; ++i)
                clause.push_back(mk_lit(edges[i], (bits >> i) & 1));
            cnf.add_clause(std::move(clause));
        }
    }
    return cnf;
}

Cnf graph_coloring(size_t num_vertices, size_t num_edges, unsigned colors,
                   Rng& rng) {
    Cnf cnf;
    cnf.num_vars = num_vertices * colors;
    auto col = [&](size_t v, unsigned c) {
        return static_cast<Var>(v * colors + c);
    };
    for (size_t v = 0; v < num_vertices; ++v) {
        std::vector<Lit> clause;
        for (unsigned c = 0; c < colors; ++c)
            clause.push_back(mk_lit(col(v, c), false));
        cnf.add_clause(std::move(clause));
        for (unsigned c1 = 0; c1 < colors; ++c1)
            for (unsigned c2 = c1 + 1; c2 < colors; ++c2)
                cnf.add_clause(
                    {mk_lit(col(v, c1), true), mk_lit(col(v, c2), true)});
    }
    std::set<std::pair<size_t, size_t>> edges;
    while (edges.size() < num_edges) {
        size_t a = rng.below(num_vertices);
        size_t b = rng.below(num_vertices);
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        if (!edges.insert({a, b}).second) continue;
        for (unsigned c = 0; c < colors; ++c)
            cnf.add_clause({mk_lit(col(a, c), true), mk_lit(col(b, c), true)});
    }
    return cnf;
}

void write_stream_dimacs(std::ostream& out, const StreamDimacs& cfg,
                         Rng& rng) {
    const uint64_t nv = std::max<uint64_t>(cfg.num_vars, 1);
    const unsigned k =
        static_cast<unsigned>(std::min<uint64_t>(std::max(1u, cfg.k), nv));
    const unsigned xlen = static_cast<unsigned>(
        std::min<uint64_t>(std::max(2u, std::min(cfg.xor_len, 10u)), nv));
    const uint64_t group = 1ull << (xlen - 1);  // clauses per XOR encoding

    // Hidden assignment every emitted constraint is consistent with.
    // Re-derivable in O(1) memory per variable: bit v of the planted model
    // is splitmix-style hashed from a per-file key drawn up front.
    const uint64_t plant_key = rng.next();
    auto planted = [&](Var v) {
        uint64_t z = plant_key + 0x9E3779B97F4A7C15ull * (v + 1);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return ((z ^ (z >> 31)) & 1) != 0;
    };

    out << "p cnf " << nv << ' ' << cfg.num_clauses << '\n';

    std::vector<Var> vars;
    std::vector<Lit> prev;
    std::string line;
    uint64_t emitted = 0;
    uint64_t slot = 0;
    auto put_clause = [&](const std::vector<Lit>& c) {
        line.clear();
        for (const Lit l : c) {
            line += std::to_string(l.to_dimacs());
            line += ' ';
        }
        line += "0\n";
        out << line;
        ++emitted;
    };
    auto draw_vars = [&](unsigned n) {
        vars.clear();
        while (vars.size() < n) {
            const Var v = static_cast<Var>(rng.below(nv));
            if (std::find(vars.begin(), vars.end(), v) == vars.end())
                vars.push_back(v);
        }
    };

    while (emitted < cfg.num_clauses) {
        ++slot;
        if (cfg.comment_every && slot % cfg.comment_every == 0)
            out << "c slot " << slot << '\n';

        const uint64_t roll = rng.below(100);
        const uint64_t left = cfg.num_clauses - emitted;
        if (roll < cfg.xor_percent && left >= group) {
            // Full XOR-encoding group: all wrong-parity sign patterns over
            // one variable set -- exactly what recover_xors reassembles.
            draw_vars(xlen);
            bool rhs = cfg.plant;  // planted parity; else fixed rhs = true
            if (cfg.plant) {
                rhs = false;
                for (const Var v : vars) rhs ^= planted(v);
            }
            std::vector<Lit> c(xlen);
            for (uint64_t bits = 0; bits < (1ull << xlen); ++bits) {
                bool parity = false;
                for (unsigned i = 0; i < xlen; ++i)
                    parity ^= (bits >> i) & 1;
                if (parity == rhs) continue;  // right parity: allowed row
                for (unsigned i = 0; i < xlen; ++i)
                    c[i] = mk_lit(vars[i], ((bits >> i) & 1) != 0);
                put_clause(c);
            }
            continue;
        }
        if (roll < cfg.xor_percent + cfg.unit_percent) {
            const Var v = static_cast<Var>(rng.below(nv));
            const bool neg = cfg.plant ? !planted(v) : rng.coin();
            put_clause({mk_lit(v, neg)});
            continue;
        }
        if (roll < cfg.xor_percent + cfg.unit_percent +
                       cfg.duplicate_percent &&
            !prev.empty()) {
            put_clause(prev);
            continue;
        }
        draw_vars(k);
        std::vector<Lit> c;
        c.reserve(k);
        bool sat_under_plant = false;
        for (const Var v : vars) {
            const bool neg = rng.coin();
            if (cfg.plant && planted(v) != neg) sat_under_plant = true;
            c.push_back(mk_lit(v, neg));
        }
        if (cfg.plant && !sat_under_plant) {
            // Flip one literal so the planted assignment satisfies it.
            const size_t i = static_cast<size_t>(rng.below(c.size()));
            c[i] = ~c[i];
        }
        put_clause(c);
        prev = c;
    }
}

std::vector<SuiteInstance> sat2017_substitute_suite(unsigned scale,
                                                    uint64_t seed) {
    Rng rng(seed);
    std::vector<SuiteInstance> suite;
    const size_t s = std::max(1u, scale);

    // Random 3-SAT at the phase transition: half below, half above the
    // threshold ratio, giving a SAT/UNSAT mix.
    for (int i = 0; i < 4; ++i) {
        const size_t n = 40 * s + 10 * i;
        const double ratio = (i % 2 == 0) ? 4.0 : 4.5;
        suite.push_back({"ksat-" + std::to_string(n) +
                             (i % 2 == 0 ? "-under" : "-over"),
                         "random-3sat",
                         random_ksat(n, static_cast<size_t>(n * ratio), 3,
                                     rng)});
    }
    // Pigeonhole: hard UNSAT for resolution.
    for (unsigned holes = 5 + s; holes <= 6 + s; ++holes) {
        suite.push_back({"php-" + std::to_string(holes), "pigeonhole",
                         pigeonhole(holes)});
    }
    // XOR cycles: GF(2)-structured, half SAT half UNSAT.
    for (int i = 0; i < 4; ++i) {
        const size_t len = 60 * s + 20 * i;
        const bool satisfiable = (i % 2 == 0);
        suite.push_back({"xorcycle-" + std::to_string(len) +
                             (satisfiable ? "-sat" : "-unsat"),
                         "xor-cycle", xor_cycle(len, satisfiable, rng)});
    }
    // Tseitin expanders: the resolution-hard / GF(2)-easy separator.
    for (int i = 0; i < 4; ++i) {
        const size_t n = 20 * s + 8 * i;
        const bool satisfiable = (i % 2 == 0);
        suite.push_back({"tseitin-" + std::to_string(n) +
                             (satisfiable ? "-sat" : "-unsat"),
                         "tseitin-expander",
                         tseitin_expander(n, satisfiable, rng)});
    }
    // Graph colouring.
    for (int i = 0; i < 2; ++i) {
        const size_t n = 20 * s + 5 * i;
        const size_t e = n * 2 + i * n / 2;
        suite.push_back({"color-" + std::to_string(n) + "-" +
                             std::to_string(e),
                         "graph-coloring", graph_coloring(n, e, 3, rng)});
    }
    return suite;
}

}  // namespace bosphorus::cnfgen
