// Implementation of the out-of-core streaming preprocessor declared in
// include/bosphorus/stream.h.
//
// The pipeline makes several *sequential* passes over the input file, so
// peak memory is O(vars) global state + one bounded clause window:
//
//   discovery rounds  unit propagation, pure/equivalent-literal facts into
//                     O(vars) state (fixed values + a parity union-find),
//                     binary-clause pairs detected through a bounded
//                     open-addressed filter;
//   counting round    per-variable occurrence counts and polarity bits
//                     against the frozen fact state -- these gate windowed
//                     BVE (a variable may be eliminated only if every one
//                     of its occurrences is inside the window) and pure-
//                     literal fixing;
//   window pass       normalized clauses accumulate into a byte-bounded
//                     window, remapped to a dense local variable space and
//                     fed through recover_xors -> GF(2) elimination (the
//                     gf2 kernel) -> sat::Preprocessor, then re-emitted;
//   fact emission     every fixed variable becomes a unit clause and every
//                     union-find alias a pair of binary clauses, so facts
//                     applied only "downstream" of their discovery point
//                     still constrain the whole output.
//
// Soundness note: every transformation except windowed BVE preserves the
// model set over the input variables; BVE (gated to window-complete,
// non-XOR, non-alias variables) preserves satisfiability.
#include "bosphorus/stream.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "gf2/gf2_matrix.h"
#include "sat/dimacs.h"
#include "sat/preprocess.h"
#include "sat/solve_cnf.h"
#include "stream/dimacs_tokenizer.h"
#include "util/fault.h"
#include "util/mem.h"
#include "util/timer.h"

namespace bosphorus {

namespace {

using sat::Cnf;
using sat::LBool;
using sat::Lit;
using sat::mk_lit;
using sat::Var;
using sat::XorConstraint;
using stream::ByteSource;
using stream::DimacsTokenizer;

constexpr uint64_t kPerVarBytes = 12;       // fixed+parent+parity+occ+pol+inx
// Worst-case flush transient per raw window byte: the window itself (1x,
// charged at flush), two working copies (2x), and the per-distinct-variable
// remap/occurrence/Preprocessor state (64 bytes per variable, at most one
// variable per 4-byte pool literal = 16x). That is 19x; the 20th share of
// the post-fixed-state budget is reserved for the GF(2) matrix, whose size
// flush_window() caps against window_budget_ explicitly. kMinAvailBytes =
// 20 * kMinWindowBytes keeps the two floors consistent, so the accounted
// peak provably stays within memory_budget_bytes.
constexpr uint64_t kMinAvailBytes = 40 << 10;
constexpr uint64_t kMinWindowBytes = 2 << 10;
constexpr uint64_t kWindowExpansion = 20;
constexpr uint32_t kOccSaturated = 0xFFFFFFFFu;

/// Streaming DIMACS writer with a fixed-width header patched back in place
/// once the final variable/constraint counts are known.
class DimacsStreamWriter {
public:
    explicit DimacsStreamWriter(std::ostream& out) : out_(out) {
        header_pos_ = out_.tellp();
        emit_header(0, 0);  // placeholder, same width as the final header
    }

    void clause(const std::vector<Lit>& lits) {
        line_.clear();
        for (const Lit l : lits) {
            append_int(l.to_dimacs());
            line_.push_back(' ');
        }
        line_ += "0\n";
        write_line();
        ++constraints_;
    }

    void unit(Lit l) {
        line_.clear();
        append_int(l.to_dimacs());
        line_ += " 0\n";
        write_line();
        ++constraints_;
    }

    void xline(const std::vector<Var>& vars, bool rhs) {
        // CryptoMiniSat convention: the listed literals XOR to true, so the
        // rhs folds into the first literal's sign.
        line_ = "x";
        for (size_t i = 0; i < vars.size(); ++i) {
            if (i) line_.push_back(' ');
            const bool neg = (i == 0) && !rhs;
            append_int(neg ? -static_cast<int64_t>(vars[i] + 1)
                           : static_cast<int64_t>(vars[i] + 1));
        }
        line_ += " 0\n";
        write_line();
        ++constraints_;
    }

    uint64_t constraints() const { return constraints_; }

    /// False once any write failed (badbit from a real short write, or an
    /// injected io-short-write / io-enospc fault).
    bool ok() const { return static_cast<bool>(out_); }

    /// Patch the header and return total bytes written.
    uint64_t finish(uint64_t num_vars) {
        out_.flush();
        const std::streampos end = out_.tellp();
        out_.seekp(header_pos_);
        emit_header(num_vars, constraints_);
        out_.seekp(end);
        out_.flush();
        return static_cast<uint64_t>(end - header_pos_);
    }

private:
    void emit_header(uint64_t vars, uint64_t constraints) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "p cnf %10llu %14llu\n",
                      static_cast<unsigned long long>(vars),
                      static_cast<unsigned long long>(constraints));
        out_ << buf;
    }

    void write_line() {
        auto& inject = fault::FaultInjector::global();
        if (inject.armed()) {
            if (inject.should_fire(fault::Site::kIoShortWrite)) {
                // Half the bytes land, then the device fails -- the same
                // stream state a genuine short write leaves behind.
                out_.write(line_.data(),
                           static_cast<std::streamsize>(line_.size() / 2));
                out_.setstate(std::ios::badbit);
                return;
            }
            if (inject.should_fire(fault::Site::kIoEnospc)) {
                out_.setstate(std::ios::badbit);
                return;
            }
        }
        out_ << line_;
    }

    void append_int(int64_t v) {
        char buf[24];
        const int n = std::snprintf(buf, sizeof buf, "%lld",
                                    static_cast<long long>(v));
        line_.append(buf, static_cast<size_t>(n));
    }

    std::ostream& out_;
    std::streampos header_pos_;
    uint64_t constraints_ = 0;
    std::string line_;
};

/// Bounded open-addressed set of packed binary clauses (two raw literals
/// in one 64-bit key) used to detect complementary pairs -- (a|b) and
/// (~a|~b) together imply the equivalence a == ~b. Lossy by design: once
/// ~70% full it stops admitting new keys, which only costs detection
/// opportunities, never soundness.
class BinaryPairFilter {
public:
    explicit BinaryPairFilter(size_t slots) : slots_(slots, 0) {}

    static uint64_t key(Lit a, Lit b) {
        if (b < a) std::swap(a, b);
        return (static_cast<uint64_t>(a.raw()) << 32) | b.raw();
    }

    bool contains(uint64_t k) const {
        size_t i = hash(k);
        for (size_t probe = 0; probe < slots_.size(); ++probe) {
            const uint64_t s = slots_[i];
            if (s == 0) return false;
            if (s == k) return true;
            i = (i + 1) & (slots_.size() - 1);
        }
        return false;
    }

    void insert(uint64_t k) {
        if (size_ * 10 >= slots_.size() * 7) return;  // saturated: lossy
        size_t i = hash(k);
        for (size_t probe = 0; probe < slots_.size(); ++probe) {
            uint64_t& s = slots_[i];
            if (s == k) return;
            if (s == 0) {
                s = k;
                ++size_;
                return;
            }
            i = (i + 1) & (slots_.size() - 1);
        }
    }

    uint64_t bytes() const { return slots_.size() * 8; }

private:
    size_t hash(uint64_t k) const {
        k ^= k >> 33;
        k *= 0xFF51AFD7ED558CCDull;
        k ^= k >> 33;
        return static_cast<size_t>(k) & (slots_.size() - 1);
    }

    std::vector<uint64_t> slots_;
    size_t size_ = 0;
};

enum class ClauseFate : uint8_t { kKeep, kSatisfied, kTautology, kEmpty };

class Pipeline {
public:
    explicit Pipeline(const StreamPreprocessConfig& cfg) : cfg_(cfg) {}

    Result<StreamPreprocessStats> run(ByteSource& src, uint64_t bytes_total,
                                      std::ostream& out);

private:
    // ---- O(vars) global state ---------------------------------------------
    Status ensure_var(Var v) {
        if (v < fixed_.size()) return Status();
        size_t n = std::max<size_t>(v + 1, fixed_.size() + fixed_.size() / 4);
        acct_.charge((n - fixed_.size()) * kPerVarBytes);
        const size_t old = fixed_.size();
        fixed_.resize(n, LBool::kUndef);
        parent_.resize(n);
        for (size_t i = old; i < n; ++i) parent_[i] = static_cast<Var>(i);
        parity_.resize(n, 0);
        has_alias_.resize(n, 0);
        occ_.resize(n, 0);
        pol_.resize(n, 0);
        in_xor_.resize(n, 0);
        if (acct_.current() + kMinAvailBytes > cfg_.memory_budget_bytes)
            return Status::invalid_argument(
                "memory_budget_bytes too small: O(vars) state for " +
                std::to_string(n) + " variables plus buffers needs more than " +
                std::to_string(cfg_.memory_budget_bytes) + " bytes");
        return Status();
    }

    Lit find_lit(Lit l) {
        Var v = l.var();
        bool par = l.sign();
        while (parent_[v] != v) {
            const Var p = parent_[v];
            if (parent_[p] != p) {  // path halving
                parity_[v] = parity_[v] ^ parity_[p];
                parent_[v] = parent_[p];
            }
            par ^= parity_[v];
            v = parent_[v];
        }
        return mk_lit(v, par);
    }

    /// Record "value(v) = val" for a representative v. 1 = new fact,
    /// 0 = already known, -1 = contradiction.
    int set_fixed_value(Var v, bool val) {
        const LBool want = sat::lbool_from(val);
        if (fixed_[v] == LBool::kUndef) {
            fixed_[v] = want;
            return 1;
        }
        return fixed_[v] == want ? 0 : -1;
    }

    /// Record "literal l is true". 1 = new fact, 0 = known, -1 = conflict.
    int set_fixed_lit(Lit l) {
        const Lit r = find_lit(l);
        return set_fixed_value(r.var(), !r.sign());
    }

    /// Record the equivalence of literals a and b.
    int merge(Lit a, Lit b) {
        Lit ra = find_lit(a), rb = find_lit(b);
        if (ra.var() == rb.var()) return ra.sign() == rb.sign() ? 0 : -1;
        if (fixed_[ra.var()] != LBool::kUndef) {
            const bool va = fixed_[ra.var()] == LBool::kTrue;
            return set_fixed_value(rb.var(), va ^ ra.sign() ^ rb.sign());
        }
        if (fixed_[rb.var()] != LBool::kUndef) {
            const bool vb = fixed_[rb.var()] == LBool::kTrue;
            return set_fixed_value(ra.var(), vb ^ ra.sign() ^ rb.sign());
        }
        if (ra.var() < rb.var()) std::swap(ra, rb);  // smaller index = root
        parent_[ra.var()] = rb.var();
        parity_[ra.var()] = ra.sign() ^ rb.sign();
        has_alias_[rb.var()] = 1;
        ++stats_.equivs_merged;
        return 1;
    }

    /// Substitute representatives/fixed values into a clause.
    ClauseFate normalize_clause(const std::vector<Lit>& in,
                                std::vector<Lit>& out) {
        out.clear();
        for (const Lit l : in) {
            const Lit r = find_lit(l);
            const LBool f = fixed_[r.var()];
            if (f != LBool::kUndef) {
                if ((f == LBool::kTrue) != r.sign()) return ClauseFate::kSatisfied;
                continue;  // false literal: drop
            }
            out.push_back(r);
        }
        std::sort(out.begin(), out.end());
        size_t w = 0;
        for (size_t i = 0; i < out.size(); ++i) {
            if (w > 0 && out[i] == out[w - 1]) continue;  // duplicate literal
            if (w > 0 && out[i].var() == out[w - 1].var())
                return ClauseFate::kTautology;
            out[w++] = out[i];
        }
        out.resize(w);
        return out.empty() ? ClauseFate::kEmpty : ClauseFate::kKeep;
    }

    /// Substitute representatives/fixed values into an XOR constraint;
    /// duplicate variables cancel in GF(2).
    void normalize_xor(std::vector<Var>& vars, bool& rhs) {
        scratch_vars_.clear();
        for (const Var v : vars) {
            const Lit r = find_lit(mk_lit(v, false));
            rhs ^= r.sign();
            const LBool f = fixed_[r.var()];
            if (f != LBool::kUndef) {
                rhs ^= (f == LBool::kTrue);
                continue;
            }
            scratch_vars_.push_back(r.var());
        }
        std::sort(scratch_vars_.begin(), scratch_vars_.end());
        size_t w = 0;
        for (size_t i = 0; i < scratch_vars_.size(); ++i) {
            if (w > 0 && scratch_vars_[i] == scratch_vars_[w - 1]) --w;
            else scratch_vars_[w++] = scratch_vars_[i];
        }
        scratch_vars_.resize(w);
        vars = scratch_vars_;
    }

    // ---- passes -----------------------------------------------------------
    Status begin_pass(ByteSource& src, DimacsTokenizer& tok) {
        if (!first_pass_ && !src.rewind())
            return Status::internal("input source is not rewindable");
        if (!first_pass_) tok.reset();
        first_pass_ = false;
        return Status();
    }

    Status poll(StreamPhase phase, uint64_t round, const DimacsTokenizer& tok,
                uint64_t clauses_seen) {
        if (cfg_.cancel.cancelled())
            return Status::interrupted("stream preprocessing cancelled");
        if (cfg_.on_progress) {
            StreamProgress p;
            p.phase = phase;
            p.round = round;
            p.bytes_read = tok.bytes_consumed();
            p.bytes_total = bytes_total_;
            p.clauses_seen = clauses_seen;
            p.windows_flushed = stats_.windows;
            cfg_.on_progress(p);
        }
        return Status();
    }

    Status discovery_round(ByteSource& src, DimacsTokenizer& tok,
                           uint64_t round, bool& changed);
    Status counting_round(ByteSource& src, DimacsTokenizer& tok);
    Status window_pass(ByteSource& src, DimacsTokenizer& tok,
                       DimacsStreamWriter& writer);
    Status flush_window(DimacsStreamWriter& writer);
    void emit_final_facts(DimacsStreamWriter& writer);
    void emit_xor(DimacsStreamWriter& writer, const std::vector<Var>& vars,
                  bool rhs);

    const StreamPreprocessConfig& cfg_;
    StreamPreprocessStats stats_;
    util::MemoryAccountant acct_;
    uint64_t bytes_total_ = 0;
    uint64_t window_budget_ = 0;
    bool first_pass_ = true;
    bool unsat_ = false;

    std::vector<LBool> fixed_;
    std::vector<Var> parent_;
    std::vector<uint8_t> parity_;
    std::vector<uint8_t> has_alias_;
    std::vector<uint32_t> occ_;     // counting-round clause occurrences
    std::vector<uint8_t> pol_;      // bit0 = positive seen, bit1 = negative
    std::vector<uint8_t> in_xor_;   // appears in some XOR constraint
    std::unique_ptr<BinaryPairFilter> binaries_;

    // Current clause window: flat literal pool + clause boundaries, plus
    // the window's (already normalized) XOR constraints.
    std::vector<Lit> win_pool_;
    std::vector<uint32_t> win_ends_;
    std::vector<XorConstraint> win_xors_;
    uint64_t win_bytes_ = 0;

    uint64_t out_num_vars_ = 0;  // grows when XOR expansion allocates aux vars

    std::vector<Lit> scratch_lits_;
    std::vector<Lit> norm_lits_;
    std::vector<Lit> prev_clause_;
    std::vector<Var> scratch_vars_;
};

Status Pipeline::discovery_round(ByteSource& src, DimacsTokenizer& tok,
                                 uint64_t round, bool& changed) {
    if (Status s = begin_pass(src, tok); !s.ok()) return s;
    ++stats_.discovery_rounds_run;
    changed = false;
    uint64_t seen = 0;
    if (Status s = poll(StreamPhase::kDiscover, round, tok, 0); !s.ok())
        return s;
    for (;;) {
        auto item = tok.next(scratch_lits_);
        if (!item.ok()) return item.status();
        if (*item == DimacsTokenizer::Item::kEof) return Status();
        if (*item == DimacsTokenizer::Item::kHeader) {
            if (Status s = ensure_var(static_cast<Var>(
                    tok.header().vars ? tok.header().vars - 1 : 0));
                !s.ok())
                return s;
            continue;
        }
        for (const Lit l : scratch_lits_)
            if (Status s = ensure_var(l.var()); !s.ok()) return s;

        if (*item == DimacsTokenizer::Item::kClause) {
            switch (normalize_clause(scratch_lits_, norm_lits_)) {
                case ClauseFate::kEmpty:
                    unsat_ = true;
                    return Status();
                case ClauseFate::kSatisfied:
                case ClauseFate::kTautology:
                    break;
                case ClauseFate::kKeep:
                    if (norm_lits_.size() == 1) {
                        const int r = set_fixed_lit(norm_lits_[0]);
                        if (r < 0) { unsat_ = true; return Status(); }
                        if (r > 0) { ++stats_.units_fixed; changed = true; }
                    } else if (norm_lits_.size() == 2) {
                        // (a|b) together with (~a|~b) forces a == ~b.
                        const uint64_t k =
                            BinaryPairFilter::key(norm_lits_[0], norm_lits_[1]);
                        const uint64_t comp = BinaryPairFilter::key(
                            ~norm_lits_[0], ~norm_lits_[1]);
                        if (binaries_->contains(comp)) {
                            const int r = merge(norm_lits_[0], ~norm_lits_[1]);
                            if (r < 0) { unsat_ = true; return Status(); }
                            if (r > 0) changed = true;
                        }
                        binaries_->insert(k);
                    }
                    break;
            }
        } else {  // XOR line
            XorConstraint x = sat::xor_from_dimacs_lits(scratch_lits_);
            normalize_xor(x.vars, x.rhs);
            if (x.vars.empty()) {
                if (x.rhs) { unsat_ = true; return Status(); }
            } else if (x.vars.size() == 1) {
                const int r = set_fixed_value(x.vars[0], x.rhs);
                if (r < 0) { unsat_ = true; return Status(); }
                if (r > 0) { ++stats_.units_fixed; changed = true; }
            } else if (x.vars.size() == 2) {
                // v0 ^ v1 = rhs  <=>  v0 == (v1 ^ rhs)
                const int r = merge(mk_lit(x.vars[0], false),
                                    mk_lit(x.vars[1], x.rhs));
                if (r < 0) { unsat_ = true; return Status(); }
                if (r > 0) changed = true;
            }
        }
        if (++seen % cfg_.progress_interval_clauses == 0)
            if (Status s = poll(StreamPhase::kDiscover, round, tok, seen);
                !s.ok())
                return s;
    }
}

Status Pipeline::counting_round(ByteSource& src, DimacsTokenizer& tok) {
    if (Status s = begin_pass(src, tok); !s.ok()) return s;
    uint64_t seen = 0;
    if (Status s = poll(StreamPhase::kCount, 0, tok, 0); !s.ok()) return s;
    for (;;) {
        auto item = tok.next(scratch_lits_);
        if (!item.ok()) return item.status();
        if (*item == DimacsTokenizer::Item::kEof) break;
        if (*item == DimacsTokenizer::Item::kHeader) {
            if (Status s = ensure_var(static_cast<Var>(
                    tok.header().vars ? tok.header().vars - 1 : 0));
                !s.ok())
                return s;
            continue;
        }
        for (const Lit l : scratch_lits_)
            if (Status s = ensure_var(l.var()); !s.ok()) return s;

        if (*item == DimacsTokenizer::Item::kClause) {
            if (normalize_clause(scratch_lits_, norm_lits_) ==
                ClauseFate::kKeep) {
                for (const Lit l : norm_lits_) {
                    if (occ_[l.var()] != kOccSaturated) ++occ_[l.var()];
                    pol_[l.var()] |= l.sign() ? 2 : 1;
                }
            }
        } else {
            XorConstraint x = sat::xor_from_dimacs_lits(scratch_lits_);
            normalize_xor(x.vars, x.rhs);
            for (const Var v : x.vars) in_xor_[v] = 1;
        }
        if (++seen % cfg_.progress_interval_clauses == 0)
            if (Status s = poll(StreamPhase::kCount, 0, tok, seen); !s.ok())
                return s;
    }

    // The input is now fully scanned: the true variable count is known.
    stats_.num_vars_in = std::max<uint64_t>(tok.header().vars,
                                            tok.max_var_seen());
    out_num_vars_ = stats_.num_vars_in;

    // Pure literals: a representative seen in exactly one polarity (and in
    // no XOR constraint) can be fixed to that polarity; its clauses then
    // drop out at window intake. Equisatisfiable, not model-preserving.
    for (Var v = 0; v < fixed_.size(); ++v) {
        if (parent_[v] != v || fixed_[v] != LBool::kUndef) continue;
        if (occ_[v] == 0 || occ_[v] == kOccSaturated || in_xor_[v]) continue;
        if (pol_[v] == 1 || pol_[v] == 2) {
            set_fixed_value(v, pol_[v] == 1);
            ++stats_.pure_fixed;
        }
    }
    return Status();
}

Status Pipeline::flush_window(DimacsStreamWriter& writer) {
    if (win_ends_.empty() && win_xors_.empty()) return Status();
    ++stats_.windows;

    // Remap the window to a dense local variable space so all per-variable
    // work below is O(window), not O(global vars).
    std::unordered_map<Var, Var> to_local;
    std::vector<Var> to_global;
    auto local_of = [&](Var g) {
        auto [it, inserted] =
            to_local.try_emplace(g, static_cast<Var>(to_global.size()));
        if (inserted) to_global.push_back(g);
        return it->second;
    };

    Cnf win;
    win.clauses.reserve(win_ends_.size());
    uint32_t begin = 0;
    for (const uint32_t end : win_ends_) {
        std::vector<Lit> c;
        c.reserve(end - begin);
        for (uint32_t i = begin; i < end; ++i)
            c.push_back(mk_lit(local_of(win_pool_[i].var()),
                               win_pool_[i].sign()));
        win.clauses.push_back(std::move(c));
        begin = end;
    }
    for (const XorConstraint& x : win_xors_) {
        XorConstraint lx;
        lx.rhs = x.rhs;
        lx.vars.reserve(x.vars.size());
        for (const Var v : x.vars) lx.vars.push_back(local_of(v));
        std::sort(lx.vars.begin(), lx.vars.end());
        win.xors.push_back(std::move(lx));
    }
    win.num_vars = to_global.size();

    // Transient accounting: the remap, occurrence counts and the working
    // copies inside recover_xors/Preprocessor all live only until this
    // window is re-emitted; the window budget was sized with
    // kWindowExpansion headroom for exactly this.
    uint64_t transient =
        win_bytes_ * 2 + static_cast<uint64_t>(to_global.size()) * 64;
    acct_.charge(transient);

    std::vector<uint32_t> local_occ(win.num_vars, 0);
    for (const auto& c : win.clauses)
        for (const Lit l : c) ++local_occ[l.var()];

    // XOR recovery over the window, then GF(2) elimination over recovered
    // plus native rows: the same gf2 kernel the ANF pipeline uses. Unit
    // rows become global facts, the reduced basis is re-emitted (which
    // preserves the XOR row space, so dropping the pre-elimination rows
    // is sound).
    std::vector<XorConstraint> rows =
        sat::recover_xors(win, cfg_.xor_max_len);
    stats_.xors_recovered += rows.size();
    const size_t native_rows = win.xors.size();
    for (const XorConstraint& x : win.xors) rows.push_back(x);
    std::vector<XorConstraint> kept;
    bool eliminate = !rows.empty();
    if (eliminate) {
        std::vector<Var> xvars;
        for (const XorConstraint& x : rows)
            xvars.insert(xvars.end(), x.vars.begin(), x.vars.end());
        std::sort(xvars.begin(), xvars.end());
        xvars.erase(std::unique(xvars.begin(), xvars.end()), xvars.end());

        // Budget cap on the elimination matrix: one window_budget_ share
        // of the avail pool was reserved for it (see kWindowExpansion).
        // Excess *recovered* rows may be dropped -- their defining clauses
        // stay in the window, so the constraint is not lost -- but native
        // "x" rows are the only representation of their constraint and
        // must survive: if they alone overflow the cap, skip elimination
        // and re-emit them untouched.
        const uint64_t row_bytes =
            ((static_cast<uint64_t>(xvars.size()) + 1 + 63) / 64) * 8;
        const uint64_t max_rows =
            row_bytes ? window_budget_ / row_bytes : rows.size();
        if (rows.size() > max_rows) {
            if (native_rows >= max_rows) {
                eliminate = false;
                kept = win.xors;
            } else {
                const size_t keep_recovered =
                    static_cast<size_t>(max_rows) - native_rows;
                rows.erase(rows.begin() + keep_recovered,
                           rows.begin() + (rows.size() - native_rows));
            }
        }
        if (eliminate) {
            std::unordered_map<Var, size_t> xcol;
            for (size_t i = 0; i < xvars.size(); ++i) xcol.emplace(xvars[i], i);

            gf2::Matrix m(rows.size(), xvars.size() + 1);
            for (size_t r = 0; r < rows.size(); ++r) {
                for (const Var v : rows[r].vars) m.flip(r, xcol[v]);
                if (rows[r].rhs) m.flip(r, xvars.size());
            }
            const uint64_t matrix_bytes =
                m.rows() * ((m.cols() + 63) / 64) * 8;
            acct_.charge(matrix_bytes);
            transient += matrix_bytes;
            m.rref();
            for (size_t r = 0; r < m.rows(); ++r) {
                XorConstraint x;
                for (size_t c = 0; c < xvars.size(); ++c)
                    if (m.get(r, c)) x.vars.push_back(xvars[c]);
                x.rhs = m.get(r, xvars.size());
                if (x.vars.empty()) {
                    if (x.rhs) { unsat_ = true; return Status(); }
                    continue;
                }
                if (x.vars.size() == 1) {
                    const int res =
                        set_fixed_value(to_global[x.vars[0]], x.rhs);
                    if (res < 0) { unsat_ = true; return Status(); }
                    if (res > 0) ++stats_.xor_units;
                    // Inject as a unit clause so the window's own propagation
                    // benefits from it immediately.
                    win.clauses.push_back(
                        {mk_lit(x.vars[0], /*negated=*/!x.rhs)});
                    continue;
                }
                kept.push_back(std::move(x));
            }
            }
    }
    win.xors = std::move(kept);  // Preprocessor freezes these variables

    // Windowed BVE gate: a variable may be eliminated only if all of its
    // clause occurrences (per the counting round, an overestimate of what
    // remains) are inside this window, it is in no XOR constraint, and it
    // carries no alias-emission obligation.
    std::vector<bool> frozen(win.num_vars, false);
    for (Var lv = 0; lv < win.num_vars; ++lv) {
        const Var gv = to_global[lv];
        frozen[lv] = in_xor_[gv] || has_alias_[gv] ||
                     occ_[gv] == kOccSaturated || local_occ[lv] != occ_[gv];
    }

    sat::Preprocessor::Config pc;
    pc.max_passes = cfg_.window_passes;
    if (!cfg_.window_bve) pc.max_occurrences = 0;  // BVE never fires
    sat::Preprocessor pp(pc);
    if (!pp.simplify(win, frozen)) {
        unsat_ = true;
        return Status();
    }
    stats_.subsumed += pp.subsumed_clauses();
    stats_.strengthened += pp.strengthened_clauses();
    stats_.bve_eliminated += pp.eliminated_vars();

    // Re-emit: surviving clauses in global variable space; unit clauses
    // are promoted to global facts instead (the final fact emission writes
    // them once).
    std::vector<Lit> gclause;
    for (const auto& c : win.clauses) {
        if (c.size() == 1) {
            const int res = set_fixed_lit(
                mk_lit(to_global[c[0].var()], c[0].sign()));
            if (res < 0) { unsat_ = true; return Status(); }
            if (res > 0) ++stats_.units_fixed;
            continue;
        }
        gclause.clear();
        for (const Lit l : c)
            gclause.push_back(mk_lit(to_global[l.var()], l.sign()));
        writer.clause(gclause);
        ++stats_.clauses_out;
    }
    for (const XorConstraint& x : win.xors) {
        scratch_vars_.clear();
        for (const Var lv : x.vars) scratch_vars_.push_back(to_global[lv]);
        std::sort(scratch_vars_.begin(), scratch_vars_.end());
        emit_xor(writer, scratch_vars_, x.rhs);
    }

    if (!writer.ok())
        return Status::io_error(
            "write to preprocessed output failed (short write or no space "
            "left on device)");

    acct_.release(transient + win_bytes_);
    win_pool_.clear();
    win_ends_.clear();
    win_xors_.clear();
    win_bytes_ = 0;
    return Status();
}

void Pipeline::emit_xor(DimacsStreamWriter& writer,
                        const std::vector<Var>& vars, bool rhs) {
    ++stats_.xors_out;
    if (cfg_.emit_xor_lines) {
        writer.xline(vars, rhs);
        return;
    }
    // Expand to plain clauses; auxiliary cut variables are allocated past
    // the input's variable range.
    Cnf tmp;
    tmp.num_vars = out_num_vars_;
    sat::append_xor_as_clauses(tmp, XorConstraint{vars, rhs});
    out_num_vars_ = tmp.num_vars;
    for (const auto& c : tmp.clauses) {
        writer.clause(c);
        ++stats_.clauses_out;
    }
}

Status Pipeline::window_pass(ByteSource& src, DimacsTokenizer& tok,
                             DimacsStreamWriter& writer) {
    if (Status s = begin_pass(src, tok); !s.ok()) return s;
    prev_clause_.clear();
    if (Status s = poll(StreamPhase::kWindow, 0, tok, 0); !s.ok()) return s;
    for (;;) {
        auto item = tok.next(scratch_lits_);
        if (!item.ok()) return item.status();
        if (*item == DimacsTokenizer::Item::kEof) break;
        if (*item == DimacsTokenizer::Item::kHeader) continue;

        if (*item == DimacsTokenizer::Item::kClause) {
            ++stats_.clauses_in;
            switch (normalize_clause(scratch_lits_, norm_lits_)) {
                case ClauseFate::kEmpty:
                    unsat_ = true;
                    return Status();
                case ClauseFate::kSatisfied:
                    ++stats_.satisfied_dropped;
                    break;
                case ClauseFate::kTautology:
                    ++stats_.tautologies_dropped;
                    break;
                case ClauseFate::kKeep:
                    if (norm_lits_.size() == 1) {
                        const int r = set_fixed_lit(norm_lits_[0]);
                        if (r < 0) { unsat_ = true; return Status(); }
                        if (r > 0) ++stats_.units_fixed;
                        break;
                    }
                    if (norm_lits_ == prev_clause_) {
                        ++stats_.duplicates_dropped;  // cheap adjacent dedup
                        break;
                    }
                    prev_clause_ = norm_lits_;
                    win_pool_.insert(win_pool_.end(), norm_lits_.begin(),
                                     norm_lits_.end());
                    win_ends_.push_back(
                        static_cast<uint32_t>(win_pool_.size()));
                    win_bytes_ += norm_lits_.size() * 4 + 8;
                    break;
            }
        } else {
            ++stats_.xors_in;
            XorConstraint x = sat::xor_from_dimacs_lits(scratch_lits_);
            normalize_xor(x.vars, x.rhs);
            if (x.vars.empty()) {
                if (x.rhs) { unsat_ = true; return Status(); }
            } else if (x.vars.size() == 1) {
                const int r = set_fixed_value(x.vars[0], x.rhs);
                if (r < 0) { unsat_ = true; return Status(); }
                if (r > 0) ++stats_.units_fixed;
            } else {
                win_bytes_ += x.vars.size() * 8 + 16;
                win_xors_.push_back(std::move(x));
            }
        }
        if (win_bytes_ >= window_budget_) {
            acct_.charge(win_bytes_);  // high-water mark of the raw window
            if (Status s = flush_window(writer); !s.ok()) return s;
            if (unsat_) return Status();
            if (Status s = poll(StreamPhase::kWindow, 0, tok,
                                stats_.clauses_in);
                !s.ok())
                return s;
        }
        if (stats_.clauses_in % cfg_.progress_interval_clauses == 0)
            if (Status s = poll(StreamPhase::kWindow, 0, tok,
                                stats_.clauses_in);
                !s.ok())
                return s;
    }
    acct_.charge(win_bytes_);
    return flush_window(writer);
}

void Pipeline::emit_final_facts(DimacsStreamWriter& writer) {
    for (Var v = 0; v < fixed_.size(); ++v) {
        if (v >= stats_.num_vars_in) break;  // never-seen padding
        if (parent_[v] != v) {
            const Lit r = find_lit(mk_lit(v, false));  // v == literal r
            if (fixed_[r.var()] != LBool::kUndef) {
                const bool val =
                    (fixed_[r.var()] == LBool::kTrue) != r.sign();
                writer.unit(mk_lit(v, !val));
            } else {
                writer.clause({mk_lit(v, true), r});   // ~v | r
                writer.clause({mk_lit(v, false), ~r}); //  v | ~r
                stats_.clauses_out += 1;  // the unit path adds one below too
            }
            ++stats_.clauses_out;
            continue;
        }
        if (fixed_[v] != LBool::kUndef) {
            writer.unit(mk_lit(v, fixed_[v] == LBool::kFalse));
            ++stats_.clauses_out;
        }
    }
}

Result<StreamPreprocessStats> Pipeline::run(ByteSource& src,
                                            uint64_t bytes_total,
                                            std::ostream& out) {
    const Timer timer;
    bytes_total_ = bytes_total;
    stats_.bytes_in = bytes_total;

    // ---- budget layout ----------------------------------------------------
    const uint64_t budget = cfg_.memory_budget_bytes;
    const uint64_t chunk = std::clamp<uint64_t>(
        cfg_.read_chunk_bytes, 4096, std::max<uint64_t>(4096, budget / 8));
    size_t slots = 512;
    while (slots * 8 < std::min<uint64_t>(budget / 16, 32ull << 20) &&
           slots < (1u << 22))
        slots *= 2;
    binaries_ = std::make_unique<BinaryPairFilter>(slots);
    acct_.charge(chunk + binaries_->bytes());

    DimacsTokenizer tok(src, {.chunk_bytes = static_cast<size_t>(chunk)});
    DimacsStreamWriter writer(out);

    // ---- discovery rounds -------------------------------------------------
    for (int round = 1; round <= cfg_.discovery_rounds && !unsat_; ++round) {
        bool changed = false;
        if (Status s = discovery_round(src, tok, round, changed); !s.ok())
            return s;
        if (!changed) break;
    }

    // ---- counting round (always runs: fixes the variable universe) -------
    if (!unsat_) {
        if (Status s = counting_round(src, tok); !s.ok()) return s;
    } else {
        stats_.num_vars_in =
            std::max<uint64_t>(tok.header().vars, tok.max_var_seen());
        out_num_vars_ = stats_.num_vars_in;
    }

    // ---- window sizing ----------------------------------------------------
    const uint64_t avail =
        budget > acct_.current() ? budget - acct_.current() : 0;
    if (avail < kMinAvailBytes)
        return Status::invalid_argument(
            "memory_budget_bytes too small: fixed state uses " +
            std::to_string(acct_.current()) + " of " + std::to_string(budget) +
            " bytes, leaving less than " + std::to_string(kMinAvailBytes) +
            " for the clause window");
    window_budget_ = std::max(avail / kWindowExpansion, kMinWindowBytes);

    // ---- window pass ------------------------------------------------------
    if (!unsat_) {
        if (Status s = window_pass(src, tok, writer); !s.ok()) return s;
    }

    if (unsat_) {
        // Short-circuit: append a contradiction; everything already emitted
        // is implied by the input, so the output stays equisatisfiable
        // (both sides UNSAT).
        writer.unit(mk_lit(0, false));
        writer.unit(mk_lit(0, true));
        stats_.clauses_out += 2;
        stats_.verdict = sat::Result::kUnsat;
        out_num_vars_ = std::max<uint64_t>(out_num_vars_, 1);
    } else {
        emit_final_facts(writer);
    }

    stats_.num_vars_out = std::max<uint64_t>(out_num_vars_, 1);
    stats_.bytes_out = writer.finish(stats_.num_vars_out);
    if (!writer.ok())
        return Status::io_error(
            "write to preprocessed output failed (short write or no space "
            "left on device)");
    stats_.peak_accounted_bytes = acct_.peak();
    stats_.peak_rss_bytes = util::peak_rss_bytes();
    stats_.seconds = timer.seconds();
    return stats_;
}

}  // namespace

std::string stream_summary_line(const StreamPreprocessStats& s) {
    char buf[512];
    const double mb = static_cast<double>(s.bytes_in) / (1024.0 * 1024.0);
    const double mbps = s.seconds > 0 ? mb / s.seconds : 0.0;
    std::snprintf(
        buf, sizeof buf,
        "c stream: %llu->%llu clauses, xors in=%llu recovered=%llu "
        "out=%llu, units=%llu (xor=%llu) pure=%llu equiv=%llu, "
        "dropped sat=%llu taut=%llu dup=%llu, subsumed=%llu "
        "strengthened=%llu bve=%llu, windows=%llu rounds=%llu, "
        "%.1f MB at %.1f MB/s, peak %.1f MiB accounted / %.1f MiB rss%s",
        static_cast<unsigned long long>(s.clauses_in),
        static_cast<unsigned long long>(s.clauses_out),
        static_cast<unsigned long long>(s.xors_in),
        static_cast<unsigned long long>(s.xors_recovered),
        static_cast<unsigned long long>(s.xors_out),
        static_cast<unsigned long long>(s.units_fixed),
        static_cast<unsigned long long>(s.xor_units),
        static_cast<unsigned long long>(s.pure_fixed),
        static_cast<unsigned long long>(s.equivs_merged),
        static_cast<unsigned long long>(s.satisfied_dropped),
        static_cast<unsigned long long>(s.tautologies_dropped),
        static_cast<unsigned long long>(s.duplicates_dropped),
        static_cast<unsigned long long>(s.subsumed),
        static_cast<unsigned long long>(s.strengthened),
        static_cast<unsigned long long>(s.bve_eliminated),
        static_cast<unsigned long long>(s.windows),
        static_cast<unsigned long long>(s.discovery_rounds_run), mb, mbps,
        static_cast<double>(s.peak_accounted_bytes) / (1024.0 * 1024.0),
        static_cast<double>(s.peak_rss_bytes) / (1024.0 * 1024.0),
        s.verdict == sat::Result::kUnsat ? ", refuted (UNSAT)" : "");
    return buf;
}

Result<StreamPreprocessStats> StreamPreprocessor::run(
    const std::string& input_path, const std::string& output_path) {
    stream::FileByteSource src(input_path);
    if (!src.is_open())
        return Status::io_error("cannot read " + input_path);

    // Emit into a sibling temp file and rename into place only after a
    // fully flushed, validated run: a crash or an I/O failure mid-emit can
    // never leave a truncated file masquerading as preprocessed output,
    // and a pre-existing file at output_path survives a failed run intact.
    const std::string tmp_path = output_path + ".tmp";
    Result<StreamPreprocessStats> r = Status::internal("unreachable");
    {
        std::ofstream out(tmp_path,
                          std::ios::binary | std::ios::trunc | std::ios::out);
        if (!out) return Status::io_error("cannot write " + tmp_path);
        Pipeline pipeline(cfg_);
        r = pipeline.run(src, src.size_bytes(), out);
        if (r.ok()) {
            out.flush();
            if (!out)
                r = Status::io_error("write to " + tmp_path + " failed");
        }
    }
    if (!r.ok()) {
        std::remove(tmp_path.c_str());
        return r;
    }
    if (std::rename(tmp_path.c_str(), output_path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        return Status::io_error("cannot move " + tmp_path + " into place at " +
                                output_path);
    }
    return r;
}

Result<StreamPreprocessStats> StreamPreprocessor::run_text(
    const std::string& input_text, std::string* output_text) {
    if (!output_text)
        return Status::invalid_argument("output_text must not be null");
    output_text->clear();
    stream::StringByteSource src(input_text);
    std::ostringstream out;
    Pipeline pipeline(cfg_);
    auto r = pipeline.run(src, src.size_bytes(), out);
    if (r.ok()) *output_text = out.str();
    return r;
}

}  // namespace bosphorus
