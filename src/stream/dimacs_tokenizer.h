// Chunked byte sources and an incremental DIMACS tokenizer: the parsing
// substrate of the out-of-core streaming preprocessor, shared with (and
// hardening) the whole-file reader in src/sat/dimacs.cpp.
//
// The tokenizer pulls fixed-size chunks from a ByteSource and yields one
// item (header / clause / XOR line) per next() call into a caller-owned
// literal buffer, so a multi-gigabyte formula is parsed in O(chunk) memory
// with zero per-clause allocation beyond that buffer. Unlike the old
// line-based reader it is strict where silent truncation used to hide
// corrupt input: literal and header overflow, clauses before (or without)
// a 'p cnf' header, negative-zero literals, stray bytes and clauses left
// unterminated at EOF all yield structured kParseError Status values with
// the offending line number. Deliberately *more* permissive than the old
// reader where DIMACS-in-the-wild needs it: clauses may span lines,
// comments and final clauses need no trailing newline, and literals may
// exceed the declared variable count (the count grows).
#pragma once

#include <cstdint>
#include <cstdio>
#include <istream>
#include <string>
#include <vector>

#include "bosphorus/status.h"
#include "sat/types.h"

namespace bosphorus::stream {

/// Largest 1-based DIMACS variable index the engine can represent: the
/// internal Lit packs (var << 1) | sign into 32 bits with 0xFFFFFFFF
/// reserved as the undefined literal, leaving indices 1..2^31-2.
inline constexpr uint64_t kMaxDimacsVar = 0x7FFFFFFEull;

/// Pull-based byte stream the tokenizer reads chunks from.
class ByteSource {
public:
    virtual ~ByteSource() = default;

    /// Read up to `cap` bytes into `buf`; returns the number produced.
    /// 0 means end of input (check bad() to distinguish I/O failure).
    virtual size_t read(char* buf, size_t cap) = 0;

    /// True once a read failed with an I/O error (sticky; EOF is not bad).
    virtual bool bad() const { return false; }

    /// Seek back to the beginning for another pass. Returns false if the
    /// source is not rewindable.
    virtual bool rewind() { return false; }
};

/// A regular file opened with stdio; rewindable, knows its size.
class FileByteSource final : public ByteSource {
public:
    explicit FileByteSource(const std::string& path);
    ~FileByteSource() override;
    FileByteSource(const FileByteSource&) = delete;
    FileByteSource& operator=(const FileByteSource&) = delete;

    bool is_open() const { return f_ != nullptr; }
    uint64_t size_bytes() const { return size_; }

    size_t read(char* buf, size_t cap) override;
    bool bad() const override { return bad_; }
    bool rewind() override;

private:
    std::FILE* f_ = nullptr;
    bool bad_ = false;
    uint64_t size_ = 0;
};

/// Adapter over a std::istream (not rewindable in general; used by the
/// whole-file read_dimacs path).
class IstreamByteSource final : public ByteSource {
public:
    explicit IstreamByteSource(std::istream& in) : in_(in) {}
    size_t read(char* buf, size_t cap) override;
    bool bad() const override;

private:
    std::istream& in_;
};

/// An in-memory string; rewindable (tests, run_text).
class StringByteSource final : public ByteSource {
public:
    explicit StringByteSource(const std::string& text) : text_(text) {}
    size_t read(char* buf, size_t cap) override;
    bool rewind() override {
        pos_ = 0;
        return true;
    }
    uint64_t size_bytes() const { return text_.size(); }

private:
    const std::string& text_;
    size_t pos_ = 0;
};

/// The "p cnf <vars> <clauses>" declaration.
struct DimacsHeader {
    uint64_t vars = 0;
    uint64_t clauses = 0;
};

/// Incremental DIMACS scanner: one clause / XOR line / header per next().
class DimacsTokenizer {
public:
    enum class Item : uint8_t { kHeader, kClause, kXor, kEof };

    struct Config {
        /// Bytes pulled from the ByteSource per refill.
        size_t chunk_bytes = 1 << 20;
    };

    explicit DimacsTokenizer(ByteSource& src)
        : DimacsTokenizer(src, Config{}) {}
    DimacsTokenizer(ByteSource& src, Config cfg);

    /// Produce the next item. For kClause/kXor the literals are written to
    /// `lits` (for an XOR line these are the raw signed literals; use
    /// sat::xor_from_dimacs_lits to fold signs into the rhs). Returns a
    /// kParseError / kIoError Status on malformed or unreadable input.
    ::bosphorus::Result<Item> next(std::vector<sat::Lit>& lits);

    /// The declaration; valid once header_seen().
    const DimacsHeader& header() const { return header_; }
    bool header_seen() const { return header_seen_; }

    /// 1-based line of the byte about to be consumed (error reporting).
    uint64_t line() const { return line_; }

    /// Bytes consumed from the source so far (progress reporting).
    uint64_t bytes_consumed() const { return consumed_; }

    /// Largest 1-based variable index seen in any literal so far.
    uint64_t max_var_seen() const { return max_var_; }

    /// Heap bytes held by the chunk buffer (memory accounting).
    size_t buffer_bytes() const { return buf_.capacity(); }

    /// Forget all state for a fresh pass (caller rewinds the ByteSource).
    void reset();

private:
    int peek();
    void advance();
    bool refill();
    ::bosphorus::Status err(const std::string& what) const;
    ::bosphorus::Result<Item> parse_header();
    ::bosphorus::Status parse_literals(std::vector<sat::Lit>& lits);

    ByteSource& src_;
    std::vector<char> buf_;
    size_t pos_ = 0;
    size_t len_ = 0;
    bool eof_ = false;
    uint64_t line_ = 1;
    uint64_t consumed_ = 0;
    uint64_t max_var_ = 0;
    DimacsHeader header_;
    bool header_seen_ = false;
};

}  // namespace bosphorus::stream
