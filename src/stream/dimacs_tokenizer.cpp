#include "stream/dimacs_tokenizer.h"

#include <sys/stat.h>

#include <cctype>

#include "util/fault.h"

namespace bosphorus::stream {

using ::bosphorus::Result;
using ::bosphorus::Status;

// ---- byte sources ----------------------------------------------------------

FileByteSource::FileByteSource(const std::string& path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (!f_) return;
    struct stat st;
    if (::fstat(fileno(f_), &st) == 0 && S_ISREG(st.st_mode))
        size_ = static_cast<uint64_t>(st.st_size);
}

FileByteSource::~FileByteSource() {
    if (f_) std::fclose(f_);
}

size_t FileByteSource::read(char* buf, size_t cap) {
    if (!f_) return 0;
    if (fault::FaultInjector::global().should_fire(
            fault::Site::kIoReadError)) {
        bad_ = true;  // sticky, exactly like a real fread failure
        return 0;
    }
    const size_t n = std::fread(buf, 1, cap, f_);
    if (n < cap && std::ferror(f_)) bad_ = true;
    return n;
}

bool FileByteSource::rewind() {
    if (!f_) return false;
    std::clearerr(f_);
    return std::fseek(f_, 0, SEEK_SET) == 0;
}

size_t IstreamByteSource::read(char* buf, size_t cap) {
    in_.read(buf, static_cast<std::streamsize>(cap));
    return static_cast<size_t>(in_.gcount());
}

bool IstreamByteSource::bad() const { return in_.bad(); }

size_t StringByteSource::read(char* buf, size_t cap) {
    const size_t n = std::min(cap, text_.size() - pos_);
    text_.copy(buf, n, pos_);
    pos_ += n;
    return n;
}

// ---- tokenizer -------------------------------------------------------------

DimacsTokenizer::DimacsTokenizer(ByteSource& src, Config cfg) : src_(src) {
    buf_.resize(std::max<size_t>(cfg.chunk_bytes, 64));
}

void DimacsTokenizer::reset() {
    pos_ = len_ = 0;
    eof_ = false;
    line_ = 1;
    consumed_ = 0;
    max_var_ = 0;
    header_ = {};
    header_seen_ = false;
}

bool DimacsTokenizer::refill() {
    if (eof_) return false;
    pos_ = 0;
    len_ = src_.read(buf_.data(), buf_.size());
    if (len_ == 0) {
        eof_ = true;
        return false;
    }
    return true;
}

int DimacsTokenizer::peek() {
    if (pos_ == len_ && !refill()) return -1;
    return static_cast<unsigned char>(buf_[pos_]);
}

void DimacsTokenizer::advance() {
    if (buf_[pos_] == '\n') ++line_;
    ++pos_;
    ++consumed_;
}

Status DimacsTokenizer::err(const std::string& what) const {
    return Status::parse_error("DIMACS line " + std::to_string(line_) + ": " +
                               what);
}

Result<DimacsTokenizer::Item> DimacsTokenizer::parse_header() {
    advance();  // consume 'p'
    // Expect whitespace, the word "cnf", then two non-negative counts.
    auto skip_blanks = [&]() {
        int c;
        while ((c = peek()) == ' ' || c == '\t' || c == '\r') advance();
        return peek();
    };
    if (skip_blanks() == -1) return err("truncated 'p cnf' header");
    std::string fmt;
    int c;
    while ((c = peek()) != -1 && !std::isspace(c)) {
        fmt.push_back(static_cast<char>(c));
        advance();
    }
    if (fmt != "cnf") return err("expected 'p cnf' header, got 'p " + fmt + "'");

    uint64_t counts[2] = {0, 0};
    for (uint64_t& out : counts) {
        if (skip_blanks() == -1 || !std::isdigit(peek()))
            return err("'p cnf' header needs two non-negative counts");
        uint64_t v = 0;
        while ((c = peek()) != -1 && std::isdigit(c)) {
            v = v * 10 + static_cast<uint64_t>(c - '0');
            if (v > (1ull << 62)) return err("'p cnf' header count overflows");
            advance();
        }
        out = v;
    }
    if (counts[0] > kMaxDimacsVar)
        return err("declared variable count " + std::to_string(counts[0]) +
                   " exceeds the representable maximum " +
                   std::to_string(kMaxDimacsVar));
    // Ignore anything else on the header line (matches common practice).
    while ((c = peek()) != -1 && c != '\n') advance();
    header_.vars = counts[0];
    header_.clauses = counts[1];
    header_seen_ = true;
    return Item::kHeader;
}

Status DimacsTokenizer::parse_literals(std::vector<sat::Lit>& lits) {
    lits.clear();
    for (;;) {
        int c = peek();
        while (c != -1 && std::isspace(c)) {
            advance();
            c = peek();
        }
        if (c == -1) {
            if (src_.bad()) return Status::io_error("read error mid-clause");
            return err("unexpected end of file inside a clause "
                       "(missing terminating 0)");
        }
        bool neg = false;
        if (c == '-') {
            neg = true;
            advance();
            c = peek();
        }
        if (c == -1 || !std::isdigit(c))
            return err("expected a literal, got " +
                       (c == -1 ? std::string("end of file")
                                : "'" + std::string(1, char(c)) + "'"));
        uint64_t v = 0;
        while ((c = peek()) != -1 && std::isdigit(c)) {
            v = v * 10 + static_cast<uint64_t>(c - '0');
            if (v > kMaxDimacsVar)
                return err("literal magnitude exceeds the representable "
                           "maximum " +
                           std::to_string(kMaxDimacsVar));
            advance();
        }
        if (c != -1 && !std::isspace(c))
            return err("malformed literal (unexpected '" +
                       std::string(1, char(c)) + "')");
        if (v == 0) {
            if (neg) return err("'-0' is not a valid literal");
            return Status();  // terminating 0
        }
        if (v > max_var_) max_var_ = v;
        lits.push_back(sat::mk_lit(static_cast<sat::Var>(v - 1), neg));
    }
}

Result<DimacsTokenizer::Item> DimacsTokenizer::next(
    std::vector<sat::Lit>& lits) {
    for (;;) {
        const int c = peek();
        if (c == -1) {
            if (src_.bad()) return Status::io_error("read error");
            if (!header_seen_)
                return Status::parse_error("missing 'p cnf' header");
            return Item::kEof;
        }
        if (std::isspace(c)) {
            advance();
            continue;
        }
        if (c == 'c') {  // comment: skip to end of line (or EOF)
            int d;
            while ((d = peek()) != -1 && d != '\n') advance();
            continue;
        }
        if (c == 'p') {
            if (header_seen_) return err("duplicate 'p cnf' header");
            return parse_header();
        }
        if (c == 'x') {
            if (!header_seen_)
                return err("XOR line before the 'p cnf' header");
            advance();
            if (const Status s = parse_literals(lits); !s.ok()) return s;
            return Item::kXor;
        }
        if (c == '-' || std::isdigit(c)) {
            if (!header_seen_)
                return err("clause before the 'p cnf' header");
            if (const Status s = parse_literals(lits); !s.ok()) return s;
            return Item::kClause;
        }
        return err("unexpected character '" + std::string(1, char(c)) + "'");
    }
}

}  // namespace bosphorus::stream
