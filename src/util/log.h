// Minimal leveled logging used by the Bosphorus pipeline.
//
// Verbosity is a per-call-site argument rather than a global so that library
// users can run components at different verbosities in the same process.
#pragma once

#include <cstdio>
#include <string>

namespace bosphorus {

/// Verbosity levels: 0 = silent, 1 = phase summaries, 2 = per-iteration
/// detail, 3 = everything (learnt facts, matrix shapes, ...).
struct Log {
    int verbosity = 0;

    template <typename... Args>
    void info(int level, const char* fmt, Args... args) const {
        if (verbosity >= level) {
            std::fprintf(stderr, "c ");
            std::fprintf(stderr, fmt, args...);
            std::fprintf(stderr, "\n");
        }
    }

    void info(int level, const char* msg) const {
        if (verbosity >= level) std::fprintf(stderr, "c %s\n", msg);
    }
};

}  // namespace bosphorus
