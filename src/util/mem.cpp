#include "util/mem.h"

#include <cstdio>
#include <cstring>

namespace bosphorus::util {

namespace {

/// Parse "<key>:  <n> kB" out of /proc/self/status; 0 if unavailable.
uint64_t proc_status_kb(const char* key) {
#ifdef __linux__
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (!f) return 0;
    char line[256];
    unsigned long long kb = 0;
    const size_t key_len = std::strlen(key);
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
            std::sscanf(line + key_len + 1, "%llu", &kb);
            break;
        }
    }
    std::fclose(f);
    return kb * 1024;
#else
    (void)key;
    return 0;
#endif
}

}  // namespace

uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM"); }

uint64_t current_rss_bytes() { return proc_status_kb("VmRSS"); }

}  // namespace bosphorus::util
