// Deterministic fault injection: named failure sites compiled into the
// production binary, inert (one relaxed atomic load) until a plan arms
// them.
//
// A plan is a comma-separated list of `site=probability` entries plus an
// optional `seed=N`, e.g.
//
//     backend-crash=0.3,io-enospc=1,seed=42
//
// armed via the BOSPHORUS_FAULT_PLAN environment variable, the
// `--fault-plan` CLI flag, or ServiceConfig::fault_plan. Each entry may
// cap its firings with `@N` (`backend-crash=1@2`: the first two
// evaluations fire, the rest pass).
//
// Determinism: every evaluation of a site draws the next element of a
// per-site pseudo-random sequence derived from (seed, site, per-site
// evaluation counter) via splitmix64. The counter is a single atomic, so
// concurrent threads split the sequence between them -- WHICH thread sees
// a firing may vary, but the multiset of fire/pass outcomes over the
// first k evaluations of a site is a pure function of (plan, k). That is
// what the fault-injection tests pin down under BOSPHORUS_TEST_SEED.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bosphorus/status.h"

namespace bosphorus::fault {

/// Every named injection site. Keep site_name() in sync.
enum class Site : uint8_t {
    kBackendCrash = 0,   ///< external solver dies (as if the child crashed)
    kBackendHang,        ///< external solver hangs until timeout/interrupt
    kBackendGarbage,     ///< solver emits unparseable / nonconforming output
    kIoShortWrite,       ///< a file write persists fewer bytes than asked
    kIoEnospc,           ///< a file write fails outright (disk full)
    kIoReadError,        ///< a file read fails mid-stream (EIO)
    kQueueDelay,         ///< service dispatch stalls a queued job
    kCount_              ///< sentinel, not a site
};

inline constexpr size_t kNumSites = static_cast<size_t>(Site::kCount_);

/// The wire/plan name of a site ("backend-crash", ...).
const char* site_name(Site s);

/// Per-site counters, as returned by FaultInjector::stats().
struct SiteStats {
    uint64_t evaluated = 0;  ///< should_fire() calls while armed
    uint64_t fired = 0;      ///< of those, how many injected the fault
};

/// The process-global injector. Thread-safe throughout; disarmed cost is
/// one relaxed atomic load per should_fire().
class FaultInjector {
public:
    /// The singleton. On first use, arms itself from BOSPHORUS_FAULT_PLAN
    /// if that variable is set and non-empty (a malformed env plan aborts
    /// via the returned-status-ignored path: it is logged to stderr and
    /// left disarmed rather than silently half-armed).
    static FaultInjector& global();

    /// Parse `plan` and arm. An empty plan disarms. Replaces any previous
    /// plan and resets all counters. kInvalidArgument on syntax errors,
    /// unknown sites, or probabilities outside [0,1]; the previous plan
    /// stays in force on error.
    Status arm(const std::string& plan);

    /// Drop the plan; every site becomes a guaranteed pass.
    void disarm();

    /// True iff a non-empty plan is in force.
    bool armed() const { return armed_.load(std::memory_order_relaxed); }

    /// Should the fault at `site` fire now? False always when disarmed.
    bool should_fire(Site site);

    /// The plan string currently armed ("" when disarmed).
    std::string plan() const;

    /// Snapshot of per-site counters (all sites, armed or not), in Site
    /// enum order.
    std::vector<std::pair<std::string, SiteStats>> stats() const;

    /// Total faults injected since the last arm()/disarm().
    uint64_t total_fired() const;

private:
    FaultInjector() = default;

    std::atomic<bool> armed_{false};
    mutable std::mutex mu_;  // guards plan_/prob_/cap_ (reads under arm race)
    std::string plan_;
    uint64_t seed_ = 1;
    // Per-site firing threshold in 2^-64 units (0 = never) and cap
    // (UINT64_MAX = uncapped). Written under mu_ with armed_ false, read
    // lock-free from should_fire() -- the release store to armed_ in arm()
    // publishes them.
    uint64_t threshold_[kNumSites] = {};
    uint64_t cap_[kNumSites] = {};
    std::atomic<uint64_t> evaluated_[kNumSites] = {};
    std::atomic<uint64_t> fired_[kNumSites] = {};
};

/// RAII plan for tests: arms on construction, restores the previous plan
/// on destruction.
class ScopedFaultPlan {
public:
    explicit ScopedFaultPlan(const std::string& plan)
        : previous_(FaultInjector::global().plan()) {
        status_ = FaultInjector::global().arm(plan);
    }
    ~ScopedFaultPlan() { (void)FaultInjector::global().arm(previous_); }
    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

    const Status& status() const { return status_; }

private:
    std::string previous_;
    Status status_;
};

}  // namespace bosphorus::fault
