// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (XL/ElimLin subsampling, VSIDS
// tie-breaking, benchmark instance generation) draw from this generator so
// that a given seed reproduces a run bit-for-bit across platforms.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bosphorus {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
/// Seeded through splitmix64 so that low-entropy seeds (0, 1, 2, ...) still
/// yield well-distributed initial states.
class Rng {
public:
    explicit Rng(uint64_t seed = 0xB05F0125ULL) { reseed(seed); }

    void reseed(uint64_t seed) {
        uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step
            x += 0x9E3779B97F4A7C15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    uint64_t next() {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    uint64_t below(uint64_t bound) {
        // Debiased via rejection sampling on the top of the range.
        const uint64_t threshold = -bound % bound;
        for (;;) {
            const uint64_t r = next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform double in [0, 1).
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    bool coin() { return (next() & 1ULL) != 0; }

    /// Fisher-Yates shuffle.
    template <typename Vec>
    void shuffle(Vec& v) {
        for (size_t i = v.size(); i > 1; --i) {
            const size_t j = static_cast<size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

private:
    static constexpr uint64_t rotl(uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4]{};
};

}  // namespace bosphorus
