#include "util/fault.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace bosphorus::fault {
namespace {

/// splitmix64: the same finalising mixer rng.h uses for seeding -- one
/// well-distributed 64-bit output per distinct input.
uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

constexpr const char* kSiteNames[kNumSites] = {
    "backend-crash",  "backend-hang", "backend-garbage", "io-short-write",
    "io-enospc",      "io-read-error", "queue-delay",
};

/// Trim ASCII whitespace from both ends.
std::string trim(const std::string& s) {
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

int site_index(const std::string& name) {
    for (size_t i = 0; i < kNumSites; ++i) {
        if (name == kSiteNames[i]) return static_cast<int>(i);
    }
    return -1;
}

std::string known_sites() {
    std::string out;
    for (size_t i = 0; i < kNumSites; ++i) {
        if (i) out += ", ";
        out += kSiteNames[i];
    }
    return out;
}

}  // namespace

const char* site_name(Site s) {
    const auto i = static_cast<size_t>(s);
    return i < kNumSites ? kSiteNames[i] : "?";
}

FaultInjector& FaultInjector::global() {
    static FaultInjector* injector = [] {
        auto* inj = new FaultInjector();
        if (const char* env = std::getenv("BOSPHORUS_FAULT_PLAN")) {
            if (*env != '\0') {
                const Status s = inj->arm(env);
                if (!s.ok()) {
                    std::fprintf(stderr,
                                 "bosphorus: ignoring BOSPHORUS_FAULT_PLAN: "
                                 "%s\n",
                                 s.to_string().c_str());
                }
            }
        }
        return inj;
    }();
    return *injector;
}

Status FaultInjector::arm(const std::string& plan) {
    // Parse into locals first: on any error the previous plan stays whole.
    uint64_t seed = 1;
    uint64_t threshold[kNumSites] = {};
    uint64_t cap[kNumSites] = {};
    for (size_t i = 0; i < kNumSites; ++i) cap[i] = UINT64_MAX;

    const std::string trimmed = trim(plan);
    size_t pos = 0;
    while (pos < trimmed.size()) {
        size_t comma = trimmed.find(',', pos);
        if (comma == std::string::npos) comma = trimmed.size();
        const std::string entry = trim(trimmed.substr(pos, comma - pos));
        pos = comma + 1;
        if (entry.empty()) continue;

        const size_t eq = entry.find('=');
        if (eq == std::string::npos)
            return Status::invalid_argument(
                "fault plan entry '" + entry +
                "' is not '<site>=<probability>' (sites: " + known_sites() +
                "; plus seed=N)");
        const std::string key = trim(entry.substr(0, eq));
        std::string value = trim(entry.substr(eq + 1));

        if (key == "seed") {
            char* end = nullptr;
            errno = 0;
            const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
            if (errno != 0 || end == value.c_str() || *end != '\0')
                return Status::invalid_argument("fault plan seed '" + value +
                                                "' is not an integer");
            seed = static_cast<uint64_t>(n);
            continue;
        }

        const int idx = site_index(key);
        if (idx < 0)
            return Status::invalid_argument("unknown fault site '" + key +
                                            "' (sites: " + known_sites() +
                                            ")");

        uint64_t entry_cap = UINT64_MAX;
        const size_t at = value.find('@');
        if (at != std::string::npos) {
            const std::string cap_str = trim(value.substr(at + 1));
            char* end = nullptr;
            errno = 0;
            const unsigned long long n =
                std::strtoull(cap_str.c_str(), &end, 10);
            if (errno != 0 || end == cap_str.c_str() || *end != '\0')
                return Status::invalid_argument("fault plan cap '@" + cap_str +
                                                "' is not an integer");
            entry_cap = static_cast<uint64_t>(n);
            value = trim(value.substr(0, at));
        }

        char* end = nullptr;
        errno = 0;
        const double p = std::strtod(value.c_str(), &end);
        if (errno != 0 || end == value.c_str() || *end != '\0' || p < 0.0 ||
            p > 1.0)
            return Status::invalid_argument("fault probability '" + value +
                                            "' for site '" + key +
                                            "' is not in [0,1]");
        // Probability -> threshold over the full u64 range. p=1 must fire
        // on every draw, so it saturates rather than wrapping to 0.
        threshold[idx] =
            p >= 1.0 ? UINT64_MAX
                     : static_cast<uint64_t>(p * 18446744073709551616.0);
        cap[idx] = entry_cap;
    }

    bool any = false;
    for (size_t i = 0; i < kNumSites; ++i) any = any || threshold[i] != 0;

    std::lock_guard<std::mutex> lock(mu_);
    // Quiesce: readers observing armed_==false skip the tables entirely,
    // so the non-atomic threshold/cap writes below cannot race them.
    armed_.store(false, std::memory_order_seq_cst);
    plan_ = any ? trimmed : std::string();
    seed_ = seed;
    for (size_t i = 0; i < kNumSites; ++i) {
        threshold_[i] = threshold[i];
        cap_[i] = cap[i];
        evaluated_[i].store(0, std::memory_order_relaxed);
        fired_[i].store(0, std::memory_order_relaxed);
    }
    if (any) armed_.store(true, std::memory_order_release);
    return Status();
}

void FaultInjector::disarm() { (void)arm(""); }

bool FaultInjector::should_fire(Site site) {
    if (!armed_.load(std::memory_order_acquire)) return false;
    const auto i = static_cast<size_t>(site);
    if (i >= kNumSites) return false;
    const uint64_t threshold = threshold_[i];
    if (threshold == 0) return false;
    // One draw per evaluation: the sequence index is the atomic counter,
    // so the outcome multiset is deterministic regardless of which thread
    // draws which index.
    const uint64_t n = evaluated_[i].fetch_add(1, std::memory_order_relaxed);
    const uint64_t draw = mix64(seed_ ^ (0x100000001B3ull * (i + 1)) ^ n);
    const bool fire = draw < threshold || threshold == UINT64_MAX;
    if (!fire) return false;
    // Enforce the @cap on *fired* count, first-come-first-served.
    const uint64_t k = fired_[i].fetch_add(1, std::memory_order_relaxed);
    if (k >= cap_[i]) {
        fired_[i].fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

std::string FaultInjector::plan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return plan_;
}

std::vector<std::pair<std::string, SiteStats>> FaultInjector::stats() const {
    std::vector<std::pair<std::string, SiteStats>> out;
    out.reserve(kNumSites);
    for (size_t i = 0; i < kNumSites; ++i) {
        SiteStats s;
        s.evaluated = evaluated_[i].load(std::memory_order_relaxed);
        s.fired = fired_[i].load(std::memory_order_relaxed);
        out.emplace_back(kSiteNames[i], s);
    }
    return out;
}

uint64_t FaultInjector::total_fired() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kNumSites; ++i)
        total += fired_[i].load(std::memory_order_relaxed);
    return total;
}

}  // namespace bosphorus::fault
