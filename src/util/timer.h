// Wall-clock timing helpers for the benchmark harness and solver budgets.
#pragma once

#include <chrono>

namespace bosphorus {

/// Monotonic stopwatch. Starts on construction; `seconds()` reads elapsed time.
class Timer {
public:
    Timer() : start_(clock::now()) {}

    void restart() { start_ = clock::now(); }

    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    double millis() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace bosphorus
