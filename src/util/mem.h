// Process-memory observability for the streaming preprocessor and the
// benchmark harnesses: peak / current resident set size as the kernel
// accounts it, plus a tiny internal byte-accounting helper the streaming
// pipeline uses to prove it stays inside its configured budget.
//
// RSS readings come from /proc/self/status (Linux); on platforms without
// procfs both functions return 0, and callers treat 0 as "unavailable"
// rather than "zero bytes".
#pragma once

#include <cstddef>
#include <cstdint>

namespace bosphorus::util {

/// Peak resident set size (VmHWM) of this process in bytes; 0 if the
/// platform cannot report it.
uint64_t peak_rss_bytes();

/// Current resident set size (VmRSS) of this process in bytes; 0 if the
/// platform cannot report it.
uint64_t current_rss_bytes();

/// Explicit byte accounting: the streaming pipeline charges every
/// long-lived allocation (chunk buffers, O(vars) state, clause windows)
/// against this and reads back the high-water mark. Unlike RSS it excludes
/// the process baseline, so it is the number compared against a configured
/// memory budget.
class MemoryAccountant {
public:
    void charge(uint64_t bytes) {
        current_ += bytes;
        if (current_ > peak_) peak_ = current_;
    }
    void release(uint64_t bytes) {
        current_ = bytes > current_ ? 0 : current_ - bytes;
    }
    uint64_t current() const { return current_; }
    uint64_t peak() const { return peak_; }

private:
    uint64_t current_ = 0;
    uint64_t peak_ = 0;
};

}  // namespace bosphorus::util
