// Text I/O for ANF polynomial systems.
//
// Accepted grammar (one polynomial equation per line, implicitly "= 0"):
//
//   poly     := term ('+' term)*
//   term     := factor ('*' factor)*
//   factor   := '0' | '1' | var
//   var      := 'x' DIGITS | 'x(' DIGITS ')'
//
// Variables are 1-based in the text format (x1, x2, ...), matching the
// paper's notation and the original tool; internally they are 0-based.
// Lines starting with 'c' or '#' are comments; blank lines are skipped.
#pragma once

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/status.h"

namespace bosphorus::anf {

/// Error thrown on malformed ANF text (legacy API; the try_* entry points
/// report the same failures as a Status instead).
struct ParseError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// Parse a single polynomial, e.g. "x1*x2 + x3 + 1".
Polynomial parse_polynomial(const std::string& text);

/// A parsed system: list of polynomial equations plus the number of
/// variables (1 + max index seen).
struct ParsedSystem {
    std::vector<Polynomial> polynomials;
    size_t num_vars = 0;
};

ParsedSystem parse_system(std::istream& in);
ParsedSystem parse_system_from_string(const std::string& text);

/// Non-throwing variants: malformed text yields StatusCode::kParseError
/// with the offending line in the message.
Result<Polynomial> try_parse_polynomial(const std::string& text);
Result<ParsedSystem> try_parse_system(std::istream& in);
Result<ParsedSystem> try_parse_system_from_string(const std::string& text);

/// Write a system in the same format (one polynomial per line).
void write_system(std::ostream& out, const std::vector<Polynomial>& polys);

}  // namespace bosphorus::anf
