#include "anf/anf_parser.h"

#include <cctype>
#include <limits>
#include <sstream>

namespace bosphorus::anf {

namespace {

/// Single-polynomial recursive-descent parser over a string view.
class PolyParser {
public:
    explicit PolyParser(const std::string& text) : text_(text) {}

    Polynomial parse() {
        Polynomial p = parse_poly();
        skip_ws();
        if (pos_ != text_.size()) {
            throw ParseError("trailing characters at position " +
                             std::to_string(pos_) + " in: " + text_);
        }
        return p;
    }

private:
    Polynomial parse_poly() {
        Polynomial acc = parse_term();
        for (;;) {
            skip_ws();
            if (!eat('+')) break;
            acc += parse_term();
        }
        return acc;
    }

    Polynomial parse_term() {
        Polynomial acc = parse_factor();
        for (;;) {
            skip_ws();
            if (!eat('*')) break;
            acc = acc * parse_factor();
        }
        return acc;
    }

    Polynomial parse_factor() {
        skip_ws();
        if (pos_ >= text_.size())
            throw ParseError("unexpected end of polynomial: " + text_);
        const char c = text_[pos_];
        if (c == '0') {
            ++pos_;
            return Polynomial();
        }
        if (c == '1') {
            ++pos_;
            return Polynomial::constant(true);
        }
        if (c == 'x' || c == 'X') {
            ++pos_;
            bool paren = eat('(');
            const size_t start = pos_;
            while (pos_ < text_.size() && std::isdigit((unsigned char)text_[pos_]))
                ++pos_;
            if (pos_ == start)
                throw ParseError("expected variable index in: " + text_);
            unsigned long idx = 0;
            try {
                idx = std::stoul(text_.substr(start, pos_ - start));
            } catch (const std::out_of_range&) {
                throw ParseError("variable index out of range in: " + text_);
            }
            if (paren && !eat(')'))
                throw ParseError("expected ')' in: " + text_);
            if (idx == 0)
                throw ParseError("variable indices are 1-based in: " + text_);
            if (idx - 1 > std::numeric_limits<Var>::max())
                throw ParseError("variable index out of range in: " + text_);
            return Polynomial::variable(static_cast<Var>(idx - 1));
        }
        throw ParseError(std::string("unexpected character '") + c +
                         "' in: " + text_);
    }

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace((unsigned char)text_[pos_]))
            ++pos_;
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    const std::string& text_;
    size_t pos_ = 0;
};

}  // namespace

Polynomial parse_polynomial(const std::string& text) {
    return PolyParser(text).parse();
}

ParsedSystem parse_system(std::istream& in) {
    ParsedSystem sys;
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and whitespace-only lines.
        if (line.empty()) continue;
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos) continue;
        if (line[first] == 'c' || line[first] == '#') continue;
        Polynomial p;
        try {
            p = parse_polynomial(line);
        } catch (const ParseError& e) {
            throw ParseError("line " + std::to_string(line_no) + ": " +
                             e.what());
        }
        for (Var v : p.variables())
            sys.num_vars = std::max(sys.num_vars, static_cast<size_t>(v) + 1);
        sys.polynomials.push_back(std::move(p));
    }
    return sys;
}

ParsedSystem parse_system_from_string(const std::string& text) {
    std::istringstream in(text);
    return parse_system(in);
}

Result<Polynomial> try_parse_polynomial(const std::string& text) {
    try {
        return parse_polynomial(text);
    } catch (const ParseError& e) {
        return Status::parse_error(e.what());
    }
}

Result<ParsedSystem> try_parse_system(std::istream& in) {
    try {
        return parse_system(in);
    } catch (const ParseError& e) {
        return Status::parse_error(e.what());
    }
}

Result<ParsedSystem> try_parse_system_from_string(const std::string& text) {
    std::istringstream in(text);
    return try_parse_system(in);
}

void write_system(std::ostream& out, const std::vector<Polynomial>& polys) {
    for (const auto& p : polys) out << p.to_string() << "\n";
}

}  // namespace bosphorus::anf
