// Reference (pre-interning) term representation, kept verbatim for the
// equivalence tests and the bench_hotpath --legacy-terms comparison arm.
//
// This is the representation the library shipped with before the
// MonomialStore rewrite: every Monomial owns a heap-allocated sorted
// std::vector<Var>, every Polynomial owns a vector of such Monomials, and
// every product/merge copies and re-sorts whole variable lists. It is the
// "before" in the before/after terms-per-second numbers of
// BENCH_hotpath.json, and the oracle the interned representation must
// match bit-for-bit (same canonical deg-lex order, same to_string, same
// hash chain).
//
// Only benches and tests include this header (gated by the CMake option
// BOSPHORUS_LEGACY_TERMS); the library proper never does. Do not "fix" or
// optimise this code -- its value is being a faithful snapshot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "anf/monomial_store.h"  // for the shared Var typedef

namespace bosphorus::anf::legacy {

class Monomial {
public:
    Monomial() = default;
    explicit Monomial(Var v) : vars_{v} {}
    explicit Monomial(std::vector<Var> vars) : vars_(std::move(vars)) {
        std::sort(vars_.begin(), vars_.end());
        vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
    }

    size_t degree() const { return vars_.size(); }
    bool is_one() const { return vars_.empty(); }
    const std::vector<Var>& vars() const { return vars_; }

    bool contains(Var v) const {
        return std::binary_search(vars_.begin(), vars_.end(), v);
    }

    Monomial operator*(const Monomial& o) const {
        Monomial r;
        r.vars_.reserve(vars_.size() + o.vars_.size());
        std::set_union(vars_.begin(), vars_.end(), o.vars_.begin(),
                       o.vars_.end(), std::back_inserter(r.vars_));
        return r;
    }

    bool divides(const Monomial& o) const {
        return std::includes(o.vars_.begin(), o.vars_.end(), vars_.begin(),
                             vars_.end());
    }

    Monomial without(Var v) const {
        Monomial r = *this;
        r.vars_.erase(std::find(r.vars_.begin(), r.vars_.end(), v));
        return r;
    }

    bool evaluate(const std::vector<bool>& assignment) const {
        for (Var v : vars_) {
            if (!assignment[v]) return false;
        }
        return true;
    }

    bool operator==(const Monomial& o) const { return vars_ == o.vars_; }
    bool operator!=(const Monomial& o) const { return vars_ != o.vars_; }

    bool operator<(const Monomial& o) const {
        if (vars_.size() != o.vars_.size())
            return vars_.size() < o.vars_.size();
        return vars_ < o.vars_;
    }

    size_t hash() const {
        size_t h = 0x9E3779B97F4A7C15ULL;
        for (Var v : vars_) h = (h ^ v) * 0x100000001B3ULL;
        return h;
    }

private:
    std::vector<Var> vars_;
};

struct MonomialHash {
    size_t operator()(const Monomial& m) const { return m.hash(); }
};

class Polynomial {
public:
    Polynomial() = default;
    explicit Polynomial(Monomial m) : monos_{std::move(m)} {}
    explicit Polynomial(std::vector<Monomial> monomials)
        : monos_(std::move(monomials)) {
        canonicalise();
    }

    static Polynomial constant(bool one) {
        return one ? Polynomial(Monomial{}) : Polynomial();
    }
    static Polynomial variable(Var v) { return Polynomial(Monomial{v}); }

    bool is_zero() const { return monos_.empty(); }
    bool is_one() const { return monos_.size() == 1 && monos_[0].is_one(); }
    size_t degree() const { return monos_.empty() ? 0 : monos_.back().degree(); }
    size_t size() const { return monos_.size(); }
    const std::vector<Monomial>& monomials() const { return monos_; }
    const Monomial& leading_monomial() const { return monos_.back(); }
    bool has_constant_term() const {
        return !monos_.empty() && monos_.front().is_one();
    }

    std::vector<Var> variables() const {
        std::vector<Var> vars;
        for (const auto& m : monos_)
            vars.insert(vars.end(), m.vars().begin(), m.vars().end());
        std::sort(vars.begin(), vars.end());
        vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
        return vars;
    }

    bool contains_var(Var v) const {
        for (const auto& m : monos_)
            if (m.contains(v)) return true;
        return false;
    }

    Polynomial operator+(const Polynomial& o) const {
        Polynomial r;
        r.monos_.reserve(monos_.size() + o.monos_.size());
        size_t i = 0, j = 0;
        while (i < monos_.size() && j < o.monos_.size()) {
            if (monos_[i] == o.monos_[j]) {
                ++i;
                ++j;  // cancels
            } else if (monos_[i] < o.monos_[j]) {
                r.monos_.push_back(monos_[i++]);
            } else {
                r.monos_.push_back(o.monos_[j++]);
            }
        }
        r.monos_.insert(r.monos_.end(), monos_.begin() + i, monos_.end());
        r.monos_.insert(r.monos_.end(), o.monos_.begin() + j, o.monos_.end());
        return r;
    }
    // The copy-per-call += this snapshot shipped with (the satellite fix
    // in anf/polynomial.h replaced it with an in-place merge).
    Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }

    Polynomial operator*(const Monomial& m) const {
        std::vector<Monomial> prod;
        prod.reserve(monos_.size());
        for (const auto& mm : monos_) prod.push_back(mm * m);
        return Polynomial(std::move(prod));
    }

    Polynomial operator*(const Polynomial& o) const {
        std::vector<Monomial> prod;
        prod.reserve(monos_.size() * o.monos_.size());
        for (const auto& a : monos_)
            for (const auto& b : o.monos_) prod.push_back(a * b);
        return Polynomial(std::move(prod));
    }

    bool operator==(const Polynomial& o) const { return monos_ == o.monos_; }
    bool operator!=(const Polynomial& o) const { return monos_ != o.monos_; }
    bool operator<(const Polynomial& o) const { return monos_ < o.monos_; }

    bool evaluate(const std::vector<bool>& assignment) const {
        bool acc = false;
        for (const auto& m : monos_) acc ^= m.evaluate(assignment);
        return acc;
    }

    Polynomial substitute(Var v, const Polynomial& by) const {
        std::vector<Monomial> untouched_list, quotient_list;
        for (const auto& m : monos_) {
            if (m.contains(v)) {
                quotient_list.push_back(m.without(v));
            } else {
                untouched_list.push_back(m);
            }
        }
        Polynomial untouched(std::move(untouched_list));
        Polynomial quotients(std::move(quotient_list));
        return untouched + quotients * by;
    }

    size_t hash() const {
        size_t h = 0xCBF29CE484222325ULL;
        for (const auto& m : monos_) h = (h ^ m.hash()) * 0x100000001B3ULL;
        return h;
    }

    std::string to_string() const {
        if (monos_.empty()) return "0";
        std::string s;
        for (auto it = monos_.rbegin(); it != monos_.rend(); ++it) {
            if (!s.empty()) s += " + ";
            if (it->is_one()) {
                s += "1";
            } else {
                bool first = true;
                for (Var v : it->vars()) {
                    if (!first) s += "*";
                    s += "x" + std::to_string(v + 1);
                    first = false;
                }
            }
        }
        return s;
    }

private:
    void canonicalise() {
        std::sort(monos_.begin(), monos_.end());
        std::vector<Monomial> out;
        out.reserve(monos_.size());
        for (size_t i = 0; i < monos_.size();) {
            size_t j = i;
            while (j < monos_.size() && monos_[j] == monos_[i]) ++j;
            if ((j - i) % 2 == 1) out.push_back(monos_[i]);
            i = j;
        }
        monos_ = std::move(out);
    }

    std::vector<Monomial> monos_;
};

struct PolynomialHash {
    size_t operator()(const Polynomial& p) const { return p.hash(); }
};

}  // namespace bosphorus::anf::legacy
