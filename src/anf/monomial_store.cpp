#include "anf/monomial_store.h"

#include <algorithm>
#include <cassert>

namespace bosphorus::anf {

namespace {

// Per-thread direct-mapped front cache for mul(): answers repeat products
// without touching the store mutex. Keyed by the store's process-unique
// serial (an address would be reusable by a later store, letting a stale
// slot answer for ids the new store never interned); within one store's
// lifetime invalidation is unnecessary because stores are append-only and
// ids are never reused.
struct MulCacheSlot {
    uint64_t serial = 0;  // 0 = empty (live serials start at 1)
    MonoId a = 0, b = 0, r = 0;
};
constexpr size_t kMulCacheBits = 13;
thread_local MulCacheSlot tl_mul_cache[1u << kMulCacheBits];

size_t mul_cache_slot(uint64_t serial, MonoId a, MonoId b) {
    uint64_t h = (uint64_t{a} << 32) | b;
    h ^= serial * 0xD1B54A32D192ED03ULL;
    h *= 0x9E3779B97F4A7C15ULL;
    return (h >> 48) & ((1u << kMulCacheBits) - 1);
}

std::atomic<uint64_t> next_store_serial{1};

}  // namespace

MonomialStore::MonomialStore()
    : serial_(next_store_serial.fetch_add(1, std::memory_order_relaxed)) {
    blocks_.resize(kMaxBlocks, nullptr);
    std::lock_guard<std::mutex> lk(mu_);
    const MonoId one = intern_sorted_locked(nullptr, 0);
    (void)one;
    assert(one == kMonoOne);
}

MonomialStore::~MonomialStore() {
    for (Entry* b : blocks_) delete[] b;
}

MonomialStore& MonomialStore::global() {
    static MonomialStore* store = new MonomialStore();  // never destroyed
    return *store;
}

uint64_t MonomialStore::hash_vars(const Var* vars, uint32_t n) {
    // The exact chain of the pre-interning Monomial::hash().
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (uint32_t i = 0; i < n; ++i) h = (h ^ vars[i]) * 0x100000001B3ULL;
    return h;
}

MonoId MonomialStore::intern_sorted_locked(const Var* vars, uint32_t n) {
    const uint64_t h = hash_vars(vars, n);
    auto [it, end] = index_.equal_range(h);
    for (; it != end; ++it) {
        const Entry& e = entry(it->second);
        if (e.len == n && std::equal(vars, vars + n, e.vars)) return it->second;
    }

    // Fresh monomial: copy the variable list into the arena...
    const Var* stored = nullptr;
    if (n > 0) {
        if (n > kArenaChunk - arena_used_) {
            const size_t chunk = std::max<size_t>(kArenaChunk, n);
            arena_.push_back(std::make_unique<Var[]>(chunk));
            arena_used_ = 0;
            arena_bytes_ += chunk * sizeof(Var);
        }
        Var* dst = arena_.back().get() + arena_used_;
        std::copy(vars, vars + n, dst);
        arena_used_ += n;
        stored = dst;
    }

    // ...write the entry slot, then publish the id.
    const uint32_t id = count_.load(std::memory_order_relaxed);
    const uint32_t block = id >> kBlockBits;
    assert(block < kMaxBlocks && "monomial store id space exhausted");
    if (blocks_[block] == nullptr) blocks_[block] = new Entry[kBlockSize];
    Entry& e = blocks_[block][id & (kBlockSize - 1)];
    e.vars = stored;
    e.len = n;
    e.hash = h;
    index_.emplace(h, id);
    count_.store(id + 1, std::memory_order_release);
    return id;
}

MonoId MonomialStore::intern_sorted(const Var* vars, uint32_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    return intern_sorted_locked(vars, n);
}

MonoId MonomialStore::intern(std::vector<Var> vars) {
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return intern_sorted(vars.data(), static_cast<uint32_t>(vars.size()));
}

int MonomialStore::compare(MonoId a, MonoId b) const {
    if (a == b) return 0;
    const Entry& ea = entry(a);
    const Entry& eb = entry(b);
    if (ea.len != eb.len) return ea.len < eb.len ? -1 : 1;
    for (uint32_t i = 0; i < ea.len; ++i) {
        if (ea.vars[i] != eb.vars[i]) return ea.vars[i] < eb.vars[i] ? -1 : 1;
    }
    return 0;
}

bool MonomialStore::contains(MonoId id, Var v) const {
    const Entry& e = entry(id);
    return std::binary_search(e.vars, e.vars + e.len, v);
}

bool MonomialStore::divides(MonoId a, MonoId b) const {
    const Entry& ea = entry(a);
    const Entry& eb = entry(b);
    return std::includes(eb.vars, eb.vars + eb.len, ea.vars,
                         ea.vars + ea.len);
}

MonoId MonomialStore::mul(MonoId a, MonoId b) {
    if (a == kMonoOne) return b;
    if (b == kMonoOne) return a;
    if (a == b) return a;  // idempotent: m * m = m over GF(2)
    if (a > b) std::swap(a, b);  // commutative: canonicalise the key

    MulCacheSlot& slot = tl_mul_cache[mul_cache_slot(serial_, a, b)];
    if (slot.serial == serial_ && slot.a == a && slot.b == b) {
        memo_hits_.fetch_add(1, std::memory_order_relaxed);
        return slot.r;
    }

    const uint64_t key = (uint64_t{a} << 32) | b;
    MonoId r;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = mul_memo_.find(key);
        if (it != mul_memo_.end()) {
            memo_hits_.fetch_add(1, std::memory_order_relaxed);
            r = it->second;
        } else {
            memo_misses_.fetch_add(1, std::memory_order_relaxed);
            const Entry& ea = entry(a);
            const Entry& eb = entry(b);
            scratch_.clear();
            scratch_.reserve(ea.len + eb.len);
            std::set_union(ea.vars, ea.vars + ea.len, eb.vars,
                           eb.vars + eb.len, std::back_inserter(scratch_));
            r = intern_sorted_locked(scratch_.data(),
                                     static_cast<uint32_t>(scratch_.size()));
            if (mul_memo_.size() >= kMulMemoCap) mul_memo_.clear();
            mul_memo_.emplace(key, r);
        }
    }
    slot = {serial_, a, b, r};
    return r;
}

MonoId MonomialStore::quotient(MonoId target, MonoId m) {
    if (m == kMonoOne) return target;
    if (m == target) return kMonoOne;
    std::lock_guard<std::mutex> lk(mu_);
    const Entry& et = entry(target);
    const Entry& em = entry(m);
    scratch_.clear();
    scratch_.reserve(et.len);
    std::set_difference(et.vars, et.vars + et.len, em.vars, em.vars + em.len,
                        std::back_inserter(scratch_));
    return intern_sorted_locked(scratch_.data(),
                                static_cast<uint32_t>(scratch_.size()));
}

MonoId MonomialStore::without(MonoId id, Var v) {
    std::lock_guard<std::mutex> lk(mu_);
    const Entry& e = entry(id);
    scratch_.clear();
    scratch_.reserve(e.len > 0 ? e.len - 1 : 0);
    for (uint32_t i = 0; i < e.len; ++i) {
        if (e.vars[i] != v) scratch_.push_back(e.vars[i]);
    }
    return intern_sorted_locked(scratch_.data(),
                                static_cast<uint32_t>(scratch_.size()));
}

MonomialStore::Stats MonomialStore::stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    Stats s;
    s.entries = count_.load(std::memory_order_relaxed);
    s.arena_bytes = arena_bytes_;
    const uint32_t blocks = (s.entries + kBlockSize - 1) >> kBlockBits;
    s.entry_bytes = size_t{blocks} * kBlockSize * sizeof(Entry);
    s.mul_memo_entries = mul_memo_.size();
    s.mul_memo_hits = memo_hits_.load(std::memory_order_relaxed);
    s.mul_memo_misses = memo_misses_.load(std::memory_order_relaxed);
    return s;
}

std::shared_ptr<const std::vector<uint32_t>> MonomialStore::ranks() {
    std::lock_guard<std::mutex> lk(mu_);
    const uint32_t n = count_.load(std::memory_order_relaxed);
    if (ranks_cache_ && ranks_epoch_ == n) return ranks_cache_;

    std::vector<MonoId> order(n);
    for (uint32_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](MonoId a, MonoId b) { return compare(a, b) < 0; });
    auto ranks = std::make_shared<std::vector<uint32_t>>(n);
    for (uint32_t r = 0; r < n; ++r) (*ranks)[order[r]] = r;
    ranks_cache_ = std::move(ranks);
    ranks_epoch_ = n;
    return ranks_cache_;
}

}  // namespace bosphorus::anf
