// Monomials over GF(2): products of distinct Boolean variables.
//
// Because x^2 = x in the Boolean ring GF(2)[x_1..x_n]/(x_i^2 + x_i), a
// monomial is fully described by the *set* of variables it contains; the
// empty set is the constant monomial 1.
//
// Representation: a Monomial is a 4-byte handle (MonoId) into the
// process-wide hash-consed MonomialStore (anf/monomial_store.h). Each
// distinct variable set is stored exactly once, so equality is an integer
// compare, hash() is a cached lookup, degree() is a cached byte, and
// products are memoised -- a vector<Monomial> is literally a vector of
// dense 32-bit ids, which is what makes the Polynomial algebra and the
// XL/ElimLin/Groebner linearisation loops allocation-free per term.
//
// Id values depend on interning history and never leak into observable
// output: ordering (operator<) and hashing are content-based, identical to
// the pre-interning representation (see anf/legacy_terms.h).
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "anf/monomial_store.h"

namespace bosphorus::anf {

class Monomial {
public:
    /// The constant monomial 1.
    Monomial() = default;

    /// Single-variable monomial.
    explicit Monomial(Var v)
        : id_(MonomialStore::global().intern_var(v)) {}

    /// Monomial from a variable set; sorts and deduplicates (x^2 = x).
    explicit Monomial(std::vector<Var> vars)
        : id_(MonomialStore::global().intern(std::move(vars))) {}

    /// Wrap an id previously obtained from the global store.
    static Monomial from_id(MonoId id) {
        Monomial m;
        m.id_ = id;
        return m;
    }

    MonoId id() const { return id_; }

    size_t degree() const { return store().degree(id_); }
    bool is_one() const { return id_ == kMonoOne; }

    /// The sorted variable list (a view into the store arena; valid for
    /// the lifetime of the process).
    VarSpan vars() const { return store().vars(id_); }

    bool contains(Var v) const { return store().contains(id_, v); }

    /// Product of two monomials = union of their variable sets (memoised).
    Monomial operator*(const Monomial& o) const {
        return from_id(store().mul(id_, o.id_));
    }

    /// True iff this monomial divides `o` (variable subset).
    bool divides(const Monomial& o) const {
        return store().divides(id_, o.id_);
    }

    /// The quotient monomial with variable v removed; v must be present.
    Monomial without(Var v) const {
        return from_id(store().without(id_, v));
    }

    /// Evaluate under a full assignment (indexed by variable).
    bool evaluate(const std::vector<bool>& assignment) const {
        for (Var v : vars()) {
            if (!assignment[v]) return false;
        }
        return true;
    }

    /// Hash-consed: same variable set <=> same id.
    bool operator==(const Monomial& o) const { return id_ == o.id_; }
    bool operator!=(const Monomial& o) const { return id_ != o.id_; }

    /// Degree-lexicographic order: lower degree first, then lexicographic
    /// on the variable lists. This is the canonical term order everywhere
    /// in the library (XL expands "in ascending degree order" under this
    /// order). Content-based, so independent of interning history.
    bool operator<(const Monomial& o) const {
        return store().less(id_, o.id_);
    }

    /// Content hash, cached in the store; bit-identical to the
    /// pre-interning hash chain.
    size_t hash() const { return store().hash(id_); }

private:
    static MonomialStore& store() { return MonomialStore::global(); }

    MonoId id_ = kMonoOne;
};

// A vector<Monomial> must really be a packed vector of 32-bit ids -- the
// layout the linearisation and CNF paths rely on.
static_assert(sizeof(Monomial) == sizeof(MonoId));
static_assert(std::is_trivially_copyable_v<Monomial>);

struct MonomialHash {
    size_t operator()(const Monomial& m) const { return m.hash(); }
};

}  // namespace bosphorus::anf
