// Monomials over GF(2): products of distinct Boolean variables.
//
// Because x^2 = x in the Boolean ring GF(2)[x_1..x_n]/(x_i^2 + x_i), a
// monomial is fully described by the *set* of variables it contains. We store
// that set as a sorted vector of variable indices; the empty set is the
// constant monomial 1.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace bosphorus::anf {

using Var = uint32_t;

class Monomial {
public:
    /// The constant monomial 1.
    Monomial() = default;

    /// Single-variable monomial.
    explicit Monomial(Var v) : vars_{v} {}

    /// Monomial from a variable set; sorts and deduplicates (x^2 = x).
    explicit Monomial(std::vector<Var> vars) : vars_(std::move(vars)) {
        std::sort(vars_.begin(), vars_.end());
        vars_.erase(std::unique(vars_.begin(), vars_.end()), vars_.end());
    }

    size_t degree() const { return vars_.size(); }
    bool is_one() const { return vars_.empty(); }
    const std::vector<Var>& vars() const { return vars_; }

    bool contains(Var v) const {
        return std::binary_search(vars_.begin(), vars_.end(), v);
    }

    /// Product of two monomials = union of their variable sets.
    Monomial operator*(const Monomial& o) const {
        Monomial r;
        r.vars_.reserve(vars_.size() + o.vars_.size());
        std::set_union(vars_.begin(), vars_.end(), o.vars_.begin(),
                       o.vars_.end(), std::back_inserter(r.vars_));
        return r;
    }

    /// True iff this monomial divides `o` (variable subset).
    bool divides(const Monomial& o) const {
        return std::includes(o.vars_.begin(), o.vars_.end(), vars_.begin(),
                             vars_.end());
    }

    /// The quotient monomial with variable v removed; v must be present.
    Monomial without(Var v) const {
        Monomial r = *this;
        r.vars_.erase(std::find(r.vars_.begin(), r.vars_.end(), v));
        return r;
    }

    /// Evaluate under a full assignment (indexed by variable).
    bool evaluate(const std::vector<bool>& assignment) const {
        for (Var v : vars_) {
            if (!assignment[v]) return false;
        }
        return true;
    }

    bool operator==(const Monomial& o) const { return vars_ == o.vars_; }
    bool operator!=(const Monomial& o) const { return vars_ != o.vars_; }

    /// Degree-lexicographic order: lower degree first, then lexicographic on
    /// the variable lists. This is the canonical term order everywhere in the
    /// library (XL expands "in ascending degree order" under this order).
    bool operator<(const Monomial& o) const {
        if (vars_.size() != o.vars_.size())
            return vars_.size() < o.vars_.size();
        return vars_ < o.vars_;
    }

    size_t hash() const {
        size_t h = 0x9E3779B97F4A7C15ULL;
        for (Var v : vars_) h = (h ^ v) * 0x100000001B3ULL;
        return h;
    }

private:
    std::vector<Var> vars_;
};

struct MonomialHash {
    size_t operator()(const Monomial& m) const { return m.hash(); }
};

}  // namespace bosphorus::anf
