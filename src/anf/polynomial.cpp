#include "anf/polynomial.h"

#include <algorithm>
#include <unordered_set>

namespace bosphorus::anf {

Polynomial::Polynomial(std::vector<Monomial> monomials)
    : monos_(std::move(monomials)) {
    canonicalise();
}

void Polynomial::canonicalise() {
    std::sort(monos_.begin(), monos_.end());
    // Cancel equal pairs: over GF(2), m + m = 0.
    std::vector<Monomial> out;
    out.reserve(monos_.size());
    for (size_t i = 0; i < monos_.size();) {
        size_t j = i;
        while (j < monos_.size() && monos_[j] == monos_[i]) ++j;
        if ((j - i) % 2 == 1) out.push_back(monos_[i]);
        i = j;
    }
    monos_ = std::move(out);
}

size_t Polynomial::degree() const {
    // Canonical order is deg-lex, so the last monomial has maximal degree.
    return monos_.empty() ? 0 : monos_.back().degree();
}

std::vector<Var> Polynomial::variables() const {
    std::vector<Var> vars;
    for (const auto& m : monos_)
        vars.insert(vars.end(), m.vars().begin(), m.vars().end());
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    return vars;
}

bool Polynomial::contains_var(Var v) const {
    for (const auto& m : monos_)
        if (m.contains(v)) return true;
    return false;
}

Polynomial Polynomial::operator+(const Polynomial& o) const {
    // Merge two sorted monomial lists, cancelling equal pairs.
    Polynomial r;
    r.monos_.reserve(monos_.size() + o.monos_.size());
    size_t i = 0, j = 0;
    while (i < monos_.size() && j < o.monos_.size()) {
        if (monos_[i] == o.monos_[j]) {
            ++i;
            ++j;  // cancels
        } else if (monos_[i] < o.monos_[j]) {
            r.monos_.push_back(monos_[i++]);
        } else {
            r.monos_.push_back(o.monos_[j++]);
        }
    }
    r.monos_.insert(r.monos_.end(), monos_.begin() + i, monos_.end());
    r.monos_.insert(r.monos_.end(), o.monos_.begin() + j, o.monos_.end());
    return r;
}

Polynomial& Polynomial::operator+=(const Polynomial& o) {
    if (o.monos_.empty()) return *this;
    if (monos_.empty()) {
        monos_ = o.monos_;
        return *this;
    }
    // Shift the current terms to the tail of the grown buffer, then merge
    // them with o's terms back into the front, cancelling equal pairs.
    // The write cursor can never overrun the tail-read cursor: a write
    // from o implies o is not exhausted, which bounds the cursor strictly
    // below the next tail slot (Monomial is a trivially copyable id, so
    // the moves are raw 4-byte copies).
    const size_t n = monos_.size();
    const size_t m = o.monos_.size();
    monos_.resize(n + m);
    std::move_backward(monos_.begin(), monos_.begin() + n, monos_.end());
    size_t i = m;      // tail-read cursor over the shifted original terms
    size_t j = 0;      // read cursor over o
    size_t w = 0;      // write cursor
    while (i < n + m && j < m) {
        if (monos_[i] == o.monos_[j]) {
            ++i;
            ++j;  // cancels
        } else if (monos_[i] < o.monos_[j]) {
            monos_[w++] = monos_[i++];
        } else {
            monos_[w++] = o.monos_[j++];
        }
    }
    while (i < n + m) monos_[w++] = monos_[i++];
    while (j < m) monos_[w++] = o.monos_[j++];
    monos_.resize(w);
    return *this;
}

Polynomial Polynomial::operator*(const Monomial& m) const {
    std::vector<Monomial> prod;
    prod.reserve(monos_.size());
    for (const auto& mm : monos_) prod.push_back(mm * m);
    // Products can collide (e.g. (x1 + x1x2) * x2 = x1x2 + x1x2 = 0),
    // so re-canonicalise.
    return Polynomial(std::move(prod));
}

Polynomial Polynomial::operator*(const Polynomial& o) const {
    std::vector<Monomial> prod;
    prod.reserve(monos_.size() * o.monos_.size());
    for (const auto& a : monos_)
        for (const auto& b : o.monos_) prod.push_back(a * b);
    return Polynomial(std::move(prod));
}

bool Polynomial::evaluate(const std::vector<bool>& assignment) const {
    bool acc = false;
    for (const auto& m : monos_) acc ^= m.evaluate(assignment);
    return acc;
}

Polynomial Polynomial::substitute(Var v, const Polynomial& by) const {
    Polynomial untouched;   // monomials not involving v (already canonical)
    Polynomial quotients;   // sum of m / v for monomials m containing v
    std::vector<Monomial> untouched_list, quotient_list;
    for (const auto& m : monos_) {
        if (m.contains(v)) {
            quotient_list.push_back(m.without(v));
        } else {
            untouched_list.push_back(m);
        }
    }
    untouched = Polynomial(std::move(untouched_list));
    quotients = Polynomial(std::move(quotient_list));
    return untouched + quotients * by;
}

std::string Polynomial::to_string() const {
    if (monos_.empty()) return "0";
    std::string s;
    // Print highest degree first, which reads naturally (x1*x2 + x3 + 1).
    for (auto it = monos_.rbegin(); it != monos_.rend(); ++it) {
        if (!s.empty()) s += " + ";
        if (it->is_one()) {
            s += "1";
        } else {
            bool first = true;
            for (Var v : it->vars()) {
                if (!first) s += "*";
                s += "x" + std::to_string(v + 1);
                first = false;
            }
        }
    }
    return s;
}

}  // namespace bosphorus::anf
