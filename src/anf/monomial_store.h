// Hash-consed monomial interning -- the term substrate of the whole
// library.
//
// Every distinct monomial (a sorted set of Boolean variables) is interned
// exactly once into a MonomialStore and addressed by a dense 32-bit MonoId
// from then on. Equality is an integer compare, hashing returns a cached
// content hash, degree is a cached byte read, and the product of two
// monomials goes through a memo table -- the same hash-consing discipline
// CDCL solvers apply to clauses, applied to ANF terms. Polynomials become
// sorted vectors of 4-byte ids, so the XL/ElimLin/Groebner hot loops stop
// allocating and re-hashing variable vectors per term.
//
// Id invariants:
//  - kMonoOne (0) is always the constant monomial 1.
//  - Ids are assigned in interning order and NEVER reused or invalidated:
//    the store is append-only for its whole lifetime. Snapshot/rewind
//    machinery (AnfSystem, Session push/pop) therefore never touches the
//    store -- entries interned inside a popped scope simply remain as
//    cached, unreferenced vocabulary.
//  - Raw id VALUES are history-dependent (they depend on what was interned
//    first) and must never influence observable output. All ordering goes
//    through less()/compare()/ranks() (deg-lex on content) and all hashing
//    through hash() (content hash, identical to the pre-interning
//    Monomial::hash), so results are bit-identical regardless of store
//    history.
//
// Thread safety: intern/mul/quotient/without/ranks take an internal mutex;
// vars/degree/hash/less/compare/divides are lock-free reads. A lock-free
// read of id X is safe on any thread that obtained X through a
// happens-before edge with the interning thread (same thread, or a handoff
// through a synchronised channel such as the batch runtime's thread pool):
// entry storage is chunked and never moves, and a slot is fully written
// before its id escapes the mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace bosphorus::anf {

using Var = uint32_t;
using MonoId = uint32_t;

/// The id of the constant monomial 1 (the empty variable set) in every
/// store.
inline constexpr MonoId kMonoOne = 0;

/// Non-owning view of a monomial's sorted variable list inside the store
/// arena. Cheap to copy; valid as long as the store lives (forever, for
/// the global store).
class VarSpan {
public:
    VarSpan() = default;
    VarSpan(const Var* data, uint32_t size) : data_(data), size_(size) {}

    const Var* begin() const { return data_; }
    const Var* end() const { return data_ + size_; }
    const Var* data() const { return data_; }
    uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    Var operator[](size_t i) const { return data_[i]; }
    Var front() const { return data_[0]; }
    Var back() const { return data_[size_ - 1]; }

private:
    const Var* data_ = nullptr;
    uint32_t size_ = 0;
};

inline bool operator==(const VarSpan& a, const VarSpan& b) {
    if (a.size() != b.size()) return false;
    for (uint32_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i]) return false;
    return true;
}

inline bool operator==(const VarSpan& a, const std::vector<Var>& b) {
    if (a.size() != b.size()) return false;
    for (uint32_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i]) return false;
    return true;
}
inline bool operator==(const std::vector<Var>& a, const VarSpan& b) {
    return b == a;
}

class MonomialStore {
public:
    MonomialStore();
    ~MonomialStore();

    MonomialStore(const MonomialStore&) = delete;
    MonomialStore& operator=(const MonomialStore&) = delete;

    /// The process-wide store every Monomial resolves against. Constructed
    /// on first use, never destroyed before program exit.
    static MonomialStore& global();

    // ---- interning -------------------------------------------------------

    /// Intern a variable set given in any order, with duplicates (x^2 = x).
    MonoId intern(std::vector<Var> vars);

    /// Intern a canonical (sorted, duplicate-free) variable list.
    MonoId intern_sorted(const Var* vars, uint32_t n);

    /// Intern the single-variable monomial x_v.
    MonoId intern_var(Var v) { return intern_sorted(&v, 1); }

    // ---- lock-free reads -------------------------------------------------

    VarSpan vars(MonoId id) const {
        const Entry& e = entry(id);
        return VarSpan(e.vars, e.len);
    }
    uint32_t degree(MonoId id) const { return entry(id).len; }

    /// Cached content hash, bit-identical to the pre-interning
    /// Monomial::hash() chain -- stable across processes and interning
    /// orders.
    uint64_t hash(MonoId id) const { return entry(id).hash; }

    /// Degree-lexicographic order on content (degree first, then
    /// lexicographic variable lists): the canonical term order everywhere
    /// in the library. O(1) when degrees differ (the cached-degree fast
    /// path), O(shared prefix) otherwise.
    bool less(MonoId a, MonoId b) const { return compare(a, b) < 0; }
    int compare(MonoId a, MonoId b) const;

    bool contains(MonoId id, Var v) const;

    /// True iff a's variable set is a subset of b's (a divides b).
    bool divides(MonoId a, MonoId b) const;

    // ---- algebra (interning writes, mutex-guarded) -----------------------

    /// Product = union of variable sets, answered through a bounded memo
    /// table (plus a per-thread front cache) so repeated products in the
    /// XL expansion / Groebner lcm loops cost a lookup, not a set_union.
    MonoId mul(MonoId a, MonoId b);

    /// The cofactor u with u * m == target. Precondition: m divides target.
    MonoId quotient(MonoId target, MonoId m);

    /// The monomial with variable v removed. Precondition: contains(id, v).
    MonoId without(MonoId id, Var v);

    // ---- bulk ordering ---------------------------------------------------

    /// A dense deg-lex rank table over every id interned so far:
    /// (*ranks())[id] < (*ranks())[id2]  <=>  less(id, id2). Rebuilt (and
    /// cached until the next intern) on demand; the returned snapshot stays
    /// valid and self-consistent even if other threads keep interning, it
    /// just does not cover ids newer than itself. Rank VALUES change as the
    /// vocabulary grows; only their relative order is meaningful.
    std::shared_ptr<const std::vector<uint32_t>> ranks();

    // ---- introspection ---------------------------------------------------

    /// Number of distinct monomials interned so far.
    size_t size() const { return count_.load(std::memory_order_acquire); }

    size_t mul_memo_hits() const { return memo_hits_.load(std::memory_order_relaxed); }
    size_t mul_memo_misses() const { return memo_misses_.load(std::memory_order_relaxed); }

    /// One consistent occupancy snapshot, taken under the store mutex --
    /// the accessor METRICS endpoints and bench tools read instead of
    /// guessing from size() alone. Caveat: the store is APPEND-ONLY for
    /// its whole lifetime (see the id invariants above), so every counter
    /// here is monotone non-decreasing; a long-lived process serving many
    /// tenants shares one growing vocabulary and reclaims nothing --
    /// `entries`/`arena_bytes` measure that growth, `mul_memo_entries` is
    /// the only component with a hard cap (kMulMemoCap, reset-on-full).
    struct Stats {
        size_t entries = 0;           ///< distinct monomials interned
        size_t arena_bytes = 0;       ///< variable-list arena, allocated
        size_t entry_bytes = 0;       ///< entry blocks, allocated
        size_t mul_memo_entries = 0;  ///< live products in the bounded memo
        size_t mul_memo_hits = 0;     ///< memo + front-cache hits
        size_t mul_memo_misses = 0;   ///< products computed the slow way
    };
    /// Thread-safe: may be called concurrently with interning from any
    /// thread (it serialises briefly with writers on the store mutex).
    Stats stats() const;

    /// The memo-table bound: past this many cached products the table is
    /// reset (bounded memory, monotone ids keep every entry valid forever
    /// otherwise).
    static constexpr size_t kMulMemoCap = 1u << 20;

private:
    struct Entry {
        const Var* vars = nullptr;  // into the arena; never moves
        uint32_t len = 0;           // == degree (variables are distinct)
        uint64_t hash = 0;          // cached content hash
    };

    // Entries live in fixed-size blocks behind a never-resized pointer
    // table, so entry(id) needs no lock: blocks_[] has stable addresses
    // and a block pointer is written (under the mutex) before any id in it
    // escapes.
    static constexpr uint32_t kBlockBits = 13;
    static constexpr uint32_t kBlockSize = 1u << kBlockBits;  // entries/block
    static constexpr uint32_t kMaxBlocks = 1u << 15;  // 2^28 ids max

    const Entry& entry(MonoId id) const {
        return blocks_[id >> kBlockBits][id & (kBlockSize - 1)];
    }

    static uint64_t hash_vars(const Var* vars, uint32_t n);

    /// Shared implementation; requires mu_ held.
    MonoId intern_sorted_locked(const Var* vars, uint32_t n);

    mutable std::mutex mu_;

    // Process-unique serial (never reused, unlike addresses): keys the
    // per-thread mul front cache so a slot written by a destroyed store
    // can never satisfy a lookup for a newer one.
    const uint64_t serial_;

    // Arena for variable lists: chunked, append-only, stable addresses.
    static constexpr size_t kArenaChunk = 1u << 16;  // Vars per chunk
    std::vector<std::unique_ptr<Var[]>> arena_;
    size_t arena_used_ = kArenaChunk;  // forces a chunk on first intern
    size_t arena_bytes_ = 0;           // total allocated, under mu_

    std::vector<Entry*> blocks_;          // size kMaxBlocks, lazily filled
    std::atomic<uint32_t> count_{0};      // published entry count

    // content hash -> ids with that hash (collision chain), under mu_.
    std::unordered_multimap<uint64_t, MonoId> index_;

    // (lo(a) << 32 | hi(b)) -> product id, under mu_. Bounded: reset at
    // kMulMemoCap.
    std::unordered_map<uint64_t, MonoId> mul_memo_;
    std::atomic<size_t> memo_hits_{0};
    std::atomic<size_t> memo_misses_{0};

    // deg-lex rank snapshot, rebuilt when stale, under mu_.
    std::shared_ptr<const std::vector<uint32_t>> ranks_cache_;
    uint32_t ranks_epoch_ = 0;  // count_ value the cache was built at

    std::vector<Var> scratch_;  // union/difference buffer, under mu_
};

}  // namespace bosphorus::anf
