// Boolean polynomials: XOR-sums of monomials over GF(2).
//
// A polynomial is kept in canonical form: monomials sorted in
// degree-lexicographic order with no duplicates (addition is XOR, so a
// monomial appearing twice cancels). Following the paper's convention, a
// Polynomial denotes the polynomial *equation* p = 0 when it sits in an
// ANF system.
//
// Since Monomial is a 4-byte interned id (anf/monomial.h), the monomial
// list is a packed sorted vector of MonoIds: copies are memcpys, equality
// is an id-vector compare, and operator+= merges in place without
// allocating per term.
#pragma once

#include <string>
#include <vector>

#include "anf/monomial.h"

namespace bosphorus::anf {

class Polynomial {
public:
    /// The zero polynomial.
    Polynomial() = default;

    /// Polynomial with a single monomial.
    explicit Polynomial(Monomial m) : monos_{std::move(m)} {}

    /// From a list of monomials; canonicalises (sorts, cancels pairs).
    explicit Polynomial(std::vector<Monomial> monomials);

    /// The constant polynomial 0 or 1.
    static Polynomial constant(bool one) {
        return one ? Polynomial(Monomial{}) : Polynomial();
    }

    static Polynomial variable(Var v) { return Polynomial(Monomial{v}); }

    bool is_zero() const { return monos_.empty(); }
    bool is_one() const { return monos_.size() == 1 && monos_[0].is_one(); }
    bool is_constant() const { return monos_.empty() || is_one(); }

    /// Largest monomial degree (0 for constants; 0 for the zero polynomial).
    size_t degree() const;

    /// True iff every monomial has degree <= 1.
    bool is_linear() const { return degree() <= 1; }

    /// The number of monomials (including the constant term if present).
    size_t size() const { return monos_.size(); }

    const std::vector<Monomial>& monomials() const { return monos_; }

    /// Leading monomial under deg-lex (the last in sorted order).
    /// Precondition: !is_zero().
    const Monomial& leading_monomial() const { return monos_.back(); }

    /// True iff the constant monomial 1 appears.
    bool has_constant_term() const {
        return !monos_.empty() && monos_.front().is_one();
    }

    /// Distinct variables appearing in the polynomial, sorted.
    std::vector<Var> variables() const;

    bool contains_var(Var v) const;

    /// GF(2) addition = symmetric difference of monomial sets.
    Polynomial operator+(const Polynomial& o) const;

    /// In-place sorted merge with pair cancellation: one resize, no
    /// temporary polynomial (the old `*this = *this + o` copied the whole
    /// term list per call -- measurable in the ElimLin substitution loop).
    Polynomial& operator+=(const Polynomial& o);

    Polynomial operator*(const Monomial& m) const;
    Polynomial operator*(const Polynomial& o) const;

    bool operator==(const Polynomial& o) const { return monos_ == o.monos_; }
    bool operator!=(const Polynomial& o) const { return monos_ != o.monos_; }

    /// Deterministic total order (lexicographic on the monomial lists) so
    /// polynomial systems can be sorted/deduplicated canonically.
    bool operator<(const Polynomial& o) const { return monos_ < o.monos_; }

    /// Evaluate under a full assignment.
    bool evaluate(const std::vector<bool>& assignment) const;

    /// Substitute variable v by polynomial `by` (e.g. by a constant, another
    /// variable, its negation, or a general polynomial). Returns the
    /// canonicalised result.
    Polynomial substitute(Var v, const Polynomial& by) const;

    size_t hash() const {
        size_t h = 0xCBF29CE484222325ULL;
        for (const auto& m : monos_) h = (h ^ m.hash()) * 0x100000001B3ULL;
        return h;
    }

    /// Render as e.g. "x1*x2 + x3 + 1" using 1-based variable names.
    std::string to_string() const;

private:
    void canonicalise();

    std::vector<Monomial> monos_;
};

struct PolynomialHash {
    size_t operator()(const Polynomial& p) const { return p.hash(); }
};

}  // namespace bosphorus::anf
