// Blocking multi-producer/multi-consumer result channel.
//
// Batch and portfolio workers push completed results; the coordinating
// thread pops them as they arrive (first finisher first -- this is what
// lets the portfolio cancel the losers the moment a winner lands, instead
// of joining in submission order). `close()` wakes all blocked consumers;
// a closed, drained queue reports "no more results".
//
// Thread safety: every member is safe to call concurrently (one mutex, two
// condition-free paths: `try_pop` never blocks, `pop` blocks until an item
// or close).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace bosphorus::runtime {

template <typename T>
class ResultQueue {
public:
    ResultQueue() = default;
    ResultQueue(const ResultQueue&) = delete;
    ResultQueue& operator=(const ResultQueue&) = delete;

    /// Enqueue a result and wake one consumer. Pushing to a closed queue
    /// is a no-op (the batch was abandoned; the result is dropped).
    void push(T value) {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            if (closed_) return;
            items_.push_back(std::move(value));
        }
        cv_.notify_one();
    }

    /// Block until a result is available or the queue is closed and
    /// drained. Returns nullopt only in the latter case.
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_.wait(lk, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T out = std::move(items_.front());
        items_.pop_front();
        return out;
    }

    /// Non-blocking pop: a result if one is ready, nullopt otherwise.
    std::optional<T> try_pop() {
        std::lock_guard<std::mutex> lk(mutex_);
        if (items_.empty()) return std::nullopt;
        T out = std::move(items_.front());
        items_.pop_front();
        return out;
    }

    /// No further pushes will be accepted; blocked consumers drain the
    /// remaining items and then receive nullopt.
    void close() {
        {
            std::lock_guard<std::mutex> lk(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    /// Items currently queued (racy by nature; for stats/tests only).
    size_t size() const {
        std::lock_guard<std::mutex> lk(mutex_);
        return items_.size();
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace bosphorus::runtime
