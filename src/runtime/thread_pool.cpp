#include "runtime/thread_pool.h"

namespace bosphorus::runtime {

namespace {
// Which pool (if any) the current thread is a worker of, and its index.
// Lets submit-from-a-task push to the submitting worker's own deque, the
// move that makes stealing rare in recursive fan-out.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_worker = 0;
}  // namespace

unsigned ThreadPool::default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned n_threads) {
    if (n_threads == 0) n_threads = default_thread_count();
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(wake_mutex_);
        stopping_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
    // Own deque when called from a worker of this pool, round-robin
    // otherwise.
    size_t target;
    if (tl_pool == this) {
        target = tl_worker;
    } else {
        target = next_victim_.fetch_add(1, std::memory_order_relaxed) %
                 workers_.size();
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lk(workers_[target]->mutex);
        workers_[target]->deque.push_back(std::move(task));
    }
    {
        // Lock-then-notify so a worker that just found its queues empty and
        // is about to sleep re-checks the predicate before blocking.
        std::lock_guard<std::mutex> lk(wake_mutex_);
    }
    wake_cv_.notify_one();
}

bool ThreadPool::take_task(size_t self, std::function<void()>& out) {
    // Own work first, newest first (LIFO).
    {
        Worker& w = *workers_[self];
        std::lock_guard<std::mutex> lk(w.mutex);
        if (!w.deque.empty()) {
            out = std::move(w.deque.back());
            w.deque.pop_back();
            return true;
        }
    }
    // Steal the *oldest* task from someone else (FIFO end).
    const size_t n = workers_.size();
    for (size_t off = 1; off < n; ++off) {
        Worker& v = *workers_[(self + off) % n];
        std::lock_guard<std::mutex> lk(v.mutex);
        if (!v.deque.empty()) {
            out = std::move(v.deque.front());
            v.deque.pop_front();
            return true;
        }
    }
    return false;
}

bool ThreadPool::queues_empty() {
    for (auto& w : workers_) {
        std::lock_guard<std::mutex> lk(w->mutex);
        if (!w->deque.empty()) return false;
    }
    return true;
}

void ThreadPool::worker_loop(size_t self) {
    tl_pool = this;
    tl_worker = self;
    std::function<void()> task;
    for (;;) {
        if (take_task(self, task)) {
            task();
            task = nullptr;  // release captures before sleeping
            if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lk(wake_mutex_);
                idle_cv_.notify_all();
            }
            continue;
        }
        std::unique_lock<std::mutex> lk(wake_mutex_);
        wake_cv_.wait(lk, [&] { return stopping_ || !queues_empty(); });
        if (stopping_ && queues_empty()) return;
    }
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lk(wake_mutex_);
    idle_cv_.wait(lk, [&] { return pending_.load(std::memory_order_acquire) ==
                                   0; });
}

}  // namespace bosphorus::runtime
