// Cooperative cancellation for the concurrency runtime.
//
// A `CancellationSource` owns a cancel flag; the `CancellationToken`s it
// hands out observe that flag. Tokens are cheap value types (two shared
// pointers) that the Engine threads down through `FactSink` into the core
// XL/ElimLin/Groebner loops, which poll `cancelled()` at iteration
// boundaries -- this is what makes portfolio first-finisher cancellation
// and user interrupts prompt instead of step-granular.
//
// Thread safety: `request_cancel()` may race freely with `cancelled()`
// (the flag is an atomic with acquire/release ordering). A token built
// with `linked()` additionally polls a predicate (e.g. the user's
// interrupt callback); that predicate is invoked from whichever thread
// polls the token, so it must itself be thread-safe when the token is
// shared across threads.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <utility>

namespace bosphorus::runtime {

/// Observer half of a cancellation pair. Default-constructed tokens are
/// never cancelled ("no cancellation requested, nothing to poll").
class CancellationToken {
public:
    CancellationToken() = default;

    /// True once the owning source requested cancellation, or the linked
    /// predicate (if any) returns true. Safe to call from any thread.
    bool cancelled() const {
        if (flag_ && flag_->load(std::memory_order_acquire)) return true;
        if (pred_ && *pred_ && (*pred_)()) return true;
        return false;
    }

    /// True iff this token can ever report cancellation (it observes a
    /// source and/or carries a predicate).
    bool can_cancel() const { return flag_ != nullptr || pred_ != nullptr; }

    /// A token that reports cancellation when `base` does *or* when
    /// `predicate` returns true. Used by the Engine to fold the legacy
    /// interrupt callback into the token it threads through the core
    /// loops. A null predicate just returns `base`; a predicate already
    /// carried by `base` keeps being polled (the two are chained).
    static CancellationToken linked(CancellationToken base,
                                    std::function<bool()> predicate) {
        if (!predicate) return base;
        CancellationToken t = std::move(base);
        if (t.pred_ && *t.pred_) {
            auto prev = t.pred_;
            t.pred_ = std::make_shared<const std::function<bool()>>(
                [prev, next = std::move(predicate)] {
                    return (*prev)() || next();
                });
        } else {
            t.pred_ = std::make_shared<const std::function<bool()>>(
                std::move(predicate));
        }
        return t;
    }

private:
    friend class CancellationSource;
    explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
        : flag_(std::move(flag)) {}

    std::shared_ptr<const std::atomic<bool>> flag_;
    std::shared_ptr<const std::function<bool()>> pred_;
};

/// Owner half: create one per cancellable operation, hand `token()` to the
/// workers, call `request_cancel()` to stop them. Copying a source shares
/// the same flag.
class CancellationSource {
public:
    CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

    /// Ask every holder of `token()` to stop at its next poll point.
    /// Idempotent; safe from any thread.
    void request_cancel() { flag_->store(true, std::memory_order_release); }

    /// True once request_cancel() has been called.
    bool cancel_requested() const {
        return flag_->load(std::memory_order_acquire);
    }

    /// A token observing this source's flag.
    CancellationToken token() const { return CancellationToken(flag_); }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace bosphorus::runtime
