#include "runtime/fact_exchange.h"

#include <algorithm>

namespace bosphorus::runtime {

namespace {

// Packed fact word layout (64 bits):
//   bit  63     : valid (always 1 for a published fact; 0 = empty slot)
//   bit  62     : kind  (0 = unit, 1 = binary)
//   bits 54..61 : worker id (8 bits)
//   bits 27..53 : raw literal a (27 bits)
//   bits  0..26 : raw literal b (27 bits; 0 for units -- disambiguated by
//                 the kind bit, so no literal value is reserved)
constexpr uint64_t kValidBit = 1ull << 63;
constexpr uint64_t kBinaryBit = 1ull << 62;
constexpr int kWorkerShift = 54;
constexpr uint64_t kWorkerMask = 0xFFull << kWorkerShift;
constexpr int kLitAShift = 27;
constexpr uint64_t kLitMask = (1ull << 27) - 1;

uint64_t pack_unit(unsigned worker, sat::Lit lit) {
    return kValidBit | (static_cast<uint64_t>(worker & 0xFF) << kWorkerShift) |
           (static_cast<uint64_t>(lit.raw()) << kLitAShift);
}

uint64_t pack_binary(unsigned worker, sat::Lit a, sat::Lit b) {
    return kValidBit | kBinaryBit |
           (static_cast<uint64_t>(worker & 0xFF) << kWorkerShift) |
           (static_cast<uint64_t>(a.raw()) << kLitAShift) |
           static_cast<uint64_t>(b.raw());
}

SharedFact unpack(uint64_t w) {
    SharedFact f;
    f.kind = (w & kBinaryBit) ? SharedFact::Kind::kBinary
                              : SharedFact::Kind::kUnit;
    f.worker = static_cast<uint8_t>((w & kWorkerMask) >> kWorkerShift);
    f.a = sat::Lit::from_raw(static_cast<uint32_t>((w >> kLitAShift) & kLitMask));
    f.b = sat::Lit::from_raw(static_cast<uint32_t>(w & kLitMask));
    return f;
}

// splitmix64 finaliser: the dedup filter's hash.
uint64_t mix64(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

size_t round_up_pow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

SharedFactPool::SharedFactPool(size_t num_shared_vars, size_t capacity)
    : num_shared_vars_(std::min(num_shared_vars, kMaxSharedVars)),
      capacity_(round_up_pow2(std::max<size_t>(capacity, 64))),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]),
      // ~4x capacity keeps the filter's load factor low enough that the
      // bounded probe almost never gives up.
      filter_(new std::atomic<uint64_t>[capacity_ * 4]),
      filter_mask_(capacity_ * 4 - 1) {
    for (size_t i = 0; i < capacity_ * 4; ++i)
        filter_[i].store(0, std::memory_order_relaxed);
}

bool SharedFactPool::dedup_insert(uint64_t key) {
    uint64_t idx = mix64(key) & filter_mask_;
    for (int probe = 0; probe < 8; ++probe) {
        uint64_t cur = filter_[idx].load(std::memory_order_relaxed);
        if (cur == key) return false;  // already published
        if (cur == 0) {
            uint64_t expected = 0;
            if (filter_[idx].compare_exchange_strong(
                    expected, key, std::memory_order_relaxed))
                return true;
            if (expected == key) return false;  // raced with a twin publish
            // Someone else claimed the slot with a different key: fall
            // through to the next probe.
        }
        idx = (idx + 1) & filter_mask_;
    }
    return true;  // filter saturated here: admit (duplicates are harmless)
}

bool SharedFactPool::publish_packed(uint64_t packed, uint64_t dedup_key) {
    if (!dedup_insert(dedup_key)) {
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const uint64_t seq = head_.fetch_add(1, std::memory_order_acq_rel);
    Slot& slot = slots_[seq & mask_];
    slot.fact.store(packed, std::memory_order_relaxed);
    // Monotone tag update: a writer lapped by a whole ring while in flight
    // must not regress the tag below a later epoch's value, or importers
    // of that epoch would wait forever on a writer that already finished.
    uint64_t prev = slot.tag.load(std::memory_order_relaxed);
    while (prev < seq + 1 &&
           !slot.tag.compare_exchange_weak(prev, seq + 1,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
    }
    published_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool SharedFactPool::publish_unit(unsigned worker, sat::Lit lit) {
    if (lit.var() >= num_shared_vars_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    const uint64_t packed = pack_unit(worker, lit);
    return publish_packed(packed, packed & ~kWorkerMask);
}

bool SharedFactPool::publish_binary(unsigned worker, sat::Lit a, sat::Lit b) {
    if (a.var() >= num_shared_vars_ || b.var() >= num_shared_vars_ ||
        a == ~b) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    if (a == b) return publish_unit(worker, a);
    if (b < a) std::swap(a, b);
    const uint64_t packed = pack_binary(worker, a, b);
    return publish_packed(packed, packed & ~kWorkerMask);
}

size_t SharedFactPool::import(Cursor& cur, unsigned self_worker,
                              std::vector<SharedFact>& out,
                              size_t max_facts) const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    // Fell behind by more than one ring: everything older than
    // head - capacity is overwritten (or about to be). Jump forward.
    if (head > capacity_ && cur.next < head - capacity_)
        cur.next = head - capacity_;

    const uint8_t self = static_cast<uint8_t>(self_worker & 0xFF);
    size_t imported = 0;
    while (cur.next < head && imported < max_facts) {
        const Slot& slot = slots_[cur.next & mask_];
        const uint64_t want = cur.next + 1;
        const uint64_t tag = slot.tag.load(std::memory_order_acquire);
        if (tag < want) break;  // writer claimed the slot but is in flight
        if (tag > want) {       // already overwritten by a later epoch
            ++cur.next;
            continue;
        }
        const uint64_t word = slot.fact.load(std::memory_order_relaxed);
        // Re-check: if a wrapping writer overwrote the fact between the
        // two loads, `word` may belong to a later sequence. It is still a
        // complete valid fact (single-word atomic), but skipping keeps
        // per-cursor at-most-once delivery.
        if (slot.tag.load(std::memory_order_acquire) != want) {
            ++cur.next;
            continue;
        }
        ++cur.next;
        if (!(word & kValidBit)) continue;  // defensive: never-written slot
        SharedFact f = unpack(word);
        if (f.worker == self) continue;
        out.push_back(f);
        ++imported;
    }
    return imported;
}

}  // namespace bosphorus::runtime
