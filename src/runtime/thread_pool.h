// Work-stealing thread pool -- the execution substrate of the batch and
// portfolio runtimes.
//
// Each worker owns a deque protected by its own mutex: the worker pops
// from the back (LIFO, cache-friendly for task trees), and idle workers
// steal from the *front* of a victim's deque (FIFO, takes the oldest --
// the classic Chase-Lev discipline, here with per-deque locks instead of
// lock-free buffers because batch tasks are milliseconds-to-seconds long
// and the queue is never the bottleneck). `submit` from a worker thread
// pushes to that worker's own deque; external submits round-robin.
//
// Lifetime: the destructor drains every queued task, then joins. Use
// `wait_idle()` to block until all submitted work has finished without
// tearing the pool down.
//
// Thread safety: `submit`, `async` and `wait_idle` may be called from any
// thread, including from inside a running task (but a task must not
// `wait_idle()` on its own pool -- that deadlocks on 1 worker).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bosphorus::runtime {

class ThreadPool {
public:
    /// Spawn `n_threads` workers; 0 means `default_thread_count()`.
    explicit ThreadPool(unsigned n_threads = 0);

    /// Drains all queued tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a task. Never blocks (queues are unbounded).
    void submit(std::function<void()> task);

    /// Enqueue a callable and get a future for its result. Exceptions
    /// thrown by `fn` surface through the future.
    template <typename Fn>
    auto async(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<Fn>(fn));
        std::future<R> fut = task->get_future();
        submit([task]() { (*task)(); });
        return fut;
    }

    /// Block until every task submitted so far has finished. May be called
    /// concurrently with further submits (returns when the pending count
    /// hits zero).
    void wait_idle();

    /// Number of worker threads.
    unsigned num_threads() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// `std::thread::hardware_concurrency()`, clamped to at least 1.
    static unsigned default_thread_count();

private:
    struct Worker {
        std::deque<std::function<void()>> deque;  // guarded by `mutex`
        std::mutex mutex;
    };

    void worker_loop(size_t self);
    /// Pop from own back, else steal from another worker's front.
    bool take_task(size_t self, std::function<void()>& out);
    bool queues_empty();

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    std::mutex wake_mutex_;           // guards the two condition variables
    std::condition_variable wake_cv_;  // "work may be available"
    std::condition_variable idle_cv_;  // "pending_ reached zero"

    std::atomic<size_t> pending_{0};     // submitted but not yet finished
    std::atomic<size_t> next_victim_{0};  // round-robin for external submits
    bool stopping_ = false;               // guarded by wake_mutex_
};

}  // namespace bosphorus::runtime
