// Lock-free learnt-fact exchange for cooperative portfolios.
//
// A `SharedFactPool` is a bounded MPMC ring where portfolio workers
// publish learnt facts -- unit literals (fixed variables, from either the
// SAT layer's learnt-unit export or the ANF layer's variable fixings) and
// binary clauses -- and from which every other worker imports them through
// a private `Cursor`. The design goals, in order:
//
//   1. *Soundness under any interleaving.* A whole fact is packed into ONE
//      64-bit word held in a single std::atomic<uint64_t>, so a reader can
//      only ever observe a complete, valid fact or discard the slot -- a
//      racing writer can never produce a torn or mislabeled fact. The
//      worst cases under contention are a duplicated or a dropped fact,
//      both harmless: facts are optimisations, never required for
//      correctness.
//   2. *No locks, no waiting.* Publishers claim a monotone sequence number
//      with one fetch_add and write two relaxed/release stores; importers
//      walk tags with acquire loads. Nobody blocks anybody.
//   3. *Bounded memory.* The ring holds `capacity()` facts; older entries
//      are evicted by overwrite. Importers that fall behind jump their
//      cursor forward (facts lost, not corrupted). A lossy CAS hash filter
//      suppresses duplicate publishes so the ring's capacity is spent on
//      distinct facts.
//
// Variable-space contract: all workers sharing a pool must agree on the
// meaning of variables `0 .. num_shared_vars()-1` (portfolios racing one
// problem share its original variables; CNF-conversion auxiliaries differ
// per worker and must NOT be published). `publish*` rejects anything
// outside that range, so a correctly-sized pool is safe even against
// careless publishers.
//
// Soundness contract for publishers: only publish facts that are logical
// consequences of the SHARED BASE problem (level-0 units / learnt clauses
// of a solver working on the base problem, ANF facts derived from it).
// Under that contract every import is sound for every worker, because the
// base is a subset of each worker's system. Sweep workers solving
// base+assumptions must publish only base-level facts (see the FactSink
// gating in the engine layer); workers on *different* problems must not
// share a pool at all.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sat/types.h"

namespace bosphorus::runtime {

/// One fact read out of the pool: a unit literal or a binary clause over
/// the shared variable space, tagged with the publishing worker.
struct SharedFact {
    enum class Kind : uint8_t { kUnit, kBinary };
    Kind kind = Kind::kUnit;
    uint8_t worker = 0;   ///< publisher id (mod 256), for self-skip/attribution
    sat::Lit a;           ///< the unit literal, or the first clause literal
    sat::Lit b;           ///< second clause literal iff kind == kBinary
};

/// Bounded lock-free MPMC exchange of learnt facts (see the file comment).
/// Construct one per cooperative portfolio, hand the same shared_ptr to
/// every worker, and give each importer its own Cursor.
class SharedFactPool {
public:
    /// Highest representable variable count: a literal must fit in 27 bits
    /// of the packed fact word, i.e. var < 2^26.
    static constexpr size_t kMaxSharedVars = 1u << 26;

    /// A pool over variables `0 .. num_shared_vars-1` holding up to
    /// `capacity` facts (rounded up to a power of two, min 64).
    /// `num_shared_vars` is clamped to kMaxSharedVars -- facts over larger
    /// variables are rejected at publish.
    explicit SharedFactPool(size_t num_shared_vars, size_t capacity = 4096);

    SharedFactPool(const SharedFactPool&) = delete;
    SharedFactPool& operator=(const SharedFactPool&) = delete;

    /// Publish a unit fact `lit` from `worker`. Returns true iff the fact
    /// entered the ring; false if it was rejected (variable outside the
    /// shared space) or suppressed as a duplicate of an earlier publish.
    bool publish_unit(unsigned worker, sat::Lit lit);

    /// Publish the binary clause (a | b) from `worker`. The pair is
    /// canonicalised (sorted) before dedup, so (a|b) and (b|a) are one
    /// fact. Same return contract as publish_unit. Degenerate pairs with
    /// a == b are published as the unit a; tautologies (a == ~b) are
    /// rejected.
    bool publish_binary(unsigned worker, sat::Lit a, sat::Lit b);

    /// A private import position. Value type; default-constructed cursors
    /// start at the beginning of the stream. Each sequence number is
    /// consumed at most once, and overwritten facts are MISSED, not
    /// corrupted -- by design. A cursor lapped by exactly one ring while a
    /// wrapping writer is mid-publish can, very rarely, receive one fact
    /// twice (once early through the recycled slot, once at its own
    /// sequence number); importers must treat facts as idempotent, which
    /// clause injection naturally is.
    struct Cursor {
        uint64_t next = 0;  ///< next sequence number to read
    };

    /// Drain every fact published since `cur` that did not originate from
    /// `self_worker` (mod 256) into `out` (appended), advancing the
    /// cursor. Returns the number of facts appended. Stops early at
    /// `max_facts`, at a slot whose writer is still in flight, or at the
    /// head. If the cursor fell more than capacity() behind, it jumps
    /// forward and the overwritten facts are silently skipped.
    size_t import(Cursor& cur, unsigned self_worker,
                  std::vector<SharedFact>& out,
                  size_t max_facts = SIZE_MAX) const;

    size_t capacity() const { return capacity_; }
    size_t num_shared_vars() const { return num_shared_vars_; }

    /// Facts that entered the ring (lifetime, all workers).
    uint64_t published() const {
        return published_.load(std::memory_order_relaxed);
    }
    /// Publishes suppressed as duplicates (lifetime).
    uint64_t suppressed() const {
        return suppressed_.load(std::memory_order_relaxed);
    }
    /// Publishes rejected for being outside the shared variable space or
    /// tautological (lifetime).
    uint64_t rejected() const {
        return rejected_.load(std::memory_order_relaxed);
    }
    /// Next sequence number to be assigned; `published()` facts have
    /// sequence numbers below this.
    uint64_t head() const { return head_.load(std::memory_order_acquire); }

private:
    // One ring slot. `tag` holds seq+1 once the fact for sequence `seq`
    // is readable (0 = never written); `fact` holds the packed word.
    struct Slot {
        std::atomic<uint64_t> tag{0};
        std::atomic<uint64_t> fact{0};
    };

    bool publish_packed(uint64_t packed, uint64_t dedup_key);
    bool dedup_insert(uint64_t key);

    size_t num_shared_vars_;
    size_t capacity_;  // power of two
    uint64_t mask_;    // capacity_ - 1
    std::unique_ptr<Slot[]> slots_;
    // Lossy duplicate filter: open-addressed CAS table of worker-stripped
    // fact keys. Never cleared -- a fact is admitted at most once per pool
    // lifetime, which also caps re-publish churn after eviction. Lossy in
    // the admitting direction only: a failed probe admits a duplicate
    // (harmless), never drops a new fact as duplicate.
    std::unique_ptr<std::atomic<uint64_t>[]> filter_;
    uint64_t filter_mask_;
    std::atomic<uint64_t> head_{0};
    std::atomic<uint64_t> published_{0};
    std::atomic<uint64_t> suppressed_{0};
    std::atomic<uint64_t> rejected_{0};
};

}  // namespace bosphorus::runtime
