// Algebraic key recovery on small-scale AES SR(n, r, c, e) -- the paper's
// SR-[1,4,4,8] benchmark family (appendix A).
//
//   $ ./aes_keyrecovery [rounds] [rows] [cols] [e]
//
// Defaults to SR(1,2,2,4) so the demo finishes in seconds; pass
// `1 4 4 8` to build the paper's full 544-variable system.
#include <cstdio>
#include <cstdlib>

#include "bosphorus/bosphorus.h"
#include "crypto/aes_small.h"

int main(int argc, char** argv) {
    using namespace bosphorus;

    crypto::SmallScaleAes::Params params;
    params.rounds = argc > 1 ? std::atoi(argv[1]) : 1;
    params.rows = argc > 2 ? std::atoi(argv[2]) : 2;
    params.cols = argc > 3 ? std::atoi(argv[3]) : 2;
    params.e = argc > 4 ? std::atoi(argv[4]) : 4;

    std::printf("small-scale AES SR(%u,%u,%u,%u) key recovery\n",
                params.rounds, params.rows, params.cols, params.e);

    const crypto::SmallScaleAes aes(params);
    Rng rng(7);
    const auto inst = aes.random_instance(rng);
    std::printf("ANF: %zu equations over %zu variables\n", inst.polys.size(),
                inst.num_vars);
    std::printf("plaintext/ciphertext pair known; recovering the %zu-bit "
                "key...\n",
                aes.num_words() * params.e);

    const Problem problem = Problem::from_anf(inst.polys, inst.num_vars);
    for (const bool with_bosphorus : {false, true}) {
        SolveConfig cfg;
        cfg.solver = "cms";  // any registered backend spec works here
        cfg.preprocess = with_bosphorus;
        cfg.engine.xl.m_budget = 20;
        cfg.engine.elimlin.m_budget = 20;
        cfg.engine.sat_conflicts_start = 5'000;
        cfg.timeout_s = 120.0;
        cfg.engine_budget_s = 30.0;

        const Result<SolveOutcome> run = solve(problem, cfg);
        if (!run.ok()) {
            std::printf("solve failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        const SolveOutcome& out = *run;
        std::printf("%s bosphorus: %s in %.2fs%s\n",
                    with_bosphorus ? "with" : "w/o ",
                    out.result == sat::Result::kSat     ? "SAT"
                    : out.result == sat::Result::kUnsat ? "UNSAT"
                                                        : "UNKNOWN",
                    out.seconds,
                    out.solved_in_loop ? " (decided inside the loop)" : "");
    }

    bool witness_ok = true;
    for (const auto& p : inst.polys) witness_ok &= !p.evaluate(inst.witness);
    std::printf("true-key witness satisfies the ANF: %s\n",
                witness_ok ? "yes" : "NO (encoding bug!)");
    return witness_ok ? 0 : 1;
}
