// Guess-and-determine with the incremental Session API.
//
//   $ ./incremental_sweep [key bits] [vars] [equations]
//
// A planted quadratic ANF system stands in for a cipher encoding with a
// secret key. The sweep enumerates every assignment of the first
// `key bits` variables -- the guess-and-determine pattern behind the
// paper's Simon/AES/Bitcoin use cases. The base system is simplified
// ONCE into a Session; each candidate is then a push / assume / solve /
// pop round trip that reuses everything already learnt, with the in-loop
// SAT solver kept alive and fed the candidate as native assumptions.
// The multi-core variant of the same sweep is one call:
// BatchEngine::solve_all_incremental.
#include <cstdio>
#include <cstdlib>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"

int main(int argc, char** argv) {
    using namespace bosphorus;

    const size_t key_bits = argc > 1 ? std::atoi(argv[1]) : 4;
    const size_t num_vars = argc > 2 ? std::atoi(argv[2]) : 28;
    const size_t num_eqs = argc > 3 ? std::atoi(argv[3]) : 44;

    Rng rng(2026);
    const cnfgen::PlantedAnf inst =
        cnfgen::planted_quadratic_anf(num_vars, num_eqs, 3, 2, rng);
    const Problem base = Problem::from_anf(inst.polys, inst.num_vars);

    std::printf("incremental sweep: %zu equations over %zu vars, "
                "%zu key bits -> %zu candidates\n",
                num_eqs, num_vars, key_bits, size_t{1} << key_bits);
    std::printf("secret key bits:");
    for (size_t v = 0; v < key_bits; ++v)
        std::printf(" %d", inst.planted[v] ? 1 : 0);
    std::printf("\n\n");

    EngineConfig cfg;
    cfg.xl.m_budget = 18;
    cfg.elimlin.m_budget = 18;
    cfg.sat_conflicts_start = 2'000;
    cfg.max_iterations = 12;
    cfg.time_budget_s = 30.0;
    cfg.emit_processed = false;  // we only want verdicts

    Session session(base, cfg);  // the base is simplified exactly once
    size_t recovered = 0;
    bool match = false;
    for (size_t mask = 0; mask < (size_t{1} << key_bits); ++mask) {
        session.push();
        for (size_t v = 0; v < key_bits; ++v)
            session.assume(static_cast<anf::Var>(v), (mask >> v) & 1);
        const Result<Report> r = session.solve();
        if (!r.ok()) {
            std::printf("solve failed: %s\n", r.status().to_string().c_str());
            return 1;
        }
        if (r->verdict == sat::Result::kSat) {
            ++recovered;
            bool is_planted = true;
            for (size_t v = 0; v < key_bits; ++v)
                is_planted &= (((mask >> v) & 1) != 0) == inst.planted[v];
            match |= is_planted;
            std::printf("candidate %2zu: SAT  (%.3fs, %zu facts)%s\n", mask,
                        r->seconds, r->total_facts(),
                        is_planted ? "  <- planted key" : "");
        } else {
            std::printf("candidate %2zu: %s (%.3fs)\n", mask,
                        r->verdict == sat::Result::kUnsat ? "UNSAT"
                                                          : "UNKNOWN",
                        r->seconds);
        }
        session.pop();
    }

    std::printf("\n%zu candidate(s) consistent with the system; planted key "
                "%s\n",
                recovered, match ? "recovered" : "NOT recovered (bug!)");
    return match ? 0 : 1;
}
