// Quickstart: solve the paper's worked example (section II-E) with the
// public Bosphorus API.
//
//   $ ./quickstart
//
// The ANF below has the unique solution x1 = x2 = x3 = x4 = 1, x5 = 0;
// Bosphorus's XL step learns enough linear facts that ANF propagation
// solves the system almost immediately.
#include <cstdio>

#include "anf/anf_parser.h"
#include "core/bosphorus.h"

int main() {
    using namespace bosphorus;

    // 1. Describe the problem in ANF (each line is a polynomial = 0).
    const auto system = anf::parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");

    std::printf("input ANF (%zu equations, %zu variables):\n",
                system.polynomials.size(), system.num_vars);
    for (const auto& p : system.polynomials)
        std::printf("  %s = 0\n", p.to_string().c_str());

    // 2. Run the XL -> ElimLin -> SAT fact-learning loop.
    core::Options opt;
    opt.xl.m_budget = 16;       // tiny instance: small sampling budget
    opt.elimlin.m_budget = 16;
    opt.verbosity = 0;
    core::Bosphorus tool(opt);
    const core::BosphorusResult res =
        tool.process_anf(system.polynomials, system.num_vars);

    // 3. Inspect what was learnt.
    std::printf("\nlearnt facts: xl=%zu elimlin=%zu sat=%zu\n",
                res.facts_from_xl, res.facts_from_elimlin,
                res.facts_from_sat);
    std::printf("variables fixed: %zu, replaced by equivalences: %zu\n",
                res.vars_fixed, res.vars_replaced);

    if (res.status == sat::Result::kSat) {
        std::printf("\nsolution found in-loop:");
        for (size_t v = 0; v < system.num_vars; ++v)
            std::printf(" x%zu=%d", v + 1, res.solution[v] ? 1 : 0);
        std::printf("\n");
    } else if (res.status == sat::Result::kUnsat) {
        std::printf("\nUNSAT (1 = 0 derived)\n");
    } else {
        std::printf("\nfixed point reached; processed CNF has %zu vars, "
                    "%zu clauses -- hand it to any SAT solver\n",
                    res.processed_cnf.cnf.num_vars,
                    res.processed_cnf.cnf.clauses.size());
    }
    return 0;
}
