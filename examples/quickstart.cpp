// Quickstart: solve the paper's worked example (section II-E) with the
// public library facade.
//
//   $ ./quickstart
//
// The ANF below has the unique solution x1 = x2 = x3 = x4 = 1, x5 = 0;
// the XL step learns enough linear facts that ANF propagation solves the
// system almost immediately. Demonstrates the three facade pieces: a
// Problem (loaded incrementally here), an Engine with its technique
// registry, and structured Status/Result error handling.
#include <cstdio>

#include "anf/anf_parser.h"
#include "bosphorus/bosphorus.h"

int main() {
    using namespace bosphorus;

    // 1. Describe the problem in ANF, incrementally (each polynomial is an
    //    equation p = 0). Problem::from_anf_text would load the same system
    //    in one call.
    Problem problem;
    for (const char* line : {
             "x1*x2 + x3 + x4 + 1",
             "x1*x2*x3 + x1 + x3 + 1",
             "x1*x3 + x3*x4*x5 + x3",
             "x2*x3 + x3*x5 + 1",
             "x2*x3 + x5 + 1",
         }) {
        const Result<anf::Polynomial> poly = anf::try_parse_polynomial(line);
        if (!poly.ok()) {
            std::printf("parse failed: %s\n", poly.status().to_string().c_str());
            return 1;
        }
        problem.add_polynomial(*poly);
    }

    std::printf("input ANF (%zu equations, %zu variables):\n",
                problem.num_constraints(), problem.num_vars());
    for (const auto& p : problem.polynomials())
        std::printf("  %s = 0\n", p.to_string().c_str());

    // 2. Run the XL -> ElimLin -> SAT fact-learning loop. The Engine steps
    //    its technique registry in order; the progress callback sees every
    //    step as it happens.
    EngineConfig cfg;
    cfg.xl.m_budget = 16;  // tiny instance: small sampling budget
    cfg.elimlin.m_budget = 16;
    Engine engine(cfg);
    engine.set_progress_callback([](const Progress& p) {
        if (p.facts_fresh > 0)
            std::printf("  [iter %zu] %s learnt %zu new facts\n", p.iteration,
                        p.technique.c_str(), p.facts_fresh);
    });

    const Result<Report> run = engine.run(problem);
    if (!run.ok()) {
        std::printf("engine failed: %s\n", run.status().to_string().c_str());
        return 1;
    }
    const Report& res = *run;

    // 3. Inspect what was learnt, per technique.
    std::printf("\nlearnt facts:");
    for (const auto& t : res.techniques)
        std::printf(" %s=%zu", t.name.c_str(), t.facts);
    std::printf("\nvariables fixed: %zu, replaced by equivalences: %zu\n",
                res.vars_fixed, res.vars_replaced);

    if (res.verdict == sat::Result::kSat) {
        std::printf("\nsolution found in-loop:");
        for (size_t v = 0; v < problem.num_vars(); ++v)
            std::printf(" x%zu=%d", v + 1, res.solution[v] ? 1 : 0);
        std::printf("\n");
    } else if (res.verdict == sat::Result::kUnsat) {
        std::printf("\nUNSAT (1 = 0 derived)\n");
    } else {
        std::printf("\nfixed point reached; processed CNF has %zu vars, "
                    "%zu clauses -- hand it to any SAT solver\n",
                    res.processed_cnf.cnf.num_vars,
                    res.processed_cnf.cnf.clauses.size());
    }
    return 0;
}
