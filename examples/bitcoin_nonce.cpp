// Weakened Bitcoin nonce finding (the paper's Bitcoin-[k] benchmark,
// appendix C): find a 32-bit nonce such that the (round-reduced) SHA-256
// hash of the padded message starts with k zero bits.
//
//   $ ./bitcoin_nonce [k] [rounds]
//
// Encodes the SHA-256 circuit as a quadratic ANF, runs the Engine learning
// loop + a SAT solver, extracts the nonce from the model and re-hashes to
// verify it.
#include <cstdio>
#include <cstdlib>

#include "bosphorus/bosphorus.h"
#include "crypto/sha256.h"
#include "bosphorus/sat_backend.h"

int main(int argc, char** argv) {
    using namespace bosphorus;

    const unsigned k = argc > 1 ? std::atoi(argv[1]) : 8;
    const unsigned rounds = argc > 2 ? std::atoi(argv[2]) : 16;

    std::printf("bitcoin nonce finding: k=%u leading zero bits, "
                "%u SHA-256 rounds\n",
                k, rounds);

    Rng rng(99);
    const auto inst = crypto::encode_bitcoin_nonce(k, rounds, rng);
    std::printf("ANF: %zu equations over %zu variables (32 nonce bits)\n",
                inst.polys.size(), inst.num_vars);

    // Learn facts, then hand the processed CNF to the CMS-like solver.
    EngineConfig cfg;
    cfg.xl.m_budget = 20;
    cfg.elimlin.m_budget = 20;
    cfg.sat_conflicts_start = 20'000;
    cfg.time_budget_s = 60.0;
    Engine engine(cfg);
    const Result<Report> run =
        engine.run(Problem::from_anf(inst.polys, inst.num_vars));
    if (!run.ok()) {
        std::printf("engine failed: %s\n", run.status().to_string().c_str());
        return 1;
    }
    const Report& res = *run;

    std::vector<bool> solution;
    if (res.verdict == sat::Result::kSat) {
        solution = res.solution;
        std::printf("solved inside the learning loop (%.2fs)\n", res.seconds);
    } else if (res.verdict == sat::Result::kUnsat) {
        std::printf("UNSAT -- no nonce exists for this prefix\n");
        return 1;
    } else {
        // Back-end solvers are registry specs now: swap "cms" for
        // "minisat", "lingeling" or "dimacs-exec:<cmd>" to race other
        // back ends on the processed CNF.
        const auto so = sat::solve_cnf_with(res.processed_cnf.cnf, "cms",
                                            /*timeout_s=*/300.0);
        if (!so.ok() || so->result != sat::Result::kSat) {
            std::printf("solver did not finish\n");
            return 1;
        }
        solution.resize(inst.num_vars);
        for (size_t v = 0; v < inst.num_vars; ++v)
            solution[v] = so->model[v] == sat::LBool::kTrue;
        std::printf("solved by the back-end solver after preprocessing\n");
    }

    // Extract the nonce and verify by re-hashing.
    uint32_t nonce = 0;
    for (unsigned b = 0; b < 32; ++b)
        if (solution[inst.nonce_base + b]) nonce |= 1u << b;

    std::array<uint32_t, 16> block = inst.block;
    block[12] = (block[12] & ~1u) | (nonce & 1u);
    block[13] = (block[13] & 1u) | ((nonce >> 1) << 1);
    const auto digest = crypto::sha256_compress(block, rounds);

    std::printf("found nonce 0x%08x; digest[0] = 0x%08x\n", nonce, digest[0]);
    const bool ok = (k == 0) || (digest[0] >> (32 - k)) == 0;
    std::printf("verification (top %u bits zero): %s\n", k,
                ok ? "PASS" : "FAIL");
    if (inst.has_witness)
        std::printf("(generator's own witness nonce was 0x%08x -- any valid "
                    "nonce is accepted)\n",
                    inst.nonce);
    return ok ? 0 : 1;
}
