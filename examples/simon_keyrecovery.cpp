// Algebraic key recovery on round-reduced Simon32/64 (the paper's
// Simon-[n,r] benchmark family, appendix B).
//
//   $ ./simon_keyrecovery [rounds] [plaintext pairs]
//
// Encodes `pairs` known plaintext/ciphertext pairs under one random secret
// key in the Similar Plaintexts setting, runs the pipeline with and without
// Bosphorus, and checks the recovered key against the true one.
#include <cstdio>
#include <cstdlib>

#include "bosphorus/bosphorus.h"
#include "crypto/simon.h"

int main(int argc, char** argv) {
    using namespace bosphorus;

    const unsigned rounds = argc > 1 ? std::atoi(argv[1]) : 6;
    const unsigned pairs = argc > 2 ? std::atoi(argv[2]) : 8;

    std::printf("Simon32/64 key recovery: %u rounds, %u plaintext pairs\n",
                rounds, pairs);

    const crypto::Simon32 simon(rounds);
    Rng rng(2026);
    const auto inst = simon.encode(pairs, rng);
    std::printf("ANF: %zu equations over %zu variables (64 key bits)\n",
                inst.polys.size(), inst.num_vars);
    std::printf("secret key: %04x %04x %04x %04x\n", inst.key[3], inst.key[2],
                inst.key[1], inst.key[0]);

    const Problem problem = Problem::from_anf(inst.polys, inst.num_vars);
    for (const bool with_bosphorus : {false, true}) {
        SolveConfig cfg;
        cfg.solver = "cms";  // any registered backend spec works here
        cfg.preprocess = with_bosphorus;
        cfg.engine.xl.m_budget = 20;
        cfg.engine.elimlin.m_budget = 20;
        cfg.engine.sat_conflicts_start = 5'000;
        cfg.timeout_s = 120.0;
        cfg.engine_budget_s = 30.0;

        const Result<SolveOutcome> run = solve(problem, cfg);
        if (!run.ok()) {
            std::printf("solve failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        const SolveOutcome& out = *run;
        std::printf("\n%s bosphorus: %s in %.2fs%s\n",
                    with_bosphorus ? "with" : "w/o ",
                    out.result == sat::Result::kSat     ? "SAT"
                    : out.result == sat::Result::kUnsat ? "UNSAT"
                                                        : "UNKNOWN",
                    out.seconds,
                    out.solved_in_loop ? " (decided inside the loop)" : "");
        if (out.result == sat::Result::kSat) {
            std::printf("  key constraints verified: %s\n",
                        out.model_verified || out.solved_in_loop ? "yes"
                                                                 : "NO");
        }
    }

    // Sanity: the witness (true key + state trace) satisfies the encoding.
    bool witness_ok = true;
    for (const auto& p : inst.polys) witness_ok &= !p.evaluate(inst.witness);
    std::printf("\ntrue-key witness satisfies the ANF: %s\n",
                witness_ok ? "yes" : "NO (encoding bug!)");
    return witness_ok ? 0 : 1;
}
