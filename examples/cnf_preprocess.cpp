// Using the Engine as a CNF preprocessor (paper section III-D): CNF is
// converted to ANF, GF(2) reasoning learns facts, and the processed CNF
// (internal ANF plus every learnt fact) can be handed to any solver.
//
//   $ ./cnf_preprocess
//
// The demo uses an inconsistent XOR cycle -- trivial for GF(2) elimination,
// painful for plain resolution -- plus a satisfiable instance to show fact
// injection. Both feed a bosphorus::Problem through a bosphorus::Engine.
// A third section runs the same preprocessing direction out-of-core through
// bosphorus::StreamPreprocessor -- the facade the `bosphorus
// --stream-preprocess` CLI uses -- and prints the identical summary line.
#include <cstdio>
#include <sstream>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "bosphorus/sat_backend.h"

int main() {
    using namespace bosphorus;

    Rng rng(31337);

    // 1. An UNSAT parity instance: the engine refutes it during learning.
    {
        const sat::Cnf cnf = cnfgen::xor_cycle(40, /*satisfiable=*/false, rng);
        std::printf("xor cycle (UNSAT): %zu vars, %zu clauses\n",
                    cnf.num_vars, cnf.clauses.size());
        EngineConfig cfg;
        cfg.xl.m_budget = 20;
        cfg.elimlin.m_budget = 20;
        Engine engine(cfg);
        const Result<Report> run = engine.run(Problem::from_cnf(cnf));
        if (!run.ok()) {
            std::printf("engine failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        std::printf("  engine verdict: %s (%.3fs, %zu facts from GF(2) "
                    "reasoning)\n",
                    run->verdict == sat::Result::kUnsat ? "UNSAT"
                                                        : "not decided",
                    run->seconds, run->total_facts());
    }

    // 2. A satisfiable random 3-SAT instance: preprocess, then solve.
    {
        const sat::Cnf cnf = cnfgen::random_ksat(60, 240, 3, rng);
        std::printf("\nrandom 3-SAT: %zu vars, %zu clauses\n", cnf.num_vars,
                    cnf.clauses.size());
        EngineConfig cfg;
        cfg.xl.m_budget = 18;
        cfg.elimlin.m_budget = 18;
        cfg.sat_conflicts_start = 2'000;
        cfg.max_iterations = 4;
        Engine engine(cfg);
        const Result<Report> run = engine.run(Problem::from_cnf(cnf));
        if (!run.ok()) {
            std::printf("engine failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        const Report& res = *run;
        std::printf("  learnt facts:");
        for (const auto& t : res.techniques)
            std::printf(" %s=%zu", t.name.c_str(), t.facts);
        std::printf("; fixed=%zu equiv=%zu\n", res.vars_fixed,
                    res.vars_replaced);

        // The processed CNF (internal ANF + facts) can be written to DIMACS
        // and handed to any external solver.
        std::ostringstream dimacs;
        sat::write_dimacs(dimacs, res.processed_cnf.cnf);
        std::printf("  processed CNF: %zu vars, %zu clauses (DIMACS %zu "
                    "bytes)\n",
                    res.processed_cnf.cnf.num_vars,
                    res.processed_cnf.cnf.clauses.size(),
                    dimacs.str().size());

        const auto so = sat::solve_cnf_with(res.processed_cnf.cnf,
                                            "lingeling", 60.0);
        if (!so.ok()) {
            std::printf("  backend error: %s\n",
                        so.status().to_string().c_str());
            return 1;
        }
        std::printf("  lingeling-like verdict on processed CNF: %s "
                    "(%.3fs, %llu conflicts)\n",
                    so->result == sat::Result::kSat     ? "SAT"
                    : so->result == sat::Result::kUnsat ? "UNSAT"
                                                        : "UNKNOWN",
                    so->seconds,
                    static_cast<unsigned long long>(so->stats.conflicts));
    }

    // 3. The streaming preprocessor: the same parse -> XOR-recover ->
    // simplify -> re-emit direction, but windowed under a hard memory
    // budget so the input may be arbitrarily larger than RAM. This is
    // exactly what `bosphorus --stream-preprocess IN OUT` runs; the
    // summary line below is the same one the CLI prints.
    {
        cnfgen::StreamDimacs gen;
        gen.num_vars = 300;
        gen.num_clauses = 3000;
        std::ostringstream in;
        cnfgen::write_stream_dimacs(in, gen, rng);
        std::printf("\nstreamed mixed DIMACS: %llu vars, %llu clauses "
                    "(%zu bytes)\n",
                    static_cast<unsigned long long>(gen.num_vars),
                    static_cast<unsigned long long>(gen.num_clauses),
                    in.str().size());

        StreamPreprocessConfig cfg;
        cfg.memory_budget_bytes = 4ull << 20;
        StreamPreprocessor stream_pp(cfg);
        std::string out_text;
        const Result<StreamPreprocessStats> stats =
            stream_pp.run_text(in.str(), &out_text);
        if (!stats.ok()) {
            std::printf("stream preprocessor failed: %s\n",
                        stats.status().to_string().c_str());
            return 1;
        }
        std::printf("%s\n", stream_summary_line(*stats).c_str());

        // The streamed output is a valid DIMACS formula, equisatisfiable
        // with the input: solve it like any other CNF.
        std::istringstream out_in(out_text);
        const sat::Cnf processed = sat::read_dimacs(out_in);
        const auto so = sat::solve_cnf_with(processed, "cms", 60.0);
        if (!so.ok()) {
            std::printf("  backend error: %s\n",
                        so.status().to_string().c_str());
            return 1;
        }
        std::printf("  cms-like verdict on streamed output: %s (planted "
                    "instance, expect SAT)\n",
                    so->result == sat::Result::kSat     ? "SAT"
                    : so->result == sat::Result::kUnsat ? "UNSAT"
                                                        : "UNKNOWN");
    }
    return 0;
}
