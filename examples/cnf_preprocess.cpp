// Using the Engine as a CNF preprocessor (paper section III-D): CNF is
// converted to ANF, GF(2) reasoning learns facts, and the processed CNF
// (internal ANF plus every learnt fact) can be handed to any solver.
//
//   $ ./cnf_preprocess
//
// The demo uses an inconsistent XOR cycle -- trivial for GF(2) elimination,
// painful for plain resolution -- plus a satisfiable instance to show fact
// injection. Both feed a bosphorus::Problem through a bosphorus::Engine.
#include <cstdio>
#include <sstream>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "bosphorus/sat_backend.h"

int main() {
    using namespace bosphorus;

    Rng rng(31337);

    // 1. An UNSAT parity instance: the engine refutes it during learning.
    {
        const sat::Cnf cnf = cnfgen::xor_cycle(40, /*satisfiable=*/false, rng);
        std::printf("xor cycle (UNSAT): %zu vars, %zu clauses\n",
                    cnf.num_vars, cnf.clauses.size());
        EngineConfig cfg;
        cfg.xl.m_budget = 20;
        cfg.elimlin.m_budget = 20;
        Engine engine(cfg);
        const Result<Report> run = engine.run(Problem::from_cnf(cnf));
        if (!run.ok()) {
            std::printf("engine failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        std::printf("  engine verdict: %s (%.3fs, %zu facts from GF(2) "
                    "reasoning)\n",
                    run->verdict == sat::Result::kUnsat ? "UNSAT"
                                                        : "not decided",
                    run->seconds, run->total_facts());
    }

    // 2. A satisfiable random 3-SAT instance: preprocess, then solve.
    {
        const sat::Cnf cnf = cnfgen::random_ksat(60, 240, 3, rng);
        std::printf("\nrandom 3-SAT: %zu vars, %zu clauses\n", cnf.num_vars,
                    cnf.clauses.size());
        EngineConfig cfg;
        cfg.xl.m_budget = 18;
        cfg.elimlin.m_budget = 18;
        cfg.sat_conflicts_start = 2'000;
        cfg.max_iterations = 4;
        Engine engine(cfg);
        const Result<Report> run = engine.run(Problem::from_cnf(cnf));
        if (!run.ok()) {
            std::printf("engine failed: %s\n", run.status().to_string().c_str());
            return 1;
        }
        const Report& res = *run;
        std::printf("  learnt facts:");
        for (const auto& t : res.techniques)
            std::printf(" %s=%zu", t.name.c_str(), t.facts);
        std::printf("; fixed=%zu equiv=%zu\n", res.vars_fixed,
                    res.vars_replaced);

        // The processed CNF (internal ANF + facts) can be written to DIMACS
        // and handed to any external solver.
        std::ostringstream dimacs;
        sat::write_dimacs(dimacs, res.processed_cnf.cnf);
        std::printf("  processed CNF: %zu vars, %zu clauses (DIMACS %zu "
                    "bytes)\n",
                    res.processed_cnf.cnf.num_vars,
                    res.processed_cnf.cnf.clauses.size(),
                    dimacs.str().size());

        const auto so = sat::solve_cnf_with(res.processed_cnf.cnf,
                                            "lingeling", 60.0);
        if (!so.ok()) {
            std::printf("  backend error: %s\n",
                        so.status().to_string().c_str());
            return 1;
        }
        std::printf("  lingeling-like verdict on processed CNF: %s "
                    "(%.3fs, %llu conflicts)\n",
                    so->result == sat::Result::kSat     ? "SAT"
                    : so->result == sat::Result::kUnsat ? "UNSAT"
                                                        : "UNKNOWN",
                    so->seconds,
                    static_cast<unsigned long long>(so->stats.conflicts));
    }
    return 0;
}
