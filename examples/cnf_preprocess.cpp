// Using Bosphorus as a CNF preprocessor (paper section III-D): CNF is
// converted to ANF, GF(2) reasoning learns facts, and the original CNF is
// returned augmented with the learnt units/equivalences.
//
//   $ ./cnf_preprocess
//
// The demo uses an inconsistent XOR cycle -- trivial for GF(2) elimination,
// painful for plain resolution -- plus a satisfiable instance to show fact
// injection.
#include <cstdio>
#include <sstream>

#include "cnfgen/generators.h"
#include "core/bosphorus.h"
#include "sat/dimacs.h"
#include "sat/solve_cnf.h"

int main() {
    using namespace bosphorus;

    Rng rng(31337);

    // 1. An UNSAT parity instance: Bosphorus refutes it during learning.
    {
        const sat::Cnf cnf = cnfgen::xor_cycle(40, /*satisfiable=*/false, rng);
        std::printf("xor cycle (UNSAT): %zu vars, %zu clauses\n",
                    cnf.num_vars, cnf.clauses.size());
        core::Options opt;
        opt.xl.m_budget = 20;
        opt.elimlin.m_budget = 20;
        core::Bosphorus tool(opt);
        const auto res = tool.process_cnf(cnf);
        std::printf("  bosphorus verdict: %s (%.3fs, %zu facts from GF(2) "
                    "reasoning)\n",
                    res.status == sat::Result::kUnsat ? "UNSAT" : "not decided",
                    res.seconds,
                    res.facts_from_xl + res.facts_from_elimlin +
                        res.facts_from_sat);
    }

    // 2. A satisfiable random 3-SAT instance: preprocess, then solve.
    {
        const sat::Cnf cnf = cnfgen::random_ksat(60, 240, 3, rng);
        std::printf("\nrandom 3-SAT: %zu vars, %zu clauses\n", cnf.num_vars,
                    cnf.clauses.size());
        core::Options opt;
        opt.xl.m_budget = 18;
        opt.elimlin.m_budget = 18;
        opt.sat_conflicts_start = 2'000;
        opt.max_iterations = 4;
        core::Bosphorus tool(opt);
        const auto res = tool.process_cnf(cnf);
        std::printf("  learnt facts: xl=%zu elimlin=%zu sat=%zu; "
                    "fixed=%zu equiv=%zu\n",
                    res.facts_from_xl, res.facts_from_elimlin,
                    res.facts_from_sat, res.vars_fixed, res.vars_replaced);

        // The processed CNF (internal ANF + facts) can be written to DIMACS
        // and handed to any external solver.
        std::ostringstream dimacs;
        sat::write_dimacs(dimacs, res.processed_cnf.cnf);
        std::printf("  processed CNF: %zu vars, %zu clauses (DIMACS %zu "
                    "bytes)\n",
                    res.processed_cnf.cnf.num_vars,
                    res.processed_cnf.cnf.clauses.size(),
                    dimacs.str().size());

        const auto so = sat::solve_cnf(res.processed_cnf.cnf,
                                       sat::SolverKind::kLingelingLike, 60.0);
        std::printf("  lingeling-like verdict on processed CNF: %s "
                    "(%.3fs, %llu conflicts)\n",
                    so.result == sat::Result::kSat     ? "SAT"
                    : so.result == sat::Result::kUnsat ? "UNSAT"
                                                       : "UNKNOWN",
                    so.seconds,
                    static_cast<unsigned long long>(so.stats.conflicts));
    }
    return 0;
}
