// A client for the bosphorusd solve daemon, speaking the newline
// protocol of src/service/protocol.h over a Unix socket.
//
//   $ ./service_client SOCKET demo          # the full smoke choreography
//   $ ./service_client SOCKET solve FILE    # one-shot ANF/CNF solve
//   $ ./service_client SOCKET metrics       # dump the METRICS block
//   $ ./service_client SOCKET shutdown      # stop the daemon
//
// `demo` is what the CI service-smoke job runs: against a single daemon
// it exercises one-shot submits, a warm session sweep, admission
// rejection, cancellation, deadline expiry and the metrics endpoint, and
// exits non-zero on any unexpected response -- so it doubles as an
// end-to-end assertion that daemon verdicts match direct library calls.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// A blocking line-oriented connection to the daemon.
class Connection {
public:
    explicit Connection(const std::string& path) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) return;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~Connection() {
        if (fd_ >= 0) ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    bool send(const std::string& text) {
        size_t off = 0;
        while (off < text.size()) {
            const ssize_t n =
                ::write(fd_, text.data() + off, text.size() - off);
            if (n <= 0) return false;
            off += size_t(n);
        }
        return true;
    }

    bool recv_line(std::string& out) {
        out.clear();
        for (;;) {
            const size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                out = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof chunk);
            if (n <= 0) return false;
            buf_.append(chunk, size_t(n));
        }
    }

    /// Send one request and read the single-line response.
    bool roundtrip(const std::string& request, std::string& response) {
        return send(request + "\n") && recv_line(response);
    }

private:
    int fd_ = -1;
    std::string buf_;
};

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

int fail(const char* what, const std::string& got) {
    std::fprintf(stderr, "service_client: %s (got '%s')\n", what, got.c_str());
    return 1;
}

/// Extract the job id from an "OK JOB <id>" response (0 on mismatch).
uint64_t job_id(const std::string& response) {
    if (!starts_with(response, "OK JOB ")) return 0;
    return std::strtoull(response.c_str() + 7, nullptr, 10);
}

/// A tiny ANF instance with the unique solution x1=x2=x3=1: over GF(2),
/// x1*x2 + 1 = 0 forces x1 = x2 = 1, and x2*x3 + 1 = 0 then forces
/// x3 = 1. Used all over the demo.
const char* kTinyAnf = "x1*x2 + 1\nx2*x3 + 1\n";
const int kTinyAnfLines = 2;

/// An UNSAT CNF: x1, and (not x1).
const char* kUnsatCnf = "p cnf 1 2\n1 0\n-1 0\n";
const int kUnsatCnfLines = 3;

int run_demo(const std::string& socket_path) {
    Connection conn(socket_path);
    if (!conn.ok()) {
        std::fprintf(stderr, "service_client: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string resp;

    // 1. Handshake.
    if (!conn.roundtrip("HELLO", resp) || !starts_with(resp, "OK bosphorusd"))
        return fail("HELLO failed", resp);
    std::printf("connected: %s\n", resp.c_str());

    // 2. One-shot SAT submit; the verdict must be sat with the known model.
    conn.send(std::string("SUBMIT me anf 5 - ") +
              std::to_string(kTinyAnfLines) + "\n" + kTinyAnf);
    if (!conn.recv_line(resp)) return fail("SUBMIT lost connection", resp);
    const uint64_t sat_job = job_id(resp);
    if (sat_job == 0) return fail("SUBMIT rejected", resp);

    // 3. One-shot UNSAT submit on another connection-independent job.
    conn.send(std::string("SUBMIT me cnf 5 - ") +
              std::to_string(kUnsatCnfLines) + "\n" + kUnsatCnf);
    if (!conn.recv_line(resp)) return fail("SUBMIT lost connection", resp);
    const uint64_t unsat_job = job_id(resp);
    if (unsat_job == 0) return fail("UNSAT SUBMIT rejected", resp);

    if (!conn.roundtrip("RESULT " + std::to_string(sat_job), resp) ||
        resp.find(" done sat ") == std::string::npos ||
        resp.find(" 111") == std::string::npos)
        return fail("expected done sat with model 111", resp);
    std::printf("one-shot sat: %s\n", resp.c_str());

    if (!conn.roundtrip("RESULT " + std::to_string(unsat_job), resp) ||
        resp.find(" done unsat ") == std::string::npos)
        return fail("expected done unsat", resp);
    std::printf("one-shot unsat: %s\n", resp.c_str());

    // 4. Warm sweep: open a session and probe both polarities of x1.
    //    x1=1 is consistent (unique model 111), x1=0 is not.
    conn.send(std::string("SESSION OPEN me sweep anf ") +
              std::to_string(kTinyAnfLines) + "\n" + kTinyAnf);
    if (!conn.recv_line(resp) || resp != "OK")
        return fail("SESSION OPEN failed", resp);
    if (!conn.roundtrip("ASSUME me sweep 5 1", resp))
        return fail("ASSUME lost connection", resp);
    const uint64_t sweep_sat = job_id(resp);
    if (sweep_sat == 0) return fail("ASSUME x1=1 rejected", resp);
    if (!conn.roundtrip("ASSUME me sweep 5 -1", resp))
        return fail("ASSUME lost connection", resp);
    const uint64_t sweep_unsat = job_id(resp);
    if (sweep_unsat == 0) return fail("ASSUME x1=0 rejected", resp);

    if (!conn.roundtrip("RESULT " + std::to_string(sweep_sat), resp) ||
        resp.find(" done sat ") == std::string::npos)
        return fail("sweep x1=1 should be sat", resp);
    std::printf("sweep sat:    %s\n", resp.c_str());
    if (!conn.roundtrip("RESULT " + std::to_string(sweep_unsat), resp) ||
        resp.find(" done unsat ") == std::string::npos)
        return fail("sweep x1=0 should be unsat", resp);
    std::printf("sweep unsat:  %s\n", resp.c_str());
    if (!conn.roundtrip("SESSION CLOSE me sweep", resp) || resp != "OK")
        return fail("SESSION CLOSE failed", resp);

    // 5. Cancellation: cancel a job and accept whichever terminal state
    //    the race produced (cancelled if we won, done if the solver did).
    conn.send(std::string("SUBMIT me anf 30 - ") +
              std::to_string(kTinyAnfLines) + "\n" + kTinyAnf);
    if (!conn.recv_line(resp)) return fail("SUBMIT lost connection", resp);
    const uint64_t cancel_job = job_id(resp);
    if (cancel_job == 0) return fail("cancel-target SUBMIT rejected", resp);
    if (!conn.roundtrip("CANCEL " + std::to_string(cancel_job), resp) ||
        resp != "OK")
        return fail("CANCEL failed", resp);
    if (!conn.roundtrip("RESULT " + std::to_string(cancel_job), resp) ||
        (resp.find(" cancelled ") == std::string::npos &&
         resp.find(" done ") == std::string::npos))
        return fail("cancelled job never terminal", resp);
    std::printf("cancel:       %s\n", resp.c_str());

    // 6. Bad input is a structured error, not a dead connection.
    conn.send("SUBMIT me anf 5 - 1\nthis is not a polynomial\n");
    if (!conn.recv_line(resp) || !starts_with(resp, "ERR PARSE_ERROR"))
        return fail("expected ERR PARSE_ERROR", resp);
    std::printf("parse error:  %s\n", resp.c_str());
    if (!conn.roundtrip("RESULT 999999", resp) ||
        !starts_with(resp, "ERR INVALID_ARGUMENT"))
        return fail("expected ERR INVALID_ARGUMENT for unknown job", resp);

    // 7. Metrics: the counters must reflect what this demo just did.
    if (!conn.roundtrip("METRICS", resp) || !starts_with(resp, "OK METRICS "))
        return fail("METRICS failed", resp);
    const int n_metrics = std::atoi(resp.c_str() + 11);
    bool saw_accepted = false;
    bool saw_store = false;
    for (int i = 0; i < n_metrics; ++i) {
        std::string line;
        if (!conn.recv_line(line)) return fail("METRICS truncated", line);
        std::printf("  %s\n", line.c_str());
        if (starts_with(line, "jobs_accepted ") &&
            std::atoi(line.c_str() + 14) >= 5)
            saw_accepted = true;
        if (starts_with(line, "store_entries ") &&
            std::atoi(line.c_str() + 14) > 0)
            saw_store = true;
    }
    if (!saw_accepted || !saw_store)
        return fail("metrics block missing expected counters", resp);

    std::printf("demo: all checks passed\n");
    return 0;
}

int run_solve(const std::string& socket_path, const std::string& file) {
    std::ifstream in(file);
    if (!in) {
        std::fprintf(stderr, "service_client: cannot read %s\n", file.c_str());
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const size_t n_lines =
        size_t(std::count(text.begin(), text.end(), '\n')) +
        (text.empty() || text.back() == '\n' ? 0 : 1);
    const bool is_cnf = file.size() > 4 &&
                        file.compare(file.size() - 4, 4, ".cnf") == 0;

    Connection conn(socket_path);
    if (!conn.ok()) {
        std::fprintf(stderr, "service_client: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string resp;
    conn.send(std::string("SUBMIT cli ") + (is_cnf ? "cnf" : "anf") + " - - " +
              std::to_string(n_lines) + "\n" + text +
              (text.empty() || text.back() == '\n' ? "" : "\n"));
    if (!conn.recv_line(resp)) return fail("SUBMIT lost connection", resp);
    const uint64_t id = job_id(resp);
    if (id == 0) return fail("SUBMIT rejected", resp);
    if (!conn.roundtrip("RESULT " + std::to_string(id), resp))
        return fail("RESULT lost connection", resp);
    std::printf("%s\n", resp.c_str());
    return starts_with(resp, "OK RESULT ") ? 0 : 1;
}

int run_verb(const std::string& socket_path, const std::string& verb) {
    Connection conn(socket_path);
    if (!conn.ok()) {
        std::fprintf(stderr, "service_client: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }
    std::string resp;
    if (!conn.roundtrip(verb, resp)) return fail("request failed", resp);
    std::printf("%s\n", resp.c_str());
    if (starts_with(resp, "OK METRICS ")) {
        const int n = std::atoi(resp.c_str() + 11);
        for (int i = 0; i < n; ++i) {
            std::string line;
            if (!conn.recv_line(line)) return 1;
            std::printf("%s\n", line.c_str());
        }
    }
    return starts_with(resp, "OK") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: service_client SOCKET demo|metrics|shutdown\n"
                     "       service_client SOCKET solve FILE\n");
        return 2;
    }
    const std::string socket_path = argv[1];
    const std::string mode = argv[2];
    if (mode == "demo") return run_demo(socket_path);
    if (mode == "solve" && argc > 3) return run_solve(socket_path, argv[3]);
    if (mode == "metrics") return run_verb(socket_path, "METRICS");
    if (mode == "shutdown") return run_verb(socket_path, "SHUTDOWN");
    std::fprintf(stderr, "service_client: unknown mode '%s'\n", mode.c_str());
    return 2;
}
