// Umbrella header for the public Bosphorus library API.
//
//   #include <bosphorus/bosphorus.h>
//
//   auto problem = bosphorus::Problem::from_anf_file("problem.anf");
//   if (!problem.ok()) { /* problem.status() says why */ }
//   bosphorus::Engine engine;
//   auto report = engine.run(*problem);
//
// See README.md for the quickstart and the migration table from the legacy
// core::Bosphorus / core::solve_*_instance entry points.
#pragma once

#include "bosphorus/engine.h"    // IWYU pragma: export
#include "bosphorus/problem.h"   // IWYU pragma: export
#include "bosphorus/solve.h"     // IWYU pragma: export
#include "bosphorus/status.h"    // IWYU pragma: export
#include "bosphorus/technique.h" // IWYU pragma: export
