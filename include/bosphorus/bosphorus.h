/// \file
/// Umbrella header for the public Bosphorus library API.
///
/// \code
///   #include <bosphorus/bosphorus.h>
///
///   auto problem = bosphorus::Problem::from_anf_file("problem.anf");
///   if (!problem.ok()) { /* problem.status() says why */ }
///   bosphorus::Engine engine;
///   auto report = engine.run(*problem);
/// \endcode
///
/// See README.md for the quickstart and the migration table from the
/// legacy core::Bosphorus / core::solve_*_instance entry points.

/// \namespace bosphorus
/// The public API of the Bosphorus (DATE'19) reproduction: Problem
/// containers, the Engine learning loop, pluggable Techniques, the
/// concurrent batch/portfolio runtime, end-to-end solve(), and
/// Status/Result structured errors. Everything outside this namespace's
/// `include/bosphorus/` headers (core::, sat::, anf::, runtime::) is
/// implementation detail that the facade re-exports where needed.
#pragma once

#include "bosphorus/batch.h"       // IWYU pragma: export
#include "bosphorus/engine.h"      // IWYU pragma: export
#include "bosphorus/problem.h"     // IWYU pragma: export
#include "bosphorus/sat_backend.h" // IWYU pragma: export
#include "bosphorus/service.h"     // IWYU pragma: export
#include "bosphorus/session.h"     // IWYU pragma: export
#include "bosphorus/solve.h"       // IWYU pragma: export
#include "bosphorus/status.h"      // IWYU pragma: export
#include "bosphorus/stream.h"      // IWYU pragma: export
#include "bosphorus/technique.h"   // IWYU pragma: export

/// Library major version; bumped on breaking public-API changes.
#define BOSPHORUS_VERSION_MAJOR 0
/// Library minor version; bumped per feature release (one per PR train).
#define BOSPHORUS_VERSION_MINOR 6

namespace bosphorus {

/// The library version as a "major.minor" string (matches the
/// BOSPHORUS_VERSION_* macros); what the CLI prints for --version.
const char* version();

}  // namespace bosphorus
