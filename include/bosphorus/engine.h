// The Engine facade: the paper's fact-learning workflow (Fig. 1) over a
// pluggable technique registry.
//
// An `Engine` takes a `Problem` (ANF or CNF), materialises the master
// `AnfSystem`, and repeatedly steps every registered `Technique` in order
// -- by default XL -> ElimLin -> (Groebner) -> conflict-bounded SAT --
// until a fixed point, a decision (SAT model found / 1 = 0 derived), the
// iteration cap, the time budget, or an interrupt. The result is a
// `Report`: verdict, solution, the processed ANF/CNF augmented with every
// learnt fact, and per-technique tallies.
//
// Hooks: `set_interrupt_callback` is polled before every technique step
// (return true to stop; the partial report is still produced), and
// `set_progress_callback` fires after every step with live counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bosphorus/problem.h"
#include "bosphorus/status.h"
#include "bosphorus/technique.h"
#include "core/anf_to_cnf.h"

namespace bosphorus {

/// Loop parameters (paper section IV defaults). This is the type the
/// legacy `core::Options` name aliases.
struct EngineConfig {
    core::XlConfig xl;            ///< D = 1, M = 30, deltaM = 4
    core::ElimLinConfig elimlin;  ///< shares M = 30
    core::Anf2CnfConfig conv;     ///< K = 8, L = 5

    unsigned clause_cut = 5;  ///< L' for CNF -> ANF

    /// Optional fourth technique (paper section V): degree-bounded
    /// Buchberger/F4 Groebner reduction, plugged into the same loop.
    core::GroebnerConfig groebner;
    bool use_groebner = false;

    // SAT-solver conflict budget schedule: C from 10,000 to 100,000 in
    // increments of 10,000 whenever the solver produced no new facts.
    int64_t sat_conflicts_start = 10'000;
    int64_t sat_conflicts_max = 100'000;
    int64_t sat_conflicts_step = 10'000;

    unsigned max_iterations = 64;   ///< safety bound on the outer loop
    double time_budget_s = 1000.0;  ///< paper: Bosphorus given <= 1000 s

    bool use_xl = true;  ///< ablation switches for the default registry
    bool use_elimlin = true;
    bool use_sat = true;
    bool sat_native_xor = true;  ///< in-loop solver uses native XOR + GJE

    /// Also harvest general (non-equivalence) learnt binary clauses as
    /// quadratic ANF facts. Off by default: the paper keeps only linear
    /// facts (value and equivalence assignments).
    bool harvest_binary_clauses = false;

    uint64_t seed = 1;
    int verbosity = 0;
};

/// Live counters handed to the progress callback after every technique step.
struct Progress {
    size_t iteration = 0;       ///< outer-loop iteration (0-based)
    std::string technique;      ///< name of the step that just finished
    size_t facts_seen = 0;      ///< facts that step produced
    size_t facts_fresh = 0;     ///< ... of which were new
    size_t total_facts = 0;     ///< fresh facts across the whole run so far
    double elapsed_s = 0.0;
};

/// Return true to stop the run at the next step boundary.
using InterruptCallback = std::function<bool()>;
using ProgressCallback = std::function<void(const Progress&)>;

/// Per-technique fact tally, in registry order.
struct TechniqueTally {
    std::string name;
    size_t steps = 0;  ///< step() invocations
    size_t facts = 0;  ///< fresh facts contributed
};

/// Everything a run produced.
struct Report {
    /// kSat: in-loop solution found; kUnsat: 1 = 0 derived; kUnknown: fixed
    /// point / budget / interrupt without deciding the instance.
    sat::Result verdict = sat::Result::kUnknown;
    bool interrupted = false;  ///< the interrupt callback stopped the run
    bool timed_out = false;    ///< the time budget expired

    /// Satisfying assignment over the problem's ANF variables iff
    /// verdict == kSat.
    std::vector<bool> solution;

    /// The processed system: live equations plus variable-state equations.
    std::vector<anf::Polynomial> processed_anf;
    /// CNF of the processed system (includes all learnt facts).
    core::Anf2CnfResult processed_cnf;

    std::vector<TechniqueTally> techniques;
    /// Fresh facts contributed by the named technique (0 if absent).
    size_t facts_from(const std::string& name) const;
    size_t total_facts() const;

    size_t iterations = 0;
    size_t vars_fixed = 0;
    size_t vars_replaced = 0;
    double seconds = 0.0;

    /// ANF variable count the engine worked over. For CNF problems this
    /// includes clause-cutting auxiliaries above `num_original_vars`.
    size_t num_vars = 0;
    size_t num_original_vars = 0;  ///< the input problem's own variables
};

class Engine {
public:
    /// Builds the default technique registry from the config's ablation
    /// switches: XL, ElimLin, (Groebner), SAT.
    explicit Engine(EngineConfig cfg);
    Engine() : Engine(EngineConfig{}) {}

    /// Append a technique to the registry (runs after the existing ones,
    /// in every iteration of the loop).
    Engine& add_technique(std::unique_ptr<Technique> technique);
    /// Drop all registered techniques (e.g. to build a custom registry).
    Engine& clear_techniques();
    std::vector<std::string> technique_names() const;

    Engine& set_interrupt_callback(InterruptCallback cb);
    Engine& set_progress_callback(ProgressCallback cb);

    /// Run the learning loop on `problem` until fixed point or decision.
    /// CNF problems are converted to ANF first (section III-D). An error
    /// Status is returned only for malformed inputs; interrupt and timeout
    /// still yield a (partial) Report.
    Result<Report> run(const Problem& problem);

    const EngineConfig& config() const { return cfg_; }

private:
    EngineConfig cfg_;
    std::vector<std::unique_ptr<Technique>> techniques_;
    InterruptCallback interrupt_;
    ProgressCallback progress_;
};

}  // namespace bosphorus
