/// \file
/// The Engine facade: the paper's fact-learning workflow (Fig. 1) over a
/// pluggable technique registry.
///
/// An `Engine` takes a `Problem` (ANF or CNF), materialises the master
/// `AnfSystem`, and repeatedly steps every registered `Technique` in
/// order -- by default XL -> ElimLin -> (Groebner) -> conflict-bounded
/// SAT -- until a fixed point, a decision (SAT model found / 1 = 0
/// derived), the iteration cap, the time budget, an interrupt, or a
/// cancellation. The result is a `Report`: verdict, solution, the
/// processed ANF/CNF augmented with every learnt fact, and per-technique
/// tallies.
///
/// Hooks: `set_interrupt_callback` and `set_cancellation_token` are
/// polled before every technique step *and* inside steps at technique
/// iteration boundaries (the partial report is still produced);
/// `set_progress_callback` fires after every step with live counters.
///
/// Thread safety: one Engine drives one run at a time; give each thread
/// its own Engine (they are cheap), or use BatchEngine / solve_portfolio
/// from bosphorus/batch.h, which do exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bosphorus/problem.h"
#include "bosphorus/status.h"
#include "bosphorus/technique.h"
#include "core/anf_to_cnf.h"
#include "runtime/cancellation.h"

namespace bosphorus {

namespace runtime {
class SharedFactPool;  // src/runtime/fact_exchange.h
}  // namespace runtime

// Defined in bosphorus/batch.h (the concurrent-runtime facade); forward
// declared here so Engine::solve_portfolio can be a member.
struct PortfolioEntry;
struct PortfolioReport;

/// Loop parameters (paper section IV defaults). This is the type the
/// legacy `core::Options` name aliases.
struct EngineConfig {
    core::XlConfig xl;            ///< D = 1, M = 30, deltaM = 4
    core::ElimLinConfig elimlin;  ///< shares M = 30
    core::Anf2CnfConfig conv;     ///< K = 8, L = 5

    unsigned clause_cut = 5;  ///< L' for CNF -> ANF

    /// Optional fourth technique (paper section V): degree-bounded
    /// Buchberger/F4 Groebner reduction, plugged into the same loop.
    core::GroebnerConfig groebner;
    bool use_groebner = false;  ///< register the Groebner technique

    /// SAT-solver conflict budget: starts here, escalating whenever the
    /// solver produced no new facts (paper section IV: 10k to 100k in 10k
    /// increments).
    int64_t sat_conflicts_start = 10'000;
    int64_t sat_conflicts_max = 100'000;   ///< budget ceiling
    int64_t sat_conflicts_step = 10'000;   ///< escalation increment

    unsigned max_iterations = 64;   ///< safety bound on the outer loop
    double time_budget_s = 1000.0;  ///< paper: Bosphorus given <= 1000 s

    bool use_xl = true;       ///< ablation switches: register XL...
    bool use_elimlin = true;  ///< ... ElimLin ...
    bool use_sat = true;      ///< ... and the conflict-bounded SAT step
    bool sat_native_xor = true;  ///< in-loop solver uses native XOR + GJE

    /// In-processing engine of the native in-loop solver (vivification,
    /// tiered learnt-DB management, feature-driven profile selection; see
    /// src/sat/inprocess/). Off reproduces the legacy solver numerically.
    bool sat_inprocess = true;
    /// Native-solver profile: "auto" (feature rule, re-evaluated per solve
    /// call), "fixed" (honour sat_restart_base / learnt-DB knobs), or one
    /// of "balanced", "crypto-xor", "agile-restart", "heavy-tail".
    std::string sat_profile = "auto";
    /// Luby restart unit in conflicts (<= 0: solver default, 100).
    /// Authoritative only under sat_profile = "fixed".
    int sat_restart_base = 0;
    /// Floor of the learnt-DB local-tier cap (<= 0: default, 1000).
    int64_t sat_learnt_db_floor = 0;
    /// Local-tier cap growth per reduction (<= 0: default, 1.1).
    double sat_learnt_db_growth = 0.0;

    /// In-loop SAT back end (see bosphorus/sat_backend.h): empty keeps
    /// the built-in native solver configured by `sat_native_xor`; any
    /// registered backend spec ("minisat", "lingeling", "cms",
    /// "dimacs-exec:<cmd>", or a user-registered name) routes the
    /// conflict-bounded SAT step -- including a Session's persistent warm
    /// solver -- through that backend. This is the axis heterogeneous
    /// portfolios race over (see backend_portfolio in bosphorus/batch.h).
    std::string sat_backend;

    /// Also harvest general (non-equivalence) learnt binary clauses as
    /// quadratic ANF facts. Off by default: the paper keeps only linear
    /// facts (value and equivalence assignments).
    bool harvest_binary_clauses = false;

    /// Cooperative fact exchange (src/runtime/fact_exchange.h). When true
    /// and `fact_pool` is set, this engine publishes learnt unit/binary
    /// facts and ANF variable fixings to the pool and imports the other
    /// workers' facts -- into the master ANF at iteration boundaries and
    /// into the in-loop SAT solver before each solve round. Off (the
    /// default) keeps the fully isolated, bit-for-bit deterministic path:
    /// that is the oracle cooperative runs are differentially tested
    /// against. solve_portfolio creates and wires the pool when any entry
    /// sets `cooperative`; set it manually only for custom worker sets,
    /// and only across workers solving the SAME problem (facts are
    /// consequences of the shared base -- see fact_exchange.h).
    bool cooperative = false;
    /// The shared exchange, sized to the problem's original variables.
    /// Ignored unless `cooperative`.
    std::shared_ptr<runtime::SharedFactPool> fact_pool;
    /// This worker's id in the pool (self-published facts are skipped on
    /// import). Portfolios assign entry indices.
    unsigned coop_worker = 0;

    /// RNG seed. Runs are bit-for-bit reproducible given (problem,
    /// config, seed) -- this is also what makes BatchEngine results
    /// independent of scheduling.
    uint64_t seed = 1;
    int verbosity = 0;  ///< 0 silent; higher = more stderr logging

    /// Populate Report::processed_anf / processed_cnf after the loop. The
    /// CNF conversion is a fixed per-run cost; sweep workloads that only
    /// consume verdicts/solutions (Session re-solves,
    /// BatchEngine::solve_all_incremental) can turn it off.
    bool emit_processed = true;
};

/// Live counters handed to the progress callback after every technique step.
struct Progress {
    size_t iteration = 0;       ///< outer-loop iteration (0-based)
    std::string technique;      ///< name of the step that just finished
    size_t facts_seen = 0;      ///< facts that step produced
    size_t facts_fresh = 0;     ///< ... of which were new
    size_t total_facts = 0;     ///< fresh facts across the whole run so far
    double elapsed_s = 0.0;     ///< wall-clock since the run started
};

/// Return true to stop the run; polled at step boundaries and technique
/// iteration boundaries, possibly many times, so it must be cheap and
/// idempotent.
using InterruptCallback = std::function<bool()>;
/// Observer of per-step Progress counters; called on the run()ing thread.
using ProgressCallback = std::function<void(const Progress&)>;

/// Per-technique fact tally, in registry order.
struct TechniqueTally {
    std::string name;  ///< Technique::name() of this registry slot
    size_t steps = 0;  ///< step() invocations
    size_t facts = 0;  ///< fresh facts contributed
};

/// Everything a run produced.
struct Report {
    /// kSat: in-loop solution found; kUnsat: 1 = 0 derived; kUnknown: fixed
    /// point / budget / interrupt without deciding the instance.
    sat::Result verdict = sat::Result::kUnknown;
    /// The interrupt callback or a cancellation token stopped the run.
    bool interrupted = false;
    bool timed_out = false;    ///< the time budget expired

    /// Satisfying assignment over the problem's ANF variables iff
    /// verdict == kSat.
    std::vector<bool> solution;

    /// The processed system: live equations plus variable-state equations.
    std::vector<anf::Polynomial> processed_anf;
    /// CNF of the processed system (includes all learnt facts).
    core::Anf2CnfResult processed_cnf;

    /// Per-technique tallies, in registry order.
    std::vector<TechniqueTally> techniques;
    /// Fresh facts contributed by the named technique (0 if absent).
    size_t facts_from(const std::string& name) const;
    /// Fresh facts across all techniques.
    size_t total_facts() const;

    size_t iterations = 0;     ///< outer-loop iterations completed
    /// Cooperative exchange: foreign facts this run imported from the
    /// shared pool / own facts it published to it (0 unless
    /// EngineConfig::cooperative).
    size_t facts_imported = 0;
    size_t facts_published = 0;
    size_t vars_fixed = 0;     ///< variables assigned a constant
    size_t vars_replaced = 0;  ///< variables replaced by an equivalence
    double seconds = 0.0;      ///< wall-clock of the run

    /// ANF variable count the engine worked over. For CNF problems this
    /// includes clause-cutting auxiliaries above `num_original_vars`.
    size_t num_vars = 0;
    size_t num_original_vars = 0;  ///< the input problem's own variables
};

/// The fact-learning loop (see the file comment). Construct, optionally
/// customise the technique registry and hooks, then run() Problems.
class Engine {
public:
    /// Builds the default technique registry from the config's ablation
    /// switches: XL, ElimLin, (Groebner), SAT.
    explicit Engine(EngineConfig cfg);
    /// An Engine with the paper's default parameters (EngineConfig{}).
    Engine() : Engine(EngineConfig{}) {}

    Engine(const Engine&) = delete;  ///< move-only: techniques are stateful
    Engine& operator=(const Engine&) = delete;  ///< move-only (see above)
    Engine(Engine&&) = default;             ///< engines are cheap to move
    Engine& operator=(Engine&&) = default;  ///< engines are cheap to move

    /// Append a technique to the registry (runs after the existing ones,
    /// in every iteration of the loop).
    Engine& add_technique(std::unique_ptr<Technique> technique);
    /// Drop all registered techniques (e.g. to build a custom registry).
    Engine& clear_techniques();
    /// Technique::name() of every registry slot, in run order.
    std::vector<std::string> technique_names() const;

    /// Install a polled stop signal. Checked before every technique step,
    /// and *within* steps at technique iteration boundaries (FactSink
    /// threads it into the XL/ElimLin/Groebner loops). The callback runs
    /// on the thread executing run(); it must be thread-safe if this
    /// Engine is driven from a thread other than the one that set it.
    Engine& set_interrupt_callback(InterruptCallback cb);
    /// Install a progress observer, fired after every technique step on
    /// the thread executing run().
    Engine& set_progress_callback(ProgressCallback cb);

    /// Attach a cancellation token (see runtime/cancellation.h). When the
    /// owning CancellationSource fires, the run stops within one technique
    /// iteration and returns a partial Report with `interrupted = true`.
    /// This is how BatchEngine shutdown and portfolio first-finisher
    /// cancellation reach a running engine; it composes with (does not
    /// replace) the interrupt callback.
    Engine& set_cancellation_token(runtime::CancellationToken token);

    /// Run the learning loop on `problem` until fixed point or decision.
    /// CNF problems are converted to ANF first (section III-D). An error
    /// Status is returned only for malformed inputs; interrupt, timeout
    /// and cancellation still yield a (partial) Report.
    ///
    /// Implemented as a thin one-shot wrapper over a throwaway
    /// bosphorus/session.h Session: the Engine lends the Session its
    /// technique registry and hooks, solves once cold, and discards the
    /// Session's state. Keep the Session yourself when you will ask the
    /// same base system more than one question.
    ///
    /// Thread safety: one Engine serves one run at a time (techniques are
    /// stateful across steps). For concurrent runs give each thread its
    /// own Engine -- they are cheap to construct -- or use BatchEngine,
    /// which does exactly that.
    Result<Report> run(const Problem& problem);

    /// Race several technique configurations on one instance across a
    /// thread pool; the first decisive finisher cancels the rest. Declared
    /// here for discoverability; the portfolio types live in
    /// bosphorus/batch.h (include that to call this). Equivalent to the
    /// free function solve_portfolio().
    static Result<PortfolioReport> solve_portfolio(
        const Problem& problem, const std::vector<PortfolioEntry>& entries,
        unsigned n_threads = 0,
        runtime::CancellationToken cancel = {});

    /// The loop parameters this Engine was built with.
    const EngineConfig& config() const { return cfg_; }

private:
    EngineConfig cfg_;
    std::vector<std::unique_ptr<Technique>> techniques_;
    InterruptCallback interrupt_;
    ProgressCallback progress_;
    runtime::CancellationToken cancel_;
};

/// The default technique registry `cfg`'s ablation switches select -- XL,
/// ElimLin, (Groebner), SAT, in the paper's loop order. This is what both
/// Engine and Session construction install.
std::vector<std::unique_ptr<Technique>> make_default_techniques(
    const EngineConfig& cfg);

}  // namespace bosphorus
