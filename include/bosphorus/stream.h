/// \file
/// Out-of-core streaming CNF preprocessing: parse -> XOR recovery ->
/// simplify -> re-emit over DIMACS files arbitrarily larger than memory.
///
/// `StreamPreprocessor` runs the paper's CNF-side preprocessing direction
/// (recover GF(2)/XOR structure from CNF, simplify, re-emit a stronger
/// CNF) as a bounded-memory pipeline:
///
///  1. *Discovery rounds* (streaming, O(vars) state): top-level unit
///     propagation, pure-literal detection and equivalent-literal
///     substitution through a parity union-find, fed by unit clauses,
///     complementary binary-clause pairs and short XOR lines.
///  2. *Window pass*: clauses stream through bounded windows sized from
///     `memory_budget_bytes`; each window is remapped to a dense local
///     variable space and fed through the existing `recover_xors` ->
///     GF(2) elimination (the gf2 kernel shared with the ANF pipeline) ->
///     SatELite-style `Preprocessor` machinery (subsumption,
///     self-subsuming resolution, and bounded variable elimination
///     restricted to variables whose every occurrence is inside the
///     window).
///  3. *Re-emit*: surviving clauses, recovered XOR rows and all global
///     facts stream to the output file, whose "p cnf" header is patched
///     back in place once the final counts are known.
///
/// The output is equisatisfiable with the input (logically equivalent
/// except where bounded variable elimination fired; disable
/// `window_bve` for a model-preserving run). A refutation found during
/// preprocessing short-circuits: the output is a trivially UNSAT formula
/// and `StreamPreprocessStats::verdict` says so.
///
/// \code
///   bosphorus::StreamPreprocessConfig cfg;
///   cfg.memory_budget_bytes = 64 << 20;
///   bosphorus::StreamPreprocessor pp(cfg);
///   auto stats = pp.run("huge.cnf", "huge.out.cnf");
///   if (!stats.ok()) { /* stats.status() says why */ }
/// \endcode
///
/// Thread safety: a StreamPreprocessor instance is single-threaded; use
/// one instance per concurrent run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "bosphorus/status.h"
#include "runtime/cancellation.h"
#include "sat/types.h"

namespace bosphorus {

/// Which stage of the pipeline a progress callback reports from.
enum class StreamPhase : uint8_t {
    kDiscover,  ///< a streaming fact-discovery round (units/equivalences)
    kCount,     ///< the occurrence/polarity counting round
    kWindow,    ///< the windowed simplify + re-emit pass
};

/// Snapshot handed to StreamPreprocessConfig::on_progress.
struct StreamProgress {
    StreamPhase phase = StreamPhase::kDiscover;  ///< current pipeline stage
    uint64_t round = 0;        ///< 1-based discovery round (kDiscover only)
    uint64_t bytes_read = 0;   ///< bytes consumed from the input this pass
    uint64_t bytes_total = 0;  ///< input file size (0 if unknown)
    uint64_t clauses_seen = 0; ///< clauses consumed this pass
    uint64_t windows_flushed = 0;  ///< windows completed (kWindow only)
};

/// Knobs of the streaming preprocessor.
struct StreamPreprocessConfig {
    /// Hard memory target for the pipeline's own data structures (chunk
    /// buffers, O(vars) global state, the clause window and its working
    /// copies). Window sizing is derived from what is left after the
    /// fixed O(vars) state; if that state alone exceeds the budget the
    /// run fails with kInvalidArgument instead of silently overshooting.
    uint64_t memory_budget_bytes = 64ull << 20;

    /// Bytes per read chunk (clamped to [4 KiB, memory_budget_bytes/8]).
    uint64_t read_chunk_bytes = 1 << 20;

    /// Streaming fact-discovery rounds before the window pass (0 = skip;
    /// each round is one sequential scan of the input). Rounds stop early
    /// once a scan learns nothing new.
    int discovery_rounds = 2;

    /// Maximum XOR length `recover_xors` searches for inside a window.
    uint64_t xor_max_len = 4;

    /// Enable bounded variable elimination inside windows (restricted to
    /// variables whose every occurrence is in the window). BVE makes the
    /// output equisatisfiable but not model-preserving; disable it to
    /// keep the model set of the input (over the input's variables).
    bool window_bve = true;

    /// Sweeps of (subsume, eliminate) per window (Preprocessor passes).
    int window_passes = 2;

    /// Re-emit recovered/input XOR constraints as CryptoMiniSat-style
    /// "x" lines (understood by this library's readers and CMS-like
    /// back-ends). When false they are expanded to plain clauses, so the
    /// output is consumable by any DIMACS solver.
    bool emit_xor_lines = true;

    /// Invoked periodically (every `progress_interval_clauses` clauses
    /// and at every phase transition). May be empty. Called from the
    /// run() thread.
    std::function<void(const StreamProgress&)> on_progress;

    /// Clause granularity of progress callbacks and cancellation polls.
    uint64_t progress_interval_clauses = 1 << 16;

    /// Cooperative cancellation: polled at the progress cadence; a
    /// cancelled run returns kInterrupted (the partial output file is
    /// left behind and is NOT a valid preprocessing of the input).
    runtime::CancellationToken cancel;
};

/// Counters and outcome of one streaming preprocessing run.
struct StreamPreprocessStats {
    uint64_t bytes_in = 0;          ///< input file size in bytes
    uint64_t bytes_out = 0;         ///< bytes written to the output
    uint64_t num_vars_in = 0;       ///< variables in the input (header/grown)
    uint64_t num_vars_out = 0;      ///< variables in the output header
    uint64_t clauses_in = 0;        ///< clauses read in the window pass
    uint64_t clauses_out = 0;       ///< clauses written (incl. fact units)
    uint64_t xors_in = 0;           ///< native "x" lines in the input
    uint64_t xors_recovered = 0;    ///< XORs recovered from clause windows
    uint64_t xors_out = 0;          ///< XOR rows re-emitted
    uint64_t units_fixed = 0;       ///< variables fixed by unit reasoning
    uint64_t xor_units = 0;         ///< ... of which from GF(2) elimination
    uint64_t pure_fixed = 0;        ///< variables fixed as pure literals
    uint64_t equivs_merged = 0;     ///< variables merged into a class rep
    uint64_t tautologies_dropped = 0;  ///< tautological clauses dropped
    uint64_t duplicates_dropped = 0;   ///< duplicate clauses dropped
    uint64_t satisfied_dropped = 0;    ///< clauses satisfied by fixed vars
    uint64_t subsumed = 0;          ///< clauses removed by subsumption
    uint64_t strengthened = 0;      ///< literals removed by self-subsumption
    uint64_t bve_eliminated = 0;    ///< variables removed by windowed BVE
    uint64_t windows = 0;           ///< clause windows processed
    uint64_t discovery_rounds_run = 0;  ///< discovery scans performed
    uint64_t peak_accounted_bytes = 0;  ///< pipeline high-water byte account
    uint64_t peak_rss_bytes = 0;    ///< process VmHWM after the run (0: n/a)
    double seconds = 0.0;           ///< wall-clock time of run()
    /// kUnsat if preprocessing refuted the formula (the output is then a
    /// trivially UNSAT CNF); kUnknown otherwise. Never kSat.
    sat::Result verdict = sat::Result::kUnknown;
};

/// One-line human/machine-greppable summary of a run ("c stream: ...");
/// shared by the CLI and the cnf_preprocess example so the two cannot
/// drift apart.
std::string stream_summary_line(const StreamPreprocessStats& stats);

/// The streaming preprocessor facade. Construct with a config, then run()
/// over file paths (or in-memory text for tests/small inputs).
class StreamPreprocessor {
public:
    /// Build a preprocessor with default knobs.
    StreamPreprocessor() : StreamPreprocessor(StreamPreprocessConfig{}) {}
    /// Build a preprocessor with explicit knobs.
    explicit StreamPreprocessor(StreamPreprocessConfig cfg)
        : cfg_(std::move(cfg)) {}

    /// Preprocess `input_path` into `output_path` (overwritten). The input
    /// is scanned several times sequentially (discovery/count/window
    /// passes), so it must be a regular file; peak memory is bounded by
    /// the configured budget regardless of file size. On kUnsat the
    /// output is a valid, trivially UNSAT DIMACS file.
    Result<StreamPreprocessStats> run(const std::string& input_path,
                                      const std::string& output_path);

    /// As run(), but over an in-memory DIMACS string, appending the
    /// output to `*output_text` (cleared first). `output_text` must not
    /// be null. Intended for tests and small inputs.
    Result<StreamPreprocessStats> run_text(const std::string& input_text,
                                           std::string* output_text);

    /// The configuration this instance runs with.
    const StreamPreprocessConfig& config() const { return cfg_; }

private:
    StreamPreprocessConfig cfg_;
};

}  // namespace bosphorus
