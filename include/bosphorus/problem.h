/// \file
/// The unified problem container of the public API.
///
/// A `Problem` owns the input instance in either of the two forms
/// Bosphorus accepts -- an ANF polynomial system or a CNF formula --
/// behind one type (a tagged variant). It supports incremental loading
/// (`add_polynomial`, `add_clause`, `add_xor_clause`; the first addition
/// fixes the kind) and whole-file / whole-string loaders that report
/// failures as `Result`s rather than exceptions. An `Engine` consumes a
/// `Problem` regardless of its kind; CNF problems are converted to ANF
/// internally (section III-D).
///
/// Thread safety: a Problem is a value type. Concurrent const access
/// (inspection, Engine/BatchEngine runs) is safe; mutation (`add_*`,
/// `new_var`) must be externally serialised and must not race reads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/status.h"
#include "sat/types.h"

namespace bosphorus {

/// An ANF or CNF instance behind one type; see the file comment.
class Problem {
public:
    /// Which representation this problem holds.
    enum class Kind {
        kEmpty,  ///< nothing added yet; the first add_* fixes the kind
        kAnf,    ///< a Boolean polynomial system (equations p = 0)
        kCnf     ///< a CNF formula (clauses + native XOR constraints)
    };

    /// An empty problem; the first add_* call decides its kind.
    Problem() = default;

    // ---- whole-instance constructors ------------------------------------
    /// Wrap an ANF system. Postcondition: kind() == kAnf (even when
    /// `polys` is empty) and num_vars() == num_vars.
    static Problem from_anf(std::vector<anf::Polynomial> polys,
                            size_t num_vars);
    /// Wrap a CNF formula. Postcondition: kind() == kCnf.
    static Problem from_cnf(sat::Cnf cnf);

    /// Parse "x1*x2 + x3 + 1"-style text, one polynomial equation per
    /// line. Fails with kParseError on malformed input.
    static Result<Problem> from_anf_text(const std::string& text);
    /// Parse DIMACS CNF text ('x' lines are native XOR constraints).
    /// Fails with kParseError on malformed input.
    static Result<Problem> from_cnf_text(const std::string& text);
    /// Load ANF text from a file; kIoError if unreadable, else as
    /// from_anf_text.
    static Result<Problem> from_anf_file(const std::string& path);
    /// Load DIMACS from a file; kIoError if unreadable, else as
    /// from_cnf_text.
    static Result<Problem> from_cnf_file(const std::string& path);

    // ---- incremental loading ---------------------------------------------
    /// Append a polynomial equation p = 0. Fails on a CNF problem.
    Status add_polynomial(const anf::Polynomial& p);
    /// Append a clause (disjunction of literals). Fails on an ANF problem.
    Status add_clause(std::vector<sat::Lit> lits);
    /// Append a native XOR constraint (vars XOR to rhs). Fails on ANF.
    Status add_xor_clause(std::vector<sat::Var> vars, bool rhs);

    /// Grow the variable space by one; returns the new variable's index.
    /// Works for both kinds (and fixes neither on an empty problem).
    anf::Var new_var();
    /// Ensure the variable space covers at least `n` variables.
    void reserve_vars(size_t n);

    // ---- inspection ------------------------------------------------------
    /// Which representation this problem currently holds.
    Kind kind() const { return kind_; }
    /// True iff no constraint has been added (regardless of kind).
    bool empty() const;
    /// Size of the variable space (highest variable index + 1).
    size_t num_vars() const;
    /// Number of constraints: polynomials, or clauses + XOR constraints.
    size_t num_constraints() const;

    /// Precondition: kind() != Kind::kCnf (an empty problem is a valid,
    /// empty ANF system).
    const std::vector<anf::Polynomial>& polynomials() const { return polys_; }
    /// Precondition: kind() == Kind::kCnf.
    const sat::Cnf& cnf() const { return cnf_; }

private:
    Kind kind_ = Kind::kEmpty;
    std::vector<anf::Polynomial> polys_;  // kAnf
    sat::Cnf cnf_;                        // kCnf
    size_t num_vars_ = 0;
};

}  // namespace bosphorus
