/// \file
/// End-to-end solving over the facade (the paper's Table II protocol).
///
/// A `Problem` is either handed straight to a back-end SAT solver
/// ("w/o Bosphorus") or first run through the `Engine` learning loop,
/// whose processed CNF -- original variables plus every learnt fact -- is
/// then solved; the reported time includes the engine's own runtime
/// ("w Bosphorus"). SAT models are verified against the *original* input.
///
/// Thread safety: solve() builds all its state per call; concurrent
/// solve() calls on distinct (or shared, const) Problems are safe.
#pragma once

#include "bosphorus/engine.h"
#include "bosphorus/problem.h"
#include "bosphorus/sat_backend.h"
#include "bosphorus/status.h"
#include "sat/solve_cnf.h"

namespace bosphorus {

/// Parameters of one end-to-end solve() call.
struct SolveConfig {
    EngineConfig engine;        ///< loop parameters (section IV defaults)
    bool preprocess = false;    ///< run the Engine first (the "w" axis)
    /// Back-end solver: any spec the bosphorus/sat_backend.h registry
    /// resolves -- "minisat", "lingeling", "cms" (the paper's Table II
    /// axis), "dimacs-exec:<cmd>" for an external binary, or a
    /// user-registered backend. The legacy sat::SolverKind enum still
    /// assigns here (it converts to the matching name).
    sat::SolverSpec solver;
    double timeout_s = 5000.0;  ///< total per-instance budget
    double engine_budget_s = 1000.0;  ///< the Engine's share of the budget
};

/// What one end-to-end solve() call produced.
struct SolveOutcome {
    sat::Result result = sat::Result::kUnknown;  ///< final verdict
    double seconds = 0.0;         ///< total wall-clock (incl. the engine)
    double engine_seconds = 0.0;  ///< time spent in the learning loop
    bool solved_in_loop = false;  ///< decided by the engine itself
    bool model_verified = false;  ///< SAT model checked against the input
    sat::Solver::Stats solver_stats;  ///< back-end solver counters
};

/// Solve an ANF or CNF problem. Errors only on malformed input (e.g. an
/// empty Problem is fine: it is trivially SAT).
Result<SolveOutcome> solve(const Problem& problem,
                           const SolveConfig& cfg = {});

/// PAR-2 score of a set of outcomes: sum of runtimes for solved instances
/// plus twice the timeout for unsolved ones (lower is better).
double par2_score(const std::vector<SolveOutcome>& outcomes,
                  double timeout_s);

}  // namespace bosphorus
