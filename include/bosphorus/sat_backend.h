/// \file
/// The pluggable SAT back-end layer: an IPASIR-style abstract solver
/// interface (`SolverBackend`) and a process-global named registry
/// (`BackendRegistry`).
///
/// The paper's central evaluation (Table II) runs Bosphorus in front of
/// *interchangeable* CDCL back ends (MiniSat, Lingeling, CryptoMiniSat).
/// This header makes that axis a first-class, open API instead of a
/// closed enum: every place the library hands a CNF to a SAT solver --
/// the one-shot `bosphorus::solve()` back end, the in-loop
/// conflict-bounded SAT technique, a `Session`'s persistent warm solver,
/// portfolio entries -- goes through a `SolverBackend` created from a
/// `SolverSpec` by the registry.
///
/// Built-in backends (always registered):
///
///   - `"minisat"`   -- plain CDCL (the MiniSat 2.2 stand-in), incremental.
///   - `"lingeling"` -- CDCL + SatELite-style preprocessing. Preprocessing
///                      is destructive, so every solve() is cold: the
///                      backend re-simplifies its buffered clauses and
///                      degrades assumptions to per-solve unit clauses.
///   - `"cms"`       -- CDCL + native XOR propagation + level-0
///                      Gauss-Jordan elimination, with CryptoMiniSat-style
///                      XOR recovery from the clauses added before the
///                      first solve. Incremental.
///   - `"dimacs-exec"` -- an external-process bridge: the spec
///                      `"dimacs-exec:<cmd>"` shells out to any
///                      SAT-competition-conformant solver binary (DIMACS
///                      in, `s SATISFIABLE`/`s UNSATISFIABLE` + `v` lines
///                      out), killing the child on timeout or interrupt.
///
/// Thread safety: the registry is internally synchronised (register,
/// create and list may race freely). A backend instance, like the solvers
/// it wraps, belongs to one thread at a time -- with the single exception
/// of `interrupt()`, which is async-safe by contract so another thread
/// can stop a running solve (this is what portfolio first-finisher
/// cancellation uses).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bosphorus/status.h"
#include "sat/solve_cnf.h"
#include "sat/solver.h"
#include "sat/types.h"

/// \namespace bosphorus::sat
/// SAT-level types of the public API: the core literal/CNF vocabulary
/// (sat/types.h), the CNF-level solve outcome, and -- from this header
/// -- the pluggable back-end interface and registry.
namespace bosphorus::sat {

/// Names one solver back end, e.g. `"cms"` or `"dimacs-exec:kissat -q"`.
///
/// The part before the first `':'` selects the registry entry; anything
/// after it is the backend's argument (the command line, for
/// `dimacs-exec`). Implicitly constructible from strings -- so APIs take
/// a `SolverSpec` and callers write `cfg.solver = "minisat";` -- and,
/// for source compatibility, from the deprecated `SolverKind` enum.
struct SolverSpec {
    /// The full specification string, `<backend>[:<argument>]`.
    std::string spec = kDefaultSolverName;

    /// The default back end ("cms", matching the CLI's documented default).
    SolverSpec() = default;
    /// Wrap a specification string (implicit by design).
    SolverSpec(std::string s) : spec(std::move(s)) {}  // NOLINT: implicit
    /// Wrap a C-string specification (implicit by design).
    SolverSpec(const char* s) : spec(s) {}  // NOLINT: implicit
    /// Adapt the legacy closed enum ("minisat" / "lingeling" / "cms").
    /// Deprecated: pass the backend name directly.
    SolverSpec(SolverKind kind);  // NOLINT: implicit

    /// The registry name: everything before the first ':'.
    std::string backend_name() const;
    /// The backend argument: everything after the first ':' (may itself
    /// contain ':'); empty when the spec has no argument.
    std::string argument() const;

    /// Structural equality on the spec string.
    bool operator==(const SolverSpec& o) const { return spec == o.spec; }
};

/// An abstract incremental SAT solver, IPASIR-style: add clauses, assume
/// literals, solve, read values, query failed assumptions, interrupt.
///
/// Contract:
///  - `assume()`d literals constrain only the *next* `solve()` call (they
///    are cleared by it), exactly like IPASIR assumptions. Backends
///    without native assumption support (`supports_assumptions()` false)
///    degrade them to per-solve unit clauses over a cold solve -- the
///    verdict is the same, warm-start savings and exact `failed()`
///    reporting are not.
///  - After a kUnsat solve under assumptions with `okay()` still true,
///    `failed(a)` tells whether assumption `a` was (possibly) used to
///    derive the refutation. Backends may over-approximate (report every
///    assumption) but never under-approximate. Failed assumptions never
///    poison the instance: the backend stays usable and later solves
///    without (or with different) assumptions behave as if the failed
///    call never happened.
///  - `interrupt()` is sticky, async-safe, and makes a running (and any
///    subsequent) solve return kUnknown until `clear_interrupt()`.
class SolverBackend {
public:
    virtual ~SolverBackend() = default;

    /// The registry name this backend was created under (e.g. "cms").
    virtual std::string name() const = 0;

    /// Grow the variable space to at least `n` variables.
    virtual void ensure_vars(size_t n) = 0;
    /// Number of variables the backend currently knows about.
    virtual size_t num_vars() const = 0;

    /// Add a clause (variables must exist). Returns false iff the formula
    /// is now known UNSAT outright (okay() turns false).
    virtual bool add_clause(const std::vector<Lit>& lits) = 0;
    /// Add an XOR constraint; backends without native XOR support expand
    /// it into clauses. Returns false iff the formula is now known UNSAT.
    virtual bool add_xor(const XorConstraint& x) = 0;

    /// Assume `l` for the next solve() only (see the class contract).
    virtual void assume(Lit l) = 0;

    /// Solve under the pending assumptions, a conflict budget (< 0:
    /// unbounded; backends that cannot bound by conflicts ignore it) and
    /// a wall-clock timeout in seconds (< 0: none). kUnknown on budget /
    /// timeout / interrupt.
    virtual Result solve(int64_t conflict_budget = -1,
                         double timeout_s = -1.0) = 0;

    /// After a kSat solve: the value of `v` in the model (kFalse for
    /// variables the backend's model does not cover).
    virtual LBool value(Var v) const = 0;
    /// After a kUnsat solve under assumptions: whether assumption `a` was
    /// (possibly) used to refute them. See the class contract.
    virtual bool failed(Lit a) const = 0;

    /// False once the formula is UNSAT outright (no assumptions needed).
    virtual bool okay() const = 0;

    /// Ask a running solve (possibly on another thread) to stop; sticky
    /// until clear_interrupt(). The only member that is async-safe.
    virtual void interrupt() = 0;
    /// Re-arm after interrupt().
    virtual void clear_interrupt() = 0;
    /// Install a callback polled during solve(); returning true stops the
    /// search with kUnknown (the IPASIR terminate hook). Runs on the
    /// solving thread; nullptr removes it.
    virtual void set_terminate_callback(std::function<bool()> cb) = 0;

    /// Cumulative search statistics (all zero for backends that cannot
    /// report them, e.g. external processes).
    virtual Solver::Stats stats() const = 0;

    /// True iff assume() is native (warm) rather than degraded to unit
    /// clauses over a cold solve.
    virtual bool supports_assumptions() const { return true; }
    /// True iff add_xor() is handled natively (no clause expansion).
    virtual bool supports_native_xor() const { return false; }

    /// Unit literals this backend has learnt (or implied at level 0),
    /// accumulated across solves -- the facts the Bosphorus loop harvests.
    /// Backends that cannot export them return an empty vector.
    virtual std::vector<Lit> learnt_units() const { return {}; }
    /// Learnt binary clauses, deduplicated, accumulated across solves.
    /// Backends that cannot export them return an empty vector.
    virtual std::vector<std::array<Lit, 2>> learnt_binaries() const {
        return {};
    }

    /// Convenience: ensure_vars + add_clause/add_xor over a whole CNF.
    /// Returns false iff the formula became UNSAT outright while loading.
    bool load(const Cnf& cnf);
};

/// One registry entry's metadata, as returned by BackendRegistry::list().
struct BackendInfo {
    std::string name;         ///< registry name ("cms", "dimacs-exec", ...)
    std::string description;  ///< one-line human-readable summary
    bool builtin = false;     ///< shipped with the library vs user-registered
};

/// Per-backend circuit-breaker health accounting, shared by every
/// `ResilientBackend` in the process (it lives in `BackendRegistry`).
///
/// Classic three-state breaker, keyed by registry backend name:
///
///   - **closed**: requests flow; `failure_threshold` *consecutive*
///     failures open the circuit.
///   - **open**: `allow()` denies everything until `open_cooldown_s` of
///     wall-clock has passed, then admits exactly one half-open probe.
///   - **half-open**: one probe in flight; success closes the circuit,
///     failure re-opens it (and restarts the cooldown).
///
/// ResilientBackend consults `allow()` before each fallback-chain entry
/// (the final, known-good entry is exempt -- degrading must always have
/// somewhere to go) and feeds outcomes back via `record_*`. The METRICS
/// verb surfaces `snapshot()` as `circuit.<backend>.*` lines.
class HealthTracker {
public:
    enum class CircuitState : uint8_t { kClosed, kOpen, kHalfOpen };

    struct Config {
        uint32_t failure_threshold = 3;  ///< consecutive failures to open
        double open_cooldown_s = 5.0;    ///< open -> half-open probe delay
    };

    /// One backend's health, as returned by snapshot().
    struct Snapshot {
        std::string backend;
        CircuitState state = CircuitState::kClosed;
        uint64_t successes = 0;
        uint64_t failures = 0;
        uint64_t consecutive_failures = 0;
        uint64_t opens = 0;  ///< times the circuit transitioned to open
    };

    /// Replace the breaker thresholds (applies to future transitions).
    void set_config(Config cfg);
    Config config() const;

    /// May a request go to `backend` now? Open circuits deny until the
    /// cooldown elapses, then this call itself admits the single
    /// half-open probe (callers need no separate probe API).
    bool allow(const std::string& backend);

    void record_success(const std::string& backend);
    void record_failure(const std::string& backend);

    /// All tracked backends, sorted by name.
    std::vector<Snapshot> snapshot() const;

    /// Total circuit-open transitions across all backends.
    uint64_t total_opens() const;

    /// Forget everything (tests).
    void reset();

    /// The state's wire name: "closed" / "open" / "half-open".
    static const char* state_name(CircuitState s);

private:
    struct Entry {
        CircuitState state = CircuitState::kClosed;
        uint64_t successes = 0;
        uint64_t failures = 0;
        uint64_t consecutive_failures = 0;
        uint64_t opens = 0;
        double opened_at_s = 0;  ///< monotonic stamp of the last open
    };

    mutable std::mutex mu_;
    Config cfg_;
    std::vector<std::pair<std::string, Entry>> entries_;  // few, linear scan
};

/// Process-global counters of what the resilience layer did, surfaced in
/// bosphorusd METRICS (`resilience.*`) and bench output. Monotonic.
struct ResilienceCounters {
    std::atomic<uint64_t> attempts{0};          ///< underlying solve attempts
    std::atomic<uint64_t> retries{0};           ///< re-attempts after failure
    std::atomic<uint64_t> fallbacks{0};         ///< chain entries given up on
    std::atomic<uint64_t> garbage_rejected{0};  ///< models failing verification
    std::atomic<uint64_t> exhausted{0};         ///< solves with no verdict left
};

/// The process-global counter block (never reset in production).
ResilienceCounters& resilience_counters();

/// Options parsed from the `resilient:` spec argument.
struct ResilienceOptions {
    uint32_t max_attempts = 3;        ///< per chain entry (1 = no retries)
    double attempt_timeout_s = -1.0;  ///< per attempt; <0: remaining budget
    double backoff_base_s = 0.01;     ///< first retry delay
    double backoff_max_s = 0.25;      ///< delay ceiling
};

/// Build the `resilient:` decorator from its spec argument -- a
/// comma-separated fallback chain of solver specs, optionally followed by
/// `retries=N` / `attempt-timeout=S` / `backoff=S` options, e.g.
/// `"resilient:dimacs-exec:kissat -q,cms,retries=2,attempt-timeout=5"`.
/// When no chain entry is an in-tree backend, "cms" is appended as the
/// known-good final fallback. Fails with kInvalidArgument when the chain
/// is empty, nests `resilient`, or no entry can be instantiated.
::bosphorus::Result<std::unique_ptr<SolverBackend>> make_resilient_backend(
    const std::string& arg);

/// The process-global, thread-safe registry of SAT back-end factories.
///
/// A factory takes the spec argument (the part after ':', empty for plain
/// names) and produces a fresh backend -- or an error Status for a
/// malformed argument. The four built-ins are registered before any
/// lookup; user code may register additional backends at any time (names
/// are first-come-first-served; re-registering an existing name fails).
class BackendRegistry {
public:
    /// Factory signature: `arg` is the spec argument (see SolverSpec).
    using Factory =
        std::function<::bosphorus::Result<std::unique_ptr<SolverBackend>>(
            const std::string& arg)>;

    /// The process-global registry (built-ins pre-registered).
    static BackendRegistry& global();

    /// Register a backend under `info.name`. Fails with kInvalidArgument
    /// when the name is empty, contains ':', or is already taken.
    Status register_backend(BackendInfo info, Factory factory);

    /// Create a fresh backend from `spec`. Fails with kInvalidArgument
    /// when the backend name is unknown or the factory rejects the
    /// argument.
    ::bosphorus::Result<std::unique_ptr<SolverBackend>> create(
        const SolverSpec& spec) const;

    /// All registered backends, in registration order (built-ins first).
    /// The returned vector is an atomic snapshot taken under the registry
    /// lock: a listing racing register_backend() sees either all of a
    /// registration or none of it, never a partially-updated table.
    std::vector<BackendInfo> list() const;

    /// True iff a backend named `name` is registered.
    bool contains(const std::string& name) const;

    /// The process-wide circuit-breaker health state (see HealthTracker).
    HealthTracker& health() { return health_; }
    const HealthTracker& health() const { return health_; }

private:
    BackendRegistry() = default;

    mutable std::mutex mutex_;
    std::vector<std::pair<BackendInfo, Factory>> entries_;
    HealthTracker health_;
};

/// One-call CNF solving through the registry: create a backend from
/// `spec`, load `cnf`, solve with the given wall-clock timeout (< 0:
/// none) and conflict budget (< 0: unbounded), and package the verdict,
/// model (resized to `cnf.num_vars`) and statistics. The registry-based
/// replacement for the deprecated enum-based `solve_cnf()`; for the three
/// built-in names the verdict is identical to that path. Errors only on
/// an unknown / malformed spec.
::bosphorus::Result<CnfSolveOutcome> solve_cnf_with(const Cnf& cnf, const SolverSpec& spec,
                                       double timeout_s = -1,
                                       int64_t conflict_budget = -1);

}  // namespace bosphorus::sat
