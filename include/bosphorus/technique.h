// The pluggable learning-technique interface of the Engine loop.
//
// The paper (section V) stresses that new solving techniques "can be
// plugged as components into the workflow". The `Engine` realises that: it
// iterates an *ordered registry* of `Technique` objects, each implementing
// one `step()` of fact learning against the master ANF. XL, ElimLin, the
// optional Groebner reduction and the conflict-bounded SAT step are all
// shipped as such plugins (see the make_*_technique factories); installing
// a new technique -- a no-op, a parallel worker, a remote call -- requires
// no change to the engine loop.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/status.h"
#include "core/anf_to_cnf.h"
#include "core/elimlin.h"
#include "core/groebner.h"
#include "core/xl.h"
#include "sat/types.h"
#include "util/rng.h"

namespace bosphorus::core {
class AnfSystem;
}  // namespace bosphorus::core

namespace bosphorus {

/// The channel through which a technique feeds learnt facts back into the
/// master ANF (propagation runs immediately), plus the per-step engine
/// context a technique may consult: the shared RNG, the remaining time
/// budget and the outer-loop iteration number.
class FactSink {
public:
    FactSink(core::AnfSystem& sys, Rng& rng, double time_remaining_s,
             size_t iteration, int verbosity)
        : sys_(sys),
          rng_(rng),
          time_remaining_s_(time_remaining_s),
          iteration_(iteration),
          verbosity_(verbosity) {}

    /// Add a learnt polynomial fact (an equation fact = 0). Returns true
    /// iff the fact was new, i.e. changed the system.
    bool add(const anf::Polynomial& fact);

    /// Facts offered / facts that were new, so far in this step.
    size_t seen() const { return seen_; }
    size_t fresh() const { return fresh_; }

    /// False once the system has derived 1 = 0 (the instance is UNSAT);
    /// techniques should stop feeding facts at that point.
    bool okay() const;

    /// The system under processing (read access for techniques that need
    /// more than `equations()`, e.g. the SAT step's CNF conversion).
    const core::AnfSystem& system() const { return sys_; }

    Rng& rng() const { return rng_; }
    double time_remaining_s() const { return time_remaining_s_; }
    size_t iteration() const { return iteration_; }
    int verbosity() const { return verbosity_; }

private:
    core::AnfSystem& sys_;
    Rng& rng_;
    double time_remaining_s_;
    size_t iteration_;
    int verbosity_;
    size_t seen_ = 0;
    size_t fresh_ = 0;
};

/// What one technique step accomplished.
struct StepReport {
    /// Non-OK aborts the whole engine run with this status.
    Status status;

    /// Facts produced / facts that changed the system. Techniques that
    /// deposit through the sink can leave these 0; the engine folds the
    /// sink's own counters in.
    size_t facts_seen = 0;
    size_t facts_fresh = 0;

    /// Set when the technique decided the instance outright. kSat requires
    /// `solution`; kUnknown means "stop the loop without a verdict" (e.g. a
    /// model was found but failed verification). UNSAT discoveries are
    /// normally signalled by feeding the fact 1 = 0 through the sink.
    std::optional<sat::Result> decided;
    std::vector<bool> solution;  ///< iff decided == kSat

    bool progressed() const { return facts_fresh > 0; }
};

/// One pluggable learning step. Implementations must be reusable across
/// `Engine::run` calls: `begin_run` is invoked before each run so stateful
/// techniques (e.g. the SAT step's conflict-budget schedule) can reset.
class Technique {
public:
    virtual ~Technique() = default;

    /// Stable identifier, e.g. "xl"; used for per-technique fact tallies.
    virtual std::string name() const = 0;

    /// Run one pass over the system, feeding learnt facts through `sink`.
    virtual StepReport step(core::AnfSystem& sys, FactSink& sink) = 0;

    /// Called once at the start of every Engine::run.
    virtual void begin_run() {}
};

// ---- built-in techniques (the paper's loop, as plugins) -------------------

std::unique_ptr<Technique> make_xl_technique(const core::XlConfig& cfg);
std::unique_ptr<Technique> make_elimlin_technique(
    const core::ElimLinConfig& cfg);
std::unique_ptr<Technique> make_groebner_technique(
    const core::GroebnerConfig& cfg);

/// Conflict-bounded SAT probing (paper section III-E): converts the current
/// system to CNF, runs a CDCL solver under a conflict budget, and harvests
/// learnt units / equivalences as linear ANF facts. The budget escalates
/// from `conflicts_start` by `conflicts_step` (up to `conflicts_max`) on
/// steps that learn nothing new.
struct SatTechniqueConfig {
    core::Anf2CnfConfig conv;       ///< conversion parameters (K, L)
    bool native_xor = true;         ///< in-loop solver uses XOR + GJE
    int64_t conflicts_start = 10'000;
    int64_t conflicts_max = 100'000;
    int64_t conflicts_step = 10'000;
    /// Also harvest general learnt binary clauses as quadratic facts.
    bool harvest_binary_clauses = false;
};

std::unique_ptr<Technique> make_sat_technique(const SatTechniqueConfig& cfg);

}  // namespace bosphorus
