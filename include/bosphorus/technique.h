/// \file
/// The pluggable learning-technique interface of the Engine loop.
///
/// The paper (section V) stresses that new solving techniques "can be
/// plugged as components into the workflow". The `Engine` realises that:
/// it iterates an *ordered registry* of `Technique` objects, each
/// implementing one `step()` of fact learning against the master ANF. XL,
/// ElimLin, the optional Groebner reduction and the conflict-bounded SAT
/// step are all shipped as such plugins (see the make_*_technique
/// factories); installing a new technique -- a no-op, a parallel worker,
/// a remote call -- requires no change to the engine loop.
///
/// Thread safety: a Technique instance belongs to one Engine and is
/// stepped by one thread at a time; techniques needing cross-run state
/// reset it in begin_run(). Long-running steps must poll
/// FactSink::cancelled() (or pass the token to the core loops) so batch
/// shutdown, portfolio cancellation and user interrupts stay prompt.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/status.h"
#include "core/anf_to_cnf.h"
#include "core/elimlin.h"
#include "core/groebner.h"
#include "core/xl.h"
#include "runtime/cancellation.h"
#include "sat/types.h"
#include "util/rng.h"

namespace bosphorus::core {
class AnfSystem;
}  // namespace bosphorus::core

namespace bosphorus {

/// The channel through which a technique feeds learnt facts back into the
/// master ANF (propagation runs immediately), plus the per-step engine
/// context a technique may consult: the shared RNG, the remaining time
/// budget and the outer-loop iteration number.
class FactSink {
public:
    /// Built by the Engine before every technique step. `cancel` folds the
    /// engine's cancellation token and the user's interrupt callback into
    /// one stop signal (see cancel_token()).
    FactSink(core::AnfSystem& sys, Rng& rng, double time_remaining_s,
             size_t iteration, int verbosity,
             runtime::CancellationToken cancel = {})
        : sys_(sys),
          rng_(rng),
          time_remaining_s_(time_remaining_s),
          iteration_(iteration),
          verbosity_(verbosity),
          cancel_(std::move(cancel)) {}

    /// Add a learnt polynomial fact (an equation fact = 0). Returns true
    /// iff the fact was new, i.e. changed the system.
    bool add(const anf::Polynomial& fact);

    /// Facts offered so far in this step.
    size_t seen() const { return seen_; }
    /// Facts that were new (changed the system) so far in this step.
    size_t fresh() const { return fresh_; }

    /// False once the system has derived 1 = 0 (the instance is UNSAT);
    /// techniques should stop feeding facts at that point.
    bool okay() const;

    /// The system under processing (read access for techniques that need
    /// more than `equations()`, e.g. the SAT step's CNF conversion).
    const core::AnfSystem& system() const { return sys_; }

    /// The run's RNG: the one deterministic randomness source techniques
    /// may draw from (subsampling, tie-breaking).
    Rng& rng() const { return rng_; }
    /// Wall-clock remaining in the engine's time budget at step start.
    double time_remaining_s() const { return time_remaining_s_; }
    /// The outer-loop iteration this step belongs to (0-based).
    size_t iteration() const { return iteration_; }
    /// The engine's logging verbosity (EngineConfig::verbosity).
    int verbosity() const { return verbosity_; }

    /// The engine's stop signal for this step: cancelled when the run's
    /// cancellation token fires (batch shutdown, portfolio loser) or the
    /// user's interrupt callback returns true. Long-running techniques
    /// must hand this to their core loops (run_xl/run_elimlin/...) or poll
    /// `cancelled()` at their own iteration boundaries so that
    /// cancellation lands within one iteration, not one step.
    const runtime::CancellationToken& cancel_token() const { return cancel_; }
    /// Shorthand for cancel_token().cancelled().
    bool cancelled() const { return cancel_.cancelled(); }

private:
    core::AnfSystem& sys_;
    Rng& rng_;
    double time_remaining_s_;
    size_t iteration_;
    int verbosity_;
    runtime::CancellationToken cancel_;
    size_t seen_ = 0;
    size_t fresh_ = 0;
};

/// What one technique step accomplished.
struct StepReport {
    /// Non-OK aborts the whole engine run with this status.
    Status status;

    /// Facts produced outside the sink. Techniques that deposit through
    /// the sink can leave this 0; the engine folds the sink's own
    /// counters in.
    size_t facts_seen = 0;
    size_t facts_fresh = 0;  ///< ... of which changed the system

    /// Set when the technique decided the instance outright. kSat requires
    /// `solution`; kUnknown means "stop the loop without a verdict" (e.g. a
    /// model was found but failed verification). UNSAT discoveries are
    /// normally signalled by feeding the fact 1 = 0 through the sink.
    std::optional<sat::Result> decided;
    std::vector<bool> solution;  ///< iff decided == kSat

    /// True iff this step changed the system.
    bool progressed() const { return facts_fresh > 0; }
};

/// One pluggable learning step. Implementations must be reusable across
/// `Engine::run` calls: `begin_run` is invoked before each run so stateful
/// techniques (e.g. the SAT step's conflict-budget schedule) can reset.
class Technique {
public:
    virtual ~Technique() = default;

    /// Stable identifier, e.g. "xl"; used for per-technique fact tallies.
    virtual std::string name() const = 0;

    /// Run one pass over the system, feeding learnt facts through `sink`.
    virtual StepReport step(core::AnfSystem& sys, FactSink& sink) = 0;

    /// Called once at the start of every Engine::run.
    virtual void begin_run() {}
};

// ---- built-in techniques (the paper's loop, as plugins) -------------------

/// eXtended Linearization (paper section II-B) as a Technique.
std::unique_ptr<Technique> make_xl_technique(const core::XlConfig& cfg);
/// ElimLin (paper section II-C) as a Technique.
std::unique_ptr<Technique> make_elimlin_technique(
    const core::ElimLinConfig& cfg);
/// Degree-bounded F4/Buchberger reduction (paper section V) as a
/// Technique.
std::unique_ptr<Technique> make_groebner_technique(
    const core::GroebnerConfig& cfg);

/// Conflict-bounded SAT probing (paper section III-E): converts the current
/// system to CNF, runs a CDCL solver under a conflict budget, and harvests
/// learnt units / equivalences as linear ANF facts. The budget escalates
/// from `conflicts_start` by `conflicts_step` (up to `conflicts_max`) on
/// steps that learn nothing new.
struct SatTechniqueConfig {
    core::Anf2CnfConfig conv;       ///< conversion parameters (K, L)
    bool native_xor = true;         ///< in-loop solver uses XOR + GJE
    int64_t conflicts_start = 10'000;  ///< initial conflict budget C
    int64_t conflicts_max = 100'000;   ///< budget ceiling
    int64_t conflicts_step = 10'000;   ///< escalation on fact-free steps
    /// Also harvest general learnt binary clauses as quadratic facts.
    bool harvest_binary_clauses = false;
};

/// The conflict-bounded SAT step (see SatTechniqueConfig) as a Technique.
std::unique_ptr<Technique> make_sat_technique(const SatTechniqueConfig& cfg);

}  // namespace bosphorus
