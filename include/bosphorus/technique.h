/// \file
/// The pluggable learning-technique interface of the Engine loop.
///
/// The paper (section V) stresses that new solving techniques "can be
/// plugged as components into the workflow". The `Engine` realises that:
/// it iterates an *ordered registry* of `Technique` objects, each
/// implementing one `step()` of fact learning against the master ANF. XL,
/// ElimLin, the optional Groebner reduction and the conflict-bounded SAT
/// step are all shipped as such plugins (see the make_*_technique
/// factories); installing a new technique -- a no-op, a parallel worker,
/// a remote call -- requires no change to the engine loop.
///
/// Thread safety: a Technique instance belongs to one Engine and is
/// stepped by one thread at a time; techniques needing cross-run state
/// reset it in begin_run(). Long-running steps must poll
/// FactSink::cancelled() (or pass the token to the core loops) so batch
/// shutdown, portfolio cancellation and user interrupts stay prompt.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/status.h"
#include "core/anf_to_cnf.h"
#include "core/elimlin.h"
#include "core/groebner.h"
#include "core/xl.h"
#include "runtime/cancellation.h"
#include "sat/types.h"
#include "util/rng.h"

namespace bosphorus::core {
class AnfSystem;
}  // namespace bosphorus::core

namespace bosphorus::runtime {
class SharedFactPool;  // src/runtime/fact_exchange.h
}  // namespace bosphorus::runtime

namespace bosphorus {

/// The channel through which a technique feeds learnt facts back into the
/// master ANF (propagation runs immediately), plus the per-step engine
/// context a technique may consult: the shared RNG, the remaining time
/// budget and the outer-loop iteration number.
class FactSink {
public:
    /// Built by the Engine before every technique step. `cancel` folds the
    /// engine's cancellation token and the user's interrupt callback into
    /// one stop signal (see cancel_token()); `warm` is the Session's
    /// warm-base hint (see warm_base_valid()).
    FactSink(core::AnfSystem& sys, Rng& rng, double time_remaining_s,
             size_t iteration, int verbosity,
             runtime::CancellationToken cancel = {}, bool warm = false,
             bool coop_publish_base = true, bool coop_publish_warm = true)
        : sys_(sys),
          rng_(rng),
          time_remaining_s_(time_remaining_s),
          iteration_(iteration),
          verbosity_(verbosity),
          cancel_(std::move(cancel)),
          warm_(warm),
          coop_publish_base_(coop_publish_base),
          coop_publish_warm_(coop_publish_warm) {}

    /// Add a learnt polynomial fact (an equation fact = 0). Returns true
    /// iff the fact was new, i.e. changed the system.
    bool add(const anf::Polynomial& fact);

    /// Facts offered so far in this step.
    size_t seen() const { return seen_; }
    /// Facts that were new (changed the system) so far in this step.
    size_t fresh() const { return fresh_; }

    /// False once the system has derived 1 = 0 (the instance is UNSAT);
    /// techniques should stop feeding facts at that point.
    bool okay() const;

    /// The system under processing (read access for techniques that need
    /// more than `equations()`, e.g. the SAT step's CNF conversion).
    const core::AnfSystem& system() const { return sys_; }

    /// The run's RNG: the one deterministic randomness source techniques
    /// may draw from (subsampling, tie-breaking).
    Rng& rng() const { return rng_; }
    /// Wall-clock remaining in the engine's time budget at step start.
    double time_remaining_s() const { return time_remaining_s_; }
    /// The outer-loop iteration this step belongs to (0-based).
    size_t iteration() const { return iteration_; }
    /// The engine's logging verbosity (EngineConfig::verbosity).
    int verbosity() const { return verbosity_; }

    /// The engine's stop signal for this step: cancelled when the run's
    /// cancellation token fires (batch shutdown, portfolio loser) or the
    /// user's interrupt callback returns true. Long-running techniques
    /// must hand this to their core loops (run_xl/run_elimlin/...) or poll
    /// `cancelled()` at their own iteration boundaries so that
    /// cancellation lands within one iteration, not one step.
    const runtime::CancellationToken& cancel_token() const { return cancel_; }
    /// Shorthand for cancel_token().cancelled().
    bool cancelled() const { return cancel_.cancelled(); }

    /// True iff the driving Session guarantees that the base system last
    /// handed to Technique::bind_base, conjoined with the literals of the
    /// variables currently fixed in system(), is logically equivalent to
    /// the live system -- i.e. every constraint above the base entered as
    /// an assumption, not a free-form equation. Techniques holding warm
    /// per-base state (the incremental SAT step's live solver) may then
    /// reuse it and pass the fixed-var literals as native assumptions;
    /// when false they must fall back to their cold path. One-shot
    /// Engine::run always reports false.
    bool warm_base_valid() const { return warm_; }

    /// True iff the system under processing IS the shared base problem
    /// (no pushes, no assumptions, no extra constraints): only then may a
    /// cooperative SAT step publish cold-path harvests to the shared
    /// pool, because those are consequences of the *current* system. See
    /// src/runtime/fact_exchange.h for the soundness contract.
    bool coop_publish_base() const { return coop_publish_base_; }

    /// True iff the base the persistent warm solver was last bound to is
    /// the shared base problem. The warm solver's clause database only
    /// ever contains consequences of its bound base (assumptions never
    /// enter it), so under this flag its learnt exports are publishable
    /// at ANY scope -- this is what lets cooperative sweep workers share
    /// while deep in assumption scopes.
    bool coop_publish_warm() const { return coop_publish_warm_; }

    /// Cooperative-exchange tallies for this step, folded into
    /// Report::facts_imported / facts_published by the session loop.
    /// Techniques that import/publish through a SharedFactPool call these.
    void count_coop_imported(size_t n) { coop_imported_ += n; }
    void count_coop_published(size_t n) { coop_published_ += n; }
    size_t coop_imported() const { return coop_imported_; }
    size_t coop_published() const { return coop_published_; }

private:
    core::AnfSystem& sys_;
    Rng& rng_;
    double time_remaining_s_;
    size_t iteration_;
    int verbosity_;
    runtime::CancellationToken cancel_;
    bool warm_ = false;
    bool coop_publish_base_ = true;
    bool coop_publish_warm_ = true;
    size_t seen_ = 0;
    size_t fresh_ = 0;
    size_t coop_imported_ = 0;
    size_t coop_published_ = 0;
};

/// What one technique step accomplished.
struct StepReport {
    /// Non-OK aborts the whole engine run with this status.
    Status status;

    /// Facts produced outside the sink. Techniques that deposit through
    /// the sink can leave this 0; the engine folds the sink's own
    /// counters in.
    size_t facts_seen = 0;
    size_t facts_fresh = 0;  ///< ... of which changed the system

    /// Set when the technique decided the instance outright. kSat requires
    /// `solution`; kUnknown means "stop the loop without a verdict" (e.g. a
    /// model was found but failed verification). UNSAT discoveries are
    /// normally signalled by feeding the fact 1 = 0 through the sink.
    std::optional<sat::Result> decided;
    std::vector<bool> solution;  ///< iff decided == kSat

    /// True iff this step changed the system.
    bool progressed() const { return facts_fresh > 0; }
};

/// One pluggable learning step. Implementations must be reusable across
/// `Engine::run` / `Session::solve` calls. The lifecycle contract:
///
///  - `begin_run()` before a *cold* run (every Engine::run; a Session's
///    first solve) -- reset all cross-run state.
///  - `reset_for_resolve()` before every *warm* re-solve of a persistent
///    Session -- reset per-solve transients, but cross-solve state built
///    for the bound base (a live SAT solver, cached matrices) may be
///    kept. The default delegates to begin_run(), so stateless techniques
///    need no change.
///  - `bind_base(base, n)` whenever a Session (re)binds the technique to
///    a persistent base system (at construction, and again after the
///    scope-0 system gains new constraints). Techniques may precompute
///    per-base state here; within a step they should only use it when
///    `FactSink::warm_base_valid()` is true.
class Technique {
public:
    virtual ~Technique() = default;

    /// Stable identifier, e.g. "xl"; used for per-technique fact tallies.
    virtual std::string name() const = 0;

    /// Run one pass over the system, feeding learnt facts through `sink`.
    virtual StepReport step(core::AnfSystem& sys, FactSink& sink) = 0;

    /// Called once at the start of every cold run (see the class comment).
    virtual void begin_run() {}

    /// Called before every warm re-solve of a persistent Session; default
    /// behaves like a fresh run.
    virtual void reset_for_resolve() { begin_run(); }

    /// Bind to a persistent base system: `base` is the Session's scope-0
    /// processed ANF over `num_vars` variables. Default: ignore.
    virtual void bind_base(const std::vector<anf::Polynomial>& base,
                           size_t num_vars) {
        (void)base;
        (void)num_vars;
    }
};

// ---- built-in techniques (the paper's loop, as plugins) -------------------

/// eXtended Linearization (paper section II-B) as a Technique.
std::unique_ptr<Technique> make_xl_technique(const core::XlConfig& cfg);
/// ElimLin (paper section II-C) as a Technique.
std::unique_ptr<Technique> make_elimlin_technique(
    const core::ElimLinConfig& cfg);
/// Degree-bounded F4/Buchberger reduction (paper section V) as a
/// Technique.
std::unique_ptr<Technique> make_groebner_technique(
    const core::GroebnerConfig& cfg);

/// Conflict-bounded SAT probing (paper section III-E): converts the current
/// system to CNF, runs a CDCL solver under a conflict budget, and harvests
/// learnt units / equivalences as linear ANF facts. The budget escalates
/// from `conflicts_start` by `conflicts_step` (up to `conflicts_max`) on
/// steps that learn nothing new.
struct SatTechniqueConfig {
    core::Anf2CnfConfig conv;       ///< conversion parameters (K, L)
    bool native_xor = true;         ///< in-loop solver uses XOR + GJE
    int64_t conflicts_start = 10'000;  ///< initial conflict budget C
    int64_t conflicts_max = 100'000;   ///< budget ceiling
    int64_t conflicts_step = 10'000;   ///< escalation on fact-free steps
    /// Also harvest general learnt binary clauses as quadratic facts.
    bool harvest_binary_clauses = false;
    /// In-loop solver back end: empty selects the built-in native solver
    /// (configured by `native_xor`); any registered
    /// bosphorus/sat_backend.h spec ("minisat", "dimacs-exec:kissat",
    /// ...) routes the step through that backend instead. Fact harvesting
    /// then uses whatever the backend can export (external processes
    /// export nothing; the step still decides SAT/UNSAT).
    std::string backend;
    /// Cooperative fact exchange (src/runtime/fact_exchange.h): when set,
    /// the step imports foreign learnt units/binaries as clauses into its
    /// solver before every solve round, and publishes its own learnt-fact
    /// harvest (cold-path harvests only when FactSink::coop_publish_base()
    /// holds -- see there). Null keeps the isolated path.
    std::shared_ptr<runtime::SharedFactPool> fact_pool;
    unsigned coop_worker = 0;  ///< this worker's id in the pool

    // ---- native-solver in-processing (src/sat/inprocess/) ----------------
    /// Master switch for the in-processing engine (vivification, tiered
    /// learnt-DB management, profile auto-reconfiguration) of the native
    /// solver. Off reproduces the legacy solver numerically. Ignored by
    /// external backends.
    bool inprocess = true;
    /// Solver profile: "auto" (feature-driven selection, re-evaluated per
    /// solve call), "fixed" (honour the explicit knobs below), or a named
    /// profile -- "balanced", "crypto-xor", "agile-restart", "heavy-tail".
    /// Unknown names surface as a config error at step().
    std::string sat_profile = "auto";
    /// Luby restart unit in conflicts for the native solver (<= 0: keep
    /// the solver default, 100). Only authoritative under "fixed" -- named
    /// and auto profiles override it.
    int restart_base = 0;
    /// Floor of the learnt-DB local-tier cap (<= 0: default, 1000).
    int64_t learnt_db_floor = 0;
    /// Local-tier cap growth per reduction (<= 0: default, 1.1).
    double learnt_db_growth = 0.0;
};

/// The conflict-bounded SAT step (see SatTechniqueConfig) as a Technique.
std::unique_ptr<Technique> make_sat_technique(const SatTechniqueConfig& cfg);

}  // namespace bosphorus
