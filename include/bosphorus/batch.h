/// \file
/// The concurrent batch-solving runtime of the public API.
///
/// Two entry points scale the single-instance Engine of bosphorus/engine.h
/// to many cores:
///
///  - `BatchEngine::solve_all` -- high-throughput many-instance workloads.
///    Every Problem in the batch is run through its own Engine on a
///    work-stealing thread pool. Results are **bit-identical to a
///    sequential loop** for a fixed EngineConfig::seed: each instance gets
///    a private Engine and a private RNG seeded from the config, so
///    scheduling order cannot leak into the outcome. One caveat: the
///    Engine's time budget (EngineConfig::time_budget_s) is wall-clock,
///    so an instance that runs *near its budget* can time out under an
///    oversubscribed pool where it sequentially would not -- the
///    guarantee is exact for runs that finish within their budget either
///    way (give time-critical batches headroom, or a generous budget).
///
///  - `solve_portfolio` / `Engine::solve_portfolio` -- one hard instance,
///    K diverse technique configurations racing in parallel (XL-heavy,
///    ElimLin-heavy, Groebner on/off -- see `default_portfolio`). The
///    first configuration to reach a decisive verdict (SAT/UNSAT) cancels
///    the others through the cancellation token the Engine threads into
///    every technique iteration, so losers stop within one XL/ElimLin
///    iteration rather than running to completion.
///
/// Thread-safety summary: configure a `BatchEngine` (constructor,
/// `set_cancellation_token`) *before* sharing it; once configured, any
/// number of threads may call the const `solve_all` concurrently -- each
/// call snapshots the config/token and owns its pool and per-worker
/// Engines. `Problem` objects are only read. User callbacks
/// (`BatchCallback`) are invoked from worker threads, serialised by an
/// internal mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bosphorus/engine.h"
#include "bosphorus/problem.h"
#include "bosphorus/sat_backend.h"
#include "bosphorus/status.h"
#include "runtime/cancellation.h"

namespace bosphorus {

/// One (variable, value) assumption of a sweep candidate.
using Assumption = std::pair<anf::Var, bool>;
/// One sweep candidate: the assumptions a worker applies inside a fresh
/// Session scope before solving.
using AssumptionSet = std::vector<Assumption>;

/// One configuration racing in a portfolio.
struct PortfolioEntry {
    /// Label reported back in PortfolioOutcome ("xl-heavy", ...).
    std::string name;
    /// Full loop parameters this entry runs with.
    EngineConfig config;
};

/// What one portfolio entry did before finishing or being cancelled.
struct PortfolioOutcome {
    std::string name;          ///< PortfolioEntry::name
    sat::Result verdict = sat::Result::kUnknown;  ///< this entry's verdict
    bool interrupted = false;  ///< cancelled because another entry won
    bool timed_out = false;    ///< hit its own EngineConfig time budget
    bool errored = false;      ///< run() returned a non-OK Status
    double seconds = 0.0;      ///< wall-clock of this entry's run
    size_t iterations = 0;     ///< outer-loop iterations completed
    size_t facts = 0;          ///< fresh facts this entry learnt
    /// Cooperative exchange (EngineConfig::cooperative): foreign facts
    /// this entry imported from / own facts it published to the shared
    /// pool. 0 for isolated entries.
    size_t facts_imported = 0;
    size_t facts_published = 0;
};

/// Result of a portfolio race.
struct PortfolioReport {
    /// Index into the entries vector of the winning configuration: the
    /// first to return a decisive verdict, else (no decision anywhere)
    /// the entry that learnt the most facts, ties broken by lowest index.
    size_t winner = 0;
    std::string winner_name;  ///< entries[winner].name
    /// The winning entry's full Report (verdict, solution, processed
    /// ANF/CNF, tallies).
    Report report;
    /// Per-entry summaries, in entry order (losers included).
    std::vector<PortfolioOutcome> outcomes;
    double seconds = 0.0;  ///< wall-clock of the whole race
    /// Cooperative races only: distinct facts that entered the shared
    /// pool, and publishes suppressed as duplicates (0 when the race ran
    /// isolated). See src/runtime/fact_exchange.h.
    uint64_t facts_shared = 0;
    uint64_t facts_suppressed = 0;
    /// True iff the winner decided the instance (SAT or UNSAT).
    bool decided() const {
        return report.verdict != sat::Result::kUnknown;
    }
};

/// The standard four-entry portfolio over a base configuration:
///   "balanced"      -- the base config as given (Groebner off);
///   "xl-heavy"      -- XL at degree 2 with a larger expansion cap,
///                      ElimLin off;
///   "elimlin-heavy" -- XL off, ElimLin given twice the iterations;
///   "groebner"      -- the base config with the Groebner step enabled.
/// Entries get distinct derived seeds so their subsampling decorrelates.
std::vector<PortfolioEntry> default_portfolio(const EngineConfig& base);

/// A *heterogeneous* portfolio: one entry per SAT back end, all running
/// the same loop configuration with only EngineConfig::sat_backend
/// swapped -- racing solvers, not engine knobs. Feed the result to
/// solve_portfolio as usual; the first decisive finisher cancels the
/// losers *inside* their running SAT step (the cancellation token
/// reaches the back end through SolverBackend's terminate/interrupt
/// hook, so even a long external-process solve stops promptly). Entry
/// names are the spec strings; seeds stay identical so entries differ in
/// nothing but the back end. An empty spec ("") names the built-in
/// native in-loop solver and is allowed as an entry.
std::vector<PortfolioEntry> backend_portfolio(
    const EngineConfig& base, const std::vector<sat::SolverSpec>& backends);

/// backend_portfolio over the three built-in back ends ("minisat",
/// "lingeling", "cms") -- the paper's Table II axis as a race.
std::vector<PortfolioEntry> default_backend_portfolio(
    const EngineConfig& base);

/// Race `entries` on `problem` with `n_threads` workers (0 = hardware
/// concurrency, capped at the entry count). The first decisive finisher
/// cancels the rest; `cancel` additionally aborts the whole race from
/// outside. Errors only on malformed input or an empty entry list.
Result<PortfolioReport> solve_portfolio(
    const Problem& problem, const std::vector<PortfolioEntry>& entries,
    unsigned n_threads = 0, runtime::CancellationToken cancel = {});

/// Throughput-oriented batch front-end: one EngineConfig, many Problems,
/// a work-stealing pool. See the file comment for the determinism
/// guarantee.
class BatchEngine {
public:
    /// Configuration applied to every instance in the batch. Also fixes
    /// the RNG seed each per-instance Engine starts from.
    explicit BatchEngine(EngineConfig cfg);
    /// A batch over the paper's default parameters (EngineConfig{}).
    BatchEngine() : BatchEngine(EngineConfig{}) {}

    /// Observer invoked as each instance finishes: (index into the input
    /// vector, that instance's result). Called from worker threads, but
    /// never concurrently (internally serialised); it must not block for
    /// long or throughput suffers. Exceptions it throws are swallowed
    /// (the result is already in its slot).
    using BatchCallback =
        std::function<void(size_t index, const Result<Report>& result)>;

    /// Solve every problem in `problems` on `n_threads` workers (0 =
    /// hardware concurrency). Returns one Result per problem, in input
    /// order -- identical to calling Engine(cfg).run(p) on each problem
    /// sequentially, independent of thread count and scheduling.
    /// Per-instance failures (malformed CNF input, ...) land in the
    /// corresponding slot; they do not abort the batch.
    std::vector<Result<Report>> solve_all(
        const std::vector<Problem>& problems, unsigned n_threads = 0,
        const BatchCallback& on_result = nullptr) const;

    /// Sweep many assumption sets over ONE shared base problem -- the
    /// incremental counterpart of solve_all for guess-and-determine and
    /// key-recovery workloads. The candidate list is split into
    /// contiguous blocks, one per worker; each worker materialises the
    /// base into a private bosphorus/session.h Session *once* and then,
    /// per candidate, does push() / assume each (var, value) / solve() /
    /// pop() -- so the base simplification cost is paid `n_threads`
    /// times instead of `candidates.size()` times, and every solve after
    /// a worker's first is warm.
    ///
    /// Results are returned in candidate order. Verdicts and (for
    /// instances with a unique model under their assumptions) solutions
    /// match a cold per-candidate Engine::run loop; Report counters
    /// (iterations, fact tallies) reflect the warm solve that actually
    /// ran. The block partition depends only on (candidates.size(),
    /// n_threads), never on scheduling, so a fixed thread count gives
    /// bit-identical results run to run.
    ///
    /// An out-of-range assumption variable fails that candidate's slot
    /// with kInvalidArgument; it does not abort the sweep. Cancellation
    /// behaves as in solve_all.
    std::vector<Result<Report>> solve_all_incremental(
        const Problem& base, const std::vector<AssumptionSet>& candidates,
        unsigned n_threads = 0, const BatchCallback& on_result = nullptr) const;

    /// Attach a cancellation token aborting the whole batch: instances
    /// not yet started return Status kInterrupted, instances in flight
    /// stop within one technique iteration and return their partial
    /// Report with `interrupted = true`.
    BatchEngine& set_cancellation_token(runtime::CancellationToken token);

    /// The worker count solve_all actually uses for `n_instances` and a
    /// requested `n_threads` (0 = hardware concurrency): never more
    /// workers than instances, and never more than
    /// `std::thread::hardware_concurrency()` -- engine work is
    /// compute-bound, so oversubscription only costs (requests beyond the
    /// core count are clamped, not honoured). Single source of the sizing
    /// policy, shared with solve_portfolio.
    static unsigned threads_for(size_t n_instances, unsigned n_threads);

    /// The per-instance configuration this batch runs with.
    const EngineConfig& config() const { return cfg_; }

private:
    EngineConfig cfg_;
    runtime::CancellationToken cancel_;
};

}  // namespace bosphorus
