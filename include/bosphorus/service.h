/// \file
/// The multi-tenant solve service: a long-lived `SolveService` that
/// multiplexes BatchEngine-style workers and warm `Session` pools across
/// many concurrent clients -- the engine room of the `bosphorusd` daemon.
///
/// `Engine::run` and even `BatchEngine::solve_all` are one-shot: a caller
/// brings a batch, waits, and the process is done. A production deployment
/// serving many tenants needs the inverse shape -- a process that outlives
/// any one request and keeps its expensive state (thread pool, simplified
/// base systems, warm solvers, the interned monomial vocabulary) hot
/// between requests. `SolveService` is that process core, deliberately
/// protocol-independent (the newline protocol, socket server and CLI live
/// in `src/service/`):
///
///  - **Job queue with admission control.** `submit()` either accepts a
///    job into a bounded queue or rejects it *immediately* with a
///    structured `StatusCode::kUnavailable` error -- a loaded service
///    sheds work at the door instead of growing an unbounded backlog.
///  - **Fair round-robin scheduling.** Each client gets its own FIFO lane;
///    worker slots are handed to lanes in round-robin order, so one tenant
///    submitting 10'000 jobs cannot starve another submitting one.
///  - **Per-client Session pools.** `open_session()` registers a named
///    base problem for a client; `submit_assumptions()` jobs against that
///    name reuse one warm `Session` (materialised once, in the first
///    job's worker), so a client's key sweep pays the simplification cost
///    once. Jobs against the same session run in submit order, exactly
///    like a local push/assume/solve/pop loop -- verdicts are
///    bit-identical to driving a Session directly.
///  - **Deadline enforcement via cancellation, not thread death.** Every
///    job carries a deadline; it reaches the running engine through a
///    linked `CancellationToken` (polled at technique iteration
///    boundaries *and* inside SAT solves through the backend terminate
///    hook), so an expired job stops cooperatively and its worker thread
///    lives on.
///  - **A metrics surface.** `stats()` returns a consistent
///    `ServiceStats` snapshot: job counters, queue depth, PAR-2,
///    per-backend verdict tallies and the live `MonomialStore` occupancy.
///
/// Thread safety: every member of `SolveService` may be called from any
/// thread concurrently (the service is the synchronisation point); the
/// handles it returns (`JobId`) are plain values. `shutdown()` (also run
/// by the destructor) cancels queued and running jobs and then drains.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anf/monomial_store.h"
#include "bosphorus/batch.h"
#include "bosphorus/engine.h"
#include "bosphorus/problem.h"
#include "bosphorus/sat_backend.h"
#include "bosphorus/status.h"

namespace bosphorus {

/// Capacity bounds and defaults of a `SolveService`.
struct ServiceConfig {
    /// Loop parameters every job runs with. Per-job knobs are the deadline
    /// (`JobRequest::timeout_s`, which also caps this config's
    /// `time_budget_s` for that job) and the in-loop SAT backend
    /// (`JobRequest::solver`); everything else -- budgets, seed,
    /// techniques -- is fixed service-wide so results stay reproducible
    /// across tenants. Warm sessions are constructed with exactly this
    /// config (see `open_session`).
    EngineConfig engine;

    /// Run each one-shot job as a *cooperative* portfolio race instead of
    /// a single engine: the default_portfolio entries over `engine` race
    /// on the job's instance and share learnt facts through a lock-free
    /// pool (see src/runtime/fact_exchange.h). Verdicts are identical to
    /// the isolated run; wall-clock-to-first-verdict is typically no
    /// worse. Each such job may occupy up to one OS thread per portfolio
    /// entry *in addition to* its worker slot, so budget `n_workers`
    /// accordingly. Warm-session sweep jobs are unaffected (a Session is
    /// single-threaded by contract).
    bool cooperative = false;

    /// Worker threads executing jobs (0 = hardware concurrency). Unlike
    /// BatchEngine::threads_for, an explicit count is honoured even beyond
    /// the core count: service jobs frequently wait on deadlines or
    /// external-process backends rather than compute, so slots are a
    /// concurrency bound, not a parallelism claim.
    unsigned n_workers = 0;

    /// Admission bound: jobs *waiting* for a worker (running jobs do not
    /// count). A submit arriving with this many jobs queued is rejected
    /// with kUnavailable.
    size_t max_queued_jobs = 256;

    /// Bound on distinct client lanes; a submit from a never-seen client
    /// beyond it is rejected with kUnavailable.
    size_t max_clients = 1024;

    /// Bound on open named sessions per client; `open_session` beyond it
    /// fails with kUnavailable.
    size_t max_sessions_per_client = 8;

    /// Terminal jobs retained for `status()`/`wait()` pickup. The oldest
    /// finished results are evicted past this bound, so a fire-and-forget
    /// tenant cannot grow the job table without limit.
    size_t max_retained_jobs = 1024;

    /// Deadline applied when a request passes `timeout_s == 0`.
    double default_timeout_s = 30.0;

    /// Hard cap on any requested deadline (0 = uncapped).
    double max_timeout_s = 0.0;

    /// Per-client in-flight (queued + running) job quota; a submit beyond
    /// it is rejected with kUnavailable. 0 = unlimited.
    size_t max_inflight_per_client = 0;

    /// Deadline-aware admission: once enough runtimes are observed, a
    /// submit whose estimated completion (queue wait at the current depth
    /// plus one EWMA runtime) exceeds its own deadline is rejected up
    /// front with kUnavailable carrying a `retry_after_ms=<n>` hint --
    /// shedding doomed work at the door instead of burning a worker slot
    /// on a job that will expire anyway.
    bool deadline_admission = true;

    /// shutdown() drain grace: seconds running jobs get to finish before
    /// they are cancelled cooperatively. Queued jobs are always cancelled
    /// immediately. 0 = cancel running jobs immediately (the pre-drain
    /// behaviour).
    double drain_grace_s = 0.0;

    /// Fault-injection plan armed at service construction (see
    /// util/fault.h for the `site=prob[,...][,seed=N]` syntax). Empty =
    /// leave the process-global injector alone. A malformed plan fails
    /// construction loudly via stderr and stays disarmed.
    std::string fault_plan;
};

/// Handle of a submitted job; unique for the service's lifetime.
using JobId = uint64_t;

/// Lifecycle of a job. Queued and running are transient; the other four
/// are terminal.
enum class JobState {
    kQueued,     ///< accepted, waiting for a worker slot
    kRunning,    ///< executing on a worker
    kDone,       ///< ran to completion (verdict may still be kUnknown)
    kCancelled,  ///< cancel() or shutdown() stopped it (possibly mid-run)
    kExpired,    ///< its deadline cut the run short
    kFailed,     ///< the run itself errored (see JobOutcome::error)
};

/// Lower-case stable name of a state ("queued", "running", ...).
const char* job_state_name(JobState state);

/// One one-shot solve request (the SUBMIT verb of the wire protocol).
struct JobRequest {
    /// Fairness lane and session-pool key. Clients are created on first
    /// use; the empty string is a valid shared anonymous lane.
    std::string client;

    /// The instance to solve (ANF or CNF, as for Engine::run).
    Problem problem;

    /// Per-job deadline in seconds from dispatch (0 = the service's
    /// default_timeout_s). Enforced cooperatively: the deadline reaches a
    /// running engine through the cancellation token and the SAT
    /// backend's terminate hook.
    double timeout_s = 0.0;

    /// In-loop SAT backend spec for this job ("" = the service config's
    /// EngineConfig::sat_backend). Validated against the BackendRegistry
    /// at submit time, so a typo fails the submit, not the job.
    std::string solver;
};

/// Terminal snapshot of a job, as returned by `wait()`.
struct JobOutcome {
    JobId id = 0;                      ///< the job this snapshot describes
    JobState state = JobState::kDone;  ///< terminal state (never queued/running)
    /// Why the run failed; OK unless state == kFailed.
    Status error;
    /// The engine Report (partial for kExpired/kCancelled mid-run; empty
    /// for jobs cancelled while still queued or failed before running).
    Report report;
    double queued_s = 0.0;   ///< time spent waiting for a worker
    double run_s = 0.0;      ///< time spent executing (0 if never ran)
    double timeout_s = 0.0;  ///< the deadline the job ran under
};

/// Per-backend verdict tally (keyed by backend name in ServiceStats).
struct BackendVerdicts {
    uint64_t sat = 0;      ///< jobs that ended kSat under this backend
    uint64_t unsat = 0;    ///< jobs that ended kUnsat under this backend
    uint64_t unknown = 0;  ///< jobs that ended undecided under this backend
};

/// One consistent metrics snapshot of a running service (the METRICS verb
/// of the wire protocol). Counters are cumulative since construction;
/// gauges (queued/running/...) are instantaneous.
struct ServiceStats {
    uint64_t accepted = 0;   ///< submits admitted into the queue
    uint64_t rejected = 0;   ///< submits refused by admission control
    uint64_t completed = 0;  ///< jobs that reached kDone
    uint64_t cancelled = 0;  ///< jobs that reached kCancelled
    uint64_t expired = 0;    ///< jobs that reached kExpired
    uint64_t failed = 0;     ///< jobs that reached kFailed

    /// ... of `rejected`, refusals by deadline-aware admission (the rest
    /// hit the queue / client-table / quota capacity bounds).
    uint64_t deadline_rejected = 0;
    /// Writes that found the client gone (EPIPE/ECONNRESET), as reported
    /// by the connection front end via note_client_disconnect().
    uint64_t client_disconnects = 0;
    /// EWMA of terminal run times feeding deadline admission (0 until
    /// the first run finishes).
    double ewma_run_s = 0.0;

    size_t queued = 0;         ///< jobs currently waiting
    size_t running = 0;        ///< jobs currently executing
    size_t clients = 0;        ///< client lanes seen so far
    size_t open_sessions = 0;  ///< named sessions currently open
    size_t warm_sessions = 0;  ///< ... of which have materialised a Session

    /// PAR-2 accumulator over terminal runs: a decided job contributes its
    /// runtime, an undecided/expired one twice its deadline.
    double par2_sum = 0.0;
    uint64_t par2_jobs = 0;  ///< runs the accumulator covers
    /// Mean PAR-2 score (0 when no run finished yet); lower is better.
    double par2() const { return par2_jobs ? par2_sum / double(par2_jobs) : 0.0; }

    /// Verdict tallies keyed by in-loop backend name ("native" for the
    /// built-in solver).
    std::map<std::string, BackendVerdicts> backend_verdicts;

    /// Live occupancy of the process-global MonomialStore (append-only:
    /// these only grow -- see MonomialStore::stats()).
    anf::MonomialStore::Stats store;

    double uptime_s = 0.0;  ///< seconds since the service was constructed

    // ---- resilience / fault surface (process-global, read-through) -------
    /// The fault plan currently armed ("" when the injector is inert).
    std::string fault_plan;
    /// Total faults the injector has fired since it was last armed.
    uint64_t faults_injected = 0;
    /// ResilientBackend counters (see sat::resilience_counters()).
    uint64_t resilience_attempts = 0;
    uint64_t resilience_retries = 0;
    uint64_t resilience_fallbacks = 0;
    uint64_t resilience_garbage = 0;
    uint64_t resilience_exhausted = 0;
    /// Circuit-breaker state per backend plus the total open transitions
    /// (see sat::HealthTracker).
    uint64_t circuit_opens = 0;
    std::vector<sat::HealthTracker::Snapshot> circuits;

    /// Native-solver in-processing counters, process-global across every
    /// live solver (see sat::inprocess::counters()). The tier_* entries
    /// are live gauges; the rest are monotone totals.
    uint64_t inprocess_vivified_literals = 0;
    uint64_t inprocess_vivified_clauses = 0;
    uint64_t inprocess_vivify_passes = 0;
    uint64_t inprocess_reconf_decisions = 0;
    uint64_t inprocess_db_reductions = 0;
    int64_t inprocess_tier_core = 0;
    int64_t inprocess_tier_mid = 0;
    int64_t inprocess_tier_local = 0;
};

/// The multi-tenant solve service (see the file comment). Construct one
/// per process; share it freely across threads and protocol front ends.
class SolveService {
public:
    /// Start the service: spawns the worker pool, ready for submits.
    explicit SolveService(ServiceConfig cfg = {});
    /// Equivalent to shutdown() followed by joining the workers.
    ~SolveService();

    SolveService(const SolveService&) = delete;             ///< not copyable
    SolveService& operator=(const SolveService&) = delete;  ///< not copyable

    // ---- one-shot jobs ---------------------------------------------------
    /// Admit a one-shot job, or reject it: kUnavailable when the queue,
    /// client table, or service is at capacity (or shutting down),
    /// kInvalidArgument for an unknown solver spec or out-of-range
    /// timeout. On success the job is queued (and possibly already
    /// running) when this returns.
    Result<JobId> submit(JobRequest request);

    // ---- warm sessions ---------------------------------------------------
    /// Register `base` under `client`/`name` as a warm-session base. The
    /// expensive Session materialisation is deferred to the first
    /// submitted job against it (charged to that job's runtime and
    /// deadline). Fails with kUnavailable past max_sessions_per_client /
    /// max_clients and kInvalidArgument when `name` is already open for
    /// this client.
    Status open_session(const std::string& client, const std::string& name,
                        Problem base);

    /// Submit a sweep query against an open session: the worker runs
    /// push / assume each (var, value) / solve / pop on the client's warm
    /// Session. Jobs against one session execute in submit order,
    /// serialised; jobs against different sessions of the same client may
    /// run in parallel. kInvalidArgument for an unknown session or an
    /// assumption variable outside the base's variable space; admission
    /// control as for submit().
    Result<JobId> submit_assumptions(const std::string& client,
                                     const std::string& name,
                                     AssumptionSet assumptions,
                                     double timeout_s = 0.0);

    /// Close a named session: the name is freed immediately; jobs already
    /// admitted against it still run to completion on the detached
    /// Session, which is destroyed when the last of them finishes.
    /// kInvalidArgument when the session is not open.
    Status close_session(const std::string& client, const std::string& name);

    // ---- job lifecycle ---------------------------------------------------
    /// Current state of a job; kInvalidArgument when the id is unknown
    /// (never issued, or evicted past max_retained_jobs).
    Result<JobState> job_state(JobId id) const;

    /// Block until the job reaches a terminal state and return its
    /// outcome. `wait_s < 0` waits indefinitely; on a timeout the job
    /// keeps running and kTimeout is returned. kInvalidArgument for an
    /// unknown/evicted id.
    Result<JobOutcome> wait(JobId id, double wait_s = -1.0);

    /// Ask a job to stop: a queued job is cancelled in place; a running
    /// one is cancelled cooperatively through its token (its partial
    /// Report is preserved). Idempotent -- cancelling a terminal job is a
    /// no-op. kInvalidArgument for an unknown/evicted id.
    Status cancel(JobId id);

    // ---- introspection ---------------------------------------------------
    /// One consistent metrics snapshot (see ServiceStats).
    ServiceStats stats() const;

    /// Record that a connection front end lost its client mid-write
    /// (EPIPE/ECONNRESET). Purely a counter: the job itself is unaffected
    /// and its result stays retained for a reconnecting client.
    void note_client_disconnect();

    /// Stop the service: rejects further submits, cancels every queued
    /// job immediately, gives running jobs `config().drain_grace_s`
    /// seconds to finish before cancelling them cooperatively, wakes all
    /// waiters, and blocks until the workers drained. Idempotent; also
    /// run by the destructor.
    void shutdown();

    /// The configuration this service was constructed with (with
    /// n_workers resolved to the actual worker count).
    const ServiceConfig& config() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace bosphorus
