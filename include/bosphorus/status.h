/// \file
/// Structured error handling for the public Bosphorus API.
///
/// Library entry points that can fail return a `Status` (or a
/// `Result<T>`, which is a value-or-Status) instead of calling exit(),
/// throwing, or collapsing every failure into a bare bool. Codes classify
/// the failure so callers can branch on it; messages carry the
/// human-readable detail.
///
/// Thread safety: `Status` and `Result<T>` are plain value types with no
/// shared state; distinct instances can be used from distinct threads
/// freely, and const access to one instance is safe to share.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bosphorus {

/// Failure classification carried by every non-OK Status.
enum class StatusCode {
    kOk = 0,           ///< success (the code of a default Status)
    kInvalidArgument,  ///< caller broke an API precondition
    kParseError,       ///< malformed ANF / DIMACS text
    kIoError,          ///< file could not be opened / read / written
    kInterrupted,      ///< the interrupt callback asked the engine to stop
    kTimeout,          ///< a time budget expired before completion
    kUnavailable,      ///< a capacity bound rejected the request (retry later)
    kUnimplemented,    ///< the requested feature is not available
    kInternal,         ///< invariant violation inside the library
};

/// Stable identifier of a code, e.g. "kParseError" -> "parse_error".
const char* status_code_name(StatusCode code);

/// An error code plus human-readable message; the success value is the
/// default-constructed Status. Returned by every fallible entry point of
/// the facade that has no value to produce.
class Status {
public:
    /// Default-constructed Status is success.
    Status() = default;

    /// Build an error Status. Precondition: `code != StatusCode::kOk`.
    static Status error(StatusCode code, std::string message) {
        assert(code != StatusCode::kOk);
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }
    /// Shorthand for error(StatusCode::kInvalidArgument, m).
    static Status invalid_argument(std::string m) {
        return error(StatusCode::kInvalidArgument, std::move(m));
    }
    /// Shorthand for error(StatusCode::kParseError, m).
    static Status parse_error(std::string m) {
        return error(StatusCode::kParseError, std::move(m));
    }
    /// Shorthand for error(StatusCode::kIoError, m).
    static Status io_error(std::string m) {
        return error(StatusCode::kIoError, std::move(m));
    }
    /// Shorthand for error(StatusCode::kInterrupted, m).
    static Status interrupted(std::string m) {
        return error(StatusCode::kInterrupted, std::move(m));
    }
    /// Shorthand for error(StatusCode::kTimeout, m).
    static Status timeout(std::string m) {
        return error(StatusCode::kTimeout, std::move(m));
    }
    /// Shorthand for error(StatusCode::kUnavailable, m).
    static Status unavailable(std::string m) {
        return error(StatusCode::kUnavailable, std::move(m));
    }
    /// Shorthand for error(StatusCode::kInternal, m).
    static Status internal(std::string m) {
        return error(StatusCode::kInternal, std::move(m));
    }

    /// True iff this is the success value.
    bool ok() const { return code_ == StatusCode::kOk; }
    /// The classification (kOk for a success Status).
    StatusCode code() const { return code_; }
    /// Human-readable detail; empty for a success Status.
    const std::string& message() const { return message_; }

    /// "OK" or "<code>: <message>".
    std::string to_string() const;

    /// Structural equality on (code, message).
    bool operator==(const Status& o) const {
        return code_ == o.code_ && message_ == o.message_;
    }

private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/// A value of type T, or the Status explaining why it could not be produced.
template <typename T>
class Result {
public:
    /// Wrap a successfully produced value (implicit by design, so a
    /// function can plainly `return value;`).
    Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
    /// Wrap a failure. Precondition: `!status.ok()` -- a Result built from
    /// a Status must carry an error.
    Result(Status status) : state_(std::move(status)) {  // NOLINT
        assert(!std::get<Status>(state_).ok() &&
               "a Result built from a Status must carry an error");
    }

    /// True iff a value is held (then value() is valid, status() is kOk).
    bool ok() const { return std::holds_alternative<T>(state_); }

    /// The error (StatusCode::kOk when a value is held).
    Status status() const {
        return ok() ? Status() : std::get<Status>(state_);
    }

    /// The held value. Precondition: ok().
    const T& value() const& {
        assert(ok());
        return std::get<T>(state_);
    }
    /// The held value (mutable). Precondition: ok().
    T& value() & {
        assert(ok());
        return std::get<T>(state_);
    }
    /// Move the held value out. Precondition: ok().
    T&& value() && {
        assert(ok());
        return std::get<T>(std::move(state_));
    }

    /// Dereference shorthand for value(). Precondition: ok().
    const T& operator*() const& { return value(); }
    /// Dereference shorthand for value(). Precondition: ok().
    T& operator*() & { return value(); }
    /// Member-access shorthand for value(). Precondition: ok().
    const T* operator->() const { return &value(); }
    /// Member-access shorthand for value(). Precondition: ok().
    T* operator->() { return &value(); }

private:
    std::variant<T, Status> state_;
};

}  // namespace bosphorus
