// Structured error handling for the public Bosphorus API.
//
// Library entry points that can fail return a `Status` (or a `Result<T>`,
// which is a value-or-Status) instead of calling exit(), throwing, or
// collapsing every failure into a bare bool. Codes classify the failure so
// callers can branch on it; messages carry the human-readable detail.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bosphorus {

enum class StatusCode {
    kOk = 0,
    kInvalidArgument,  ///< caller broke an API precondition
    kParseError,       ///< malformed ANF / DIMACS text
    kIoError,          ///< file could not be opened / read / written
    kInterrupted,      ///< the interrupt callback asked the engine to stop
    kTimeout,          ///< a time budget expired before completion
    kUnimplemented,    ///< the requested feature is not available
    kInternal,         ///< invariant violation inside the library
};

const char* status_code_name(StatusCode code);

class Status {
public:
    /// Default-constructed Status is success.
    Status() = default;

    static Status error(StatusCode code, std::string message) {
        assert(code != StatusCode::kOk);
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }
    static Status invalid_argument(std::string m) {
        return error(StatusCode::kInvalidArgument, std::move(m));
    }
    static Status parse_error(std::string m) {
        return error(StatusCode::kParseError, std::move(m));
    }
    static Status io_error(std::string m) {
        return error(StatusCode::kIoError, std::move(m));
    }
    static Status interrupted(std::string m) {
        return error(StatusCode::kInterrupted, std::move(m));
    }
    static Status timeout(std::string m) {
        return error(StatusCode::kTimeout, std::move(m));
    }
    static Status internal(std::string m) {
        return error(StatusCode::kInternal, std::move(m));
    }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /// "OK" or "<code>: <message>".
    std::string to_string() const;

    bool operator==(const Status& o) const {
        return code_ == o.code_ && message_ == o.message_;
    }

private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/// A value of type T, or the Status explaining why it could not be produced.
template <typename T>
class Result {
public:
    Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
    Result(Status status) : state_(std::move(status)) {  // NOLINT
        assert(!std::get<Status>(state_).ok() &&
               "a Result built from a Status must carry an error");
    }

    bool ok() const { return std::holds_alternative<T>(state_); }

    /// The error (StatusCode::kOk when a value is held).
    Status status() const {
        return ok() ? Status() : std::get<Status>(state_);
    }

    /// Precondition: ok().
    const T& value() const& {
        assert(ok());
        return std::get<T>(state_);
    }
    T& value() & {
        assert(ok());
        return std::get<T>(state_);
    }
    T&& value() && {
        assert(ok());
        return std::get<T>(std::move(state_));
    }

    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

private:
    std::variant<T, Status> state_;
};

}  // namespace bosphorus
