/// \file
/// Incremental solving: a persistent `Session` with assumptions, push/pop
/// scopes, and warm-started fact reuse.
///
/// `Engine::run` is one-shot: it simplifies the problem, learns facts,
/// emits a Report and throws all of that state away. Guess-and-determine
/// and key-sweep workloads (the paper's Simon/AES/Bitcoin use cases) ask
/// the *same* base system thousands of questions that differ only in a
/// handful of assumed variable values -- re-paying the full XL/ElimLin/CNF
/// conversion cost per question. A `Session` keeps the simplified master
/// system and everything learnt about it alive between queries:
///
/// \code
///   bosphorus::Session session(problem);        // simplified once
///   for (const auto& candidate : candidates) {
///       session.push();                          // open a scope
///       for (auto [var, value] : candidate)
///           session.assume(var, value);          // scoped assumptions
///       auto report = session.solve();           // warm re-solve
///       if (report.ok() && report->verdict == bosphorus::sat::Result::kSat)
///           use(report->solution);
///       session.pop();                           // exact state rewind
///   }
/// \endcode
///
/// What "warm" buys: the base system is materialised and propagated once;
/// facts learnt at an enclosing scope stay learnt; and the in-loop SAT
/// step keeps one live solver for the whole Session, passing the current
/// scope to it as *native assumption literals* instead of re-converting
/// the system to CNF and re-solving from scratch each step (the solver's
/// learnt clauses -- always consequences of the base system alone --
/// accumulate across queries). `pop()` rewinds the master ANF exactly,
/// via a mutation trail, so scoped facts never leak into later queries.
///
/// Scope semantics: `assume()` and `add()` constrain the *current* scope;
/// `pop()` un-does everything since the matching `push()`, including an
/// UNSAT verdict derived inside the scope. At depth 0 they are permanent.
/// Facts learnt by `solve()` are recorded at the depth the solve ran at
/// and rewind with it.
///
/// Thread safety: a Session is single-threaded -- one thread constructs,
/// mutates and solves it (the hooks follow Engine's rules). For sweeping
/// many assumption sets across cores use
/// `BatchEngine::solve_all_incremental`, which gives each worker its own
/// Session over the shared base problem.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bosphorus/engine.h"
#include "bosphorus/problem.h"
#include "bosphorus/status.h"
#include "bosphorus/technique.h"
#include "core/anf_system.h"
#include "runtime/cancellation.h"
#include "runtime/fact_exchange.h"
#include "util/timer.h"

namespace bosphorus {

/// A persistent incremental solving session (see the file comment).
///
/// Move-only, like Engine: the technique registry and the live SAT solver
/// it carries are stateful, and silently sharing them between copies
/// would corrupt both.
class Session {
public:
    /// Materialise `problem` (CNF input converts per section III-D),
    /// propagate it to fixed point, and build the default technique
    /// registry from `cfg`'s ablation switches -- exactly the registry
    /// Engine(cfg) would use. This is the expensive step a Session
    /// amortises over many solve() calls.
    explicit Session(const Problem& problem, EngineConfig cfg = EngineConfig{});

    /// Destroys the session, its scopes, and the live solver state.
    ~Session();

    Session(const Session&) = delete;             ///< move-only (see class doc)
    Session& operator=(const Session&) = delete;  ///< move-only (see class doc)
    Session(Session&&) = default;                 ///< sessions are movable
    Session& operator=(Session&&) = default;      ///< sessions are movable

    // ---- building the system --------------------------------------------
    /// Add the equation p = 0 at the current scope: permanent at depth 0,
    /// rewound by the matching pop() otherwise. Solutions found at this
    /// or deeper scopes are verified against it. Fails with
    /// kInvalidArgument if p mentions a variable outside the problem's
    /// variable space. Note: a free-form equation above depth 0 makes the
    /// in-loop SAT step fall back to its cold path until that scope pops
    /// (assumptions via assume() keep the warm path); prefer assume() for
    /// plain variable/value constraints.
    Status add(const anf::Polynomial& p);

    /// Assume variable `v` takes `value` at the current scope (the
    /// incremental-SAT analogue of a solver assumption literal). Permanent
    /// at depth 0, rewound by the matching pop() otherwise. Assuming both
    /// polarities of one variable makes the scope UNSAT -- recoverable by
    /// pop(). Fails with kInvalidArgument if `v` is outside the problem's
    /// variable space.
    Status assume(anf::Var v, bool value);

    /// Open a new scope: everything added, assumed, or learnt from now on
    /// is rewound by the matching pop().
    Status push();

    /// Close the innermost scope, restoring the master system -- equations,
    /// variable states, and satisfiability -- to exactly its state at the
    /// matching push(). Fails with kInvalidArgument when no scope is open.
    /// (The global hash-consed MonomialStore is deliberately NOT rewound:
    /// it is append-only, so monomials interned inside the scope persist
    /// as cached vocabulary without affecting any observable state -- see
    /// the term-representation section of docs/architecture.md.)
    Status pop();

    /// Number of open scopes (0 = base level).
    size_t depth() const { return frames_.size(); }

    /// Size of the variable space the session works over (for CNF
    /// problems this includes clause-cutting auxiliaries).
    size_t num_vars() const { return num_vars_; }

    /// False iff the *current scope* has derived 1 = 0 (a pop() can
    /// restore it to true).
    bool okay() const;

    // ---- solving ---------------------------------------------------------
    /// Run the fact-learning loop on the current system until fixed point
    /// or decision, reusing the already-simplified master system and all
    /// previously learnt facts. The first call behaves like a fresh
    /// Engine::run; later calls are warm re-solves (techniques are told
    /// via Technique::reset_for_resolve and may keep per-base state).
    /// Interrupt, timeout and cancellation yield a partial Report exactly
    /// as Engine::run does, and leave the Session reusable.
    Result<Report> solve();

    /// solve() calls completed so far (the first is the cold one).
    size_t solve_count() const { return solves_done_; }

    // ---- technique registry (mirrors Engine) ----------------------------
    /// Append a technique to the registry (runs after the existing ones in
    /// every iteration). It is bound to the base system before the next
    /// solve via Technique::bind_base.
    Session& add_technique(std::unique_ptr<Technique> technique);
    /// Drop all registered techniques (e.g. to build a custom registry).
    Session& clear_techniques();
    /// Technique::name() of every registry slot, in run order.
    std::vector<std::string> technique_names() const;

    // ---- hooks (mirror Engine, applied per solve()) ----------------------
    /// Install a polled stop signal; semantics identical to
    /// Engine::set_interrupt_callback, checked on every solve().
    Session& set_interrupt_callback(InterruptCallback cb);
    /// Install a progress observer, fired after every technique step of
    /// every solve() on the calling thread.
    Session& set_progress_callback(ProgressCallback cb);
    /// Attach a cancellation token; a fired token stops the running
    /// solve() within one technique iteration (partial Report,
    /// `interrupted = true`) and leaves the Session reusable.
    Session& set_cancellation_token(runtime::CancellationToken token);

    /// The loop parameters this Session was built with.
    const EngineConfig& config() const { return cfg_; }

private:
    friend class Engine;  // Engine::run is a one-shot wrapper over Session

    /// What materialising a Problem produces (CNF converts to ANF). The
    /// timer starts when materialisation does, so the constructor can
    /// charge the whole setup to the first solve's budget.
    struct Materialized {
        std::vector<anf::Polynomial> polys;
        size_t num_vars = 0;
        size_t num_original_vars = 0;
        Timer timer;
    };
    static Materialized materialize(const Problem& problem,
                                    const EngineConfig& cfg);

    /// Tag ctor for Engine::run: no registry is built (the Engine lends
    /// its own) and the warm path stays off, so a one-shot run through a
    /// throwaway Session is bit-identical to the legacy loop.
    struct OneShotTag {};
    Session(const Problem& problem, EngineConfig cfg, OneShotTag);
    Session(Materialized m, EngineConfig cfg, bool build_registry,
            bool enable_warm);

    /// (Re)bind every technique to the scope-0 base system; only callable
    /// at depth 0, a no-op when nothing changed or warm reuse is off.
    void rebind_if_needed();
    /// True iff the live scope stack contains only assumptions, so the
    /// bound base + fixed-variable literals capture the system exactly.
    bool warm_valid() const;

    /// Cooperative exchange (src/runtime/fact_exchange.h), active when
    /// cfg_.cooperative and cfg_.fact_pool are set. Drain foreign unit
    /// facts into the master ANF (returns facts drained); publish this
    /// session's fixed/replaced variables back.
    size_t coop_import_anf();
    size_t coop_publish_anf();

    /// One open scope: the snapshot pop() rewinds to, plus whether the
    /// frame carries free-form (non-assumption) equations.
    struct Frame {
        core::AnfSystem::Snapshot snap;
        bool free_adds = false;
    };

    EngineConfig cfg_;
    core::AnfSystem sys_;
    size_t num_vars_ = 0;
    size_t num_original_vars_ = 0;
    std::vector<std::unique_ptr<Technique>> techniques_;
    std::vector<Frame> frames_;
    InterruptCallback interrupt_;
    ProgressCallback progress_;
    runtime::CancellationToken cancel_;
    size_t solves_done_ = 0;
    double setup_seconds_ = 0.0;  // construction cost, charged to solve #1
    bool enable_warm_ = true;  // off for Engine's throwaway sessions
    bool needs_bind_ = true;   // base changed (or never bound)
    bool bound_ = false;       // bind_base has reached the registry
    // Cooperative-exchange soundness tracking: whether the depth-0 base
    // is still exactly the constructed problem (no user add/assume at
    // depth 0), and whether that held at the last technique bind (gates
    // warm-solver publishes; see FactSink::coop_publish_warm).
    bool coop_base_is_problem_ = true;
    bool coop_bound_publishable_ = false;
    runtime::SharedFactPool::Cursor coop_cursor_;  // ANF-level imports
    std::vector<runtime::SharedFact> coop_buf_;    // reused drain buffer
};

}  // namespace bosphorus
