// MonomialStore unit tests: intern idempotence, mul memoisation, deg-lex
// rank monotonicity, and independence of the semantics from interning
// order (id values may differ between stores; compare/rank/hash must not).
#include "anf/monomial_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "anf/monomial.h"
#include "util/rng.h"

namespace bosphorus::anf {
namespace {

std::vector<Var> random_vars(Rng& rng, unsigned num_vars, unsigned max_deg) {
    std::vector<Var> vs;
    const size_t d = rng.below(max_deg + 1);
    for (size_t i = 0; i < d; ++i)
        vs.push_back(static_cast<Var>(rng.below(num_vars)));
    return vs;  // unsorted, may contain duplicates -- intern() canonicalises
}

std::vector<Var> canonical(std::vector<Var> vs) {
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
    return vs;
}

TEST(MonomialStore, OneIsAlwaysIdZero) {
    MonomialStore store;
    EXPECT_EQ(store.intern({}), kMonoOne);
    EXPECT_EQ(store.degree(kMonoOne), 0u);
    EXPECT_TRUE(store.vars(kMonoOne).empty());
    // And the global store agrees (a default Monomial is the constant 1).
    EXPECT_EQ(Monomial().id(), kMonoOne);
    EXPECT_TRUE(Monomial().is_one());
}

TEST(MonomialStore, InternIsIdempotent) {
    MonomialStore store;
    const MonoId a = store.intern({3, 1, 2});
    const MonoId b = store.intern({1, 2, 3});
    const MonoId c = store.intern({2, 2, 3, 1, 1});  // x^2 = x
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(store.vars(a), (std::vector<Var>{1, 2, 3}));
    EXPECT_EQ(store.degree(a), 3u);
    const size_t before = store.size();
    store.intern({3, 2, 1});
    EXPECT_EQ(store.size(), before) << "re-interning must not grow the store";
}

TEST(MonomialStore, MulIsUnionAndMemoised) {
    MonomialStore store;
    const MonoId a = store.intern({0, 2});
    const MonoId b = store.intern({1, 2});
    const MonoId ab = store.mul(a, b);
    EXPECT_EQ(store.vars(ab), (std::vector<Var>{0, 1, 2}));
    EXPECT_EQ(store.mul(a, kMonoOne), a) << "1 is the unit";
    EXPECT_EQ(store.mul(kMonoOne, b), b);
    EXPECT_EQ(store.mul(a, a), a) << "idempotent: m * m = m over GF(2)";
    // Same product again: answered from the memo (per-thread front cache
    // or the store table), and commutatively.
    const size_t misses = store.mul_memo_misses();
    EXPECT_EQ(store.mul(a, b), ab);
    EXPECT_EQ(store.mul(b, a), ab);
    EXPECT_EQ(store.mul_memo_misses(), misses)
        << "a repeated product must not recompute the union";
    EXPECT_GE(store.mul_memo_hits(), 1u);
}

TEST(MonomialStore, QuotientWithoutDividesContains) {
    MonomialStore store;
    const MonoId abc = store.intern({0, 1, 2});
    const MonoId ac = store.intern({0, 2});
    EXPECT_TRUE(store.divides(ac, abc));
    EXPECT_FALSE(store.divides(abc, ac));
    EXPECT_TRUE(store.divides(kMonoOne, ac)) << "1 divides everything";
    EXPECT_EQ(store.quotient(abc, ac), store.intern({1}));
    EXPECT_EQ(store.quotient(abc, abc), kMonoOne);
    EXPECT_EQ(store.without(abc, 1), ac);
    EXPECT_TRUE(store.contains(abc, 1));
    EXPECT_FALSE(store.contains(ac, 1));
}

TEST(MonomialStore, DegLexCompare) {
    MonomialStore store;
    const MonoId one = kMonoOne;
    const MonoId x0 = store.intern({0});
    const MonoId x1 = store.intern({1});
    const MonoId x01 = store.intern({0, 1});
    EXPECT_TRUE(store.less(one, x0));
    EXPECT_TRUE(store.less(x0, x1));
    EXPECT_TRUE(store.less(x1, x01)) << "degree dominates lex";
    EXPECT_EQ(store.compare(x0, x0), 0);
    EXPECT_LT(store.compare(x0, x01), 0);
    EXPECT_GT(store.compare(x01, x1), 0);
}

TEST(MonomialStore, RanksAreOrderIsomorphicToLess) {
    MonomialStore store;
    Rng rng(42);
    std::vector<MonoId> ids;
    for (int i = 0; i < 300; ++i)
        ids.push_back(store.intern(random_vars(rng, 12, 4)));
    const auto ranks = store.ranks();
    for (size_t i = 0; i < ids.size(); ++i) {
        for (size_t j = 0; j < ids.size(); ++j) {
            EXPECT_EQ((*ranks)[ids[i]] < (*ranks)[ids[j]],
                      store.less(ids[i], ids[j]))
                << "rank order must equal deg-lex order";
        }
    }
    // A snapshot taken before further interning stays self-consistent for
    // the ids it covers.
    const size_t covered = ranks->size();
    store.intern({100, 101, 102});
    EXPECT_EQ(ranks->size(), covered);
    const auto fresh = store.ranks();
    EXPECT_GT(fresh->size(), covered);
}

TEST(MonomialStore, SemanticsIndependentOfInterningOrder) {
    // Intern the same vocabulary into two stores in opposite orders: the
    // raw id values differ, but compare(), hash() and rank order agree --
    // the property that keeps all observable output independent of store
    // history.
    Rng rng(7);
    std::vector<std::vector<Var>> vocab;
    for (int i = 0; i < 200; ++i)
        vocab.push_back(canonical(random_vars(rng, 10, 4)));

    MonomialStore fwd, rev;
    std::vector<MonoId> fwd_ids, rev_ids;
    for (const auto& vs : vocab)
        fwd_ids.push_back(
            fwd.intern_sorted(vs.data(), static_cast<uint32_t>(vs.size())));
    for (auto it = vocab.rbegin(); it != vocab.rend(); ++it)
        rev_ids.push_back(
            rev.intern_sorted(it->data(), static_cast<uint32_t>(it->size())));
    std::reverse(rev_ids.begin(), rev_ids.end());  // align with vocab order

    const auto fwd_ranks = fwd.ranks();
    const auto rev_ranks = rev.ranks();
    for (size_t i = 0; i < vocab.size(); ++i) {
        EXPECT_EQ(fwd.hash(fwd_ids[i]), rev.hash(rev_ids[i]))
            << "content hash must not depend on interning order";
        for (size_t j = 0; j < vocab.size(); ++j) {
            const int c1 = fwd.compare(fwd_ids[i], fwd_ids[j]);
            const int c2 = rev.compare(rev_ids[i], rev_ids[j]);
            EXPECT_EQ(c1 < 0, c2 < 0);
            EXPECT_EQ(c1 == 0, c2 == 0);
            EXPECT_EQ((*fwd_ranks)[fwd_ids[i]] < (*fwd_ranks)[fwd_ids[j]],
                      (*rev_ranks)[rev_ids[i]] < (*rev_ranks)[rev_ids[j]]);
        }
    }
}

TEST(MonomialStore, HashMatchesLegacyChain) {
    // The cached hash must reproduce the pre-interning Monomial::hash()
    // exactly (FNV-style chain), so dedup behaviour is unchanged.
    MonomialStore store;
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        const std::vector<Var> vs = canonical(random_vars(rng, 20, 5));
        uint64_t h = 0x9E3779B97F4A7C15ULL;
        for (Var v : vs) h = (h ^ v) * 0x100000001B3ULL;
        EXPECT_EQ(store.hash(store.intern(vs)), h);
    }
}

TEST(MonomialStore, GlobalStoreIsAppendOnly) {
    auto& store = MonomialStore::global();
    const size_t before = store.size();
    const Monomial m(std::vector<Var>{900001, 900002});
    EXPECT_GE(store.size(), before + 1);
    EXPECT_EQ(Monomial(std::vector<Var>{900002, 900001}), m)
        << "hash-consing: same content, same id";
}

}  // namespace
}  // namespace bosphorus::anf
