#include <gtest/gtest.h>

#include <algorithm>

#include "anf/anf_parser.h"
#include "core/elimlin.h"
#include "core/linearize.h"
#include "core/xl.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus::core {
namespace {

using anf::parse_polynomial;
using anf::parse_system_from_string;
using anf::Polynomial;

bool contains(const std::vector<Polynomial>& facts, const char* s) {
    const Polynomial p = parse_polynomial(s);
    return std::find(facts.begin(), facts.end(), p) != facts.end();
}

// ---- linearisation -------------------------------------------------------

TEST(Linearize, ColumnsDescendingDegLex) {
    const auto sys = parse_system_from_string("x1*x2 + x3 + 1\nx2 + x3\n");
    const Linearization lin = linearize(sys.polynomials);
    ASSERT_EQ(lin.cols(), 4u);  // x1x2, x3, x2, 1
    EXPECT_EQ(lin.col_monomial.front().degree(), 2u);
    EXPECT_TRUE(lin.col_monomial.back().is_one());
    for (size_t c = 0; c + 1 < lin.cols(); ++c)
        EXPECT_TRUE(lin.col_monomial[c + 1] < lin.col_monomial[c]);
}

TEST(Linearize, RowRoundTrip) {
    const auto sys =
        parse_system_from_string("x1*x2 + x3 + 1\nx2*x3 + x3\nx1 + 1\n");
    const Linearization lin = linearize(sys.polynomials);
    for (size_t r = 0; r < lin.rows(); ++r)
        EXPECT_EQ(row_to_polynomial(lin, r), sys.polynomials[r]);
}

TEST(Linearize, LinearizedSize) {
    const auto sys = parse_system_from_string("x1*x2 + x3 + 1\nx2 + x3\n");
    // 2 rows x 4 distinct monomials.
    EXPECT_EQ(linearized_size(sys.polynomials), 8u);
}

TEST(Linearize, SubsampleRespectsBudget) {
    Rng rng(1);
    std::vector<Polynomial> polys;
    for (int i = 0; i < 50; ++i)
        polys.push_back(parse_polynomial("x" + std::to_string(i + 1) +
                                         " + x" + std::to_string(i + 2)));
    const auto idx = subsample(polys, 64, rng);
    EXPECT_LT(idx.size(), polys.size());
    const auto all = subsample(polys, size_t{1} << 30, rng);
    EXPECT_EQ(all.size(), polys.size()) << "huge budget takes everything";
}

// ---- XL: the Table I worked example --------------------------------------

TEST(Xl, TableIExample) {
    // ANF {x1x2 + x1 + 1, x2x3 + x3}, expansion degree D = 1. The paper's
    // Table I retains the facts {x1 + 1, x2, x3}.
    const auto sys =
        parse_system_from_string("x1*x2 + x1 + 1\nx2*x3 + x3\n");
    XlConfig cfg;
    cfg.degree = 1;
    cfg.m_budget = 20;  // plenty: no subsampling on this toy system
    Rng rng(1);
    XlStats stats;
    const auto facts = run_xl(sys.polynomials, cfg, rng, &stats);
    EXPECT_TRUE(contains(facts, "x1 + 1"));
    EXPECT_TRUE(contains(facts, "x2"));
    EXPECT_TRUE(contains(facts, "x3"));
    EXPECT_GE(stats.expanded_rows, 6u);
    EXPECT_EQ(stats.columns, 8u);  // as in Table I(a)
}

TEST(Xl, SectionIIEExampleLearnsListedFacts) {
    const auto sys = parse_system_from_string(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    XlConfig cfg;
    cfg.degree = 1;
    cfg.m_budget = 24;
    Rng rng(1);
    const auto facts = run_xl(sys.polynomials, cfg, rng);
    // The paper lists these six facts for XL with D = 1:
    for (const char* f :
         {"x2*x3*x4 + 1", "x1*x3*x4 + 1", "x1 + x5 + 1", "x1 + x4", "x3 + 1",
          "x1 + x2"}) {
        EXPECT_TRUE(contains(facts, f)) << f;
    }
}

TEST(Xl, EmptySystem) {
    Rng rng(1);
    EXPECT_TRUE(run_xl({}, XlConfig{}, rng).empty());
}

TEST(Xl, DetectsContradiction) {
    const auto sys = parse_system_from_string("x1\nx1 + 1\n");
    Rng rng(1);
    XlConfig cfg;
    cfg.m_budget = 16;
    const auto facts = run_xl(sys.polynomials, cfg, rng);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_TRUE(facts[0].is_one());
}

// ---- ElimLin ---------------------------------------------------------------

TEST(ElimLin, SectionIICExample) {
    // {x1 + x2 + x3, x1x2 + x2x3 + 1}: ElimLin derives x2 + 1 (i.e. x2 = 1).
    const auto sys =
        parse_system_from_string("x1 + x2 + x3\nx1*x2 + x2*x3 + 1\n");
    ElimLinConfig cfg;
    cfg.m_budget = 16;
    Rng rng(1);
    ElimLinStats stats;
    const auto facts = run_elimlin(sys.polynomials, cfg, rng, &stats);
    EXPECT_TRUE(contains(facts, "x1 + x2 + x3"));
    EXPECT_TRUE(contains(facts, "x2 + 1"));
    EXPECT_GE(stats.iterations, 1u);
    EXPECT_GE(stats.eliminated_vars, 1u);
}

TEST(ElimLin, DetectsContradiction) {
    const auto sys = parse_system_from_string("x1 + x2\nx1 + x2 + 1\n");
    ElimLinConfig cfg;
    cfg.m_budget = 16;
    Rng rng(1);
    const auto facts = run_elimlin(sys.polynomials, cfg, rng);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_TRUE(facts[0].is_one());
}

TEST(ElimLin, PureLinearSystemFullySolved) {
    // A solvable linear system: facts must pin every variable.
    const auto sys = parse_system_from_string(
        "x1 + x2 + 1\n"
        "x2 + x3\n"
        "x1 + x3\n"  // consistent: x1 = x3, x2 = x3, x1 = !x2 -> contradiction?
    );
    // x1 + x2 = 1, x2 = x3, x1 = x3 => x1 + x2 = 0: contradiction.
    ElimLinConfig cfg;
    cfg.m_budget = 16;
    Rng rng(1);
    const auto facts = run_elimlin(sys.polynomials, cfg, rng);
    ASSERT_EQ(facts.size(), 1u);
    EXPECT_TRUE(facts[0].is_one());
}

// ---- property sweeps: learnt facts are consequences ----------------------

class LearnRandom : public ::testing::TestWithParam<int> {};

std::vector<Polynomial> random_system(Rng& rng, unsigned nv, size_t np) {
    std::vector<Polynomial> polys;
    for (size_t i = 0; i < np; ++i) {
        std::vector<anf::Monomial> monos;
        const size_t nm = 1 + rng.below(4);
        for (size_t j = 0; j < nm; ++j) {
            std::vector<anf::Var> vars;
            const size_t d = rng.below(3);
            for (size_t l = 0; l < d; ++l)
                vars.push_back(static_cast<anf::Var>(rng.below(nv)));
            monos.emplace_back(std::move(vars));
        }
        polys.emplace_back(std::move(monos));
    }
    return polys;
}

TEST_P(LearnRandom, XlFactsAreConsequences) {
    Rng rng(GetParam());
    const unsigned nv = 4 + rng.below(4);
    const auto polys = random_system(rng, nv, 4 + rng.below(5));
    const auto models = testutil::anf_models(polys, nv);

    XlConfig cfg;
    cfg.m_budget = 14;
    Rng xl_rng(GetParam() * 17 + 1);
    const auto facts = run_xl(polys, cfg, xl_rng);
    for (const auto& f : facts) {
        if (f.is_one()) {
            EXPECT_TRUE(models.empty()) << "XL claimed UNSAT wrongly";
            continue;
        }
        for (uint32_t m : models) {
            std::vector<bool> a(nv);
            for (unsigned v = 0; v < nv; ++v) a[v] = (m >> v) & 1;
            EXPECT_FALSE(f.evaluate(a))
                << "XL fact " << f.to_string() << " violated by a model";
        }
    }
}

TEST_P(LearnRandom, ElimLinFactsAreConsequences) {
    Rng rng(GetParam() + 999);
    const unsigned nv = 4 + rng.below(4);
    const auto polys = random_system(rng, nv, 4 + rng.below(5));
    const auto models = testutil::anf_models(polys, nv);

    ElimLinConfig cfg;
    cfg.m_budget = 14;
    Rng el_rng(GetParam() * 31 + 7);
    const auto facts = run_elimlin(polys, cfg, el_rng);
    for (const auto& f : facts) {
        if (f.is_one()) {
            EXPECT_TRUE(models.empty()) << "ElimLin claimed UNSAT wrongly";
            continue;
        }
        for (uint32_t m : models) {
            std::vector<bool> a(nv);
            for (unsigned v = 0; v < nv; ++v) a[v] = (m >> v) & 1;
            EXPECT_FALSE(f.evaluate(a))
                << "ElimLin fact " << f.to_string() << " violated by a model";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnRandom, ::testing::Range(0, 40));

}  // namespace
}  // namespace bosphorus::core
