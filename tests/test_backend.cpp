// The pluggable SAT back-end layer: registry contents, SolverSpec
// parsing, IPASIR-style adapter behaviour (assumptions, failed(),
// interrupt), verdict equivalence of the registry path against the
// deprecated enum path, the facade/Session/portfolio re-plumb, and the
// heterogeneous backend portfolio.
#include "bosphorus/sat_backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

using sat::BackendRegistry;
using sat::Cnf;
using sat::LBool;
using sat::Lit;
using sat::mk_lit;
using sat::SolverSpec;
using testutil::cnf_models;

// ---- registry --------------------------------------------------------------

TEST(BackendRegistry, ListsTheFourBuiltins) {
    const auto infos = BackendRegistry::global().list();
    ASSERT_GE(infos.size(), 4u);
    for (const char* name : {"minisat", "lingeling", "cms", "dimacs-exec"}) {
        EXPECT_TRUE(BackendRegistry::global().contains(name)) << name;
        bool found = false;
        for (const auto& info : infos) {
            if (info.name == name) {
                found = true;
                EXPECT_TRUE(info.builtin) << name;
                EXPECT_FALSE(info.description.empty()) << name;
            }
        }
        EXPECT_TRUE(found) << name;
    }
}

TEST(BackendRegistry, UnknownNameFailsWithTheKnownList) {
    const auto r = BackendRegistry::global().create(SolverSpec{"nope"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("minisat"), std::string::npos);
}

TEST(BackendRegistry, BuiltinsRejectArguments) {
    const auto r = BackendRegistry::global().create(SolverSpec{"minisat:x"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BackendRegistry, DuplicateAndMalformedRegistrationsFail) {
    auto& reg = BackendRegistry::global();
    const auto factory = [](const std::string&)
        -> Result<std::unique_ptr<sat::SolverBackend>> {
        return Status::internal("never created");
    };
    EXPECT_FALSE(reg.register_backend({"minisat", "dup", false}, factory).ok());
    EXPECT_FALSE(reg.register_backend({"", "empty", false}, factory).ok());
    EXPECT_FALSE(reg.register_backend({"a:b", "colon", false}, factory).ok());
    EXPECT_FALSE(
        reg.register_backend({"no-factory", "", false}, nullptr).ok());
}

TEST(BackendRegistry, UserRegistrationIsVisibleAndUsable) {
    auto& reg = BackendRegistry::global();
    // A trivial user backend: minisat under another name.
    const Status st = reg.register_backend(
        {"test-user-backend", "minisat in a trench coat", false},
        [](const std::string&) {
            return BackendRegistry::global().create(SolverSpec{"minisat"});
        });
    ASSERT_TRUE(st.ok()) << st.to_string();
    EXPECT_TRUE(reg.contains("test-user-backend"));

    auto backend = reg.create(SolverSpec{"test-user-backend"});
    ASSERT_TRUE(backend.ok());
    (*backend)->ensure_vars(1);
    EXPECT_TRUE((*backend)->add_clause({mk_lit(0, false)}));
    EXPECT_EQ((*backend)->solve(), sat::Result::kSat);
    EXPECT_EQ((*backend)->value(0), LBool::kTrue);
}

TEST(SolverSpec, SplitsNameAndArgument) {
    EXPECT_EQ(SolverSpec{"cms"}.backend_name(), "cms");
    EXPECT_EQ(SolverSpec{"cms"}.argument(), "");
    const SolverSpec s{"dimacs-exec:kissat -q --time=10"};
    EXPECT_EQ(s.backend_name(), "dimacs-exec");
    EXPECT_EQ(s.argument(), "kissat -q --time=10");
    // The argument may itself contain ':'.
    EXPECT_EQ(SolverSpec{"dimacs-exec:a:b"}.argument(), "a:b");
    // The deprecated enum converts to the matching name.
    EXPECT_EQ(SolverSpec{sat::SolverKind::kMinisatLike}.spec, "minisat");
    EXPECT_EQ(SolverSpec{sat::SolverKind::kLingelingLike}.spec, "lingeling");
    EXPECT_EQ(SolverSpec{sat::SolverKind::kCmsLike}.spec, "cms");
    // Default = the documented default backend.
    EXPECT_EQ(SolverSpec{}.spec, sat::kDefaultSolverName);
}

// ---- equivalence with the deprecated enum path -----------------------------

class BackendEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(BackendEquivalence, RegistryPathMatchesEnumPathAndBruteForce) {
    Rng rng(GetParam() + 1);
    const size_t nv = 5 + rng.below(6);
    const Cnf cnf = cnfgen::random_ksat(nv, nv * 4 + rng.below(nv), 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();

    const std::pair<const char*, sat::SolverKind> pairs[] = {
        {"minisat", sat::SolverKind::kMinisatLike},
        {"lingeling", sat::SolverKind::kLingelingLike},
        {"cms", sat::SolverKind::kCmsLike},
    };
    for (const auto& [name, kind] : pairs) {
        const sat::CnfSolveOutcome oracle = sat::solve_cnf(cnf, kind);
        const auto out = sat::solve_cnf_with(cnf, name);
        ASSERT_TRUE(out.ok()) << name;
        EXPECT_EQ(out->result, oracle.result) << name;
        EXPECT_EQ(out->result,
                  expect_sat ? sat::Result::kSat : sat::Result::kUnsat)
            << name;
        if (out->result == sat::Result::kSat)
            EXPECT_TRUE(sat::model_satisfies(cnf, out->model)) << name;
    }
}

TEST_P(BackendEquivalence, XorRichInstancesAllBackends) {
    Rng rng(GetParam() + 31'000);
    const size_t len = 6 + rng.below(10);
    const bool satisfiable = rng.coin();
    const Cnf cnf = cnfgen::xor_cycle(len, satisfiable, rng);
    for (const char* name : {"minisat", "lingeling", "cms"}) {
        const auto out = sat::solve_cnf_with(cnf, name);
        ASSERT_TRUE(out.ok()) << name;
        EXPECT_EQ(out->result,
                  satisfiable ? sat::Result::kSat : sat::Result::kUnsat)
            << name << " len=" << len;
        if (out->result == sat::Result::kSat)
            EXPECT_TRUE(sat::model_satisfies(cnf, out->model)) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendEquivalence, ::testing::Range(0, 25));

// ---- IPASIR semantics through the interface --------------------------------

class BackendAssumptions : public ::testing::TestWithParam<const char*> {};

TEST_P(BackendAssumptions, FailedAssumptionsDoNotPoisonLaterSolves) {
    auto backend = BackendRegistry::global().create(SolverSpec{GetParam()});
    ASSERT_TRUE(backend.ok());
    sat::SolverBackend& b = **backend;

    b.ensure_vars(2);
    ASSERT_TRUE(b.add_clause({mk_lit(0, false), mk_lit(1, false)}));
    ASSERT_TRUE(b.add_clause({mk_lit(0, true), mk_lit(1, false)}));

    // UNSAT only *under* the assumptions:
    b.assume(mk_lit(0, true));
    b.assume(mk_lit(1, true));
    EXPECT_EQ(b.solve(), sat::Result::kUnsat);
    EXPECT_TRUE(b.okay()) << "assumption failure must not set UNSAT";
    // failed() must never under-approximate: either assumption may have
    // fed the refutation, so every built-in blames both (conservative).
    EXPECT_TRUE(b.failed(mk_lit(0, true)));
    EXPECT_TRUE(b.failed(mk_lit(1, true)));
    if (b.supports_assumptions()) {
        // Native-assumption backends track the actual assumption set;
        // degraded ones answer only for literals that were assumed.
        EXPECT_FALSE(b.failed(mk_lit(0, false)))
            << "a literal never assumed cannot be a failed assumption";
    }

    // Assumptions were cleared by the solve; the instance keeps solving:
    EXPECT_EQ(b.solve(), sat::Result::kSat);
    b.assume(mk_lit(0, true));
    EXPECT_EQ(b.solve(), sat::Result::kSat);
    EXPECT_EQ(b.value(1), LBool::kTrue) << "(!a | b) forces b under !a";
    b.assume(mk_lit(0, false));
    EXPECT_EQ(b.solve(), sat::Result::kSat);
    EXPECT_EQ(b.value(0), LBool::kTrue);
}

TEST_P(BackendAssumptions, SweepMatchesFreshSolvers) {
    Rng rng(77);
    const Cnf cnf = cnfgen::random_ksat(10, 36, 3, rng);
    const auto models = cnf_models(cnf);

    auto backend = BackendRegistry::global().create(SolverSpec{GetParam()});
    ASSERT_TRUE(backend.ok());
    sat::SolverBackend& b = **backend;
    ASSERT_TRUE(b.load(cnf));

    for (unsigned mask = 0; mask < 8; ++mask) {
        for (sat::Var v = 0; v < 3; ++v)
            b.assume(mk_lit(v, !((mask >> v) & 1)));
        // Brute-force truth under the three fixed values.
        bool expect_sat = false;
        for (const uint32_t m : models) {
            if ((m & 7u) == mask) { expect_sat = true; break; }
        }
        EXPECT_EQ(b.solve(),
                  expect_sat ? sat::Result::kSat : sat::Result::kUnsat)
            << GetParam() << " candidate " << mask;
        EXPECT_TRUE(b.okay());
    }
}

INSTANTIATE_TEST_SUITE_P(Builtins, BackendAssumptions,
                         ::testing::Values("minisat", "lingeling", "cms"));

TEST(BackendInterrupt, StopsARunningSolveFromAnotherThread) {
    // A hard pigeonhole instance that would run for a long time.
    auto backend = BackendRegistry::global().create(SolverSpec{"minisat"});
    ASSERT_TRUE(backend.ok());
    sat::SolverBackend& b = **backend;
    ASSERT_TRUE(b.load(cnfgen::pigeonhole(9)));

    std::thread stopper([&b] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        b.interrupt();
    });
    const auto t0 = std::chrono::steady_clock::now();
    const sat::Result r = b.solve(/*conflict_budget=*/-1, /*timeout_s=*/30.0);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stopper.join();
    EXPECT_EQ(r, sat::Result::kUnknown);
    EXPECT_LT(waited, 10.0) << "interrupt must land promptly";

    // Sticky until cleared, then the backend works again.
    EXPECT_EQ(b.solve(-1, 1.0), sat::Result::kUnknown);
    b.clear_interrupt();
    b.ensure_vars(b.num_vars());
    EXPECT_EQ(b.solve(/*conflict_budget=*/5), sat::Result::kUnknown)
        << "cleared interrupt resumes normal (budget-bounded) solving";
}

TEST(BackendInterrupt, TerminateCallbackStopsTheSolve) {
    auto backend = BackendRegistry::global().create(SolverSpec{"cms"});
    ASSERT_TRUE(backend.ok());
    sat::SolverBackend& b = **backend;
    ASSERT_TRUE(b.load(cnfgen::pigeonhole(9)));
    std::atomic<bool> stop{false};
    b.set_terminate_callback([&stop] { return stop.load(); });
    stop.store(true);
    EXPECT_EQ(b.solve(-1, 30.0), sat::Result::kUnknown);
}

// ---- re-plumbed consumers --------------------------------------------------

/// A tiny ANF system with a unique solution, solved through the facade
/// with every built-in backend spec: the Table II protocol must be
/// backend-agnostic.
TEST(SolveWithBackends, FacadeVerdictsAgreeAcrossBackends) {
    using anf::Polynomial;
    std::vector<Polynomial> polys;
    // x0 + 1 = 0; x0*x1 = 0; x1 + x2 + 1 = 0  =>  unique model (1, 0, 1).
    polys.push_back(Polynomial::variable(0) + Polynomial::constant(true));
    polys.push_back(Polynomial::variable(0) * Polynomial::variable(1));
    polys.push_back(Polynomial::variable(1) + Polynomial::variable(2) +
                    Polynomial::constant(true));
    const Problem problem = Problem::from_anf(polys, 3);

    for (const char* name : {"minisat", "lingeling", "cms"}) {
        SolveConfig cfg;
        cfg.solver = name;
        cfg.engine.use_sat = false;  // keep the loop light
        const auto out = solve(problem, cfg);
        ASSERT_TRUE(out.ok()) << name;
        EXPECT_EQ(out->result, sat::Result::kSat) << name;
        EXPECT_TRUE(out->model_verified) << name;
    }

    SolveConfig bad;
    bad.solver = "no-such-backend";
    const auto out = solve(problem, bad);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

/// The in-loop SAT step routed through a registry backend must reach the
/// same verdicts as the native in-loop solver.
TEST(SolveWithBackends, EngineLoopBackendMatchesNative) {
    Rng rng(7);
    const Cnf cnf = cnfgen::random_ksat(9, 32, 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();
    const Problem problem = Problem::from_cnf(cnf);

    for (const std::string backend : {"", "minisat", "cms"}) {
        EngineConfig cfg;
        cfg.use_xl = false;
        cfg.use_elimlin = false;  // force the SAT technique to decide
        cfg.sat_backend = backend;
        Engine engine(cfg);
        const auto rep = engine.run(problem);
        ASSERT_TRUE(rep.ok()) << "'" << backend << "'";
        EXPECT_EQ(rep->verdict,
                  expect_sat ? sat::Result::kSat : sat::Result::kUnsat)
            << "'" << backend << "'";
    }

    EngineConfig bad;
    bad.use_xl = false;
    bad.use_elimlin = false;
    bad.sat_backend = "no-such-backend";
    Engine engine(bad);
    const auto rep = engine.run(problem);
    ASSERT_FALSE(rep.ok());
    EXPECT_EQ(rep.status().code(), StatusCode::kInvalidArgument);
}

// ---- heterogeneous portfolios ----------------------------------------------

TEST(BackendPortfolio, BuildsOneEntryPerBackendSpec) {
    EngineConfig base;
    base.seed = 42;
    const auto entries =
        backend_portfolio(base, {"minisat", "cms", "", "dimacs-exec:foo"});
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_EQ(entries[0].name, "minisat");
    EXPECT_EQ(entries[0].config.sat_backend, "minisat");
    EXPECT_EQ(entries[2].name, "native");
    EXPECT_EQ(entries[2].config.sat_backend, "");
    EXPECT_EQ(entries[3].config.sat_backend, "dimacs-exec:foo");
    for (const auto& e : entries)
        EXPECT_EQ(e.config.seed, base.seed) << "backend races share the seed";
}

TEST(BackendPortfolio, RacesTheBuiltinsToACorrectVerdict) {
    Rng rng(11);
    const Cnf cnf = cnfgen::random_ksat(9, 34, 3, rng);
    const bool expect_sat = !cnf_models(cnf).empty();
    const Problem problem = Problem::from_cnf(cnf);

    EngineConfig base;
    base.use_xl = false;
    base.use_elimlin = false;  // the race is decided inside the SAT step
    const auto rep =
        solve_portfolio(problem, default_backend_portfolio(base), 2);
    ASSERT_TRUE(rep.ok()) << rep.status().to_string();
    EXPECT_TRUE(rep->decided());
    EXPECT_EQ(rep->report.verdict,
              expect_sat ? sat::Result::kSat : sat::Result::kUnsat);
    ASSERT_EQ(rep->outcomes.size(), 3u);
    EXPECT_EQ(rep->outcomes[0].name, "minisat");
    EXPECT_EQ(rep->outcomes[1].name, "lingeling");
    EXPECT_EQ(rep->outcomes[2].name, "cms");
}

}  // namespace
}  // namespace bosphorus
