// Differential/fuzz harness for cooperative portfolios: random tiny ANF
// systems are solved cooperatively (workers sharing learnt facts through
// a SharedFactPool) and isolated (the oracle), across the default
// technique portfolio and the built-in backend portfolio. Verdicts must
// agree with each other AND with brute-force ground truth; SAT models
// must satisfy the original system. Seed-reproducible via
// BOSPHORUS_TEST_SEED (see tests/test_util.h).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "anf/polynomial.h"
#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "runtime/fact_exchange.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

using anf::Monomial;
using anf::Polynomial;
using anf::Var;

/// Small budgets: these instances have <= 9 variables, so every path
/// decides them in the first SAT step; the loop budget only bounds the
/// damage if something regresses.
EngineConfig tiny_config(uint64_t seed) {
    EngineConfig cfg;
    cfg.xl.m_budget = 14;
    cfg.elimlin.m_budget = 14;
    cfg.sat_conflicts_start = 1'000;
    cfg.sat_conflicts_max = 10'000;
    cfg.sat_conflicts_step = 1'000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 20.0;
    cfg.seed = seed;
    return cfg;
}

/// A random degree-<=2 polynomial over `nv` variables.
Polynomial random_poly(Rng& rng, unsigned nv) {
    std::vector<Monomial> monos;
    const size_t n = 1 + rng.below(4);
    for (size_t i = 0; i < n; ++i) {
        std::vector<Var> vars;
        const size_t d = rng.below(3);  // constant, linear, or quadratic
        for (size_t j = 0; j < d; ++j)
            vars.push_back(static_cast<Var>(rng.below(nv)));
        monos.emplace_back(vars);
    }
    return Polynomial(std::move(monos));
}

struct RandomInstance {
    std::vector<Polynomial> polys;
    unsigned num_vars = 0;
    std::vector<uint32_t> models;  // brute-force ground truth
};

RandomInstance random_instance(Rng& rng) {
    RandomInstance inst;
    inst.num_vars = 4 + static_cast<unsigned>(rng.below(5));  // 4..8
    const size_t n_eqs = inst.num_vars + rng.below(6);
    for (size_t i = 0; i < n_eqs; ++i) {
        Polynomial p = random_poly(rng, inst.num_vars);
        // Drop 0 = 0 (no information) and 1 = 0 (trivially UNSAT at
        // parse -- it would drown the draw in uninteresting instances).
        if (p.is_zero() || p == Polynomial::constant(true)) continue;
        inst.polys.push_back(std::move(p));
    }
    if (inst.polys.empty())
        inst.polys.push_back(Polynomial::variable(0));  // degenerate draw
    inst.models = testutil::anf_models(inst.polys, inst.num_vars);
    return inst;
}

void expect_model_satisfies(const RandomInstance& inst,
                            const std::vector<bool>& model, size_t i,
                            const char* who) {
    ASSERT_GE(model.size(), inst.num_vars) << who << " instance " << i;
    std::vector<bool> a(model.begin(), model.begin() + inst.num_vars);
    for (const Polynomial& p : inst.polys)
        EXPECT_FALSE(p.evaluate(a))
            << who << " model violates the system on instance " << i;
}

size_t instance_count() {
    // >= 200 by default; BOSPHORUS_TEST_INSTANCES scales the fuzz budget
    // up (nightly) or down (never below the floor checked in CI).
    size_t n = 200;
    if (const char* v = std::getenv("BOSPHORUS_TEST_INSTANCES"))
        n = std::strtoul(v, nullptr, 10);
    return n;
}

// The tentpole differential: cooperative portfolio vs isolated oracle vs
// brute force, alternating between the technique portfolio and the
// heterogeneous backend portfolio (all built-in back ends).
TEST(CooperativeEquivalence, PortfolioMatchesIsolatedOracleAndTruth) {
    const uint64_t base_seed = testutil::test_seed();
    const size_t kInstances = instance_count();
    size_t n_sat = 0, n_unsat = 0;
    for (size_t i = 0; i < kInstances; ++i) {
        Rng rng(base_seed * 1000003 + i * 9176 + 11);
        const RandomInstance inst = random_instance(rng);
        const Problem problem = Problem::from_anf(inst.polys, inst.num_vars);
        const sat::Result truth =
            inst.models.empty() ? sat::Result::kUnsat : sat::Result::kSat;
        (truth == sat::Result::kSat ? n_sat : n_unsat)++;

        const EngineConfig cfg = tiny_config(base_seed + i);
        std::vector<PortfolioEntry> entries =
            (i % 2) ? default_backend_portfolio(cfg) : default_portfolio(cfg);

        const Result<PortfolioReport> iso = solve_portfolio(problem, entries, 2);
        ASSERT_TRUE(iso.ok()) << iso.status().to_string() << " instance " << i;

        for (PortfolioEntry& e : entries) e.config.cooperative = true;
        const Result<PortfolioReport> coop =
            solve_portfolio(problem, entries, 2);
        ASSERT_TRUE(coop.ok()) << coop.status().to_string() << " instance "
                               << i;

        ASSERT_EQ(iso->report.verdict, truth)
            << "isolated oracle diverged from brute force on instance " << i;
        ASSERT_EQ(coop->report.verdict, truth)
            << "cooperative verdict diverged from brute force on instance "
            << i << " (isolated agreed)";
        if (truth == sat::Result::kSat) {
            expect_model_satisfies(inst, iso->report.solution, i, "isolated");
            expect_model_satisfies(inst, coop->report.solution, i,
                                   "cooperative");
        }
    }
    // The draw must exercise both verdicts, or the fuzz proves nothing.
    EXPECT_GT(n_sat, 0u);
    EXPECT_GT(n_unsat, 0u);
}

// Deterministic import coverage: publish the unique model of a planted
// system into a pool by hand (sound: every unit is a consequence of a
// unique-model system), then solve cooperatively as a different worker.
// The facts MUST be imported and the verdict/model must stay correct.
TEST(CooperativeEquivalence, InjectedTrueUnitsAreImportedAndHarmless) {
    const uint64_t base_seed = testutil::test_seed();
    size_t covered = 0;
    for (size_t i = 0; covered < 20 && i < 2000; ++i) {
        Rng rng(base_seed * 7907 + i * 131 + 3);
        const RandomInstance inst = random_instance(rng);
        if (inst.models.size() != 1) continue;  // need a unique model
        ++covered;
        const uint32_t model = inst.models[0];

        auto pool = std::make_shared<runtime::SharedFactPool>(inst.num_vars);
        for (unsigned v = 0; v < inst.num_vars; ++v) {
            const bool value = (model >> v) & 1;
            // Polarity convention of the exchange: v == value is the
            // literal mk_lit(v, !value).
            ASSERT_TRUE(pool->publish_unit(0, sat::mk_lit(v, !value)));
        }

        EngineConfig cfg = tiny_config(base_seed + i);
        cfg.cooperative = true;
        cfg.fact_pool = pool;
        cfg.coop_worker = 1;  // not the publisher: imports are foreign
        Engine engine(cfg);
        const Result<Report> r =
            engine.run(Problem::from_anf(inst.polys, inst.num_vars));
        ASSERT_TRUE(r.ok()) << r.status().to_string();
        EXPECT_EQ(r->verdict, sat::Result::kSat) << "instance " << i;
        EXPECT_GT(r->facts_imported, 0u)
            << "published units never reached the importer, instance " << i;
        expect_model_satisfies(inst, r->solution, i, "importing");
        for (unsigned v = 0; v < inst.num_vars && v < r->solution.size(); ++v)
            EXPECT_EQ(r->solution[v], bool((model >> v) & 1));
    }
    ASSERT_EQ(covered, 20u) << "the draw produced too few unique-model "
                               "instances -- widen the search bound";
}

// Soundness under hostile-but-legal publishes on UNSAT bases: an UNSAT
// system entails every fact, so arbitrary injected units must never flip
// the verdict to SAT.
TEST(CooperativeEquivalence, InjectedUnitsNeverFlipUnsatToSat) {
    const uint64_t base_seed = testutil::test_seed();
    size_t covered = 0;
    for (size_t i = 0; covered < 20 && i < 400; ++i) {
        Rng rng(base_seed * 104729 + i * 17 + 7);
        const RandomInstance inst = random_instance(rng);
        if (!inst.models.empty()) continue;  // need UNSAT ground truth
        ++covered;

        auto pool = std::make_shared<runtime::SharedFactPool>(inst.num_vars);
        for (unsigned v = 0; v < inst.num_vars; ++v)
            pool->publish_unit(0, sat::mk_lit(v, rng.coin()));

        EngineConfig cfg = tiny_config(base_seed + i);
        cfg.cooperative = true;
        cfg.fact_pool = pool;
        cfg.coop_worker = 1;
        Engine engine(cfg);
        const Result<Report> r =
            engine.run(Problem::from_anf(inst.polys, inst.num_vars));
        ASSERT_TRUE(r.ok()) << r.status().to_string();
        EXPECT_EQ(r->verdict, sat::Result::kUnsat) << "instance " << i;
    }
    ASSERT_EQ(covered, 20u);
}

// The cooperative sweep: solve_all_incremental with fact sharing must
// return the same verdicts as the isolated sweep, candidate by candidate.
TEST(CooperativeEquivalence, CooperativeSweepMatchesIsolatedSweep) {
    const uint64_t base_seed = testutil::test_seed();
    Rng rng(base_seed * 6151 + 1);
    cnfgen::PlantedAnf planted =
        cnfgen::planted_quadratic_anf(16, 28, 3, 2, rng);
    const Problem base = Problem::from_anf(planted.polys, planted.num_vars);

    std::vector<AssumptionSet> candidates;
    for (uint32_t mask = 0; mask < 8; ++mask) {
        AssumptionSet set;
        for (unsigned v = 0; v < 3; ++v)
            set.emplace_back(v, bool((mask >> v) & 1));
        candidates.push_back(std::move(set));
    }

    EngineConfig cfg = tiny_config(base_seed);
    BatchEngine isolated(cfg);
    const auto iso = isolated.solve_all_incremental(base, candidates, 2);

    cfg.cooperative = true;
    BatchEngine cooperative(cfg);
    const auto coop = cooperative.solve_all_incremental(base, candidates, 2);

    ASSERT_EQ(iso.size(), candidates.size());
    ASSERT_EQ(coop.size(), candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        ASSERT_TRUE(iso[i].ok()) << iso[i].status().to_string();
        ASSERT_TRUE(coop[i].ok()) << coop[i].status().to_string();
        EXPECT_EQ(coop[i]->verdict, iso[i]->verdict)
            << "sweep candidate " << i
            << " diverged between cooperative and isolated";
    }
}

}  // namespace
}  // namespace bosphorus
