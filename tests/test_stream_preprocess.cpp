// Tests for the out-of-core streaming preprocessor (include/bosphorus/
// stream.h, src/stream/) and the hardened DIMACS substrate it shares with
// the whole-file reader (src/stream/dimacs_tokenizer.h, src/sat/dimacs.cpp).
//
// The load-bearing suites are differential: the streamed output must be
// equisatisfiable with the input, checked against the brute-force model
// enumerator on small instances (where `window_bve=false` additionally
// bounds the model set: output models are a subset of input models, since
// unit/pure/equivalence fixing only ever restricts assignments) and
// against the registered "cms" back-end on instances big enough to force
// several windows through a deliberately tiny memory budget.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "sat/dimacs.h"
#include "sat/solve_cnf.h"
#include "stream/dimacs_tokenizer.h"
#include "test_util.h"
#include "util/rng.h"

using namespace bosphorus;

namespace {

/// Run the streaming preprocessor over in-memory DIMACS text.
Result<StreamPreprocessStats> stream_text(const std::string& in,
                                          std::string* out,
                                          StreamPreprocessConfig cfg = {}) {
    StreamPreprocessor pp(cfg);
    return pp.run_text(in, out);
}

/// Solve DIMACS text with the registered cms-like back-end.
sat::Result solve_text(const std::string& text) {
    const sat::Cnf cnf = sat::read_dimacs_from_string(text);
    const auto so = sat::solve_cnf_with(cnf, "cms", 60.0);
    return so.ok() ? so->result : sat::Result::kUnknown;
}

std::string planted_text(uint64_t vars, uint64_t clauses, uint64_t seed,
                         bool plant = true) {
    cnfgen::StreamDimacs gen;
    gen.num_vars = vars;
    gen.num_clauses = clauses;
    gen.plant = plant;
    Rng rng(seed);
    std::ostringstream out;
    cnfgen::write_stream_dimacs(out, gen, rng);
    return out.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// DIMACS hardening: the shared tokenizer behind sat::read_dimacs
// ---------------------------------------------------------------------------

TEST(DimacsHardening, RejectsMissingHeader) {
    const auto r = sat::try_read_dimacs_from_string("1 2 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsEmptyAndCommentOnlyInput) {
    EXPECT_EQ(sat::try_read_dimacs_from_string("").status().code(),
              StatusCode::kParseError);
    EXPECT_EQ(sat::try_read_dimacs_from_string("c nothing here\n")
                  .status()
                  .code(),
              StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsWrongFormatName) {
    const auto r = sat::try_read_dimacs_from_string("p dnf 2 1\n1 2 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsHeaderCountOverflow) {
    const auto r =
        sat::try_read_dimacs_from_string("p cnf 99999999999 1\n1 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsLiteralOverflow) {
    // 2^31-1 exceeds the representable range (2^31-2 is the cap).
    const auto r = sat::try_read_dimacs_from_string(
        "p cnf 3 1\n2147483647 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
    // The cap itself is fine.
    const auto ok = sat::try_read_dimacs_from_string(
        "p cnf 2147483646 1\n2147483646 0\n");
    EXPECT_TRUE(ok.ok()) << ok.status().to_string();
}

TEST(DimacsHardening, RejectsNegativeZeroLiteral) {
    const auto r = sat::try_read_dimacs_from_string("p cnf 2 1\n1 -0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsUnterminatedClauseAtEof) {
    const auto r = sat::try_read_dimacs_from_string("p cnf 2 1\n1 -2");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsDuplicateHeader) {
    const auto r = sat::try_read_dimacs_from_string(
        "p cnf 2 1\np cnf 2 1\n1 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, RejectsStrayBytes) {
    const auto r = sat::try_read_dimacs_from_string("p cnf 2 1\n1 @ 2 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(DimacsHardening, AcceptsClausesSpanningLinesAndNoFinalNewline) {
    const auto r = sat::try_read_dimacs_from_string(
        "c leading comment\np cnf 3 2\n1\n 2\n 3 0\n-1 -2 0");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->clauses.size(), 2u);
    EXPECT_EQ(r->clauses[0].size(), 3u);
}

TEST(DimacsHardening, AcceptsCommentAtEofWithoutNewline) {
    const auto r =
        sat::try_read_dimacs_from_string("p cnf 1 1\n1 0\nc trailing");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->clauses.size(), 1u);
}

TEST(DimacsHardening, GrowsPastDeclaredVariableCount) {
    const auto r = sat::try_read_dimacs_from_string("p cnf 2 1\n1 5 0\n");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->num_vars, 5u);
}

TEST(DimacsHardening, ParsesXorLines) {
    // "x1 -2 0": x1 ^ ~x2 = 1, i.e. x1 ^ x2 = 0.
    const auto r = sat::try_read_dimacs_from_string("p cnf 2 1\nx1 -2 0\n");
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    ASSERT_EQ(r->xors.size(), 1u);
    EXPECT_EQ(r->xors[0].vars.size(), 2u);
    EXPECT_FALSE(r->xors[0].rhs);
}

TEST(DimacsTokenizer, TinyChunksSeeTheSameStream) {
    // A 3-byte chunk size forces literals to straddle refill boundaries.
    const std::string text = planted_text(40, 200, 5);
    stream::StringByteSource src(text);
    stream::DimacsTokenizer::Config cfg;
    cfg.chunk_bytes = 3;
    stream::DimacsTokenizer tok(src, cfg);
    std::vector<sat::Lit> lits;
    uint64_t clauses = 0, xors = 0;
    for (;;) {
        const auto item = tok.next(lits);
        ASSERT_TRUE(item.ok()) << item.status().to_string();
        if (*item == stream::DimacsTokenizer::Item::kEof) break;
        if (*item == stream::DimacsTokenizer::Item::kClause) ++clauses;
        if (*item == stream::DimacsTokenizer::Item::kXor) ++xors;
    }
    const sat::Cnf whole = sat::read_dimacs_from_string(text);
    EXPECT_EQ(clauses, whole.clauses.size());
    EXPECT_EQ(xors, whole.xors.size());
    EXPECT_EQ(tok.bytes_consumed(), text.size());
}

// ---------------------------------------------------------------------------
// Streaming generator
// ---------------------------------------------------------------------------

TEST(StreamDimacsGen, DeterministicAndHeaderExact) {
    const std::string a = planted_text(500, 4000, 42);
    const std::string b = planted_text(500, 4000, 42);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, planted_text(500, 4000, 43));
    const sat::Cnf cnf = sat::read_dimacs_from_string(a);
    EXPECT_EQ(cnf.num_vars, 500u);
    // The declared clause count is exact: XOR groups and duplicates are
    // budgeted against it, never emitted past it.
    std::istringstream in(a);
    std::string word;
    uint64_t declared = 0;
    in >> word >> word >> declared >> declared;
    EXPECT_EQ(declared, cnf.clauses.size() + cnf.xors.size());
}

TEST(StreamDimacsGen, PlantedInstanceIsSat) {
    const std::string text = planted_text(120, 700, testutil::test_seed());
    EXPECT_EQ(solve_text(text), sat::Result::kSat);
}

// ---------------------------------------------------------------------------
// StreamPreprocessor: functional behaviour
// ---------------------------------------------------------------------------

TEST(StreamPreprocess, OutputParsesAndStaysSat) {
    const std::string in = planted_text(200, 1500, testutil::test_seed());
    std::string out;
    StreamPreprocessConfig cfg;
    cfg.memory_budget_bytes = 1u << 20;
    const auto stats = stream_text(in, &out, cfg);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_EQ(stats->bytes_in, in.size());
    EXPECT_EQ(stats->bytes_out, out.size());
    EXPECT_EQ(stats->verdict, sat::Result::kUnknown);
    EXPECT_GT(stats->clauses_in, 0u);
    // The planted mixed instance carries XOR groups; windows recover them.
    EXPECT_GT(stats->xors_recovered, 0u);
    EXPECT_EQ(solve_text(out), sat::Result::kSat);
}

TEST(StreamPreprocess, UnsatXorCycleShortCircuits) {
    Rng rng(testutil::test_seed() + 7);
    const sat::Cnf cnf = cnfgen::xor_cycle(30, /*satisfiable=*/false, rng);
    std::ostringstream text;
    sat::write_dimacs(text, cnf);
    std::string out;
    const auto stats = stream_text(text.str(), &out);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_EQ(stats->verdict, sat::Result::kUnsat);
    // The emitted file is a valid, trivially UNSAT formula.
    EXPECT_EQ(solve_text(out), sat::Result::kUnsat);
}

TEST(StreamPreprocess, PlainCnfModeEmitsNoXorLines) {
    const std::string in = planted_text(150, 1200, testutil::test_seed() + 3);
    std::string out;
    StreamPreprocessConfig cfg;
    cfg.emit_xor_lines = false;
    const auto stats = stream_text(in, &out, cfg);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::istringstream lines(out);
    std::string line;
    while (std::getline(lines, line))
        EXPECT_NE(line.rfind('x', 0), 0u) << "x line in plain-CNF mode";
    const sat::Cnf parsed = sat::read_dimacs_from_string(out);
    EXPECT_TRUE(parsed.xors.empty());
    EXPECT_EQ(solve_text(out), sat::Result::kSat);
}

TEST(StreamPreprocess, HeaderIsPatchedToFinalCounts) {
    const std::string in = planted_text(100, 800, testutil::test_seed() + 9);
    std::string out;
    const auto stats = stream_text(in, &out);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    std::istringstream hdr(out);
    std::string p, fmt;
    uint64_t vars = 0, clauses = 0;
    hdr >> p >> fmt >> vars >> clauses;
    EXPECT_EQ(p, "p");
    EXPECT_EQ(fmt, "cnf");
    EXPECT_EQ(vars, stats->num_vars_out);
    const sat::Cnf parsed = sat::read_dimacs_from_string(out);
    EXPECT_EQ(clauses, parsed.clauses.size() + parsed.xors.size());
}

TEST(StreamPreprocess, FilePathRoundTrip) {
    const std::string in_path = "stream_test_in.tmp.cnf";
    const std::string out_path = "stream_test_out.tmp.cnf";
    const std::string text = planted_text(80, 600, testutil::test_seed() + 1);
    {
        std::ofstream f(in_path, std::ios::binary);
        f << text;
    }
    StreamPreprocessor pp;
    const auto stats = pp.run(in_path, out_path);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_EQ(stats->bytes_in, text.size());
    std::ifstream f(out_path, std::ios::binary);
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_EQ(buf.str().size(), stats->bytes_out);
    EXPECT_EQ(solve_text(buf.str()), sat::Result::kSat);
    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
}

TEST(StreamPreprocess, MissingInputFileIsIoError) {
    StreamPreprocessor pp;
    const auto stats =
        pp.run("no/such/file.cnf", "stream_test_never.tmp.cnf");
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
}

TEST(StreamPreprocess, MalformedInputIsParseError) {
    std::string out;
    const auto stats = stream_text("p cnf 2 1\n1 -0\n", &out);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kParseError);
}

TEST(StreamPreprocess, BudgetTooSmallIsInvalidArgument) {
    std::string out;
    StreamPreprocessConfig cfg;
    cfg.memory_budget_bytes = 1024;  // below the fixed-state floor
    const auto stats =
        stream_text(planted_text(5000, 20000, 2), &out, cfg);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamPreprocess, NullOutputTextIsInvalidArgument) {
    StreamPreprocessor pp;
    const auto stats = pp.run_text("p cnf 1 1\n1 0\n", nullptr);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamPreprocess, PreCancelledTokenInterrupts) {
    runtime::CancellationSource src;
    src.request_cancel();
    StreamPreprocessConfig cfg;
    cfg.cancel = src.token();
    std::string out;
    const auto stats =
        stream_text(planted_text(50, 400, 3), &out, cfg);
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kInterrupted);
}

TEST(StreamPreprocess, ProgressCoversAllPhases) {
    std::set<StreamPhase> seen;
    uint64_t calls = 0;
    StreamPreprocessConfig cfg;
    cfg.progress_interval_clauses = 16;
    cfg.on_progress = [&](const StreamProgress& p) {
        seen.insert(p.phase);
        ++calls;
        EXPECT_LE(p.bytes_read, p.bytes_total);
    };
    std::string out;
    const auto stats =
        stream_text(planted_text(100, 900, 11), &out, cfg);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_GT(calls, 0u);
    EXPECT_TRUE(seen.count(StreamPhase::kDiscover));
    EXPECT_TRUE(seen.count(StreamPhase::kCount));
    EXPECT_TRUE(seen.count(StreamPhase::kWindow));
}

TEST(StreamPreprocess, SummaryLineMentionsKeyCounters) {
    std::string out;
    const auto stats = stream_text(planted_text(60, 400, 13), &out);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    const std::string line = stream_summary_line(*stats);
    EXPECT_EQ(line.rfind("c stream:", 0), 0u) << line;
    EXPECT_NE(line.find("windows="), std::string::npos) << line;
    EXPECT_NE(line.find("units="), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// Differential suites
// ---------------------------------------------------------------------------

namespace {

/// Brute-force model sets (bitmask-encoded) of DIMACS text over its
/// declared variable count; requires <= ~16 variables.
std::vector<uint32_t> models_of(const std::string& text) {
    return testutil::cnf_models(sat::read_dimacs_from_string(text));
}

}  // namespace

// With BVE off, every streamed transformation (unit fixing, pure
// literals, equivalence merging, subsumption, GF(2) elimination) only
// *restricts* the assignment set: output models must be a subset of input
// models, and satisfiability must be preserved exactly.
TEST(StreamDifferential, BruteForceModelSubsetWithoutBve) {
    const uint64_t base = testutil::test_seed();
    for (int round = 0; round < 30; ++round) {
        Rng rng(base + round);
        const size_t vars = 6 + rng.next() % 8;  // 6..13
        const size_t clauses = vars * (2 + rng.next() % 3);
        const unsigned k = 2 + rng.next() % 2;
        const sat::Cnf cnf = cnfgen::random_ksat(vars, clauses, k, rng);
        std::ostringstream text;
        sat::write_dimacs(text, cnf);

        StreamPreprocessConfig cfg;
        cfg.window_bve = false;
        std::string out;
        const auto stats = stream_text(text.str(), &out, cfg);
        ASSERT_TRUE(stats.ok())
            << "round " << round << ": " << stats.status().to_string();

        const std::vector<uint32_t> in_models = models_of(text.str());
        if (stats->verdict == sat::Result::kUnsat) {
            EXPECT_TRUE(in_models.empty()) << "round " << round;
            continue;
        }
        // The output may declare fewer variables than the input when the
        // tail got fixed; evaluate it over the input's variable count so
        // bitmasks are comparable (extra variables are unconstrained).
        sat::Cnf out_cnf = sat::read_dimacs_from_string(out);
        ASSERT_LE(out_cnf.num_vars, cnf.num_vars) << "round " << round;
        out_cnf.num_vars = cnf.num_vars;
        std::ostringstream out_norm;
        sat::write_dimacs(out_norm, out_cnf);
        const std::vector<uint32_t> out_models = models_of(out_norm.str());

        EXPECT_EQ(in_models.empty(), out_models.empty())
            << "round " << round << ": satisfiability changed";
        for (uint32_t m : out_models)
            EXPECT_TRUE(std::binary_search(in_models.begin(),
                                           in_models.end(), m))
                << "round " << round << ": streamed output gained model "
                << m;
    }
}

// Full pipeline (BVE on): equisatisfiability on random small instances,
// brute force as the oracle.
TEST(StreamDifferential, BruteForceEquisatWithBve) {
    const uint64_t base = testutil::test_seed() + 1000;
    for (int round = 0; round < 30; ++round) {
        Rng rng(base + round);
        const size_t vars = 6 + rng.next() % 8;
        const size_t clauses = vars * (3 + rng.next() % 3);
        const sat::Cnf cnf = cnfgen::random_ksat(vars, clauses, 3, rng);
        std::ostringstream text;
        sat::write_dimacs(text, cnf);

        std::string out;
        const auto stats = stream_text(text.str(), &out);
        ASSERT_TRUE(stats.ok())
            << "round " << round << ": " << stats.status().to_string();

        const bool in_sat = !models_of(text.str()).empty();
        const bool out_sat = stats->verdict == sat::Result::kUnsat
                                 ? false
                                 : !models_of(out).empty();
        EXPECT_EQ(in_sat, out_sat) << "round " << round;
    }
}

// Multi-window runs: a tiny budget forces the window pass to flush
// several times mid-stream, exercising the cross-window soundness gates
// (frozen variables, occurrence saturation). Solver-checked because the
// instances are too big to brute-force.
TEST(StreamDifferential, SolverEquisatAcrossWindows) {
    const uint64_t base = testutil::test_seed() + 2000;
    for (int round = 0; round < 4; ++round) {
        // plant=false rounds may be SAT or UNSAT; both must round-trip.
        // No unit clauses and a near-threshold clause ratio, so discovery
        // cannot collapse the instance before it reaches the window pass.
        const bool plant = (round % 2) == 0;
        cnfgen::StreamDimacs gen;
        gen.num_vars = 300;
        gen.num_clauses = 1000;
        gen.unit_percent = 0;
        gen.duplicate_percent = 0;
        gen.plant = plant;
        Rng rng(base + round);
        std::ostringstream gen_text;
        cnfgen::write_stream_dimacs(gen_text, gen, rng);
        const std::string in = gen_text.str();

        StreamPreprocessConfig cfg;
        cfg.memory_budget_bytes = 96u << 10;  // force several windows
        std::string out;
        const auto stats = stream_text(in, &out, cfg);
        ASSERT_TRUE(stats.ok())
            << "round " << round << ": " << stats.status().to_string();
        EXPECT_GE(stats->windows, 2u) << "round " << round;

        const sat::Result want = solve_text(in);
        ASSERT_NE(want, sat::Result::kUnknown) << "round " << round;
        const sat::Result got = stats->verdict == sat::Result::kUnsat
                                    ? sat::Result::kUnsat
                                    : solve_text(out);
        EXPECT_EQ(got, want) << "round " << round;
        if (plant) EXPECT_EQ(want, sat::Result::kSat) << "round " << round;
    }
}

// An XOR chain whose clauses straddle a window boundary must survive:
// whatever each window recovers locally, the global formula stays
// equisatisfiable (the chain forces x1 = x_n; the closing constraint
// decides SAT/UNSAT).
TEST(StreamDifferential, XorChainAcrossWindowBoundary) {
    for (const bool satisfiable : {true, false}) {
        Rng rng(testutil::test_seed() + satisfiable);
        const sat::Cnf cnf = cnfgen::xor_cycle(200, satisfiable, rng);
        std::ostringstream text;
        sat::write_dimacs(text, cnf);

        StreamPreprocessConfig cfg;
        cfg.memory_budget_bytes = 80u << 10;
        std::string out;
        const auto stats = stream_text(text.str(), &out, cfg);
        ASSERT_TRUE(stats.ok()) << stats.status().to_string();

        const sat::Result want =
            satisfiable ? sat::Result::kSat : sat::Result::kUnsat;
        const sat::Result got = stats->verdict == sat::Result::kUnsat
                                    ? sat::Result::kUnsat
                                    : solve_text(out);
        EXPECT_EQ(got, want)
            << (satisfiable ? "satisfiable" : "unsatisfiable") << " cycle";
    }
}

// The memory account must respect the configured budget even when the
// input is several times larger than it.
TEST(StreamPreprocess, AccountedPeakStaysWithinBudget) {
    const std::string in = planted_text(3000, 40000, testutil::test_seed());
    StreamPreprocessConfig cfg;
    cfg.memory_budget_bytes = 128u << 10;
    ASSERT_GT(in.size(), 4 * cfg.memory_budget_bytes)
        << "input not big enough to prove anything";
    std::string out;
    const auto stats = stream_text(in, &out, cfg);
    ASSERT_TRUE(stats.ok()) << stats.status().to_string();
    EXPECT_LE(stats->peak_accounted_bytes, cfg.memory_budget_bytes);
    EXPECT_GE(stats->windows, 2u);
    EXPECT_EQ(solve_text(out), sat::Result::kSat);
}
