// Tests for the incremental Session API: assumptions, push/pop scopes,
// warm-started re-solving, UNSAT-at-scope recovery, cancellation
// reusability, the sweep runtime, and the version/move-only satellites --
// written against include/bosphorus/ alone.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "bosphorus/bosphorus.h"
#include "cnfgen/generators.h"
#include "test_util.h"

namespace bosphorus {
namespace {

using anf::Polynomial;

/// The paper's section II-E worked example; unique solution 1,1,1,1,0.
Problem paper_example() {
    auto p = Problem::from_anf_text(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.sat_conflicts_max = 10'000;
    cfg.sat_conflicts_step = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    return cfg;
}

/// A planted overdetermined quadratic system (near-certainly a unique
/// model) plus its planted assignment, shared by the sweep tests.
struct SweepInstance {
    Problem problem;
    std::vector<bool> planted;
};

SweepInstance sweep_instance(uint64_t seed, size_t num_vars = 24,
                             size_t num_eqs = 40) {
    Rng rng(testutil::test_seed() * 1000003 + seed);
    cnfgen::PlantedAnf inst =
        cnfgen::planted_quadratic_anf(num_vars, num_eqs, 3, 2, rng);
    return {Problem::from_anf(std::move(inst.polys), inst.num_vars),
            std::move(inst.planted)};
}

// ---- version / move-only satellites ---------------------------------------

TEST(Version, MacrosAndStringAgree) {
    const std::string expected = std::to_string(BOSPHORUS_VERSION_MAJOR) +
                                 "." +
                                 std::to_string(BOSPHORUS_VERSION_MINOR);
    EXPECT_EQ(version(), expected);
}

TEST(MoveOnly, EngineAndSessionCannotBeCopied) {
    static_assert(!std::is_copy_constructible_v<Engine>);
    static_assert(!std::is_copy_assignable_v<Engine>);
    static_assert(std::is_move_constructible_v<Engine>);
    static_assert(std::is_move_assignable_v<Engine>);
    static_assert(!std::is_copy_constructible_v<Session>);
    static_assert(!std::is_copy_assignable_v<Session>);
    static_assert(std::is_move_constructible_v<Session>);
    static_assert(std::is_move_assignable_v<Session>);
}

TEST(MoveOnly, MovedSessionKeepsWorking) {
    Session a(paper_example(), small_config());
    ASSERT_TRUE(a.push().ok());
    Session b(std::move(a));
    ASSERT_TRUE(b.assume(0, true).ok());
    const auto r = b.solve();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->verdict, sat::Result::kSat);
    EXPECT_TRUE(b.pop().ok());
}

// ---- scope edge cases ------------------------------------------------------

TEST(Session, PopOnEmptyStackReturnsError) {
    Session session(paper_example(), small_config());
    const Status s = session.pop();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    // The session is unharmed: normal use continues.
    ASSERT_TRUE(session.push().ok());
    EXPECT_EQ(session.depth(), 1u);
    EXPECT_TRUE(session.pop().ok());
    EXPECT_EQ(session.depth(), 0u);
    EXPECT_FALSE(session.pop().ok());
}

TEST(Session, OutOfRangeAssumeAndAddAreRejected) {
    Session session(paper_example(), small_config());
    EXPECT_EQ(session.assume(99, true).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(session.add(Polynomial::variable(99)).code(),
              StatusCode::kInvalidArgument);
    // Rejected constraints left no trace.
    const auto r = session.solve();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->verdict, sat::Result::kSat);
}

TEST(Session, SolveAfterUnsatAtScopeRecoversOnPop) {
    Session session(paper_example(), small_config());

    ASSERT_TRUE(session.push().ok());
    // The unique solution has x5 = 0; assuming x5 = 1 makes the scope
    // UNSAT.
    ASSERT_TRUE(session.assume(4, true).ok());
    const auto unsat = session.solve();
    ASSERT_TRUE(unsat.ok());
    EXPECT_EQ(unsat->verdict, sat::Result::kUnsat);
    EXPECT_FALSE(session.okay());

    // Even a directly contradictory pair of assumptions recovers.
    ASSERT_TRUE(session.pop().ok());
    EXPECT_TRUE(session.okay());
    ASSERT_TRUE(session.push().ok());
    ASSERT_TRUE(session.assume(0, true).ok());
    ASSERT_TRUE(session.assume(0, false).ok());
    const auto clash = session.solve();
    ASSERT_TRUE(clash.ok());
    EXPECT_EQ(clash->verdict, sat::Result::kUnsat);
    ASSERT_TRUE(session.pop().ok());

    const auto sat_again = session.solve();
    ASSERT_TRUE(sat_again.ok());
    EXPECT_EQ(sat_again->verdict, sat::Result::kSat);
    const std::vector<bool> expected = {true, true, true, true, false};
    EXPECT_EQ(sat_again->solution, expected);
}

/// Satellite regression for the SAT back-end redesign: the warm-solve
/// path now reaches the live solver through the SolverBackend interface
/// (assume/solve/failed). Failed assumptions must not poison later warm
/// solves, for the built-in native in-loop solver AND for every named
/// built-in backend routed through the interface -- mirroring the
/// solve_assuming guarantee the native path always had.
TEST(Session, FailedAssumptionsThroughBackendsDoNotPoisonWarmSolves) {
    for (const std::string backend : {"", "minisat", "cms", "lingeling"}) {
        EngineConfig cfg = small_config();
        cfg.sat_backend = backend;
        // Make the in-loop SAT step the only decision maker, so the warm
        // solver (native or backend) is what every solve exercises.
        cfg.use_xl = false;
        cfg.use_elimlin = false;
        Session session(paper_example(), cfg);

        // Warm-up solve: SAT, establishing the live solver.
        const auto first = session.solve();
        ASSERT_TRUE(first.ok()) << "'" << backend << "'";
        EXPECT_EQ(first->verdict, sat::Result::kSat) << "'" << backend << "'";

        // A scope whose assumption the base refutes (x5 = 1): the live
        // solver sees it as a failed assumption, not a new clause.
        ASSERT_TRUE(session.push().ok());
        ASSERT_TRUE(session.assume(4, true).ok());
        const auto unsat = session.solve();
        ASSERT_TRUE(unsat.ok()) << "'" << backend << "'";
        EXPECT_EQ(unsat->verdict, sat::Result::kUnsat)
            << "'" << backend << "'";
        ASSERT_TRUE(session.pop().ok());

        // The failed assumption must leave no trace: the same Session
        // keeps producing the unique model, warm, repeatedly.
        for (int round = 0; round < 2; ++round) {
            const auto again = session.solve();
            ASSERT_TRUE(again.ok()) << "'" << backend << "'";
            EXPECT_EQ(again->verdict, sat::Result::kSat)
                << "'" << backend << "' round " << round;
            const std::vector<bool> expected = {true, true, true, true,
                                                false};
            EXPECT_EQ(again->solution, expected) << "'" << backend << "'";
        }
        EXPECT_EQ(session.solve_count(), 4u);
    }
}

TEST(Session, PushPopRoundTripRestoresSystemExactly) {
    Session session(paper_example(), small_config());
    const auto before = session.solve();
    ASSERT_TRUE(before.ok());

    ASSERT_TRUE(session.push().ok());
    ASSERT_TRUE(session.assume(4, true).ok());  // forces UNSAT inside
    (void)session.solve();
    ASSERT_TRUE(session.pop().ok());

    // Re-solving after the round trip must reproduce the pre-scope
    // processed system bit for bit (the push/pop exactness contract).
    const auto after = session.solve();
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after->verdict, before->verdict);
    EXPECT_EQ(after->solution, before->solution);
    EXPECT_EQ(after->processed_anf, before->processed_anf);
    EXPECT_EQ(after->vars_fixed, before->vars_fixed);
    EXPECT_EQ(after->vars_replaced, before->vars_replaced);
}

TEST(Session, ScopedAddIsUndoneByPop) {
    Session session(paper_example(), small_config());
    const auto base = session.solve();
    ASSERT_TRUE(base.ok());
    EXPECT_EQ(base->verdict, sat::Result::kSat);

    ASSERT_TRUE(session.push().ok());
    // x5 + 1 = 0 contradicts the unique solution (x5 = 0).
    ASSERT_TRUE(session
                    .add(Polynomial::variable(4) +
                         Polynomial::constant(true))
                    .ok());
    const auto scoped = session.solve();
    ASSERT_TRUE(scoped.ok());
    EXPECT_EQ(scoped->verdict, sat::Result::kUnsat);
    ASSERT_TRUE(session.pop().ok());

    const auto restored = session.solve();
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->verdict, sat::Result::kSat);
    EXPECT_EQ(restored->solution, base->solution);
}

TEST(Session, DepthZeroAddIsPermanent) {
    Session session(paper_example(), small_config());
    ASSERT_TRUE(session.add(Polynomial::variable(4) +
                            Polynomial::constant(true))
                    .ok());  // x5 = 1: kills the unique solution
    const auto r = session.solve();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->verdict, sat::Result::kUnsat);
}

// ---- cancellation ----------------------------------------------------------

TEST(Session, CancellationMidSolveLeavesSessionReusable) {
    // A system big enough that the loop runs at least one full step.
    SweepInstance inst = sweep_instance(7, 30, 45);
    Session session(inst.problem, small_config());

    runtime::CancellationSource source;
    source.request_cancel();  // already fired: the solve stops immediately
    session.set_cancellation_token(source.token());
    const auto cancelled = session.solve();
    ASSERT_TRUE(cancelled.ok());
    EXPECT_TRUE(cancelled->interrupted);

    // Detach the token; the session must solve normally afterwards.
    session.set_cancellation_token({});
    ASSERT_TRUE(session.push().ok());
    for (size_t v = 0; v < 6; ++v)
        ASSERT_TRUE(session.assume(v, inst.planted[v]).ok());
    const auto warm = session.solve();
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->verdict, sat::Result::kSat);
    ASSERT_TRUE(session.pop().ok());

    // Same through the interrupt callback (counts as interruption too).
    std::atomic<int> polls{0};
    session.set_interrupt_callback([&polls] { return ++polls > 0; });
    const auto stopped = session.solve();
    ASSERT_TRUE(stopped.ok());
    EXPECT_TRUE(stopped->interrupted);
    session.set_interrupt_callback(nullptr);
    const auto fine = session.solve();
    ASSERT_TRUE(fine.ok());
    EXPECT_FALSE(fine->interrupted);
}

// ---- warm vs cold equivalence ---------------------------------------------

TEST(Session, WarmSweepMatchesColdEngineRuns) {
    SweepInstance inst = sweep_instance(11);
    const EngineConfig cfg = small_config();
    const size_t k = 3;  // sweep the first 3 variables: 8 candidates

    Session session(inst.problem, cfg);
    for (unsigned mask = 0; mask < (1u << k); ++mask) {
        // Cold reference: a fresh problem with the assumptions baked in
        // as unit equations, run through a fresh one-shot Engine.
        Problem cold_problem = inst.problem;
        for (size_t v = 0; v < k; ++v) {
            Polynomial unit = Polynomial::variable(v);
            if ((mask >> v) & 1) unit += Polynomial::constant(true);
            ASSERT_TRUE(cold_problem.add_polynomial(unit).ok());
        }
        Engine engine(cfg);
        const auto cold = engine.run(cold_problem);
        ASSERT_TRUE(cold.ok());

        ASSERT_TRUE(session.push().ok());
        for (size_t v = 0; v < k; ++v)
            ASSERT_TRUE(session.assume(v, (mask >> v) & 1).ok());
        const auto warm = session.solve();
        ASSERT_TRUE(warm.ok());
        ASSERT_TRUE(session.pop().ok());

        EXPECT_EQ(warm->verdict, cold->verdict) << "candidate " << mask;
        if (warm->verdict == sat::Result::kSat) {
            EXPECT_EQ(warm->solution, cold->solution)
                << "candidate " << mask
                << ": planted overdetermined systems have unique models";
        }
    }
}

TEST(Session, WarmResolveIsDeterministic) {
    SweepInstance inst = sweep_instance(13);
    const EngineConfig cfg = small_config();

    auto sweep = [&]() {
        std::vector<sat::Result> verdicts;
        Session session(inst.problem, cfg);
        for (unsigned mask = 0; mask < 8; ++mask) {
            EXPECT_TRUE(session.push().ok());
            for (size_t v = 0; v < 3; ++v)
                EXPECT_TRUE(session.assume(v, (mask >> v) & 1).ok());
            const auto r = session.solve();
            EXPECT_TRUE(r.ok());
            verdicts.push_back(r->verdict);
            EXPECT_TRUE(session.pop().ok());
        }
        return verdicts;
    };
    EXPECT_EQ(sweep(), sweep());
}

// ---- the sweep runtime -----------------------------------------------------

TEST(BatchEngineIncremental, SweepMatchesPerCandidateSessions) {
    SweepInstance inst = sweep_instance(17);
    EngineConfig cfg = small_config();
    cfg.emit_processed = false;

    std::vector<AssumptionSet> candidates;
    for (unsigned mask = 0; mask < 8; ++mask) {
        AssumptionSet set;
        for (size_t v = 0; v < 3; ++v)
            set.emplace_back(static_cast<anf::Var>(v), (mask >> v) & 1);
        candidates.push_back(std::move(set));
    }

    BatchEngine batch(cfg);
    const auto swept =
        batch.solve_all_incremental(inst.problem, candidates, 2);
    ASSERT_EQ(swept.size(), candidates.size());

    size_t n_sat = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
        ASSERT_TRUE(swept[i].ok()) << swept[i].status().to_string();
        Session session(inst.problem, cfg);
        ASSERT_TRUE(session.push().ok());
        for (const auto& [var, value] : candidates[i])
            ASSERT_TRUE(session.assume(var, value).ok());
        const auto solo = session.solve();
        ASSERT_TRUE(solo.ok());
        EXPECT_EQ(swept[i]->verdict, solo->verdict) << "candidate " << i;
        if (swept[i]->verdict == sat::Result::kSat) {
            ++n_sat;
            EXPECT_EQ(swept[i]->solution, solo->solution);
        }
    }
    EXPECT_GE(n_sat, 1u) << "the planted candidate must be SAT";
}

TEST(BatchEngineIncremental, BadCandidateFailsItsSlotOnly) {
    SweepInstance inst = sweep_instance(19);
    EngineConfig cfg = small_config();
    cfg.emit_processed = false;

    std::vector<AssumptionSet> candidates;
    candidates.push_back({{0, inst.planted[0]}});
    candidates.push_back({{9999, true}});  // out of range
    candidates.push_back({{1, inst.planted[1]}});

    BatchEngine batch(cfg);
    const auto swept =
        batch.solve_all_incremental(inst.problem, candidates, 1);
    ASSERT_EQ(swept.size(), 3u);
    EXPECT_TRUE(swept[0].ok());
    ASSERT_FALSE(swept[1].ok());
    EXPECT_EQ(swept[1].status().code(), StatusCode::kInvalidArgument);
    EXPECT_TRUE(swept[2].ok()) << "the sweep continues past a bad slot";
}

TEST(BatchEngineIncremental, CancellationSkipsRemainingCandidates) {
    SweepInstance inst = sweep_instance(23);
    EngineConfig cfg = small_config();
    cfg.emit_processed = false;

    std::vector<AssumptionSet> candidates(16, AssumptionSet{{0, true}});
    runtime::CancellationSource source;
    source.request_cancel();  // fire before the sweep even starts

    BatchEngine batch(cfg);
    batch.set_cancellation_token(source.token());
    const auto swept =
        batch.solve_all_incremental(inst.problem, candidates, 2);
    for (const auto& r : swept) {
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().code(), StatusCode::kInterrupted);
    }
}

}  // namespace
}  // namespace bosphorus
