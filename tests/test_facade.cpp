// Tests for the public library facade: Problem (incremental + file
// loading), Status/Result propagation, the Engine technique registry with
// interrupt/progress hooks, and the solve() protocol -- all written against
// include/bosphorus/ alone.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>

#include "anf/anf_parser.h"
#include "bosphorus/bosphorus.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace bosphorus {
namespace {

/// The paper's section II-E worked example; unique solution 1,1,1,1,0.
Problem paper_example() {
    auto p = Problem::from_anf_text(
        "x1*x2 + x3 + x4 + 1\n"
        "x1*x2*x3 + x1 + x3 + 1\n"
        "x1*x3 + x3*x4*x5 + x3\n"
        "x2*x3 + x3*x5 + 1\n"
        "x2*x3 + x5 + 1\n");
    EXPECT_TRUE(p.ok());
    return *p;
}

EngineConfig small_config() {
    EngineConfig cfg;
    cfg.xl.m_budget = 16;
    cfg.elimlin.m_budget = 16;
    cfg.sat_conflicts_start = 1000;
    cfg.sat_conflicts_max = 10'000;
    cfg.sat_conflicts_step = 1000;
    cfg.max_iterations = 8;
    cfg.time_budget_s = 10.0;
    return cfg;
}

// ---- Problem: incremental loading -----------------------------------------

TEST(Problem, StartsEmptyAndFirstAddFixesKind) {
    Problem p;
    EXPECT_EQ(p.kind(), Problem::Kind::kEmpty);
    EXPECT_TRUE(p.empty());

    ASSERT_TRUE(p.add_polynomial(anf::parse_polynomial("x1*x2 + x3")).ok());
    EXPECT_EQ(p.kind(), Problem::Kind::kAnf);
    EXPECT_EQ(p.num_vars(), 3u);
    EXPECT_EQ(p.num_constraints(), 1u);

    // The other family is now rejected, with a structured error.
    const Status s = p.add_clause({sat::mk_lit(0)});
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    const Status x = p.add_xor_clause({0, 1}, true);
    EXPECT_EQ(x.code(), StatusCode::kInvalidArgument);
}

TEST(Problem, IncrementalCnfLoading) {
    Problem p;
    ASSERT_TRUE(p.add_clause({sat::mk_lit(0), sat::mk_lit(1, true)}).ok());
    ASSERT_TRUE(p.add_xor_clause({0, 1, 2}, true).ok());
    EXPECT_EQ(p.kind(), Problem::Kind::kCnf);
    EXPECT_EQ(p.num_vars(), 3u);
    EXPECT_EQ(p.num_constraints(), 2u);
    EXPECT_EQ(p.cnf().clauses.size(), 1u);
    EXPECT_EQ(p.cnf().xors.size(), 1u);

    EXPECT_EQ(p.add_polynomial(anf::Polynomial::variable(0)).code(),
              StatusCode::kInvalidArgument);

    const anf::Var v = p.new_var();
    EXPECT_EQ(v, 3u);
    EXPECT_EQ(p.num_vars(), 4u);
    EXPECT_EQ(p.cnf().num_vars, 4u);

    p.reserve_vars(10);
    EXPECT_EQ(p.num_vars(), 10u);
}

TEST(Problem, IncrementalAnfMatchesBatchConstruction) {
    const auto batch = paper_example();
    Problem inc;
    for (const auto& poly : batch.polynomials())
        ASSERT_TRUE(inc.add_polynomial(poly).ok());
    EXPECT_EQ(inc.num_vars(), batch.num_vars());
    EXPECT_EQ(inc.polynomials(), batch.polynomials());
}

// ---- Problem: loaders and Status propagation ------------------------------

TEST(Problem, MalformedAnfTextYieldsParseError) {
    const auto p = Problem::from_anf_text("x1*x2 + y3\n");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kParseError);
    EXPECT_NE(p.status().message().find("line 1"), std::string::npos)
        << "message should locate the failure: " << p.status().message();
}

TEST(Problem, MalformedDimacsYieldsParseError) {
    const auto missing_header = Problem::from_cnf_text("1 -2 0\n");
    ASSERT_FALSE(missing_header.ok());
    EXPECT_EQ(missing_header.status().code(), StatusCode::kParseError);

    const auto bad = Problem::from_cnf_text("p dnf 3 1\n1 -2 0\n");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST(Problem, MissingFileYieldsIoError) {
    const auto p = Problem::from_anf_file("/nonexistent/no.anf");
    ASSERT_FALSE(p.ok());
    EXPECT_EQ(p.status().code(), StatusCode::kIoError);
    const auto c = Problem::from_cnf_file("/nonexistent/no.cnf");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.status().code(), StatusCode::kIoError);
}

TEST(Problem, FileRoundtrip) {
    const std::string path = ::testing::TempDir() + "facade_roundtrip.cnf";
    {
        std::ofstream out(path);
        out << "p cnf 3 2\n1 -2 0\nx1 2 3 0\n";
    }
    const auto p = Problem::from_cnf_file(path);
    ASSERT_TRUE(p.ok()) << p.status().to_string();
    EXPECT_EQ(p->num_vars(), 3u);
    EXPECT_EQ(p->cnf().clauses.size(), 1u);
    EXPECT_EQ(p->cnf().xors.size(), 1u);
    std::remove(path.c_str());
}

TEST(Status, ToStringAndCodes) {
    EXPECT_EQ(Status().to_string(), "OK");
    const Status s = Status::parse_error("bad token");
    EXPECT_EQ(s.to_string(), "PARSE_ERROR: bad token");
    EXPECT_STREQ(status_code_name(StatusCode::kInterrupted), "INTERRUPTED");
}

// ---- Engine: the default registry and verdicts ----------------------------

TEST(Engine, SolvesPaperExample) {
    Engine engine(small_config());
    const auto names = engine.technique_names();
    ASSERT_EQ(names.size(), 3u) << "default registry: xl, elimlin, sat";
    EXPECT_EQ(names[0], "xl");
    EXPECT_EQ(names[1], "elimlin");
    EXPECT_EQ(names[2], "sat");

    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    ASSERT_EQ(run->verdict, sat::Result::kSat);
    const std::vector<bool> expect{true, true, true, true, false};
    EXPECT_EQ(run->solution, expect);
    EXPECT_GT(run->facts_from("xl"), 0u) << "XL must contribute facts";
    EXPECT_FALSE(run->interrupted);
    EXPECT_FALSE(run->timed_out);
}

TEST(Engine, DetectsUnsatAndEmptyIsSat) {
    Engine engine(small_config());
    const auto unsat = engine.run(
        *Problem::from_anf_text("x1 + x2\nx2 + x3\nx1 + x3 + 1\n"));
    ASSERT_TRUE(unsat.ok());
    EXPECT_EQ(unsat->verdict, sat::Result::kUnsat);

    Problem empty;
    empty.reserve_vars(3);
    const auto sat_run = engine.run(empty);
    ASSERT_TRUE(sat_run.ok());
    EXPECT_EQ(sat_run->verdict, sat::Result::kSat);
}

TEST(Engine, CnfProblemRunsThroughConversion) {
    // An inconsistent XOR cycle: x1^x2=1, x2^x3=1, x1^x3=1.
    Problem p;
    ASSERT_TRUE(p.add_xor_clause({0, 1}, true).ok());
    ASSERT_TRUE(p.add_xor_clause({1, 2}, true).ok());
    ASSERT_TRUE(p.add_xor_clause({0, 2}, true).ok());
    Engine engine(small_config());
    const auto run = engine.run(p);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->verdict, sat::Result::kUnsat);
    EXPECT_EQ(run->num_original_vars, 3u);
}

// ---- ANF <-> CNF roundtrip through the facade -----------------------------

TEST(Engine, AnfToCnfRoundtripPreservesModels) {
    // Models of the ANF must survive: ANF -> processed CNF -> (reparse as a
    // CNF Problem) -> engine verdict, projected onto original variables.
    const auto problem =
        *Problem::from_anf_text("x1*x2 + x3\nx2 + x4\nx1*x4 + x2\n");
    const auto direct = testutil::anf_models(problem.polynomials(),
                                             problem.num_vars());
    ASSERT_FALSE(direct.empty());

    EngineConfig cfg = small_config();
    cfg.use_sat = false;  // keep the CNF a pure description of the system
    Engine engine(cfg);
    const auto run = engine.run(problem);
    ASSERT_TRUE(run.ok());

    const auto cnf_models = testutil::project_models(
        testutil::cnf_models(run->processed_cnf.cnf), problem.num_vars());
    EXPECT_EQ(cnf_models, direct)
        << "processed CNF must have the same models over original vars";

    // And back in through the facade as a CNF problem.
    const auto back = engine.run(Problem::from_cnf(run->processed_cnf.cnf));
    ASSERT_TRUE(back.ok());
    EXPECT_NE(back->verdict, sat::Result::kUnsat);
}

// ---- hooks: interrupt and progress ----------------------------------------

TEST(Engine, InterruptCancelsMidLoop) {
    // Allow exactly one technique step, then interrupt: the run must stop
    // after that step with interrupted == true and no verdict.
    Engine engine(small_config());
    int calls = 0;
    engine.set_interrupt_callback([&]() { return ++calls > 1; });
    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->interrupted);
    EXPECT_EQ(run->verdict, sat::Result::kUnknown);
    ASSERT_EQ(run->techniques.size(), 3u);
    EXPECT_EQ(run->techniques[0].steps, 1u) << "xl ran once";
    EXPECT_EQ(run->techniques[1].steps, 0u) << "elimlin never ran";
    EXPECT_EQ(run->techniques[2].steps, 0u) << "sat never ran";
}

TEST(Engine, ImmediateInterruptRunsNothing) {
    Engine engine(small_config());
    engine.set_interrupt_callback([]() { return true; });
    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->interrupted);
    for (const auto& t : run->techniques) EXPECT_EQ(t.steps, 0u);
}

TEST(Engine, ProgressCallbackSeesEveryStep) {
    Engine engine(small_config());
    std::vector<Progress> seen;
    engine.set_progress_callback(
        [&](const Progress& p) { seen.push_back(p); });
    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.front().technique, "xl");
    size_t total_steps = 0;
    for (const auto& t : run->techniques) total_steps += t.steps;
    EXPECT_EQ(seen.size(), total_steps);
}

TEST(Engine, ZeroTimeBudgetReportsTimeout) {
    EngineConfig cfg = small_config();
    cfg.time_budget_s = 0.0;
    Engine engine(cfg);
    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(run->timed_out);
    EXPECT_EQ(run->verdict, sat::Result::kUnknown);
}

// ---- pluggable techniques --------------------------------------------------

class NoOpTechnique final : public Technique {
public:
    explicit NoOpTechnique(int* steps) : steps_(steps) {}
    std::string name() const override { return "noop"; }
    StepReport step(core::AnfSystem&, FactSink&) override {
        ++*steps_;
        return {};
    }

private:
    int* steps_;
};

TEST(Engine, NoOpTechniquePlugsInWithoutEngineChanges) {
    int steps = 0;
    Engine engine(small_config());
    engine.add_technique(std::make_unique<NoOpTechnique>(&steps));
    EXPECT_EQ(engine.technique_names().back(), "noop");

    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->verdict, sat::Result::kSat) << "result unchanged";
    EXPECT_EQ(run->facts_from("noop"), 0u);
}

TEST(Engine, CustomOnlyRegistryReachesFixedPointImmediately) {
    int steps = 0;
    Engine engine(small_config());
    engine.clear_techniques();
    engine.add_technique(std::make_unique<NoOpTechnique>(&steps));
    const auto run = engine.run(paper_example());
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->verdict, sat::Result::kUnknown);
    EXPECT_EQ(steps, 1) << "no facts -> fixed point after one pass";
}

class FailingTechnique final : public Technique {
public:
    std::string name() const override { return "failing"; }
    StepReport step(core::AnfSystem&, FactSink&) override {
        StepReport r;
        r.status = Status::internal("synthetic failure");
        return r;
    }
};

TEST(Engine, TechniqueErrorAbortsRunWithStatus) {
    Engine engine(small_config());
    engine.clear_techniques();
    engine.add_technique(std::make_unique<FailingTechnique>());
    const auto run = engine.run(paper_example());
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

// ---- solve() and legacy adapters ------------------------------------------

TEST(Solve, AnfBothModesThroughFacade) {
    const auto problem = paper_example();
    for (const bool with : {false, true}) {
        SolveConfig cfg;
        cfg.engine = small_config();
        cfg.preprocess = with;
        cfg.timeout_s = 30.0;
        cfg.engine_budget_s = 5.0;
        const auto out = solve(problem, cfg);
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(out->result, sat::Result::kSat) << "with=" << with;
        EXPECT_TRUE(out->model_verified || out->solved_in_loop);
    }
}

TEST(Solve, LegacyEntryPointsAgreeWithFacade) {
    // The four old entry points are now one-liners over Problem + Engine;
    // they must agree with the facade on verdict and solution.
    const auto problem = paper_example();
    core::Bosphorus tool(small_config());
    const auto legacy =
        tool.process_anf(problem.polynomials(), problem.num_vars());
    const auto run = Engine(small_config()).run(problem);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(legacy.status, run->verdict);
    EXPECT_EQ(legacy.solution, run->solution);
    EXPECT_EQ(legacy.facts_from_xl, run->facts_from("xl"));

    core::PipelineConfig pcfg;
    pcfg.bosphorus = small_config();
    pcfg.use_bosphorus = true;
    pcfg.timeout_s = 30.0;
    const auto pipe = core::solve_anf_instance(problem.polynomials(),
                                               problem.num_vars(), pcfg);
    const auto facade = solve(problem, core::to_solve_config(pcfg));
    ASSERT_TRUE(facade.ok());
    EXPECT_EQ(pipe.result, facade->result);
}

TEST(Solve, DefaultSolverMatchesCliDocumentation) {
    // The CLI usage text promises `--solver` defaults to cms; the config
    // structs must agree with the name the CLI would parse.
    const auto parsed = sat::solver_kind_from_name(sat::kDefaultSolverName);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, sat::SolverKind::kCmsLike);
    EXPECT_EQ(core::PipelineConfig{}.solver, *parsed);
    EXPECT_EQ(SolveConfig{}.solver, *parsed);
}

TEST(Solve, UnknownSolverNameIsInvalidArgument) {
    const auto parsed = sat::solver_kind_from_name("kissat");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Par2Score, SolvedUnsolvedMixAndEmptySet) {
    EXPECT_DOUBLE_EQ(par2_score({}, 1000.0), 0.0);

    SolveOutcome sat_fast;
    sat_fast.result = sat::Result::kSat;
    sat_fast.seconds = 12.5;
    SolveOutcome unsat_slow;
    unsat_slow.result = sat::Result::kUnsat;
    unsat_slow.seconds = 300.0;
    SolveOutcome unsolved;
    unsolved.result = sat::Result::kUnknown;
    unsolved.seconds = 999.0;  // runtime of unsolved instances is ignored

    // Solved instances contribute their runtime; unsolved ones 2x the
    // timeout, regardless of how long they actually ran.
    EXPECT_DOUBLE_EQ(par2_score({sat_fast}, 1000.0), 12.5);
    EXPECT_DOUBLE_EQ(par2_score({unsolved}, 1000.0), 2000.0);
    EXPECT_DOUBLE_EQ(par2_score({sat_fast, unsat_slow, unsolved}, 500.0),
                     12.5 + 300.0 + 2.0 * 500.0);
    // Lower is better: a fully-solved set beats one with a timeout.
    EXPECT_LT(par2_score({sat_fast, unsat_slow}, 500.0),
              par2_score({sat_fast, unsolved}, 500.0));
}

}  // namespace
}  // namespace bosphorus
