// Error-path and boundary tests: invalid constructions must fail loudly,
// and boundary parameters must behave.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/anf_to_cnf.h"
#include "core/cnf_to_anf.h"
#include "crypto/aes_small.h"
#include "crypto/gf2e.h"
#include "sat/solve_cnf.h"
#include "test_util.h"
#include "util/rng.h"

namespace bosphorus {
namespace {

TEST(ErrorPaths, Gf2eRejectsBadDegree) {
    EXPECT_THROW(crypto::GF2E(0), std::invalid_argument);
    EXPECT_THROW(crypto::GF2E(1), std::invalid_argument);
    EXPECT_THROW(crypto::GF2E(9), std::invalid_argument);
    EXPECT_NO_THROW(crypto::GF2E(2));
    EXPECT_NO_THROW(crypto::GF2E(8));
}

TEST(ErrorPaths, AesRejectsBadShape) {
    crypto::SmallScaleAes::Params p;
    p.rows = 3;  // unsupported (no MDS matrix defined)
    EXPECT_THROW(crypto::SmallScaleAes{p}, std::invalid_argument);
    p.rows = 2;
    p.e = 5;
    EXPECT_THROW(crypto::SmallScaleAes{p}, std::invalid_argument);
    p.e = 4;
    p.cols = 5;
    EXPECT_THROW(crypto::SmallScaleAes{p}, std::invalid_argument);
}

TEST(ErrorPaths, AnfToCnfZeroPolynomialsIgnored) {
    const auto res = core::anf_to_cnf({anf::Polynomial()}, 2);
    EXPECT_TRUE(res.cnf.clauses.empty());
}

TEST(ErrorPaths, CnfToAnfEmptyClauseIsContradiction) {
    sat::Cnf cnf;
    cnf.num_vars = 2;
    cnf.add_clause({});
    const auto res = core::cnf_to_anf(cnf);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_TRUE(res.polys[0].is_one()) << "empty clause = the equation 1 = 0";
}

TEST(ErrorPaths, CnfToAnfTautologyVanishes) {
    sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.add_clause({sat::mk_lit(0, false), sat::mk_lit(0, true)});
    const auto res = core::cnf_to_anf(cnf);
    ASSERT_EQ(res.polys.size(), 1u);
    EXPECT_TRUE(res.polys[0].is_zero()) << "x * (x+1) = 0 identically";
}

TEST(ErrorPaths, SolveCnfOnContradictoryXors) {
    sat::Cnf cnf;
    cnf.num_vars = 2;
    cnf.xors.push_back({{0, 1}, true});
    cnf.xors.push_back({{0, 1}, false});
    for (const auto kind :
         {sat::SolverKind::kMinisatLike, sat::SolverKind::kLingelingLike,
          sat::SolverKind::kCmsLike}) {
        EXPECT_EQ(sat::solve_cnf(cnf, kind).result, sat::Result::kUnsat)
            << sat::solver_kind_name(kind);
    }
}

TEST(ErrorPaths, SingleVariableXor) {
    sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.xors.push_back({{0}, true});  // x = 1
    const auto out = sat::solve_cnf(cnf, sat::SolverKind::kCmsLike);
    ASSERT_EQ(out.result, sat::Result::kSat);
    EXPECT_EQ(out.model[0], sat::LBool::kTrue);
}

TEST(ErrorPaths, EmptyXorRhsTrueIsUnsat) {
    sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.xors.push_back({{}, true});  // 0 = 1
    EXPECT_EQ(sat::solve_cnf(cnf, sat::SolverKind::kCmsLike).result,
              sat::Result::kUnsat);
    cnf.xors[0].rhs = false;  // 0 = 0: fine
    sat::Cnf ok;
    ok.num_vars = 1;
    ok.xors.push_back({{}, false});
    EXPECT_EQ(sat::solve_cnf(ok, sat::SolverKind::kCmsLike).result,
              sat::Result::kSat);
}

TEST(ErrorPaths, DuplicateVarsInXorCancel) {
    sat::Cnf cnf;
    cnf.num_vars = 2;
    // x ^ x ^ y = 1 reduces to y = 1.
    cnf.xors.push_back({{0, 0, 1}, true});
    const auto out = sat::solve_cnf(cnf, sat::SolverKind::kCmsLike);
    ASSERT_EQ(out.result, sat::Result::kSat);
    EXPECT_EQ(out.model[1], sat::LBool::kTrue);
}

}  // namespace
}  // namespace bosphorus
// Appended: Tseitin-expander generator checks (kept here to avoid another
// test translation unit).
#include "cnfgen/generators.h"
namespace bosphorus {
namespace {
TEST(TseitinExpander, VerdictMatchesBruteForce) {
    Rng rng(21);
    for (int i = 0; i < 6; ++i) {
        const bool satisfiable = (i % 2 == 0);
        const auto cnf = cnfgen::tseitin_expander(5, satisfiable, rng);
        if (cnf.num_vars > 20) continue;
        EXPECT_EQ(!testutil::cnf_models(cnf).empty(), satisfiable) << i;
    }
}
TEST(TseitinExpander, GjeSolverDecidesInstantly) {
    Rng rng(22);
    const auto cnf = cnfgen::tseitin_expander(40, false, rng);
    const auto out = sat::solve_cnf(cnf, sat::SolverKind::kCmsLike, 10.0);
    EXPECT_EQ(out.result, sat::Result::kUnsat)
        << "XOR recovery + level-0 GJE must refute the odd-charged Tseitin "
           "formula";
}
}  // namespace
}  // namespace bosphorus
// Appended: stream-preprocessor I/O fault injection (PR 9). Injected
// short writes, ENOSPC and read errors must surface as structured Status
// values and must never leave a partial output file (or its temp twin)
// behind.
#include <fstream>
#include <string>

#include "bosphorus/stream.h"
#include "util/fault.h"

namespace bosphorus {
namespace {

namespace streamfault {

std::string write_input(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::trunc);
    out << "p cnf 4 5\n1 2 0\n-1 3 0\n-2 -3 0\n3 4 0\n-3 -4 0\n";
    EXPECT_TRUE(static_cast<bool>(out));
    return path;
}

bool exists(const std::string& path) {
    return std::ifstream(path).good();
}

std::string seeded_plan(const std::string& plan) {
    return plan + ",seed=" + std::to_string(testutil::test_seed());
}

/// Run the preprocessor under `plan`; the fault must yield kIoError and
/// leave neither the output nor the temp file behind.
void expect_clean_io_failure(const std::string& plan, const char* tag) {
    const std::string in = write_input(std::string("sfault_") + tag + ".cnf");
    const std::string out_path =
        ::testing::TempDir() + std::string("sfault_") + tag + ".out.cnf";

    fault::ScopedFaultPlan scoped(seeded_plan(plan));
    ASSERT_TRUE(scoped.status().ok()) << scoped.status().to_string();

    StreamPreprocessor pp;
    const auto r = pp.run(in, out_path);
    ASSERT_FALSE(r.ok()) << tag << ": the injected fault must surface";
    EXPECT_EQ(r.status().code(), StatusCode::kIoError) << tag;
    EXPECT_FALSE(exists(out_path))
        << tag << ": no partial output may be left behind";
    EXPECT_FALSE(exists(out_path + ".tmp"))
        << tag << ": the temp file must be cleaned up";
    std::remove(in.c_str());
}

}  // namespace streamfault

TEST(StreamFaults, ShortWriteMidEmitLeavesNoPartialFile) {
    streamfault::expect_clean_io_failure("io-short-write=1@1", "shortwrite");
}

TEST(StreamFaults, EnospcMidEmitLeavesNoPartialFile) {
    streamfault::expect_clean_io_failure("io-enospc=1@1", "enospc");
}

TEST(StreamFaults, ReadErrorMidPassLeavesNoPartialFile) {
    streamfault::expect_clean_io_failure("io-read-error=1@2", "readerr");
}

TEST(StreamFaults, FaultyRunLeavesAPreexistingOutputIntact) {
    const std::string in = streamfault::write_input("sfault_keep.cnf");
    const std::string out_path = ::testing::TempDir() + "sfault_keep.out.cnf";
    {
        std::ofstream prev(out_path, std::ios::trunc);
        prev << "previous contents\n";
    }
    fault::ScopedFaultPlan scoped(
        streamfault::seeded_plan("io-enospc=1@1"));
    ASSERT_TRUE(scoped.status().ok());
    StreamPreprocessor pp;
    ASSERT_FALSE(pp.run(in, out_path).ok());
    std::ifstream check(out_path);
    std::string line;
    ASSERT_TRUE(std::getline(check, line));
    EXPECT_EQ(line, "previous contents")
        << "a failed run must not clobber the previous output";
    std::remove(in.c_str());
    std::remove(out_path.c_str());
}

TEST(StreamFaults, SuccessfulRunLeavesNoTempFile) {
    const std::string in = streamfault::write_input("sfault_ok.cnf");
    const std::string out_path = ::testing::TempDir() + "sfault_ok.out.cnf";
    StreamPreprocessor pp;
    const auto r = pp.run(in, out_path);
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_TRUE(streamfault::exists(out_path));
    EXPECT_FALSE(streamfault::exists(out_path + ".tmp"));
    std::remove(in.c_str());
    std::remove(out_path.c_str());
}

}  // namespace
}  // namespace bosphorus
